// Multiple views over the same device (paper §III-B): interface
// convergence (a POSIX stack and a KVS stack share one NVMe) and
// tunable access control (two stacks expose islands of data to
// different users via distinct permission LabMod instances).
#include <cstdio>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "labmods/generickvs.h"
#include "simdev/registry.h"

using namespace labstor;

int main() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20)).ok()) return 1;

  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);
  if (!runtime.Start().ok()) return 1;

  // One POSIX view and one KVS view over the same device; the FS view
  // is ACL-gated so only uid 1000 sees /private.
  const char* fs_yaml = R"(
mount: fs::/shared
dag:
  - mod: permissions
    uuid: mt_perm
    params:
      default: deny
      allow:
        - prefix: fs::/shared/public
          uids: [1000, 1001]
        - prefix: fs::/shared/private
          uids: [1000]
    outputs: [mt_fs]
  - mod: labfs
    uuid: mt_fs
    params:
      log_records_per_worker: 4096
      region_size_mb: 128          # lower half of the shared NVMe
    outputs: [mt_drv]
  - mod: kernel_driver
    uuid: mt_drv
)";
  const char* kvs_yaml = R"(
mount: kvs::/shared
dag:
  - mod: labkvs
    uuid: mt_kvs
    params:
      log_records_per_worker: 4096
      region_offset_mb: 128        # upper half of the shared NVMe
    outputs: [mt_drv2]
  - mod: kernel_driver
    uuid: mt_drv2
)";
  for (const char* yaml : {fs_yaml, kvs_yaml}) {
    auto spec = core::StackSpec::Parse(yaml);
    if (!spec.ok() ||
        !runtime.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok()) {
      std::fprintf(stderr, "mount failed\n");
      return 1;
    }
  }
  std::printf("two stacks mounted over one NVMe: %zu namespaces\n",
              runtime.ns().size());

  // Alice (uid 1000) and Bob (uid 1001).
  core::Client alice(runtime, ipc::Credentials{100, 1000, 1000});
  core::Client bob(runtime, ipc::Credentials{200, 1001, 1001});
  if (!alice.Connect().ok() || !bob.Connect().ok()) return 1;
  labmods::GenericFs alice_fs(alice);
  labmods::GenericFs bob_fs(bob);
  labmods::GenericKvs bob_kvs(bob);

  // Tunable access control in action.
  std::vector<uint8_t> secret{'s', 'e', 'c', 'r', 'e', 't'};
  auto afd = alice_fs.Create("fs::/shared/private/alice.txt");
  std::printf("alice creates /private file: %s\n",
              afd.ok() ? "OK" : afd.status().ToString().c_str());
  if (afd.ok()) (void)alice_fs.Write(*afd, secret, 0);

  auto bfd = bob_fs.Create("fs::/shared/private/bob.txt");
  std::printf("bob creates /private file: %s (expected PERMISSION_DENIED)\n",
              bfd.ok() ? "unexpectedly OK" : bfd.status().ToString().c_str());
  auto bpub = bob_fs.Create("fs::/shared/public/bob.txt");
  std::printf("bob creates /public file: %s\n",
              bpub.ok() ? "OK" : bpub.status().ToString().c_str());

  // Interface convergence: Bob stores the same content as key-value
  // pairs through the second stack — no translation middleware.
  std::vector<uint8_t> value(4096, 0x42);
  const Status put = bob_kvs.Put("kvs::/shared/session_42", value);
  std::printf("bob KVS put: %s\n", put.ToString().c_str());
  std::vector<uint8_t> out(4096);
  auto got = bob_kvs.Get("kvs::/shared/session_42", out);
  std::printf("bob KVS get: %llu bytes, %s\n",
              static_cast<unsigned long long>(got.value_or(0)),
              out == value ? "content matches" : "MISMATCH");

  (void)runtime.Stop();
  std::printf("multi-tenant OK\n");
  return 0;
}
