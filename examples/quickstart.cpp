// Quickstart: assemble a LabStack from a YAML spec, start the Runtime,
// and do POSIX-style file I/O through GenericFS.
//
//   devices  -> a simulated NVMe
//   LabStack -> permissions -> LabFS -> LRU cache -> NoOp -> KernelDriver
//   client   -> open/write/read/stat via the GenericFS connector
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "simdev/registry.h"

using namespace labstor;

int main() {
  // 1. Storage: register a simulated NVMe device (in a deployment this
  //    is the hardware the Kernel Ops Manager exposes).
  simdev::DeviceRegistry devices(nullptr);
  auto nvme = devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20));
  if (!nvme.ok()) {
    std::fprintf(stderr, "device: %s\n", nvme.status().ToString().c_str());
    return 1;
  }

  // 2. Runtime: workers + admin, as `labstor_runtime` would launch.
  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);
  if (!runtime.Start().ok()) return 1;

  // 3. mount.stack: a full-featured FS stack from its YAML spec.
  const char* stack_yaml = R"(
mount: fs::/demo
rules:
  exec_mode: async
dag:
  - mod: permissions
    uuid: demo_perm
    outputs: [demo_fs]
  - mod: labfs
    uuid: demo_fs
    params:
      log_records_per_worker: 4096
    outputs: [demo_lru]
  - mod: lru_cache
    uuid: demo_lru
    outputs: [demo_sched]
  - mod: noop_sched
    uuid: demo_sched
    outputs: [demo_drv]
  - mod: kernel_driver
    uuid: demo_drv
)";
  auto spec = core::StackSpec::Parse(stack_yaml);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) {
    std::fprintf(stderr, "mount: %s\n", stack.status().ToString().c_str());
    return 1;
  }
  std::printf("mounted '%s' (stack id %u, %zu mods)\n",
              (*stack)->spec.mount.c_str(), (*stack)->id,
              (*stack)->vertices.size());

  // 4. Application side: connect a client and use POSIX-ish calls.
  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericFs fs(client);

  auto fd = fs.Create("fs::/demo/hello.txt");
  if (!fd.ok()) {
    std::fprintf(stderr, "create: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> payload(8192);
  std::iota(payload.begin(), payload.end(), 0);
  auto written = fs.Write(*fd, payload, 0);
  std::printf("wrote %llu bytes\n",
              static_cast<unsigned long long>(written.value_or(0)));

  std::vector<uint8_t> back(8192);
  auto read = fs.Read(*fd, back, 0);
  std::printf("read %llu bytes back: %s\n",
              static_cast<unsigned long long>(read.value_or(0)),
              back == payload ? "content matches" : "MISMATCH");

  auto size = fs.StatSize("fs::/demo/hello.txt");
  std::printf("stat size: %llu\n",
              static_cast<unsigned long long>(size.value_or(0)));
  (void)fs.Close(*fd);

  std::printf("runtime processed %llu requests; device wrote %llu bytes\n",
              static_cast<unsigned long long>(runtime.requests_processed()),
              static_cast<unsigned long long>(
                  (*nvme)->stats().bytes_written.load()));
  (void)runtime.Stop();
  std::printf("quickstart OK\n");
  return 0;
}
