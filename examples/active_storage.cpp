// Active storage + dynamic semantics imposition (paper §III-B):
// a compression LabMod transparently shrinks data on the way to the
// device, and modify_stack inserts/removes it while the stack stays
// mounted.
#include <cstdio>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/compress.h"
#include "simdev/registry.h"

using namespace labstor;

namespace {

Status RunBlockWrite(core::Runtime& runtime, core::Stack& stack,
                     core::Client& client, uint64_t offset,
                     std::vector<uint8_t>& data) {
  auto req = client.NewRequest(0);
  if (!req.ok()) return req.status();
  (*req)->op = ipc::OpCode::kBlkWrite;
  (*req)->offset = offset;
  (*req)->length = data.size();
  (*req)->data = data.data();
  LABSTOR_RETURN_IF_ERROR(client.Execute(**req, stack));
  (void)runtime;
  return (*req)->ToStatus();
}

}  // namespace

int main() {
  simdev::DeviceRegistry devices(nullptr);
  auto nvme = devices.Create(simdev::DeviceParams::NvmeP3700(256 << 20));
  if (!nvme.ok()) return 1;

  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);
  if (!runtime.Start().ok()) return 1;

  // Plain block stack first: writes hit the device at full size.
  const char* plain_yaml = R"(
mount: blk::/active
dag:
  - mod: noop_sched
    uuid: act_sched
    outputs: [act_drv]
  - mod: kernel_driver
    uuid: act_drv
)";
  auto spec = core::StackSpec::Parse(plain_yaml);
  if (!spec.ok()) return 1;
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) return 1;

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;

  // Highly compressible payload (simulation snapshots usually are).
  std::vector<uint8_t> data(64 * 1024);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i % 32);

  if (!RunBlockWrite(runtime, **stack, client, 0, data).ok()) return 1;
  const uint64_t plain_bytes = (*nvme)->stats().bytes_written.load();
  std::printf("without compression: device absorbed %llu bytes\n",
              static_cast<unsigned long long>(plain_bytes));

  // Dynamic semantics imposition: insert the compression LabMod into
  // the mounted stack via modify_stack.
  const char* compressed_yaml = R"(
mount: blk::/active
dag:
  - mod: compress
    uuid: act_zip
    outputs: [act_sched]
  - mod: noop_sched
    uuid: act_sched
    outputs: [act_drv]
  - mod: kernel_driver
    uuid: act_drv
)";
  auto updated = core::StackSpec::Parse(compressed_yaml);
  if (!updated.ok()) return 1;
  if (!runtime.ModifyStack(*updated, ipc::Credentials{1, 0, 0}).ok()) {
    std::fprintf(stderr, "modify_stack failed\n");
    return 1;
  }
  auto modified = runtime.ns().FindByMount("blk::/active");
  if (!modified.ok()) return 1;
  std::printf("modify_stack: inserted 'compress' live (now %zu mods)\n",
              (*modified)->vertices.size());

  if (!RunBlockWrite(runtime, **modified, client, 1 << 20, data).ok()) return 1;
  const uint64_t delta = (*nvme)->stats().bytes_written.load() - plain_bytes;
  std::printf("with compression: device absorbed %llu bytes (%.1f%% of input)\n",
              static_cast<unsigned long long>(delta),
              100.0 * static_cast<double>(delta) /
                  static_cast<double>(data.size()));

  auto zip = runtime.registry().Find("act_zip");
  if (zip.ok()) {
    auto* mod = dynamic_cast<labmods::CompressMod*>(*zip);
    std::printf("compress mod: in=%llu out=%llu ratio=%.2f\n",
                static_cast<unsigned long long>(mod->bytes_in()),
                static_cast<unsigned long long>(mod->bytes_out()),
                mod->ratio());
  }
  (void)runtime.Stop();
  std::printf("active storage OK\n");
  return 0;
}
