// Crash recovery (paper §III-C3): the Runtime dies mid-run; the
// application's Wait rides out the outage; an administrator restarts
// the Runtime; the client library triggers StateRepair — LabFS rebuilds
// its inodes from the on-device metadata log — and work continues.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "labmods/labfs.h"
#include "simdev/registry.h"

using namespace labstor;
using namespace std::chrono_literals;

int main() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok()) return 1;

  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);
  auto spec = core::StackSpec::Parse(
      "mount: fs::/data\n"
      "dag:\n"
      "  - mod: labfs\n"
      "    uuid: cr_fs\n"
      "    params:\n"
      "      log_records_per_worker: 4096\n"
      "    outputs: [cr_drv]\n"
      "  - mod: kernel_driver\n"
      "    uuid: cr_drv\n");
  if (!spec.ok()) return 1;
  if (!runtime.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok()) return 1;
  if (!runtime.Start().ok()) return 1;

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericFs fs(client);

  // Application writes a batch of checkpoint files.
  std::vector<uint8_t> checkpoint(16384, 0xC4);
  for (int i = 0; i < 8; ++i) {
    auto fd = fs.Create("fs::/data/ckpt_" + std::to_string(i));
    if (!fd.ok() || !fs.Write(*fd, checkpoint, 0).ok()) return 1;
    (void)fs.Close(*fd);
  }
  std::printf("wrote 8 checkpoint files\n");

  // Disaster strikes: the Runtime process dies.
  runtime.CrashForTesting();
  std::printf("runtime crashed (epoch %llu, offline=%d)\n",
              static_cast<unsigned long long>(runtime.ipc().epoch()),
              !runtime.ipc().online());

  // The app keeps going: this read blocks in Wait while offline.
  std::thread admin([&] {
    std::this_thread::sleep_for(100ms);
    std::printf("administrator restarts the runtime...\n");
    if (!runtime.Restart().ok()) std::abort();
  });
  std::vector<uint8_t> back(16384);
  auto fd = fs.Open("fs::/data/ckpt_3", 0);
  Status read_status = fd.status();
  if (fd.ok()) {
    auto n = fs.Read(*fd, back, 0);
    read_status = n.status();
  }
  admin.join();
  std::printf("read across the crash: %s, content %s\n",
              read_status.ToString().c_str(),
              back == checkpoint ? "intact" : "DAMAGED");

  // StateRepair ran (client-triggered, once per epoch): LabFS rebuilt
  // its in-memory inodes from the on-device log.
  auto mod = runtime.registry().Find("cr_fs");
  auto* labfs = dynamic_cast<labmods::LabFsMod*>(*mod);
  std::printf("post-repair: %zu files, %llu log records replayable\n",
              labfs->file_count(),
              static_cast<unsigned long long>(labfs->log_records()));

  (void)runtime.Stop();
  std::printf("crash recovery OK\n");
  return 0;
}
