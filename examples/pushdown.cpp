// Computational pushdown (DESIGN.md §12): register a sandboxed op
// chain once, then let the pushdown LabMod run the whole
// data-dependent sequence at the device-queue layer. A 4-deep
// pointer chase that would cost the client four round trips becomes
// one submission; a read-modify-write becomes one atomic chain
// instead of a racy Get + client edit + Put.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "ipc/chain.h"
#include "labmods/generickvs.h"
#include "labmods/pushdown.h"
#include "simdev/registry.h"

using namespace labstor;

namespace {

constexpr size_t kValueLen = 64;
constexpr uint32_t kKeyBytes = 32;  // chase link: NUL-terminated key head

// A chase record: the first 32 bytes name the next key, the rest is
// payload (here a tag byte so hops are tellable apart).
std::vector<uint8_t> LinkRecord(const std::string& next, uint8_t tag) {
  std::vector<uint8_t> v(kValueLen, tag);
  std::fill(v.begin(), v.begin() + kKeyBytes, uint8_t{0});
  std::memcpy(v.data(), next.data(), next.size());
  return v;
}

}  // namespace

int main() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok()) {
    return 1;
  }
  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);

  // The pushdown mod sits at the TOP of the stack: chain traffic is
  // interpreted there, everything else passes through to LabKVS.
  const char* yaml = R"(
mount: kvs::/ex
rules:
  exec_mode: async
dag:
  - mod: pushdown
    uuid: pd_ex
    outputs: [kvs_ex]
  - mod: labkvs
    uuid: kvs_ex
    params:
      log_records_per_worker: 8192
    outputs: [sched_ex]
  - mod: noop_sched
    uuid: sched_ex
    outputs: [drv_ex]
  - mod: kernel_driver
    uuid: drv_ex
)";
  auto spec = core::StackSpec::Parse(yaml);
  if (!spec.ok()) return 1;
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) return 1;
  if (!runtime.Start().ok()) return 1;

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericKvs kvs(client);

  // Build a 4-deep chase: index -> node -> leaf -> record.
  if (!kvs.Put("kvs::/ex/index", LinkRecord("kvs::/ex/node", 1)).ok() ||
      !kvs.Put("kvs::/ex/node", LinkRecord("kvs::/ex/leaf", 2)).ok() ||
      !kvs.Put("kvs::/ex/leaf", LinkRecord("kvs::/ex/record", 3)).ok()) {
    return 1;
  }
  std::vector<uint8_t> payload(kValueLen, 0x42);
  uint64_t counter = 100;
  std::memcpy(payload.data(), &counter, sizeof(counter));
  if (!kvs.Put("kvs::/ex/record", payload).ok()) return 1;

  // Register the chains. Programs are validated against the sandbox
  // (<= 16 straight-line steps, bounded scratch budget, no loops);
  // re-registering a DIFFERENT program under the same id requires a
  // newer namespace epoch, so a live upgrade can roll chains forward
  // but a stale client cannot roll them back.
  const Status chase_reg = kvs.RegisterChain(
      "kvs::/ex", ipc::BuildPointerChaseChain(/*id=*/1, /*depth=*/4,
                                              kKeyBytes));
  const Status rmw_reg = kvs.RegisterChain(
      "kvs::/ex", ipc::BuildRmwChain(/*id=*/2, /*field_offset=*/0,
                                     /*delta=*/5));
  if (!chase_reg.ok() || !rmw_reg.ok()) return 1;

  // One submission walks index -> node -> leaf -> record at the
  // device-queue layer and returns the record's bytes.
  std::vector<uint8_t> out(kValueLen);
  auto chased = kvs.ExecChain(/*chain_id=*/1, "kvs::/ex/index", out);
  if (!chased.ok()) return 1;
  std::memcpy(&counter, out.data(), sizeof(counter));
  std::printf("pointer chase: 1 submission, %llu bytes, counter=%llu\n",
              static_cast<unsigned long long>(*chased),
              static_cast<unsigned long long>(counter));

  // One submission reads the record, adds 5 to the counter field, and
  // persists it — bracketed by journal txn markers, so a crash
  // mid-chain recovers to the old or new value, never between.
  auto bumped = kvs.ExecChain(/*chain_id=*/2, "kvs::/ex/record", out);
  if (!bumped.ok()) return 1;
  std::memcpy(&counter, out.data(), sizeof(counter));
  std::printf("rmw chain: counter now %llu\n",
              static_cast<unsigned long long>(counter));

  // What the pushdown saved, from the mod's own accounting.
  auto pd = runtime.registry().Find("pd_ex");
  if (pd.ok()) {
    auto* mod = dynamic_cast<labmods::PushdownMod*>(*pd);
    std::printf("pushdown: %llu chains, %llu steps, %llu crossings saved "
                "(%llu ns priced)\n",
                static_cast<unsigned long long>(mod->chains_executed()),
                static_cast<unsigned long long>(mod->steps_executed()),
                static_cast<unsigned long long>(mod->crossings_saved()),
                static_cast<unsigned long long>(mod->saved_ns()));
  }
  (void)runtime.Stop();
  return 0;
}
