// Decentralized I/O system design (paper §III-B): metadata and data
// take different paths over the SAME filesystem instance.
//
// Two LabStacks share one LabFS (same instance UUID in both DAGs):
//   * "meta::/store" — asynchronous: metadata ops go through Runtime
//     workers (centralized authority keeps the namespace safe);
//   * "data::/store" — synchronous: data ops execute in the client
//     (kernel-bypass latency), reading the shared state (allocations,
//     inode map) LabFS keeps.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "labmods/labfs.h"
#include "simdev/registry.h"

using namespace labstor;

int main() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(128 << 20)).ok()) return 1;

  core::Runtime::Options options;
  options.max_workers = 2;
  core::Runtime runtime(std::move(options), devices);
  if (!runtime.Start().ok()) return 1;

  // Both stacks name the SAME LabFS instance uuid ("shared_fs"): the
  // Module Registry instantiates it once, so allocations and inodes
  // are one shared state, exactly as the paper's decentralized design
  // stores them "in shared memory between the two LabStacks".
  const char* meta_yaml = R"(
mount: meta::/store
rules:
  exec_mode: async
dag:
  - mod: labfs
    uuid: shared_fs
    params:
      log_records_per_worker: 4096
    outputs: [dec_drv]
  - mod: kernel_driver
    uuid: dec_drv
)";
  const char* data_yaml = R"(
mount: data::/store
rules:
  exec_mode: sync
dag:
  - mod: labfs
    uuid: shared_fs
    outputs: [dec_drv]
  - mod: kernel_driver
    uuid: dec_drv
)";
  for (const char* yaml : {meta_yaml, data_yaml}) {
    auto spec = core::StackSpec::Parse(yaml);
    if (!spec.ok() ||
        !runtime.MountStack(*spec, ipc::Credentials{1, 0, 0}).ok()) {
      std::fprintf(stderr, "mount failed\n");
      return 1;
    }
  }

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericFs fs(client);

  // Metadata through the centralized (async) view...
  auto fd_meta = fs.Create("meta::/store/result.bin");
  if (!fd_meta.ok()) {
    std::fprintf(stderr, "create: %s\n", fd_meta.status().ToString().c_str());
    return 1;
  }
  std::printf("create went through the async metadata stack (Runtime workers)\n");

  // ...data through the decentralized (sync, client-side) view. Note
  // the path: the SAME file is visible under both mounts because the
  // LabFS instance is shared; LabFS keys files by the path the
  // connector passes, so we write where we'll read.
  auto fd_data = fs.Open("data::/store/result.bin",
                         ipc::kOpenCreate);  // resolves via the sync stack
  if (!fd_data.ok()) return 1;
  std::vector<uint8_t> payload(64 << 10);
  std::iota(payload.begin(), payload.end(), 0);
  auto wrote = fs.Write(*fd_data, payload, 0);
  std::vector<uint8_t> back(64 << 10);
  auto read = fs.Read(*fd_data, back, 0);
  std::printf("data path (sync, no IPC): wrote %llu, read %llu, %s\n",
              static_cast<unsigned long long>(wrote.value_or(0)),
              static_cast<unsigned long long>(read.value_or(0)),
              back == payload ? "content OK" : "MISMATCH");

  // Shared state proof: the single LabFS instance saw both files.
  auto mod = runtime.registry().Find("shared_fs");
  if (mod.ok()) {
    auto* labfs = dynamic_cast<labmods::LabFsMod*>(*mod);
    std::printf("one LabFS instance backs both stacks: %zu files, "
                "%llu free blocks\n",
                labfs->file_count(),
                static_cast<unsigned long long>(labfs->allocator_free_blocks()));
  }
  std::printf("runtime processed %llu requests (metadata only — data ops "
              "bypassed it)\n",
              static_cast<unsigned long long>(runtime.requests_processed()));
  (void)runtime.Stop();
  std::printf("decentralized io OK\n");
  return 0;
}
