// Live upgrade (paper §III-C2): the Module Manager swaps a LabMod to a
// newer version — quiescing queues with UPDATE_PENDING/ACKED, calling
// StateUpdate to migrate state — while an application keeps messaging
// it. No restart, no lost state.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/client.h"
#include "core/runtime.h"
#include "labmods/dummy.h"
#include "simdev/registry.h"

using namespace labstor;
using namespace std::chrono_literals;

int main() {
  simdev::DeviceRegistry devices(nullptr);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(64 << 20)).ok()) return 1;

  core::Runtime::Options options;
  options.max_workers = 1;
  options.admin_poll = 2ms;
  core::Runtime runtime(std::move(options), devices);

  auto spec = core::StackSpec::Parse(
      "mount: ctl::/svc\n"
      "dag:\n"
      "  - mod: dummy\n"
      "    uuid: svc\n"
      "    version: 1\n");
  if (!spec.ok()) return 1;
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) return 1;
  if (!runtime.Start().ok()) return 1;

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> errors{0};
  std::thread app([&] {
    auto req = client.NewRequest();
    if (!req.ok()) return;
    while (!stop.load()) {
      (*req)->Reuse();
      (*req)->op = ipc::OpCode::kDummy;
      if (client.Execute(**req, **stack).ok() && (*req)->ToStatus().ok()) {
        ++sent;
      } else {
        ++errors;
      }
    }
  });

  while (sent.load() < 2000) std::this_thread::yield();
  auto mod_v1 = runtime.registry().Find("svc");
  std::printf("before upgrade: version %u, %llu messages so far\n",
              (*mod_v1)->version(), static_cast<unsigned long long>(sent.load()));

  // modify.mods: centralized upgrade to v2 while traffic flows.
  runtime.SubmitUpgrade(
      core::UpgradeRequest{"dummy", 2, core::UpgradeKind::kCentralized, 1 << 20});
  while (runtime.module_manager().upgrades_applied() == 0) {
    std::this_thread::sleep_for(1ms);
  }
  const uint64_t at_upgrade = sent.load();
  while (sent.load() < at_upgrade + 2000) std::this_thread::yield();
  stop.store(true);
  app.join();

  auto mod_v2 = runtime.registry().Find("svc");
  auto* dummy = dynamic_cast<labmods::DummyMod*>(*mod_v2);
  std::printf("after upgrade: version %u\n", (*mod_v2)->version());
  std::printf("messages sent %llu / counted by mod %llu / errors %llu\n",
              static_cast<unsigned long long>(sent.load()),
              static_cast<unsigned long long>(dummy->messages()),
              static_cast<unsigned long long>(errors.load()));
  std::printf("state survived: %s; zero request errors: %s\n",
              dummy->messages() == sent.load() ? "yes" : "NO",
              errors.load() == 0 ? "yes" : "NO");
  (void)runtime.Stop();
  std::printf("live upgrade OK\n");
  return 0;
}
