file(REMOVE_RECURSE
  "liblabstor_bench_common.a"
)
