# Empty compiler generated dependencies file for labstor_bench_common.
# This may be replaced when dependencies are built.
