file(REMOVE_RECURSE
  "CMakeFiles/labstor_bench_common.dir/common.cc.o"
  "CMakeFiles/labstor_bench_common.dir/common.cc.o.d"
  "liblabstor_bench_common.a"
  "liblabstor_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
