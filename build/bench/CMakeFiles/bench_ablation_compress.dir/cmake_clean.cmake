file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compress.dir/bench_ablation_compress.cc.o"
  "CMakeFiles/bench_ablation_compress.dir/bench_ablation_compress.cc.o.d"
  "bench_ablation_compress"
  "bench_ablation_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
