file(REMOVE_RECURSE
  "CMakeFiles/bench_anatomy.dir/bench_anatomy.cc.o"
  "CMakeFiles/bench_anatomy.dir/bench_anatomy.cc.o.d"
  "bench_anatomy"
  "bench_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
