# Empty compiler generated dependencies file for bench_orchestrator_cpu.
# This may be replaced when dependencies are built.
