file(REMOVE_RECURSE
  "CMakeFiles/bench_orchestrator_cpu.dir/bench_orchestrator_cpu.cc.o"
  "CMakeFiles/bench_orchestrator_cpu.dir/bench_orchestrator_cpu.cc.o.d"
  "bench_orchestrator_cpu"
  "bench_orchestrator_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orchestrator_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
