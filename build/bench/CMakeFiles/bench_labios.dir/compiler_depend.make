# Empty compiler generated dependencies file for bench_labios.
# This may be replaced when dependencies are built.
