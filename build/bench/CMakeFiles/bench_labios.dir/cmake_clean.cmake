file(REMOVE_RECURSE
  "CMakeFiles/bench_labios.dir/bench_labios.cc.o"
  "CMakeFiles/bench_labios.dir/bench_labios.cc.o.d"
  "bench_labios"
  "bench_labios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_labios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
