file(REMOVE_RECURSE
  "CMakeFiles/bench_filebench.dir/bench_filebench.cc.o"
  "CMakeFiles/bench_filebench.dir/bench_filebench.cc.o.d"
  "bench_filebench"
  "bench_filebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
