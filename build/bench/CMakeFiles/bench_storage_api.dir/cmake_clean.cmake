file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_api.dir/bench_storage_api.cc.o"
  "CMakeFiles/bench_storage_api.dir/bench_storage_api.cc.o.d"
  "bench_storage_api"
  "bench_storage_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
