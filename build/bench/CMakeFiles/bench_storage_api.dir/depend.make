# Empty dependencies file for bench_storage_api.
# This may be replaced when dependencies are built.
