file(REMOVE_RECURSE
  "CMakeFiles/bench_pfs.dir/bench_pfs.cc.o"
  "CMakeFiles/bench_pfs.dir/bench_pfs.cc.o.d"
  "bench_pfs"
  "bench_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
