# Empty dependencies file for bench_pfs.
# This may be replaced when dependencies are built.
