
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_pfs.cc" "bench/CMakeFiles/bench_pfs.dir/bench_pfs.cc.o" "gcc" "bench/CMakeFiles/bench_pfs.dir/bench_pfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/labstor_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/labstor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/labstor_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/labstor_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/labstor_kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/labstor_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/labstor_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/labstor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/labstor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
