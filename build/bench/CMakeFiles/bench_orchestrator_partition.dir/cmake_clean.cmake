file(REMOVE_RECURSE
  "CMakeFiles/bench_orchestrator_partition.dir/bench_orchestrator_partition.cc.o"
  "CMakeFiles/bench_orchestrator_partition.dir/bench_orchestrator_partition.cc.o.d"
  "bench_orchestrator_partition"
  "bench_orchestrator_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orchestrator_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
