# Empty dependencies file for bench_orchestrator_partition.
# This may be replaced when dependencies are built.
