# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_status[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_uuid[1]_include.cmake")
include("/root/repo/build/tests/test_bitmap[1]_include.cmake")
include("/root/repo/build/tests/test_ring_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_arena[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_yaml[1]_include.cmake")
include("/root/repo/build/tests/test_string_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_simdev[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_orchestrator[1]_include.cmake")
include("/root/repo/build/tests/test_module_registry[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_labmods[1]_include.cmake")
include("/root/repo/build/tests/test_labfs[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_kernelsim[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_param[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_zns[1]_include.cmake")
include("/root/repo/build/tests/test_execve[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
