# Empty compiler generated dependencies file for test_simdev.
# This may be replaced when dependencies are built.
