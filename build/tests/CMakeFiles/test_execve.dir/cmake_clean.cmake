file(REMOVE_RECURSE
  "CMakeFiles/test_execve.dir/execve_test.cc.o"
  "CMakeFiles/test_execve.dir/execve_test.cc.o.d"
  "test_execve"
  "test_execve.pdb"
  "test_execve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
