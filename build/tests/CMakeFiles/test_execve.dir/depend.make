# Empty dependencies file for test_execve.
# This may be replaced when dependencies are built.
