
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stack_test.cc" "tests/CMakeFiles/test_stack.dir/stack_test.cc.o" "gcc" "tests/CMakeFiles/test_stack.dir/stack_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/labstor_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/labstor_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/labstor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/labstor_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/labstor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
