file(REMOVE_RECURSE
  "CMakeFiles/test_uuid.dir/uuid_test.cc.o"
  "CMakeFiles/test_uuid.dir/uuid_test.cc.o.d"
  "test_uuid"
  "test_uuid.pdb"
  "test_uuid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uuid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
