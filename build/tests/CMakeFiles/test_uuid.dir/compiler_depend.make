# Empty compiler generated dependencies file for test_uuid.
# This may be replaced when dependencies are built.
