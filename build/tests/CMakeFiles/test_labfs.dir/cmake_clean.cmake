file(REMOVE_RECURSE
  "CMakeFiles/test_labfs.dir/labfs_test.cc.o"
  "CMakeFiles/test_labfs.dir/labfs_test.cc.o.d"
  "test_labfs"
  "test_labfs.pdb"
  "test_labfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
