# Empty dependencies file for test_labfs.
# This may be replaced when dependencies are built.
