# Empty compiler generated dependencies file for test_labmods.
# This may be replaced when dependencies are built.
