file(REMOVE_RECURSE
  "CMakeFiles/test_labmods.dir/labmods_test.cc.o"
  "CMakeFiles/test_labmods.dir/labmods_test.cc.o.d"
  "test_labmods"
  "test_labmods.pdb"
  "test_labmods[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_labmods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
