file(REMOVE_RECURSE
  "CMakeFiles/test_kernelsim.dir/kernelsim_test.cc.o"
  "CMakeFiles/test_kernelsim.dir/kernelsim_test.cc.o.d"
  "test_kernelsim"
  "test_kernelsim.pdb"
  "test_kernelsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
