file(REMOVE_RECURSE
  "CMakeFiles/test_module_registry.dir/module_registry_test.cc.o"
  "CMakeFiles/test_module_registry.dir/module_registry_test.cc.o.d"
  "test_module_registry"
  "test_module_registry.pdb"
  "test_module_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_module_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
