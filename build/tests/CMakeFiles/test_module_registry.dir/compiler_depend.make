# Empty compiler generated dependencies file for test_module_registry.
# This may be replaced when dependencies are built.
