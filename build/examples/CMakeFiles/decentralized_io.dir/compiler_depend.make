# Empty compiler generated dependencies file for decentralized_io.
# This may be replaced when dependencies are built.
