file(REMOVE_RECURSE
  "CMakeFiles/decentralized_io.dir/decentralized_io.cpp.o"
  "CMakeFiles/decentralized_io.dir/decentralized_io.cpp.o.d"
  "decentralized_io"
  "decentralized_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
