# Empty dependencies file for active_storage.
# This may be replaced when dependencies are built.
