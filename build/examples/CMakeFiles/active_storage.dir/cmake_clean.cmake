file(REMOVE_RECURSE
  "CMakeFiles/active_storage.dir/active_storage.cpp.o"
  "CMakeFiles/active_storage.dir/active_storage.cpp.o.d"
  "active_storage"
  "active_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
