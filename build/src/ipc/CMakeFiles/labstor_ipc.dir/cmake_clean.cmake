file(REMOVE_RECURSE
  "CMakeFiles/labstor_ipc.dir/ipc_manager.cc.o"
  "CMakeFiles/labstor_ipc.dir/ipc_manager.cc.o.d"
  "CMakeFiles/labstor_ipc.dir/shmem.cc.o"
  "CMakeFiles/labstor_ipc.dir/shmem.cc.o.d"
  "liblabstor_ipc.a"
  "liblabstor_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
