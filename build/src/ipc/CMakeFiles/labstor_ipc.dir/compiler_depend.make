# Empty compiler generated dependencies file for labstor_ipc.
# This may be replaced when dependencies are built.
