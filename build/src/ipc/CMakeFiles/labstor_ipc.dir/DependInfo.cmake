
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/ipc_manager.cc" "src/ipc/CMakeFiles/labstor_ipc.dir/ipc_manager.cc.o" "gcc" "src/ipc/CMakeFiles/labstor_ipc.dir/ipc_manager.cc.o.d"
  "/root/repo/src/ipc/shmem.cc" "src/ipc/CMakeFiles/labstor_ipc.dir/shmem.cc.o" "gcc" "src/ipc/CMakeFiles/labstor_ipc.dir/shmem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/labstor_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
