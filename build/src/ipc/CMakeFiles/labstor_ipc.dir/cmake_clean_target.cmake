file(REMOVE_RECURSE
  "liblabstor_ipc.a"
)
