file(REMOVE_RECURSE
  "CMakeFiles/labstor_kernelsim.dir/access_api.cc.o"
  "CMakeFiles/labstor_kernelsim.dir/access_api.cc.o.d"
  "CMakeFiles/labstor_kernelsim.dir/kernel_fs.cc.o"
  "CMakeFiles/labstor_kernelsim.dir/kernel_fs.cc.o.d"
  "liblabstor_kernelsim.a"
  "liblabstor_kernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
