# Empty dependencies file for labstor_kernelsim.
# This may be replaced when dependencies are built.
