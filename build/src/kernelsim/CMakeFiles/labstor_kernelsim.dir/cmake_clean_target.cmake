file(REMOVE_RECURSE
  "liblabstor_kernelsim.a"
)
