# Empty compiler generated dependencies file for labstor_simdev.
# This may be replaced when dependencies are built.
