
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdev/registry.cc" "src/simdev/CMakeFiles/labstor_simdev.dir/registry.cc.o" "gcc" "src/simdev/CMakeFiles/labstor_simdev.dir/registry.cc.o.d"
  "/root/repo/src/simdev/sim_device.cc" "src/simdev/CMakeFiles/labstor_simdev.dir/sim_device.cc.o" "gcc" "src/simdev/CMakeFiles/labstor_simdev.dir/sim_device.cc.o.d"
  "/root/repo/src/simdev/sparse_store.cc" "src/simdev/CMakeFiles/labstor_simdev.dir/sparse_store.cc.o" "gcc" "src/simdev/CMakeFiles/labstor_simdev.dir/sparse_store.cc.o.d"
  "/root/repo/src/simdev/timing_model.cc" "src/simdev/CMakeFiles/labstor_simdev.dir/timing_model.cc.o" "gcc" "src/simdev/CMakeFiles/labstor_simdev.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/labstor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/labstor_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
