file(REMOVE_RECURSE
  "liblabstor_simdev.a"
)
