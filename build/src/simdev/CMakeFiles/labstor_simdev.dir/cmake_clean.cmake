file(REMOVE_RECURSE
  "CMakeFiles/labstor_simdev.dir/registry.cc.o"
  "CMakeFiles/labstor_simdev.dir/registry.cc.o.d"
  "CMakeFiles/labstor_simdev.dir/sim_device.cc.o"
  "CMakeFiles/labstor_simdev.dir/sim_device.cc.o.d"
  "CMakeFiles/labstor_simdev.dir/sparse_store.cc.o"
  "CMakeFiles/labstor_simdev.dir/sparse_store.cc.o.d"
  "CMakeFiles/labstor_simdev.dir/timing_model.cc.o"
  "CMakeFiles/labstor_simdev.dir/timing_model.cc.o.d"
  "liblabstor_simdev.a"
  "liblabstor_simdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_simdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
