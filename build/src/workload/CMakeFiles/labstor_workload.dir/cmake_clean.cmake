file(REMOVE_RECURSE
  "CMakeFiles/labstor_workload.dir/filebench.cc.o"
  "CMakeFiles/labstor_workload.dir/filebench.cc.o.d"
  "CMakeFiles/labstor_workload.dir/fio.cc.o"
  "CMakeFiles/labstor_workload.dir/fio.cc.o.d"
  "CMakeFiles/labstor_workload.dir/fxmark.cc.o"
  "CMakeFiles/labstor_workload.dir/fxmark.cc.o.d"
  "CMakeFiles/labstor_workload.dir/labios.cc.o"
  "CMakeFiles/labstor_workload.dir/labios.cc.o.d"
  "CMakeFiles/labstor_workload.dir/vpic.cc.o"
  "CMakeFiles/labstor_workload.dir/vpic.cc.o.d"
  "liblabstor_workload.a"
  "liblabstor_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
