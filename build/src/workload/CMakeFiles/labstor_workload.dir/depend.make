# Empty dependencies file for labstor_workload.
# This may be replaced when dependencies are built.
