file(REMOVE_RECURSE
  "liblabstor_workload.a"
)
