# Empty dependencies file for labstorctl.
# This may be replaced when dependencies are built.
