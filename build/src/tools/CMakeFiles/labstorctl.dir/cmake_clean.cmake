file(REMOVE_RECURSE
  "CMakeFiles/labstorctl.dir/labstorctl.cc.o"
  "CMakeFiles/labstorctl.dir/labstorctl.cc.o.d"
  "labstorctl"
  "labstorctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstorctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
