file(REMOVE_RECURSE
  "CMakeFiles/labstor_core.dir/client.cc.o"
  "CMakeFiles/labstor_core.dir/client.cc.o.d"
  "CMakeFiles/labstor_core.dir/module_manager.cc.o"
  "CMakeFiles/labstor_core.dir/module_manager.cc.o.d"
  "CMakeFiles/labstor_core.dir/module_registry.cc.o"
  "CMakeFiles/labstor_core.dir/module_registry.cc.o.d"
  "CMakeFiles/labstor_core.dir/orchestrator.cc.o"
  "CMakeFiles/labstor_core.dir/orchestrator.cc.o.d"
  "CMakeFiles/labstor_core.dir/runtime.cc.o"
  "CMakeFiles/labstor_core.dir/runtime.cc.o.d"
  "CMakeFiles/labstor_core.dir/runtime_config.cc.o"
  "CMakeFiles/labstor_core.dir/runtime_config.cc.o.d"
  "CMakeFiles/labstor_core.dir/sim_runtime.cc.o"
  "CMakeFiles/labstor_core.dir/sim_runtime.cc.o.d"
  "CMakeFiles/labstor_core.dir/stack.cc.o"
  "CMakeFiles/labstor_core.dir/stack.cc.o.d"
  "liblabstor_core.a"
  "liblabstor_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
