file(REMOVE_RECURSE
  "liblabstor_core.a"
)
