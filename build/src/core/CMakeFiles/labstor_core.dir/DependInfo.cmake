
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/labstor_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/client.cc.o.d"
  "/root/repo/src/core/module_manager.cc" "src/core/CMakeFiles/labstor_core.dir/module_manager.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/module_manager.cc.o.d"
  "/root/repo/src/core/module_registry.cc" "src/core/CMakeFiles/labstor_core.dir/module_registry.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/module_registry.cc.o.d"
  "/root/repo/src/core/orchestrator.cc" "src/core/CMakeFiles/labstor_core.dir/orchestrator.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/orchestrator.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/labstor_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/runtime_config.cc" "src/core/CMakeFiles/labstor_core.dir/runtime_config.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/runtime_config.cc.o.d"
  "/root/repo/src/core/sim_runtime.cc" "src/core/CMakeFiles/labstor_core.dir/sim_runtime.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/sim_runtime.cc.o.d"
  "/root/repo/src/core/stack.cc" "src/core/CMakeFiles/labstor_core.dir/stack.cc.o" "gcc" "src/core/CMakeFiles/labstor_core.dir/stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/labstor_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/labstor_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/simdev/CMakeFiles/labstor_simdev.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/labstor_ipc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
