# Empty compiler generated dependencies file for labstor_core.
# This may be replaced when dependencies are built.
