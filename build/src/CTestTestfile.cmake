# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("simdev")
subdirs("kernelsim")
subdirs("ipc")
subdirs("core")
subdirs("labmods")
subdirs("workload")
subdirs("pfs")
subdirs("tools")
