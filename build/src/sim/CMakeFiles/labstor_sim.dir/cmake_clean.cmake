file(REMOVE_RECURSE
  "CMakeFiles/labstor_sim.dir/environment.cc.o"
  "CMakeFiles/labstor_sim.dir/environment.cc.o.d"
  "liblabstor_sim.a"
  "liblabstor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
