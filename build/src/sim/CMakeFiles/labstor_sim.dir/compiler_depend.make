# Empty compiler generated dependencies file for labstor_sim.
# This may be replaced when dependencies are built.
