file(REMOVE_RECURSE
  "liblabstor_sim.a"
)
