file(REMOVE_RECURSE
  "CMakeFiles/labstor_pfs.dir/mini_pfs.cc.o"
  "CMakeFiles/labstor_pfs.dir/mini_pfs.cc.o.d"
  "liblabstor_pfs.a"
  "liblabstor_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
