file(REMOVE_RECURSE
  "liblabstor_pfs.a"
)
