# Empty dependencies file for labstor_pfs.
# This may be replaced when dependencies are built.
