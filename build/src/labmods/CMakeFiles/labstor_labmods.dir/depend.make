# Empty dependencies file for labstor_labmods.
# This may be replaced when dependencies are built.
