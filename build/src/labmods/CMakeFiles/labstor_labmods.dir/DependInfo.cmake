
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labmods/adaptive_cache.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/adaptive_cache.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/adaptive_cache.cc.o.d"
  "/root/repo/src/labmods/block_allocator.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/block_allocator.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/block_allocator.cc.o.d"
  "/root/repo/src/labmods/compress.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/compress.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/compress.cc.o.d"
  "/root/repo/src/labmods/consistency.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/consistency.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/consistency.cc.o.d"
  "/root/repo/src/labmods/drivers.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/drivers.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/drivers.cc.o.d"
  "/root/repo/src/labmods/dummy.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/dummy.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/dummy.cc.o.d"
  "/root/repo/src/labmods/fslog.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/fslog.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/fslog.cc.o.d"
  "/root/repo/src/labmods/genericfs.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/genericfs.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/genericfs.cc.o.d"
  "/root/repo/src/labmods/generickvs.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/generickvs.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/generickvs.cc.o.d"
  "/root/repo/src/labmods/labfs.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/labfs.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/labfs.cc.o.d"
  "/root/repo/src/labmods/labkvs.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/labkvs.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/labkvs.cc.o.d"
  "/root/repo/src/labmods/lru_cache.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/lru_cache.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/lru_cache.cc.o.d"
  "/root/repo/src/labmods/lz77.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/lz77.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/lz77.cc.o.d"
  "/root/repo/src/labmods/permissions.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/permissions.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/permissions.cc.o.d"
  "/root/repo/src/labmods/schedulers.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/schedulers.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/schedulers.cc.o.d"
  "/root/repo/src/labmods/uring_driver.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/uring_driver.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/uring_driver.cc.o.d"
  "/root/repo/src/labmods/zns_driver.cc" "src/labmods/CMakeFiles/labstor_labmods.dir/zns_driver.cc.o" "gcc" "src/labmods/CMakeFiles/labstor_labmods.dir/zns_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
