# Empty compiler generated dependencies file for labstor_common.
# This may be replaced when dependencies are built.
