file(REMOVE_RECURSE
  "CMakeFiles/labstor_common.dir/histogram.cc.o"
  "CMakeFiles/labstor_common.dir/histogram.cc.o.d"
  "CMakeFiles/labstor_common.dir/logging.cc.o"
  "CMakeFiles/labstor_common.dir/logging.cc.o.d"
  "CMakeFiles/labstor_common.dir/string_util.cc.o"
  "CMakeFiles/labstor_common.dir/string_util.cc.o.d"
  "CMakeFiles/labstor_common.dir/uuid.cc.o"
  "CMakeFiles/labstor_common.dir/uuid.cc.o.d"
  "CMakeFiles/labstor_common.dir/yaml.cc.o"
  "CMakeFiles/labstor_common.dir/yaml.cc.o.d"
  "liblabstor_common.a"
  "liblabstor_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labstor_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
