file(REMOVE_RECURSE
  "liblabstor_common.a"
)
