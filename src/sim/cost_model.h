// Software-path cost tables for the simulated kernel and LabStor I/O
// paths, in virtual nanoseconds.
//
// Calibration: the constants below were chosen once so that the
// Fig. 4(a) anatomy bench reproduces the paper's component breakdown
// for a 4KB NVMe write (I/O ~2/3 of total; LRU cache ~17%; shared-
// memory IPC ~8.4%; NoOp scheduling ~5%; filesystem metadata ~3%;
// permission checks ~3%; driver ~1%), and are then HELD FIXED for
// every other experiment. The absolute magnitudes are in line with
// published measurements of Linux 5.x block-path overheads (a few µs
// of software per 4KB NVMe I/O) and SPDK-style polling paths (<1 µs).
#pragma once

#include "sim/environment.h"

namespace labstor::sim {

struct SoftwareCosts {
  // --- kernel crossing costs ---
  Time syscall = 600;             // entry/exit incl. mitigations
  Time context_switch = 2'000;    // schedule-out + schedule-in
  Time irq_completion = 2'500;    // IRQ + softirq + waiter wakeup

  // --- kernel I/O path ---
  Time vfs_lookup = 300;          // fd table + file ops dispatch
  Time block_layer = 2'000;       // blk-mq request alloc, tags, plug/merge
  Time bio_alloc = 600;           // bio + request structure setup
  Time dma_map = 400;             // scatter-gather mapping
  Time aio_queue_mgmt = 1'000;    // POSIX AIO user-level queue upkeep
  double copy_per_byte = 0.15;    // page-cache / bounce-buffer copy

  // --- LabStor path ---
  Time shm_submit = 1'250;        // enqueue + cross-core cacheline hop
  Time shm_complete = 1'250;      // completion poll observes the CQ entry
  Time worker_poll = 300;         // dequeue + dispatch inside a worker
  Time request_alloc = 200;       // request-object setup in shared memory
  Time completion_post = 3'500;   // worker-side CQE reap + routing + CQ post
  // Busy-poll budget a dedicated worker burns per request gap before
  // its idle backoff kicks in (the paper's configurable µs threshold).
  Time worker_spin_cap = 20'000;

  // --- LabMods (Fig. 4a components) ---
  Time fs_metadata = 900;         // block alloc + log append + inode map
  Time fs_create = 8'000;         // namespace ops: inode init + log record
                                  // build + hashmap insert (FxMark path)
  Time permission_check = 900;    // credential & ACL validation
  Time sched_noop = 1'500;        // key request to a hardware queue
  Time sched_blkswitch = 1'800;   // NoOp + per-queue load bookkeeping
  Time lru_cache_fixed = 4'000;   // page lookup/alloc/insert bookkeeping
  Time driver_submit = 300;       // doorbell + SQE write (kernel driver)
  Time spdk_submit = 250;         // user-mapped SQ doorbell, no kernel structs
  Time dax_store_setup = 150;     // address translation for load/store path

  // --- misc ---
  Time kvs_op = 700;              // LabKVS hash-table put/get bookkeeping
  Time pushdown_step = 250;       // chain interpreter per-step dispatch
  Time pushdown_register = 900;   // chain decode + validate + install
  Time compress_per_byte_x10 = 6; // 0.6 ns/byte (~1.6 GB/s zlib-class)

  Time CopyCost(uint64_t bytes) const {
    return static_cast<Time>(copy_per_byte * static_cast<double>(bytes));
  }
  Time CompressCost(uint64_t bytes) const {
    return compress_per_byte_x10 * bytes / 10;
  }
};

// The default table used by every bench.
inline const SoftwareCosts& DefaultCosts() {
  static const SoftwareCosts costs;
  return costs;
}

// Inter-node network cost model for the multi-node cluster
// (src/cluster): a message pays a fixed RPC software overhead on the
// sender, one-way propagation latency, and serialized per-receiver-NIC
// bandwidth. Magnitudes are 10GbE-class, matching the PfsConfig
// interconnect the mini-PFS has always used (20 us RTT, ~0.1 ns/B).
struct NetworkCosts {
  Time rpc_overhead = 2 * kUs;   // serialize + dispatch on the sender
  Time link_latency = 10 * kUs;  // one-way propagation + NIC traversal
  double ns_per_byte = 0.1;      // ~10 GbE serialized per receiver NIC
  // Fixed on-wire size of a request/forward header (routing metadata:
  // label key, shard-map generation, hop count).
  uint64_t header_bytes = 256;

  Time WireCost(uint64_t payload_bytes) const {
    return link_latency +
           static_cast<Time>(ns_per_byte *
                             static_cast<double>(header_bytes + payload_bytes));
  }
};

inline const NetworkCosts& DefaultNetworkCosts() {
  static const NetworkCosts costs;
  return costs;
}

// Intra-node NUMA cost model (DESIGN.md §13): touching a queue or
// scratch segment homed on a different socket pays interconnect
// traversals (UPI/QPI-class) the local case does not. Magnitudes match
// published cross-socket DRAM penalties (~100-140 ns extra per access,
// a few tenths of a ns per byte of cross-node streaming); the hot-path
// charge is per queue visit, not per cacheline, so the hop constant
// bundles the handful of request-structure lines a drain touches.
struct NumaCosts {
  Time remote_hop = 400;          // per remote-segment queue visit
  double remote_ns_per_byte = 0.03;  // cross-node payload streaming

  Time RemoteAccess(uint64_t payload_bytes) const {
    return remote_hop + static_cast<Time>(remote_ns_per_byte *
                                          static_cast<double>(payload_bytes));
  }
};

inline const NumaCosts& DefaultNumaCosts() {
  static const NumaCosts costs;
  return costs;
}

}  // namespace labstor::sim
