// Coroutine task type for the discrete-event simulator.
//
// sim::Task<T> is a lazily-started coroutine. Awaiting a Task runs it
// to completion (in virtual time) and yields its value; spawning it on
// an Environment runs it concurrently with other processes. Final
// suspension uses symmetric transfer to resume the awaiting coroutine
// without growing the stack.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace labstor::sim {

template <typename T>
class Task;

namespace internal {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      std::coroutine_handle<> cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase<T> {
    T value{};
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting starts the task and suspends until it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;  // symmetric transfer: start the child
      }
      T await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
        return std::move(handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

  // Used by Environment::Spawn.
  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }
  std::coroutine_handle<promise_type> handle() const { return handle_; }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }
  std::coroutine_handle<promise_type> handle() const { return handle_; }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace labstor::sim
