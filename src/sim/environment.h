// Discrete-event simulation environment.
//
// Virtual time is nanoseconds in a uint64_t. Processes are sim::Task
// coroutines spawned onto the Environment; they advance time only by
// awaiting Delay / Resource / Event awaitables. Event ordering is
// deterministic: ties in time break by insertion sequence (FIFO).
//
// Why a DES: the paper's evaluation measures multi-core scaling,
// queueing, and head-of-line blocking on a 24-core testbed. This repo
// reproduces those *shapes* by running the library's real policy code
// (orchestrator, schedulers, allocators) under simulated cores and
// devices — the only substitute available on a single-core host, and a
// deterministic one.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "sim/task.h"

namespace labstor::sim {

using Time = uint64_t;  // virtual nanoseconds

inline constexpr Time kUs = 1000;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;

class Environment {
 public:
  Environment() = default;
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
  ~Environment();

  Time now() const { return now_; }

  // Takes ownership of the coroutine and schedules its first resume at
  // the current virtual time.
  void Spawn(Task<void> task);

  // Runs until the event queue is empty. Returns the final time.
  Time Run();
  // Runs until the queue is empty or virtual time would pass
  // `deadline`; events at exactly `deadline` still execute.
  Time RunUntil(Time deadline);

  // Executes exactly one pending event (the earliest; FIFO on ties)
  // and returns true, or returns false without side effects when the
  // queue is empty or the next event lies beyond `deadline`. External
  // controllers — the DST harness — use this to step the simulation
  // one scheduling decision at a time; Run/RunUntil are loops over it.
  // Does not reap finished root coroutines: callers stepping manually
  // should finish with RunUntil/Run (or destroy the environment) so
  // root errors still surface.
  bool StepOne(Time deadline = ~Time{0});

  // Resume `h` at absolute virtual time `when` (>= now).
  void ScheduleAt(Time when, std::coroutine_handle<> h);

  // --- awaitables ---

  // co_await env.Delay(ns): advance this process by `ns`.
  auto Delay(Time ns) {
    struct Awaiter {
      Environment* env;
      Time ns;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        env->ScheduleAt(env->now_ + ns, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, ns};
  }

  // co_await env.Yield(): reschedule at the current time, behind every
  // event already queued for it (a cooperative scheduling point).
  auto Yield() { return Delay(0); }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct ScheduledEvent {
    Time when;
    uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const ScheduledEvent& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void ReapFinishedRoots();

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                      std::greater<>>
      queue_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
};

// Broadcast event: processes wait; Trigger wakes all current waiters
// at the current virtual time. Re-armable.
class Event {
 public:
  explicit Event(Environment& env) : env_(env) {}

  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        event->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Trigger() {
    for (const auto h : waiters_) env_.ScheduleAt(env_.now(), h);
    waiters_.clear();
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  Environment& env_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Counting resource with FIFO admission (a simulated CPU core, lock,
// or device channel). Acquire suspends when no tokens are free; Release
// hands the token to the oldest waiter.
class Resource {
 public:
  Resource(Environment& env, uint64_t tokens)
      : env_(env), free_(tokens), capacity_(tokens) {}

  auto Acquire() {
    struct Awaiter {
      Resource* res;
      bool await_ready() const noexcept {
        if (res->free_ > 0 && res->waiters_.empty()) {
          --res->free_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void Release() {
    if (!waiters_.empty()) {
      // Transfer the token directly: free_ stays unchanged.
      const auto h = waiters_.front();
      waiters_.pop_front();
      env_.ScheduleAt(env_.now(), h);
      return;
    }
    ++free_;
  }

  uint64_t free() const { return free_; }
  uint64_t capacity() const { return capacity_; }
  size_t queue_length() const { return waiters_.size(); }
  bool busy() const { return free_ == 0; }

 private:
  Environment& env_;
  uint64_t free_;
  uint64_t capacity_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII guard for Resource in coroutines:
//   auto lock = co_await ScopedAcquire(res);  // via Make()
// Kept explicit (Acquire/Release pairs) in most code because guard
// lifetimes across co_await points are easy to get wrong; provided for
// straight-line critical sections.
class ResourceGuard {
 public:
  explicit ResourceGuard(Resource& res) : res_(&res) {}
  ResourceGuard(ResourceGuard&& other) noexcept
      : res_(std::exchange(other.res_, nullptr)) {}
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ResourceGuard& operator=(ResourceGuard&&) = delete;
  ~ResourceGuard() {
    if (res_ != nullptr) res_->Release();
  }

 private:
  Resource* res_;
};

// Completion counter: Join() suspends until Arrive() has been called
// `expected` times. The standard way for a bench driver to wait for a
// fleet of spawned client processes.
class Barrier {
 public:
  Barrier(Environment& env, uint64_t expected)
      : event_(env), expected_(expected) {}

  void Arrive() {
    ++arrived_;
    if (arrived_ >= expected_) event_.Trigger();
  }

  Task<void> Join() {
    if (arrived_ < expected_) co_await event_.Wait();
  }

  uint64_t arrived() const { return arrived_; }

 private:
  Event event_;
  uint64_t expected_;
  uint64_t arrived_ = 0;
};

}  // namespace labstor::sim
