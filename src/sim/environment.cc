#include "sim/environment.h"

#include <cassert>

namespace labstor::sim {

Environment::~Environment() {
  // Destroy any unfinished root coroutines (e.g. RunUntil stopped
  // early). Handles for finished roots are destroyed here too.
  for (const auto h : roots_) {
    if (h) h.destroy();
  }
}

void Environment::Spawn(Task<void> task) {
  const auto h = task.release();
  assert(h && "cannot spawn an empty task");
  roots_.push_back(h);
  ScheduleAt(now_, h);
}

void Environment::ScheduleAt(Time when, std::coroutine_handle<> h) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(ScheduledEvent{when, next_seq_++, h});
}

Time Environment::Run() { return RunUntil(~Time{0}); }

Time Environment::RunUntil(Time deadline) {
  while (StepOne(deadline)) {
  }
  ReapFinishedRoots();
  return now_;
}

bool Environment::StepOne(Time deadline) {
  if (queue_.empty()) return false;
  const ScheduledEvent ev = queue_.top();
  if (ev.when > deadline) return false;
  queue_.pop();
  now_ = ev.when;
  ev.handle.resume();
  return true;
}

void Environment::ReapFinishedRoots() {
  std::exception_ptr first_error;
  size_t kept = 0;
  for (const auto h : roots_) {
    if (h.done()) {
      if (h.promise().error && !first_error) {
        first_error = h.promise().error;
      }
      h.destroy();
    } else {
      roots_[kept++] = h;
    }
  }
  roots_.resize(kept);
  // Surface errors from root processes: a crashed simulation must not
  // silently report partial results.
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace labstor::sim
