#include "ipc/numa.h"

#include <algorithm>

namespace labstor::ipc {

NumaSegmentAllocator::NumaSegmentAllocator(ShMemManager& shm,
                                           NumaTopology topo,
                                           size_t per_node_budget)
    : shm_(shm),
      topo_(topo),
      per_node_budget_(per_node_budget),
      node_used_(std::max<uint32_t>(topo.nodes, 1), 0) {}

Result<ShMemSegment*> NumaSegmentAllocator::CreateForCore(
    const Credentials& owner, uint32_t core, size_t size) {
  return CreateOnNode(owner, topo_.NodeOfCore(core), size);
}

Result<ShMemSegment*> NumaSegmentAllocator::CreateOnNode(
    const Credentials& owner, uint32_t node, size_t size) {
  uint32_t chosen = 0;
  bool remote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t preferred = node % node_used_.size();
    if (node_used_[preferred] + size <= per_node_budget_) {
      chosen = preferred;
    } else {
      // Preferred node exhausted: spill to the least-loaded other node
      // rather than failing — remote traffic beats no traffic, and the
      // spill count tells the operator the budget is wrong.
      size_t best = per_node_budget_ + 1;
      bool found = false;
      for (uint32_t n = 0; n < node_used_.size(); ++n) {
        if (n == preferred) continue;
        if (node_used_[n] + size <= per_node_budget_ &&
            node_used_[n] < best) {
          best = node_used_[n];
          chosen = n;
          found = true;
        }
      }
      if (!found) {
        stats_.failed_allocs.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "no NUMA node can fit a " + std::to_string(size) +
            "-byte segment (per-node budget " +
            std::to_string(per_node_budget_) + ")");
      }
      remote = true;
    }
    node_used_[chosen] += size;
  }
  auto result = shm_.CreateSegment(owner, size, chosen);
  if (!result.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    node_used_[chosen] -= size;
    return result;
  }
  if (remote) {
    stats_.remote_allocs.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.local_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

size_t NumaSegmentAllocator::node_used_bytes(uint32_t node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node >= node_used_.size()) return 0;
  return node_used_[node];
}

}  // namespace labstor::ipc
