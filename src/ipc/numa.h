// Simulated NUMA topology and NUMA-aware shared-memory placement
// (DESIGN.md §13).
//
// The 256-virtual-core runtime spreads workers across sockets; a
// worker draining a submission queue whose segment lives on another
// socket pays interconnect hops the local case does not
// (sim::NumaCosts). This header supplies the two pieces the rest of
// the stack builds on:
//
//   * NumaTopology — core → node mapping for the simulated machine
//     (uniform nodes of cores_per_node cores, the shape of the
//     testbed's dual-socket hosts scaled up);
//   * NumaSegmentAllocator — places queue/scratch segments on the node
//     of the core that will touch them, within per-node capacity
//     budgets; when the preferred node is exhausted it falls back to
//     the least-loaded remote node and counts the spill, so telemetry
//     shows exactly how much traffic became remote instead of failing
//     the allocation.
//
// Steady-state queries (NodeOfCore, stats, per-node usage) allocate
// nothing: all bookkeeping is sized at construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ipc/shmem.h"

namespace labstor::ipc {

struct NumaTopology {
  uint32_t nodes = 1;
  // Cores per node; 0 means "everything on node 0" (NUMA-oblivious).
  uint32_t cores_per_node = 0;

  uint32_t NodeOfCore(uint32_t core) const {
    if (nodes <= 1 || cores_per_node == 0) return 0;
    return (core / cores_per_node) % nodes;
  }
  bool SameNode(uint32_t core_a, uint32_t core_b) const {
    return NodeOfCore(core_a) == NodeOfCore(core_b);
  }

  // The dual-socket testbed shape scaled to `total_cores` (e.g. the
  // 256-virtual-core runtime → 2 nodes x 128 cores).
  static NumaTopology DualSocket(uint32_t total_cores) {
    NumaTopology t;
    t.nodes = 2;
    t.cores_per_node = total_cores >= 2 ? total_cores / 2 : 1;
    return t;
  }
};

class NumaSegmentAllocator {
 public:
  struct Stats {
    std::atomic<uint64_t> local_allocs{0};
    std::atomic<uint64_t> remote_allocs{0};   // preferred node full, spilled
    std::atomic<uint64_t> failed_allocs{0};   // every node full
  };

  // `per_node_budget` caps the bytes of segment backing each node
  // donates (the simulated per-socket DRAM reserved for queues).
  NumaSegmentAllocator(ShMemManager& shm, NumaTopology topo,
                       size_t per_node_budget);

  // Place a segment for the given core: preferred node first, then the
  // least-loaded other node (counted as a remote spill), else
  // ResourceExhausted.
  Result<ShMemSegment*> CreateForCore(const Credentials& owner, uint32_t core,
                                      size_t size);
  Result<ShMemSegment*> CreateOnNode(const Credentials& owner, uint32_t node,
                                     size_t size);

  const NumaTopology& topology() const { return topo_; }
  const Stats& stats() const { return stats_; }
  size_t node_used_bytes(uint32_t node) const;
  size_t per_node_budget() const { return per_node_budget_; }

 private:
  ShMemManager& shm_;
  NumaTopology topo_;
  size_t per_node_budget_;
  mutable std::mutex mu_;
  std::vector<size_t> node_used_;  // sized at construction, never grows
  Stats stats_;
};

}  // namespace labstor::ipc
