// Process credentials, as passed over the (simulated) UNIX domain
// socket when a client connects to the Runtime. The single-address-
// space simulation still enforces the paper's access rules: shared
// memory segments and LabStacks check these credentials on every
// privileged operation.
#pragma once

#include <cstdint>

namespace labstor::ipc {

using ProcessId = uint32_t;
using UserId = uint32_t;

struct Credentials {
  ProcessId pid = 0;
  UserId uid = 0;
  UserId gid = 0;

  bool operator==(const Credentials&) const = default;
  bool IsRoot() const { return uid == 0; }
};

inline constexpr Credentials kRuntimeCreds{1, 0, 0};

}  // namespace labstor::ipc
