// Simulated shared memory with credential-gated mapping — the stand-in
// for the paper's ShMemMod (vmalloc + remap_pfn_range in the LabStor
// kernel module).
//
// A segment is created by the Runtime and mapped into client
// "processes" only after an explicit grant, enforcing the paper's rule
// that even processes of the same user cannot see each other's queues
// unless the Runtime allows it. In this single-address-space
// reproduction the MMU boundary is virtual: Map() returns the real
// pointer, but only after the same checks a page-table mapping would
// gate.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "ipc/credentials.h"

namespace labstor::ipc {

using SegmentId = uint64_t;

class ShMemSegment {
 public:
  ShMemSegment(SegmentId id, size_t size, Credentials owner,
               uint32_t numa_node = 0)
      : id_(id), size_(size), owner_(owner), numa_node_(numa_node),
        arena_(size) {}

  SegmentId id() const { return id_; }
  size_t size() const { return size_; }
  const Credentials& owner() const { return owner_; }
  // NUMA node this segment's backing pages live on (the simulated
  // topology's node index; 0 when placement is not NUMA-aware).
  uint32_t numa_node() const { return numa_node_; }

  // Bump allocation inside the segment. Returns nullptr when the
  // segment budget is exhausted (segments are fixed-size regions).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (arena_.allocated_bytes() + bytes > size_) return nullptr;
    return arena_.Allocate(bytes, align);
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    if (p == nullptr) return nullptr;
    return new (p) T(std::forward<Args>(args)...);
  }

  size_t allocated_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arena_.allocated_bytes();
  }

  // Crash-consistent checkpoint of the segment (DST harness). Restore
  // rolls every byte — and the allocation cursor — back to the
  // checkpointed instant; objects allocated in between evaporate,
  // exactly as they would across a machine crash.
  Arena::Snapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return arena_.TakeSnapshot();
  }
  Status Restore(const Arena::Snapshot& snap) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!arena_.RestoreSnapshot(snap)) {
      return Status::InvalidArgument(
          "snapshot does not match segment chunk layout");
    }
    return Status::Ok();
  }

 private:
  SegmentId id_;
  size_t size_;
  Credentials owner_;
  uint32_t numa_node_;
  mutable std::mutex mu_;
  Arena arena_;
};

class ShMemManager {
 public:
  // Creates a segment owned by `owner` (normally the Runtime) with its
  // backing pages on `numa_node` (NUMA-oblivious callers pass nothing
  // and land on node 0, preserving the pre-NUMA behavior).
  Result<ShMemSegment*> CreateSegment(const Credentials& owner, size_t size,
                                      uint32_t numa_node = 0);

  // Grant/revoke mapping rights for a pid. Only the owner (or root)
  // may change grants.
  Status Grant(SegmentId id, const Credentials& actor, ProcessId grantee);
  Status Revoke(SegmentId id, const Credentials& actor, ProcessId grantee);

  // Map the segment into `creds`' address space. Owner and grantees
  // only; everyone else gets PERMISSION_DENIED.
  Result<ShMemSegment*> Map(SegmentId id, const Credentials& creds);

  Status Destroy(SegmentId id, const Credentials& actor);

  size_t segment_count() const;

 private:
  struct Entry {
    std::unique_ptr<ShMemSegment> segment;
    std::unordered_set<ProcessId> grants;
  };

  mutable std::mutex mu_;
  SegmentId next_id_ = 1;
  std::unordered_map<SegmentId, Entry> segments_;
};

}  // namespace labstor::ipc
