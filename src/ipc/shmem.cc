#include "ipc/shmem.h"

namespace labstor::ipc {

Result<ShMemSegment*> ShMemManager::CreateSegment(const Credentials& owner,
                                                  size_t size,
                                                  uint32_t numa_node) {
  if (size == 0) return Status::InvalidArgument("segment size must be > 0");
  std::lock_guard<std::mutex> lock(mu_);
  const SegmentId id = next_id_++;
  Entry entry;
  entry.segment = std::make_unique<ShMemSegment>(id, size, owner, numa_node);
  ShMemSegment* raw = entry.segment.get();
  segments_.emplace(id, std::move(entry));
  return raw;
}

Status ShMemManager::Grant(SegmentId id, const Credentials& actor,
                           ProcessId grantee) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.segment->owner().pid != actor.pid && !actor.IsRoot()) {
    return Status::PermissionDenied("only the segment owner may grant");
  }
  it->second.grants.insert(grantee);
  return Status::Ok();
}

Status ShMemManager::Revoke(SegmentId id, const Credentials& actor,
                            ProcessId grantee) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.segment->owner().pid != actor.pid && !actor.IsRoot()) {
    return Status::PermissionDenied("only the segment owner may revoke");
  }
  it->second.grants.erase(grantee);
  return Status::Ok();
}

Result<ShMemSegment*> ShMemManager::Map(SegmentId id,
                                        const Credentials& creds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  Entry& entry = it->second;
  if (entry.segment->owner().pid != creds.pid &&
      !entry.grants.contains(creds.pid)) {
    return Status::PermissionDenied("pid " + std::to_string(creds.pid) +
                                    " has no grant for segment " +
                                    std::to_string(id));
  }
  return entry.segment.get();
}

Status ShMemManager::Destroy(SegmentId id, const Credentials& actor) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.segment->owner().pid != actor.pid && !actor.IsRoot()) {
    return Status::PermissionDenied("only the segment owner may destroy");
  }
  segments_.erase(it);
  return Status::Ok();
}

size_t ShMemManager::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

}  // namespace labstor::ipc
