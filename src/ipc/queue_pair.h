// Queue Pairs: the IPC Manager's communication primitive.
//
// Properties from the paper (III-C1):
//   * primary queues carry client-initiated requests and live in
//     shared memory; intermediate queues carry requests spawned by
//     other requests and live in (Runtime-) private memory;
//   * ordered queues must be drained by a single worker in sequence;
//     unordered queues may be drained by many workers;
//   * primary queues carry the UPDATE_PENDING / UPDATE_ACKED flags the
//     centralized live-upgrade protocol uses to quiesce traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/ring_buffer.h"
#include "faultinject/faultinject.h"
#include "ipc/credentials.h"
#include "ipc/request.h"

namespace labstor::ipc {

enum class QueueKind : uint8_t { kPrimary, kIntermediate };

class QueuePair {
 public:
  QueuePair(uint32_t id, QueueKind kind, bool ordered, size_t depth_pow2,
            Credentials owner)
      : id_(id),
        kind_(kind),
        ordered_(ordered),
        owner_(owner),
        sq_(depth_pow2),
        cq_(depth_pow2) {}

  uint32_t id() const { return id_; }
  QueueKind kind() const { return kind_; }
  bool ordered() const { return ordered_; }
  const Credentials& owner() const { return owner_; }

  // --- submission side ---
  bool Submit(Request* req) {
    if (update_pending()) {  // quiesced for upgrade
      refused_while_paused_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Injected overflow presents exactly like a full ring: the caller
    // must apply its backpressure/backoff path.
    if (faultinject::FaultInjector* fi = faultinject::Active();
        fi != nullptr && fi->Evaluate("ipc.qp.overflow").has_value()) {
      return false;
    }
    return sq_.TryPush(req);
  }
  std::optional<Request*> PollSubmission() { return sq_.TryPop(); }
  // Drain up to `max` pending submissions in one visit (one ring CAS
  // for the whole run) — the worker-side batch-drain primitive.
  size_t PollSubmissionBatch(Request** out, size_t max) {
    return sq_.TryPopBatch(out, max);
  }
  size_t PendingSubmissions() const { return sq_.SizeApprox(); }

  // --- completion side ---
  bool Complete(Request* req) { return cq_.TryPush(req); }
  // Publish a batch of completions; returns how many the ring
  // accepted (the caller surfaces the shortfall as dropped).
  size_t CompleteBatch(Request** reqs, size_t n) {
    return cq_.TryPushBatch(reqs, n);
  }
  std::optional<Request*> PollCompletion() { return cq_.TryPop(); }

  // --- live upgrade protocol flags ---
  // Mark/Clear count state *transitions* (normal -> paused and back),
  // not calls: re-marking an already-paused queue is idempotent. The
  // lifecycle invariants lean on that pairing — after any upgrade
  // completes, pauses() == clears() on every queue, or a quiesce sweep
  // leaked a pause.
  void MarkUpdatePending() {
    const uint32_t prev = update_state_.exchange(1, std::memory_order_acq_rel);
    if (prev == 0) pauses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AckUpdate() {
    uint32_t expected = 1;
    update_state_.compare_exchange_strong(expected, 2,
                                          std::memory_order_acq_rel);
  }
  void ClearUpdate() {
    const uint32_t prev = update_state_.exchange(0, std::memory_order_acq_rel);
    if (prev != 0) clears_.fetch_add(1, std::memory_order_relaxed);
  }
  bool update_pending() const {
    return update_state_.load(std::memory_order_acquire) != 0;
  }
  bool update_acked() const {
    return update_state_.load(std::memory_order_acquire) == 2;
  }

  // --- pause observability (lifecycle invariants / tests) ---
  uint64_t pauses() const { return pauses_.load(std::memory_order_relaxed); }
  uint64_t clears() const { return clears_.load(std::memory_order_relaxed); }
  // Submissions turned away at the UPDATE_PENDING barrier. Strictly
  // monotonic evidence that no request was admitted past a quiesce.
  uint64_t refused_while_paused() const {
    return refused_while_paused_.load(std::memory_order_relaxed);
  }

  // Bookkeeping the Work Orchestrator reads during rebalance.
  std::atomic<uint64_t> total_submitted{0};
  std::atomic<uint64_t> total_completed{0};
  // Max EstProcessingTime (ns) among mods reachable from this queue;
  // maintained by the runtime when stacks are (re)assigned.
  std::atomic<uint64_t> est_processing_ns{0};

  // Fold a measured per-request service time into est_processing_ns
  // (EWMA, alpha = 1/8). Two workers draining the same unordered queue
  // must not interleave load/store and lose an update, hence the CAS —
  // but bounded: with many concurrent drainers an unbounded loop can
  // livelock (every attempt loses to a sibling), and the estimate is a
  // heuristic that tolerates one superseded sample far better than a
  // stuck worker. After kEwmaCasAttempts failed rounds the fold is
  // published with a plain relaxed store computed from the freshest
  // observed value.
  void UpdateEstProcessing(uint64_t sample_ns) {
    uint64_t prev = est_processing_ns.load(std::memory_order_relaxed);
    for (int attempt = 0; attempt < kEwmaCasAttempts; ++attempt) {
      const uint64_t next = FoldEwma(prev, sample_ns);
      if (est_processing_ns.compare_exchange_weak(prev, next,
                                                  std::memory_order_relaxed)) {
        return;
      }
      // compare_exchange reloaded `prev`; refold against it.
    }
    est_processing_ns.store(FoldEwma(prev, sample_ns),
                            std::memory_order_relaxed);
  }

  // EWMA step, overflow-safe: the old (prev * 7 + sample) / 8 wrapped
  // uint64 for estimates past ~2.6e18 ns and silently corrupted the
  // orchestrator's load signal; prev - prev/8 + sample/8 never exceeds
  // max(prev, sample). Clamped to ≥ 1 so a decayed estimate cannot
  // re-enter the prev == 0 bootstrap branch.
  static uint64_t FoldEwma(uint64_t prev, uint64_t sample) {
    if (prev == 0) return sample;
    const uint64_t next = prev - prev / 8 + sample / 8;
    return next == 0 ? 1 : next;
  }
  static constexpr int kEwmaCasAttempts = 8;

 private:
  uint32_t id_;
  QueueKind kind_;
  bool ordered_;
  Credentials owner_;
  MpmcRing<Request*> sq_;
  MpmcRing<Request*> cq_;
  std::atomic<uint32_t> update_state_{0};  // 0=normal 1=pending 2=acked
  std::atomic<uint64_t> pauses_{0};
  std::atomic<uint64_t> clears_{0};
  std::atomic<uint64_t> refused_while_paused_{0};
};

}  // namespace labstor::ipc
