// The request/completion wire format placed in shared-memory queues.
//
// A Request is allocated inside a ShMemSegment by the client-side
// connector, filled in, and its pointer pushed onto a submission ring.
// Workers process it (possibly forwarding derived requests through
// intermediate queues) and finally store the result fields and flip
// `state` to kDone, which the polling client observes.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "common/status.h"

namespace labstor::ipc {

// Operations span the interfaces the paper's LabMods expose: POSIX
// file ops (GenericFS), KVS ops (GenericKVS), block ops (drivers), and
// control ops (upgrades, dummy messages).
enum class OpCode : uint16_t {
  kNop = 0,
  // --- POSIX file interface ---
  kOpen,
  kCreate,
  kClose,
  kRead,
  kWrite,
  kFsync,
  kStat,
  kUnlink,
  kRename,
  kMkdir,
  kReaddir,
  kTruncate,
  // --- KVS interface ---
  kPut,
  kGet,
  kDelete,
  kExists,
  // --- block interface ---
  kBlkRead,
  kBlkWrite,
  kBlkFlush,
  // --- zoned-namespace interface (ZNS driver LabMods) ---
  kZoneAppend,  // write at the zone's write pointer; offset returned
  kZoneReset,   // rewind a zone's write pointer
  kZoneOpen,    // explicitly open a zone (claims an open-zone slot)
  kZoneClose,   // open -> closed; releases the open-zone slot
  kZoneFinish,  // seal a zone: wp jumps to end, state becomes full
  // --- pushdown op chains (DESIGN.md §12) ---
  kChainRegister,  // payload carries an encoded ChainProgram
  kChainExec,      // run the registered chain named by Request::chain_id
  // --- journal transaction markers (chain crash atomicity) ---
  kTxnBegin,  // append an open-txn marker to the metadata log
  kTxnCommit,  // append the matching commit marker
  // --- control ---
  kUpgrade,
  kDummy,
};

std::string_view OpCodeName(OpCode op);

enum class RequestState : uint32_t {
  kPending = 0,
  kInFlight = 1,
  kDone = 2,
};

// Open flags (subset of POSIX semantics LabFS honors).
inline constexpr uint16_t kOpenCreate = 1u << 0;
inline constexpr uint16_t kOpenTrunc = 1u << 1;
inline constexpr uint16_t kOpenAppend = 1u << 2;
inline constexpr uint16_t kOpenRdOnly = 1u << 3;

struct Request {
  static constexpr size_t kPathCapacity = 200;

  uint64_t id = 0;
  uint32_t stack_id = 0;
  uint32_t client_pid = 0;
  uint32_t client_uid = 0;
  OpCode op = OpCode::kNop;
  uint16_t flags = 0;
  int32_t fd = -1;
  uint64_t offset = 0;
  uint64_t length = 0;
  // Hardware queue chosen by the I/O scheduler mod; consumed by the
  // driver mod.
  uint32_t channel = 0;
  // Worker executing this request (feeds LabFS's per-worker block
  // allocator). Set by the runtime worker / sync-mode dispatcher.
  uint32_t worker = 0;
  // Submission timestamp on the runtime's telemetry epoch clock
  // (0 = not stamped). The draining worker turns it into queue-wait
  // metrics and "queue" trace spans.
  uint64_t submit_ns = 0;

  // Pushdown chain descriptor (DESIGN.md §12): a kChainExec request
  // names the registered chain to run; the pushdown mod advances
  // chain_step as it executes, so on completion it reports how many
  // steps ran (and a mid-chain resume knows where to pick up).
  uint32_t chain_id = 0;
  uint16_t chain_step = 0;

  // Payload lives in the same shared segment; the queue moves only the
  // Request pointer (the zero-copy property the paper relies on).
  uint8_t* data = nullptr;

  char path[kPathCapacity] = {};  // path (FS) or key (KVS)

  // --- completion fields (written by the worker) ---
  std::atomic<RequestState> state{RequestState::kPending};
  StatusCode result = StatusCode::kOk;
  uint64_t result_u64 = 0;  // bytes moved / fd / value length

  void SetPath(std::string_view p) {
    const size_t n = p.size() < kPathCapacity - 1 ? p.size() : kPathCapacity - 1;
    std::memcpy(path, p.data(), n);
    path[n] = '\0';
  }
  std::string_view GetPath() const { return {path}; }

  std::span<uint8_t> Payload() { return {data, length}; }
  std::span<const uint8_t> Payload() const { return {data, length}; }

  // Reset for reuse (client connectors recycle request slots between
  // synchronous calls instead of exhausting the shared segment).
  void Reuse() {
    op = OpCode::kNop;
    flags = 0;
    fd = -1;
    offset = 0;
    length = 0;
    channel = 0;
    worker = 0;
    // Stale stamps from the previous occupant would otherwise surface
    // as wildly inflated queue-wait metrics when the next submission
    // is unstamped (telemetry off, or the sync path).
    submit_ns = 0;
    // A completed chain leaves its descriptor on the slot (completion
    // framing: chain_step = steps executed). A recycled slot must not
    // carry that cursor into the next submission — a fresh kChainExec
    // built on a stale slot would otherwise resume mid-chain and skip
    // the previous chain's prefix.
    chain_id = 0;
    chain_step = 0;
    path[0] = '\0';
    result = StatusCode::kOk;
    result_u64 = 0;
    state.store(RequestState::kPending, std::memory_order_release);
  }

  void Complete(StatusCode code, uint64_t value = 0) {
    result = code;
    result_u64 = value;
    state.store(RequestState::kDone, std::memory_order_release);
  }
  bool IsDone() const {
    return state.load(std::memory_order_acquire) == RequestState::kDone;
  }
  Status ToStatus() const {
    if (result == StatusCode::kOk) return Status::Ok();
    return Status(result, std::string(OpCodeName(op)) + " failed");
  }
};

inline std::string_view OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kNop: return "nop";
    case OpCode::kOpen: return "open";
    case OpCode::kCreate: return "create";
    case OpCode::kClose: return "close";
    case OpCode::kRead: return "read";
    case OpCode::kWrite: return "write";
    case OpCode::kFsync: return "fsync";
    case OpCode::kStat: return "stat";
    case OpCode::kUnlink: return "unlink";
    case OpCode::kRename: return "rename";
    case OpCode::kMkdir: return "mkdir";
    case OpCode::kReaddir: return "readdir";
    case OpCode::kTruncate: return "truncate";
    case OpCode::kPut: return "put";
    case OpCode::kGet: return "get";
    case OpCode::kDelete: return "delete";
    case OpCode::kExists: return "exists";
    case OpCode::kBlkRead: return "blk_read";
    case OpCode::kBlkWrite: return "blk_write";
    case OpCode::kBlkFlush: return "blk_flush";
    case OpCode::kZoneAppend: return "zone_append";
    case OpCode::kZoneReset: return "zone_reset";
    case OpCode::kZoneOpen: return "zone_open";
    case OpCode::kZoneClose: return "zone_close";
    case OpCode::kZoneFinish: return "zone_finish";
    case OpCode::kChainRegister: return "chain_register";
    case OpCode::kChainExec: return "chain_exec";
    case OpCode::kTxnBegin: return "txn_begin";
    case OpCode::kTxnCommit: return "txn_commit";
    case OpCode::kUpgrade: return "upgrade";
    case OpCode::kDummy: return "dummy";
  }
  return "?";
}

}  // namespace labstor::ipc
