// Pushdown op chains: the restricted, data-dependent resubmission DSL
// (DESIGN.md §12) that clients register with the pushdown LabMod so a
// dependent I/O sequence (pointer chase / B-tree descent, scan+filter,
// compound read-modify-write) executes entirely at the device-queue
// layer — one client↔worker round trip instead of one per hop.
//
// The DSL is deliberately tiny and sandboxed:
//   * straight-line programs only (no branches backward, no loops —
//     the step array is executed front to back, and the single control
//     primitive, kFilter, can only STOP the chain early);
//   * a hard step cap (kMaxChainSteps) and a per-chain scratch byte
//     budget (byte_budget ≤ kMaxChainScratch) validated at
//     registration;
//   * steps address only the chain's private scratch buffer; every
//     scratch access is bounds-checked against byte_budget.
//
// Interpreter registers (held by the pushdown mod per execution):
//   key     — current KVS key; seeded from the request path.
//   cursor  — current device byte offset; seeded from request.offset.
//   scratch — byte buffer of byte_budget bytes; kGet/kReadAt fill it,
//             deref/filter/modify steps read it, kPut/kWriteAt drain
//             it. Its live length is tracked as scratch_len.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace labstor::ipc {

enum class ChainStepKind : uint8_t {
  kInvalid = 0,
  // KVS get of the key register into scratch (scratch_len = value
  // size). If the step's inline key is non-empty it replaces the key
  // register first.
  kGet,
  // key register = NUL-terminated string at scratch[a, a+b).
  kDerefKey,
  // Block read of b bytes at device offset cursor + a into scratch.
  kReadAt,
  // cursor = little-endian u64 at scratch[a].
  kDerefOffset,
  // Stop the chain early (success, no further steps) unless the u64 at
  // scratch[a] >= b. The scan+filter / bounded-descent primitive.
  kFilter,
  // u64 at scratch[a] += b (wrapping). The "modify" of RMW.
  kModify,
  // KVS put of scratch[0, scratch_len) under the key register (or the
  // step's inline key). Journaled downstream; the pushdown mod brackets
  // chains containing puts in a txn so recovery is all-or-nothing.
  kPut,
  // Block write of scratch[0, b) at device offset cursor + a.
  kWriteAt,
};

std::string_view ChainStepKindName(ChainStepKind kind);

inline constexpr size_t kMaxChainSteps = 16;
inline constexpr uint64_t kMaxChainScratch = 16 * 1024;
inline constexpr size_t kChainKeyCapacity = 64;

struct ChainStep {
  ChainStepKind kind = ChainStepKind::kInvalid;
  uint8_t reserved[7] = {};
  uint64_t a = 0;  // scratch offset / cursor delta (kind-dependent)
  uint64_t b = 0;  // length / immediate operand (kind-dependent)
  char key[kChainKeyCapacity] = {};  // optional inline key (kGet/kPut)

  void SetKey(std::string_view k) {
    const size_t n =
        k.size() < kChainKeyCapacity - 1 ? k.size() : kChainKeyCapacity - 1;
    std::memcpy(key, k.data(), n);
    key[n] = '\0';
  }
  std::string_view GetKey() const { return {key}; }
};
static_assert(sizeof(ChainStep) == 88, "fixed-size wire step");

struct ChainProgram {
  static constexpr uint32_t kMagic = 0x43484E50;  // "PNHC"

  uint32_t magic = kMagic;
  uint32_t id = 0;           // client-chosen, non-zero
  uint32_t num_steps = 0;
  uint32_t reserved = 0;
  uint64_t byte_budget = 4096;  // scratch bytes the chain may touch
  ChainStep steps[kMaxChainSteps] = {};

  // Does any step mutate durable state (and therefore need the txn
  // bracket for crash atomicity)?
  bool Mutates() const {
    for (uint32_t i = 0; i < num_steps && i < kMaxChainSteps; ++i) {
      if (steps[i].kind == ChainStepKind::kPut ||
          steps[i].kind == ChainStepKind::kWriteAt) {
        return true;
      }
    }
    return false;
  }

  // Sandbox validation: step cap, byte budget, and per-step bounds so
  // the interpreter never touches scratch out of range. Programs are
  // straight-line by construction (no jump step exists), which is the
  // no-unbounded-loops guarantee.
  Status Validate() const {
    if (magic != kMagic) return Status::InvalidArgument("bad chain magic");
    if (id == 0) return Status::InvalidArgument("chain id must be non-zero");
    if (num_steps == 0 || num_steps > kMaxChainSteps) {
      return Status::InvalidArgument("chain must have 1.." +
                                     std::to_string(kMaxChainSteps) +
                                     " steps");
    }
    if (byte_budget == 0 || byte_budget > kMaxChainScratch) {
      return Status::InvalidArgument("chain byte budget must be 1.." +
                                     std::to_string(kMaxChainScratch));
    }
    for (uint32_t i = 0; i < num_steps; ++i) {
      const ChainStep& s = steps[i];
      switch (s.kind) {
        case ChainStepKind::kGet:
        case ChainStepKind::kPut:
          break;
        case ChainStepKind::kDerefKey:
          if (s.b == 0 || s.b >= kChainKeyCapacity || s.a + s.b > byte_budget) {
            return Status::InvalidArgument("deref_key out of bounds at step " +
                                           std::to_string(i));
          }
          break;
        case ChainStepKind::kReadAt:
        case ChainStepKind::kWriteAt:
          if (s.b == 0 || s.b > byte_budget) {
            return Status::InvalidArgument("block step exceeds byte budget "
                                           "at step " + std::to_string(i));
          }
          break;
        case ChainStepKind::kDerefOffset:
        case ChainStepKind::kFilter:
        case ChainStepKind::kModify:
          if (s.a + 8 > byte_budget) {
            return Status::InvalidArgument("u64 access out of bounds at "
                                           "step " + std::to_string(i));
          }
          break;
        case ChainStepKind::kInvalid:
          return Status::InvalidArgument("invalid step kind at step " +
                                         std::to_string(i));
      }
    }
    return Status::Ok();
  }
};
static_assert(sizeof(ChainProgram) ==
                  24 + kMaxChainSteps * sizeof(ChainStep),
              "fixed-size registration frame");

// --- submission framing -------------------------------------------------
//
// Registration ships the ChainProgram as the payload of a
// kChainRegister request; execution is a kChainExec request carrying
// chain_id (+ optional resume cursor chain_step), the start key in
// `path`, the start cursor in `offset`, and a client buffer that
// receives the final scratch contents. Completion framing: result_u64
// = bytes of scratch copied back, chain_step = steps executed.

inline size_t EncodedChainBytes() { return sizeof(ChainProgram); }

inline void EncodeChainProgram(const ChainProgram& program, uint8_t* out) {
  std::memcpy(out, &program, sizeof(ChainProgram));
}

inline Result<ChainProgram> DecodeChainProgram(const uint8_t* data,
                                               size_t length) {
  if (data == nullptr || length < sizeof(ChainProgram)) {
    return Status::InvalidArgument("chain registration payload too short");
  }
  ChainProgram program;
  std::memcpy(&program, data, sizeof(ChainProgram));
  LABSTOR_RETURN_IF_ERROR(program.Validate());
  return program;
}

// --- canonical chain builders -------------------------------------------
//
// The shapes the connectors (GenericKVS/GenericFS) expose: each hop of
// a pointer chase reads a value whose first bytes name the next key; a
// lookup chain ends on a plain get; an RMW chain is get → modify →
// put. key_bytes is how many leading value bytes hold the next key.

inline ChainProgram BuildPointerChaseChain(uint32_t id, uint32_t depth,
                                           uint64_t key_bytes,
                                           uint64_t byte_budget = 4096) {
  ChainProgram program;
  program.id = id;
  program.byte_budget = byte_budget;
  uint32_t n = 0;
  for (uint32_t hop = 0; hop < depth && n + 2 <= kMaxChainSteps; ++hop) {
    program.steps[n].kind = ChainStepKind::kGet;
    ++n;
    if (hop + 1 < depth) {
      program.steps[n].kind = ChainStepKind::kDerefKey;
      program.steps[n].a = 0;
      program.steps[n].b = key_bytes;
      ++n;
    }
  }
  program.num_steps = n;
  return program;
}

inline ChainProgram BuildRmwChain(uint32_t id, uint64_t field_offset,
                                  uint64_t delta,
                                  uint64_t byte_budget = 4096) {
  ChainProgram program;
  program.id = id;
  program.byte_budget = byte_budget;
  program.steps[0].kind = ChainStepKind::kGet;
  program.steps[1].kind = ChainStepKind::kModify;
  program.steps[1].a = field_offset;
  program.steps[1].b = delta;
  program.steps[2].kind = ChainStepKind::kPut;
  program.num_steps = 3;
  return program;
}

inline std::string_view ChainStepKindName(ChainStepKind kind) {
  switch (kind) {
    case ChainStepKind::kInvalid: return "invalid";
    case ChainStepKind::kGet: return "get";
    case ChainStepKind::kDerefKey: return "deref_key";
    case ChainStepKind::kReadAt: return "read_at";
    case ChainStepKind::kDerefOffset: return "deref_offset";
    case ChainStepKind::kFilter: return "filter";
    case ChainStepKind::kModify: return "modify";
    case ChainStepKind::kPut: return "put";
    case ChainStepKind::kWriteAt: return "write_at";
  }
  return "?";
}

}  // namespace labstor::ipc
