// IPC Manager: connection handshake, queue-pair allocation, and
// runtime-liveness signaling (the hook crash recovery builds on).
//
// Clients "connect over a UNIX domain socket" (a direct call here,
// carrying Credentials), receive a shared-memory segment plus a
// primary queue pair, and submit requests by writing them into the
// segment and pushing pointers onto the ring.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ipc/credentials.h"
#include "ipc/queue_pair.h"
#include "ipc/shmem.h"

namespace labstor::ipc {

struct ClientChannel {
  Credentials creds;
  ShMemSegment* segment = nullptr;  // request/payload allocation
  QueuePair* qp = nullptr;          // primary queue pair

  // Allocates a request plus payload buffer inside the segment.
  Request* NewRequest(uint64_t payload_bytes = 0) {
    Request* req = segment->New<Request>();
    if (req == nullptr) return nullptr;
    req->client_pid = creds.pid;
    if (payload_bytes > 0) {
      req->data = static_cast<uint8_t*>(
          segment->Allocate(payload_bytes, alignof(std::max_align_t)));
      if (req->data == nullptr) return nullptr;
    }
    return req;
  }
};

class IpcManager {
 public:
  struct Options {
    size_t segment_bytes = 16 << 20;
    size_t queue_depth = 1024;  // power of two
    bool ordered_queues = true;
    // Upper bound on how long Wait() polls an undrained request while
    // the runtime claims to be online. Guards against wedging forever
    // behind a dead worker: on expiry Wait reports kTimeout and the
    // client library's retry policy takes over. Zero disables.
    std::chrono::milliseconds request_timeout{30000};
  };

  IpcManager() : IpcManager(Options()) {}
  explicit IpcManager(Options options) : options_(options) {}

  // Handshake: verifies the runtime is online, creates (or reuses) the
  // per-client segment + primary queue, grants segment access.
  Result<ClientChannel> Connect(const Credentials& creds);
  // Drops the client's queue assignment (fork/execve re-connect path).
  Status Disconnect(const Credentials& creds);

  // Intermediate queues live runtime-side.
  QueuePair* CreateIntermediateQueue(bool ordered);

  // Snapshots, not references: Connect/Disconnect mutate these vectors
  // from client threads while the admin rebalancer (and a dying
  // worker's rebalance) iterate them. Both callers are cold paths —
  // the worker loop reads the published AssignmentTable instead.
  std::vector<QueuePair*> PrimaryQueues() const {
    std::lock_guard<std::mutex> lock(mu_);
    return primary_;
  }
  std::vector<QueuePair*> IntermediateQueues() const {
    std::lock_guard<std::mutex> lock(mu_);
    return intermediate_;
  }
  QueuePair* FindQueue(uint32_t qid) const;

  // --- centralized-quiesce barrier (live upgrades) ---
  // The Module Manager's mark/clear sweeps used to iterate a primary-
  // queue snapshot taken outside mu_, racing Connect(): a queue
  // registered between the sweeps was never marked (it admitted
  // traffic through the quiesce) and, if it appeared only in the clear
  // snapshot, its flags were consistent by luck alone. Begin/EndQuiesce
  // run both sweeps under mu_ and latch the manager: while the barrier
  // is up, Connect() marks new queues at birth, and EndQuiesce clears
  // from a *fresh* snapshot so queues born mid-quiesce reopen too.
  // Reentrant (depth-counted) so batched upgrades nest one barrier.
  void BeginQuiesce();
  void EndQuiesce();
  bool quiescing() const;
  // Primary queues currently UPDATE_PENDING/ACKED (the decentralized
  // protocol's "at most one paused after the swap barrier" assertion).
  size_t PausedPrimaryCount() const;

  ShMemManager& shmem() { return shmem_; }

  // --- runtime liveness (crash recovery) ---
  bool online() const { return online_.load(std::memory_order_acquire); }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  void MarkOnline() {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    online_.store(true, std::memory_order_release);
  }
  void MarkOffline() { online_.store(false, std::memory_order_release); }

  // Client-side completion wait: polls the request; if the runtime
  // goes offline, waits (up to `offline_grace`) for an administrator
  // restart, then reports kUnavailable so the client library can run
  // StateRepair. Independently, an online-but-undrained request is
  // bounded by Options::request_timeout and reports kTimeout (the
  // request may have been lost with a dead worker). Real-time, for
  // real-mode use only.
  Status Wait(Request* req,
              std::chrono::milliseconds offline_grace =
                  std::chrono::milliseconds(2000)) const;

  // Number of Wait() calls that have started polling. Crash/restart
  // tests use this as a deterministic handshake — "the client is now
  // inside Wait" — instead of sleeping and hoping.
  uint64_t wait_entries() const {
    return wait_entries_.load(std::memory_order_acquire);
  }

 private:
  Options options_;
  ShMemManager shmem_;
  mutable std::mutex mu_;
  uint32_t next_qid_ = 1;
  size_t quiesce_depth_ = 0;  // guarded by mu_
  std::vector<std::unique_ptr<QueuePair>> queues_;
  std::vector<QueuePair*> primary_;
  std::vector<QueuePair*> intermediate_;
  std::unordered_map<ProcessId, ClientChannel> channels_;
  std::atomic<bool> online_{true};
  std::atomic<uint64_t> epoch_{1};
  mutable std::atomic<uint64_t> wait_entries_{0};
};

}  // namespace labstor::ipc
