#include "ipc/ipc_manager.h"

#include <thread>

#include "faultinject/faultinject.h"

namespace labstor::ipc {

Result<ClientChannel> IpcManager::Connect(const Credentials& creds) {
  if (!online()) {
    return Status::Unavailable("runtime is offline");
  }
  // Models shmget/mmap failure during the handshake: the client gets
  // a clean error and may simply retry Connect().
  LABSTOR_FAULTPOINT("ipc.connect.shmem");
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = channels_.find(creds.pid); it != channels_.end()) {
    return it->second;
  }
  auto segment = shmem_.CreateSegment(kRuntimeCreds, options_.segment_bytes);
  if (!segment.ok()) return segment.status();
  LABSTOR_RETURN_IF_ERROR(
      shmem_.Grant((*segment)->id(), kRuntimeCreds, creds.pid));

  auto qp = std::make_unique<QueuePair>(next_qid_++, QueueKind::kPrimary,
                                        options_.ordered_queues,
                                        options_.queue_depth, creds);
  QueuePair* raw = qp.get();
  // Born paused while an upgrade quiesce is in progress: the client
  // may connect, but nothing it submits is admitted until EndQuiesce
  // reopens every primary (fresh snapshot — this queue included).
  if (quiesce_depth_ > 0) raw->MarkUpdatePending();
  queues_.push_back(std::move(qp));
  primary_.push_back(raw);

  ClientChannel channel{creds, *segment, raw};
  channels_.emplace(creds.pid, channel);
  return channel;
}

Status IpcManager::Disconnect(const Credentials& creds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(creds.pid);
  if (it == channels_.end()) return Status::NotFound("client not connected");
  // The queue pair stays allocated (outstanding pointers may exist)
  // but is removed from the primary set so workers stop polling it.
  QueuePair* qp = it->second.qp;
  std::erase(primary_, qp);
  channels_.erase(it);
  return Status::Ok();
}

QueuePair* IpcManager::CreateIntermediateQueue(bool ordered) {
  std::lock_guard<std::mutex> lock(mu_);
  auto qp = std::make_unique<QueuePair>(next_qid_++, QueueKind::kIntermediate,
                                        ordered, options_.queue_depth,
                                        kRuntimeCreds);
  QueuePair* raw = qp.get();
  queues_.push_back(std::move(qp));
  intermediate_.push_back(raw);
  return raw;
}

void IpcManager::BeginQuiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  ++quiesce_depth_;
  for (QueuePair* qp : primary_) qp->MarkUpdatePending();
}

void IpcManager::EndQuiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  if (quiesce_depth_ == 0) return;
  if (--quiesce_depth_ > 0) return;
  // Fresh snapshot under the same lock Connect() takes: queues that
  // registered (born paused) after BeginQuiesce reopen here too.
  for (QueuePair* qp : primary_) qp->ClearUpdate();
}

bool IpcManager::quiescing() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quiesce_depth_ > 0;
}

size_t IpcManager::PausedPrimaryCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t paused = 0;
  for (QueuePair* qp : primary_) {
    if (qp->update_pending()) ++paused;
  }
  return paused;
}

QueuePair* IpcManager::FindQueue(uint32_t qid) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& qp : queues_) {
    if (qp->id() == qid) return qp.get();
  }
  return nullptr;
}

Status IpcManager::Wait(Request* req,
                        std::chrono::milliseconds offline_grace) const {
  wait_entries_.fetch_add(1, std::memory_order_acq_rel);
  const auto unset = std::chrono::steady_clock::time_point::max();
  auto offline_deadline = unset;
  // Overall bound while online: a crashed worker can lose a dequeued
  // request without the runtime ever going offline, so an unbounded
  // poll would wedge the client forever.
  const auto request_deadline =
      options_.request_timeout.count() > 0
          ? std::chrono::steady_clock::now() + options_.request_timeout
          : unset;
  while (!req->IsDone()) {
    const auto now = std::chrono::steady_clock::now();
    if (!online()) {
      if (offline_deadline == unset) {
        offline_deadline = now + offline_grace;
      } else if (now >= offline_deadline) {
        return Status::Unavailable(
            "runtime offline and not restarted within grace period");
      }
    } else {
      offline_deadline = unset;
      if (now >= request_deadline) {
        return Status::Timeout("request not completed within " +
                               std::to_string(options_.request_timeout.count()) +
                               "ms (worker lost it?)");
      }
    }
    std::this_thread::yield();
  }
  return req->ToStatus();
}

}  // namespace labstor::ipc
