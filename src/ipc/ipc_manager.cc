#include "ipc/ipc_manager.h"

#include <thread>

namespace labstor::ipc {

Result<ClientChannel> IpcManager::Connect(const Credentials& creds) {
  if (!online()) {
    return Status::Unavailable("runtime is offline");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = channels_.find(creds.pid); it != channels_.end()) {
    return it->second;
  }
  auto segment = shmem_.CreateSegment(kRuntimeCreds, options_.segment_bytes);
  if (!segment.ok()) return segment.status();
  LABSTOR_RETURN_IF_ERROR(
      shmem_.Grant((*segment)->id(), kRuntimeCreds, creds.pid));

  auto qp = std::make_unique<QueuePair>(next_qid_++, QueueKind::kPrimary,
                                        options_.ordered_queues,
                                        options_.queue_depth, creds);
  QueuePair* raw = qp.get();
  queues_.push_back(std::move(qp));
  primary_.push_back(raw);

  ClientChannel channel{creds, *segment, raw};
  channels_.emplace(creds.pid, channel);
  return channel;
}

Status IpcManager::Disconnect(const Credentials& creds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = channels_.find(creds.pid);
  if (it == channels_.end()) return Status::NotFound("client not connected");
  // The queue pair stays allocated (outstanding pointers may exist)
  // but is removed from the primary set so workers stop polling it.
  QueuePair* qp = it->second.qp;
  std::erase(primary_, qp);
  channels_.erase(it);
  return Status::Ok();
}

QueuePair* IpcManager::CreateIntermediateQueue(bool ordered) {
  std::lock_guard<std::mutex> lock(mu_);
  auto qp = std::make_unique<QueuePair>(next_qid_++, QueueKind::kIntermediate,
                                        ordered, options_.queue_depth,
                                        kRuntimeCreds);
  QueuePair* raw = qp.get();
  queues_.push_back(std::move(qp));
  intermediate_.push_back(raw);
  return raw;
}

QueuePair* IpcManager::FindQueue(uint32_t qid) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& qp : queues_) {
    if (qp->id() == qid) return qp.get();
  }
  return nullptr;
}

Status IpcManager::Wait(Request* req,
                        std::chrono::milliseconds offline_grace) const {
  const auto offline_deadline_unset =
      std::chrono::steady_clock::time_point::max();
  auto offline_deadline = offline_deadline_unset;
  while (!req->IsDone()) {
    if (!online()) {
      const auto now = std::chrono::steady_clock::now();
      if (offline_deadline == offline_deadline_unset) {
        offline_deadline = now + offline_grace;
      } else if (now >= offline_deadline) {
        return Status::Unavailable(
            "runtime offline and not restarted within grace period");
      }
    } else {
      offline_deadline = offline_deadline_unset;
    }
    std::this_thread::yield();
  }
  return req->ToStatus();
}

}  // namespace labstor::ipc
