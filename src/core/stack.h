// LabStacks: user-defined DAGs of LabMods (paper §III-B).
//
// A stack is defined by a YAML spec with a mount point, governing
// rules, and a DAG of vertices (mod name, instance UUID, init params,
// outputs). Mounting instantiates missing mods in the Module Registry,
// validates compatibility, and inducts the stack into the namespace.
// Stacks can be modified live (modify_stack) and their mods hot-
// swapped (the Module Manager's upgrade path).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/yaml.h"
#include "core/labmod.h"
#include "core/module_registry.h"
#include "ipc/credentials.h"

namespace labstor::core {

enum class ExecMode : uint8_t {
  kAsync,  // requests flow through Runtime workers (secure, default)
  kSync,   // DAG executes inline in the client thread (decentralized)
};

struct StackRules {
  ExecMode exec_mode = ExecMode::kAsync;
  int priority = 0;
  std::vector<std::string> admins;  // users allowed to modify the stack
  bool permissions_required = true;
};

struct StackVertexSpec {
  std::string mod_name;
  std::string uuid;  // human-readable instance UUID
  uint32_t version = 0;  // 0 = latest installed
  yaml::NodePtr params;
  std::vector<std::string> outputs;  // UUIDs of downstream vertices
};

struct StackSpec {
  std::string mount;
  StackRules rules;
  std::vector<StackVertexSpec> dag;

  static Result<StackSpec> FromYaml(const yaml::NodePtr& root);
  static Result<StackSpec> Parse(std::string_view text);
  static Result<StackSpec> ParseFile(const std::string& path);
};

// A mounted stack. Vertices cache resolved LabMod pointers; after an
// upgrade the namespace refreshes them from the registry.
struct Stack {
  uint32_t id = 0;
  StackSpec spec;
  struct Vertex {
    std::string uuid;
    LabMod* mod = nullptr;
    std::vector<size_t> outputs;
  };
  std::vector<Vertex> vertices;
  size_t root = 0;

  // Fused call chain (DESIGN.md §11): when the stack is sync-mode, its
  // DAG is one linear chain, and every mod is SyncCapable, the chain
  // is flattened at build time into execution order so StackExec
  // dispatches by index increment — no per-vertex DAG walk, no call-
  // stack bookkeeping, zero inter-layer queueing on the inline path.
  // fused[i].mod mirrors vertices[fused[i].vertex].mod and is rebuilt
  // by every Mount / Modify / RefreshBindings under the namespace
  // lock, i.e. re-fused (or refused) under the upgrade quiesce; empty
  // means the stack refused fusion and executes the general DAG walk.
  struct FusedEntry {
    LabMod* mod = nullptr;
    size_t vertex = 0;
  };
  std::vector<FusedEntry> fused;
  bool is_fused() const { return !fused.empty(); }

  ExecMode exec_mode() const { return spec.rules.exec_mode; }
};

class StackNamespace {
 public:
  struct Options {
    size_t max_stack_length = 16;
    // Master switch for stack fusion (A/B comparisons and the DST
    // fused-vs-unfused identity property keep both paths honest).
    bool enable_fusion = true;
  };

  StackNamespace() : StackNamespace(Options()) {}
  explicit StackNamespace(Options options) : options_(options) {}

  // Validation without side effects (also used by mount).
  Status Validate(const StackSpec& spec) const;

  // mount_stack: instantiate mods, validate, induct.
  Result<Stack*> Mount(const StackSpec& spec, ModuleRegistry& registry,
                       ModContext& ctx, const ipc::Credentials& actor);

  Status Unmount(const std::string& mount, const ipc::Credentials& actor);

  // modify_stack: replace the DAG of a mounted stack with the updated
  // spec's DAG (vertex insert/remove by diff). Admin-gated.
  Status Modify(const StackSpec& updated, ModuleRegistry& registry,
                ModContext& ctx, const ipc::Credentials& actor);

  // GenericFS-style resolution: longest-prefix match of `path` among
  // mount points ("fs::/b/hi.txt" resolves to the stack at "fs::/b").
  Result<Stack*> Resolve(const std::string& path) const;
  Result<Stack*> FindByMount(const std::string& mount) const;
  Result<Stack*> FindById(uint32_t id) const;

  // Re-resolve all vertex mod pointers (after upgrades). Also
  // re-fuses every stack: the fused chains' raw mod pointers would
  // otherwise dangle on the instances the upgrade just retired. The
  // Module Manager calls this while traffic is quiesced, which is
  // what makes mutating chains in place safe.
  Status RefreshBindings(const ModuleRegistry& registry);

  // Toggle fusion at runtime: re-fuses (or un-fuses) every mounted
  // stack under the namespace lock and bumps the epoch so cached
  // Stack pointers revalidate. Benches A/B the inline path with this.
  void set_enable_fusion(bool enabled);
  bool fusion_enabled() const;

  std::vector<std::string> Mounts() const;
  size_t size() const;

  // Mutation epoch: advanced by every Mount / Unmount / Modify /
  // RefreshBindings. Lock-free readers (the workers' per-thread
  // stack_id → Stack* caches) revalidate against this instead of
  // taking mu_ per request; a changed epoch invalidates every cached
  // pointer, including ones Modify just dangled. Epoch values are
  // drawn from a process-global counter, so no two namespace
  // instances (e.g. sequential Runtimes in one test binary) can ever
  // present the same epoch to a thread-local cache.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Stable reference to the epoch cell for ModContext::ns_epoch — mods
  // that gate state changes on namespace generations (pushdown chain
  // re-registration) read it without holding the namespace lock.
  const std::atomic<uint64_t>& epoch_ref() const { return epoch_; }

 private:
  Status CheckAdmin(const Stack& stack, const ipc::Credentials& actor) const;
  Result<std::unique_ptr<Stack>> Build(const StackSpec& spec,
                                       ModuleRegistry& registry,
                                       ModContext& ctx) const;
  // (Re)derive stack.fused from the current vertex bindings; clears it
  // when the stack is not fusion-eligible. Caller holds mu_ (or owns
  // the stack exclusively, as Build does).
  void Fuse(Stack& stack) const;

  static uint64_t NextEpoch() {
    static std::atomic<uint64_t> global{1};
    return global.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpEpoch() { epoch_.store(NextEpoch(), std::memory_order_release); }

  Options options_;
  mutable std::mutex mu_;
  std::atomic<uint64_t> epoch_{NextEpoch()};
  uint32_t next_id_ = 1;
  std::unordered_map<std::string, std::unique_ptr<Stack>> stacks_;  // by mount
};

// Compatibility matrix: may a mod of type `from` forward to `to`?
bool CanForward(ModType from, ModType to);

}  // namespace labstor::core
