#include "core/module_registry.h"

#include <algorithm>
#include <utility>

#include "faultinject/faultinject.h"

namespace labstor::core {

ModFactory& ModFactory::Global() {
  static ModFactory factory;
  return factory;
}

Status ModFactory::Register(const std::string& name, uint32_t version,
                            ModMaker maker) {
  if (version == 0) return Status::InvalidArgument("version must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  auto& versions = makers_[name];
  if (versions.contains(version)) {
    return Status::AlreadyExists(name + " v" + std::to_string(version) +
                                 " already registered");
  }
  versions.emplace(version, std::move(maker));
  return Status::Ok();
}

bool ModFactory::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return makers_.contains(name);
}

Result<uint32_t> ModFactory::LatestVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = makers_.find(name);
  if (it == makers_.end() || it->second.empty()) {
    return Status::NotFound("no LabMod named '" + name + "'");
  }
  return it->second.rbegin()->first;
}

Result<std::unique_ptr<LabMod>> ModFactory::Create(const std::string& name,
                                                   uint32_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = makers_.find(name);
  if (it == makers_.end() || it->second.empty()) {
    return Status::NotFound("no LabMod named '" + name + "'");
  }
  const ModMaker* maker = nullptr;
  if (version == 0) {
    maker = &it->second.rbegin()->second;
  } else {
    const auto vit = it->second.find(version);
    if (vit == it->second.end()) {
      return Status::NotFound(name + " has no version " +
                              std::to_string(version));
    }
    maker = &vit->second;
  }
  return (*maker)();
}

std::vector<std::string> ModFactory::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(makers_.size());
  for (const auto& [name, _] : makers_) names.push_back(name);
  return names;
}

namespace {

// Ordered whole-registry lock for cross-shard operations. Always
// ascending shard index, so concurrent all-shard holders cannot
// deadlock (single-shard paths take exactly one of these locks).
class AllShardsLock {
 public:
  template <typename Shards>
  explicit AllShardsLock(Shards& shards) {
    locks_.reserve(shards.size());
    for (auto& shard : shards) {
      locks_.emplace_back(shard.mu);
    }
  }

 private:
  std::vector<std::unique_lock<std::mutex>> locks_;
};

}  // namespace

Result<LabMod*> ModuleRegistry::Instantiate(const std::string& mod_name,
                                            const std::string& instance_uuid,
                                            const yaml::NodePtr& params,
                                            ModContext& ctx,
                                            uint32_t version) {
  Shard& shard = ShardFor(instance_uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.instances.find(instance_uuid);
      it != shard.instances.end()) {
    if (it->second.mod->mod_name() != mod_name) {
      return Status::AlreadyExists("instance '" + instance_uuid +
                                   "' already bound to mod '" +
                                   it->second.mod->mod_name() + "'");
    }
    return it->second.mod.get();
  }
  auto created = factory_->Create(mod_name, version);
  if (!created.ok()) return created.status();
  std::unique_ptr<LabMod> mod = std::move(created).value();
  mod->Bind(instance_uuid);
  LABSTOR_RETURN_IF_ERROR(mod->Init(params, ctx));
  LabMod* raw = mod.get();
  shard.instances.emplace(instance_uuid, Entry{std::move(mod), params});
  return raw;
}

Result<LabMod*> ModuleRegistry::Find(const std::string& instance_uuid) const {
  const Shard& shard = ShardFor(instance_uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.instances.find(instance_uuid);
  if (it == shard.instances.end()) {
    return Status::NotFound("no instance '" + instance_uuid + "'");
  }
  return it->second.mod.get();
}

bool ModuleRegistry::Has(const std::string& instance_uuid) const {
  const Shard& shard = ShardFor(instance_uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.instances.contains(instance_uuid);
}

Result<std::unique_ptr<LabMod>> ModuleRegistry::StageLocked(
    const std::string& uuid, const Entry& entry, uint32_t version,
    ModContext& ctx) {
  LABSTOR_ASSIGN_OR_RETURN(fresh,
                           factory_->Create(entry.mod->mod_name(), version));
  fresh->Bind(uuid);
  LABSTOR_RETURN_IF_ERROR(fresh->Init(entry.params, ctx));
  // StateUpdate failure mid-batch is the classic mixed-version hazard
  // UpgradeAll exists to close; this site lets the regression test
  // fail instance N of M deterministically.
  LABSTOR_FAULTPOINT("core.upgrade.stage");
  LABSTOR_RETURN_IF_ERROR(fresh->StateUpdate(*entry.mod));
  return std::move(fresh);
}

Status ModuleRegistry::Upgrade(const std::string& instance_uuid,
                               uint32_t new_version, ModContext& ctx,
                               bool* was_noop) {
  if (was_noop != nullptr) *was_noop = false;
  Shard& shard = ShardFor(instance_uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.instances.find(instance_uuid);
  if (it == shard.instances.end()) {
    return Status::NotFound("no instance '" + instance_uuid + "'");
  }
  const LabMod& old = *it->second.mod;
  uint32_t version = new_version;
  if (version == 0) {
    LABSTOR_ASSIGN_OR_RETURN(latest, factory_->LatestVersion(old.mod_name()));
    version = latest;
  }
  if (version < old.version()) {
    return Status::FailedPrecondition(
        "downgrade to v" + std::to_string(version) + " from running v" +
        std::to_string(old.version()) + " refused");
  }
  if (version == old.version()) {
    // Same-version "upgrade": the running instance already executes
    // this code object. Succeed without the Create/Init/StateUpdate
    // churn (Table I reloads the same dummy module hundreds of times).
    if (was_noop != nullptr) *was_noop = true;
    return Status::Ok();
  }
  LABSTOR_ASSIGN_OR_RETURN(fresh,
                           StageLocked(instance_uuid, it->second, version, ctx));
  it->second.mod = std::move(fresh);
  return Status::Ok();
}

Result<ModuleRegistry::UpgradeAllResult> ModuleRegistry::UpgradeAll(
    const std::string& mod_name, uint32_t new_version, ModContext& ctx) {
  AllShardsLock lock(shards_);
  uint32_t version = new_version;
  if (version == 0) {
    LABSTOR_ASSIGN_OR_RETURN(latest, factory_->LatestVersion(mod_name));
    version = latest;
  }
  // Sorted instance list: staging order (and therefore which instance
  // a mid-batch failure lands on) must not depend on hash/shard layout
  // — the DST replays byte-identically across runs.
  std::vector<std::pair<std::string, Entry*>> targets;
  for (auto& shard : shards_) {
    for (auto& [uuid, entry] : shard.instances) {
      if (entry.mod->mod_name() == mod_name) targets.emplace_back(uuid, &entry);
    }
  }
  if (targets.empty()) {
    return Status::NotFound("no running instances of '" + mod_name + "'");
  }
  std::sort(targets.begin(), targets.end());

  UpgradeAllResult result;
  std::vector<std::pair<Entry*, std::unique_ptr<LabMod>>> staged;
  for (auto& [uuid, entry] : targets) {
    const uint32_t running = entry->mod->version();
    if (version < running) {
      return Status::FailedPrecondition(
          "downgrade to v" + std::to_string(version) + " from running v" +
          std::to_string(running) + " ('" + uuid + "') refused");
    }
    if (version == running) {
      ++result.noops;
      continue;
    }
    auto fresh = StageLocked(uuid, *entry, version, ctx);
    // Any failure: the staged instances die with this scope and every
    // entry keeps its old version — all-or-nothing.
    if (!fresh.ok()) return fresh.status();
    staged.emplace_back(entry, std::move(fresh).value());
  }
  for (auto& [entry, fresh] : staged) entry->mod = std::move(fresh);
  result.swapped = staged.size();
  return result;
}

Result<yaml::NodePtr> ModuleRegistry::ParamsOf(
    const std::string& instance_uuid) const {
  const Shard& shard = ShardFor(instance_uuid);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.instances.find(instance_uuid);
  if (it == shard.instances.end()) {
    return Status::NotFound("no instance '" + instance_uuid + "'");
  }
  return it->second.params;
}

std::vector<std::string> ModuleRegistry::InstancesOf(
    const std::string& mod_name) const {
  AllShardsLock lock(shards_);
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    for (const auto& [uuid, entry] : shard.instances) {
      if (entry.mod->mod_name() == mod_name) out.push_back(uuid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> ModuleRegistry::AllInstances() const {
  AllShardsLock lock(shards_);
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    for (const auto& [uuid, _] : shard.instances) out.push_back(uuid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status ModuleRegistry::RepairAll() {
  AllShardsLock lock(shards_);
  // Deterministic sweep order (see UpgradeAll): which instance a
  // partial-repair fault lands on must not depend on shard layout.
  std::vector<std::pair<std::string, Entry*>> targets;
  for (auto& shard : shards_) {
    for (auto& [uuid, entry] : shard.instances) {
      targets.emplace_back(uuid, &entry);
    }
  }
  std::sort(targets.begin(), targets.end());
  for (auto& [uuid, entry] : targets) {
    // Partial-repair injection: a failure here leaves some mods
    // repaired and some not. That is safe because StateRepair is
    // clear-and-rebuild (idempotent), and Runtime::EnsureRepaired only
    // advances the repaired epoch on full success — the client's next
    // attempt re-runs the whole sweep and converges.
    LABSTOR_FAULTPOINT("core.repair.partial");
    LABSTOR_RETURN_IF_ERROR(entry->mod->StateRepair());
  }
  return Status::Ok();
}

}  // namespace labstor::core
