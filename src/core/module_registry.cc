#include "core/module_registry.h"

#include "faultinject/faultinject.h"

namespace labstor::core {

ModFactory& ModFactory::Global() {
  static ModFactory factory;
  return factory;
}

Status ModFactory::Register(const std::string& name, uint32_t version,
                            ModMaker maker) {
  if (version == 0) return Status::InvalidArgument("version must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  auto& versions = makers_[name];
  if (versions.contains(version)) {
    return Status::AlreadyExists(name + " v" + std::to_string(version) +
                                 " already registered");
  }
  versions.emplace(version, std::move(maker));
  return Status::Ok();
}

bool ModFactory::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return makers_.contains(name);
}

Result<uint32_t> ModFactory::LatestVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = makers_.find(name);
  if (it == makers_.end() || it->second.empty()) {
    return Status::NotFound("no LabMod named '" + name + "'");
  }
  return it->second.rbegin()->first;
}

Result<std::unique_ptr<LabMod>> ModFactory::Create(const std::string& name,
                                                   uint32_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = makers_.find(name);
  if (it == makers_.end() || it->second.empty()) {
    return Status::NotFound("no LabMod named '" + name + "'");
  }
  const ModMaker* maker = nullptr;
  if (version == 0) {
    maker = &it->second.rbegin()->second;
  } else {
    const auto vit = it->second.find(version);
    if (vit == it->second.end()) {
      return Status::NotFound(name + " has no version " +
                              std::to_string(version));
    }
    maker = &vit->second;
  }
  return (*maker)();
}

std::vector<std::string> ModFactory::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(makers_.size());
  for (const auto& [name, _] : makers_) names.push_back(name);
  return names;
}

Result<LabMod*> ModuleRegistry::Instantiate(const std::string& mod_name,
                                            const std::string& instance_uuid,
                                            const yaml::NodePtr& params,
                                            ModContext& ctx,
                                            uint32_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = instances_.find(instance_uuid); it != instances_.end()) {
    if (it->second.mod->mod_name() != mod_name) {
      return Status::AlreadyExists("instance '" + instance_uuid +
                                   "' already bound to mod '" +
                                   it->second.mod->mod_name() + "'");
    }
    return it->second.mod.get();
  }
  auto created = factory_->Create(mod_name, version);
  if (!created.ok()) return created.status();
  std::unique_ptr<LabMod> mod = std::move(created).value();
  mod->Bind(instance_uuid);
  LABSTOR_RETURN_IF_ERROR(mod->Init(params, ctx));
  LabMod* raw = mod.get();
  instances_.emplace(instance_uuid, Entry{std::move(mod)});
  return raw;
}

Result<LabMod*> ModuleRegistry::Find(const std::string& instance_uuid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = instances_.find(instance_uuid);
  if (it == instances_.end()) {
    return Status::NotFound("no instance '" + instance_uuid + "'");
  }
  return it->second.mod.get();
}

bool ModuleRegistry::Has(const std::string& instance_uuid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return instances_.contains(instance_uuid);
}

Status ModuleRegistry::Upgrade(const std::string& instance_uuid,
                               uint32_t new_version, ModContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = instances_.find(instance_uuid);
  if (it == instances_.end()) {
    return Status::NotFound("no instance '" + instance_uuid + "'");
  }
  LabMod& old = *it->second.mod;
  auto created = factory_->Create(old.mod_name(), new_version);
  if (!created.ok()) return created.status();
  std::unique_ptr<LabMod> fresh = std::move(created).value();
  if (fresh->version() < old.version()) {
    return Status::FailedPrecondition(
        "downgrade to v" + std::to_string(fresh->version()) +
        " from running v" + std::to_string(old.version()) + " refused");
  }
  fresh->Bind(instance_uuid);
  LABSTOR_RETURN_IF_ERROR(fresh->Init(nullptr, ctx));
  LABSTOR_RETURN_IF_ERROR(fresh->StateUpdate(old));
  it->second.mod = std::move(fresh);
  return Status::Ok();
}

std::vector<std::string> ModuleRegistry::InstancesOf(
    const std::string& mod_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [uuid, entry] : instances_) {
    if (entry.mod->mod_name() == mod_name) out.push_back(uuid);
  }
  return out;
}

std::vector<std::string> ModuleRegistry::AllInstances() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(instances_.size());
  for (const auto& [uuid, _] : instances_) out.push_back(uuid);
  return out;
}

Status ModuleRegistry::RepairAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [uuid, entry] : instances_) {
    // Partial-repair injection: a failure here leaves some mods
    // repaired and some not. That is safe because StateRepair is
    // clear-and-rebuild (idempotent), and Runtime::EnsureRepaired only
    // advances the repaired epoch on full success — the client's next
    // attempt re-runs the whole sweep and converges.
    LABSTOR_FAULTPOINT("core.repair.partial");
    LABSTOR_RETURN_IF_ERROR(entry.mod->StateRepair());
  }
  return Status::Ok();
}

}  // namespace labstor::core
