#include "core/stack.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "faultinject/faultinject.h"

namespace labstor::core {

bool CanForward(ModType from, ModType to) {
  switch (from) {
    case ModType::kPermissions:
      // A gate may precede anything server-side.
      return to != ModType::kGeneric;
    case ModType::kPushdown:
      // The chain interpreter sits at the top of a stack and rewrites
      // requests into the ops its steps name (KVS gets/puts, raw block
      // reads/writes), so it may precede any interface or block layer.
      return to == ModType::kKvs || to == ModType::kFilesystem ||
             to == ModType::kCache || to == ModType::kScheduler ||
             to == ModType::kTransform || to == ModType::kConsistency ||
             to == ModType::kDriver;
    case ModType::kFilesystem:
    case ModType::kKvs:
      return to == ModType::kCache || to == ModType::kScheduler ||
             to == ModType::kTransform || to == ModType::kConsistency ||
             to == ModType::kDriver;
    case ModType::kCache:
      return to == ModType::kScheduler || to == ModType::kTransform ||
             to == ModType::kConsistency || to == ModType::kDriver;
    case ModType::kTransform:
      return to == ModType::kScheduler || to == ModType::kCache ||
             to == ModType::kConsistency || to == ModType::kDriver ||
             to == ModType::kTransform;
    case ModType::kConsistency:
      return to == ModType::kScheduler || to == ModType::kCache ||
             to == ModType::kTransform || to == ModType::kDriver;
    case ModType::kScheduler:
      return to == ModType::kDriver;
    case ModType::kDriver:
      return false;  // terminal
    case ModType::kGeneric:
      return false;  // connectors live client-side, not in the DAG
    case ModType::kDummy:
      return to == ModType::kDummy;
  }
  return false;
}

namespace {

Result<ExecMode> ParseExecMode(const std::string& text) {
  if (text == "async" || text == "async_exec_mode") return ExecMode::kAsync;
  if (text == "sync" || text == "sync_exec_mode") return ExecMode::kSync;
  return Status::InvalidArgument("unknown exec_mode '" + text + "'");
}

}  // namespace

Result<StackSpec> StackSpec::FromYaml(const yaml::NodePtr& root) {
  if (root == nullptr || !root->IsMapping()) {
    return Status::InvalidArgument("stack spec must be a mapping");
  }
  StackSpec spec;
  spec.mount = root->GetString("mount", "");
  if (spec.mount.empty()) {
    return Status::InvalidArgument("stack spec requires a 'mount' point");
  }
  if (const yaml::NodePtr rules = root->Get("rules"); rules != nullptr) {
    const std::string mode = rules->GetString("exec_mode", "async");
    LABSTOR_ASSIGN_OR_RETURN(exec_mode, ParseExecMode(mode));
    spec.rules.exec_mode = exec_mode;
    spec.rules.priority = static_cast<int>(rules->GetInt("priority", 0));
    spec.rules.permissions_required =
        rules->GetBool("permissions_required", true);
    if (const yaml::NodePtr admins = rules->Get("admins");
        admins != nullptr && admins->IsSequence()) {
      for (const yaml::NodePtr& item : admins->items()) {
        if (item->IsScalar()) spec.rules.admins.push_back(item->scalar());
      }
    }
  }
  const yaml::NodePtr dag = root->Get("dag");
  if (dag == nullptr || !dag->IsSequence() || dag->items().empty()) {
    return Status::InvalidArgument("stack spec requires a non-empty 'dag'");
  }
  for (const yaml::NodePtr& vertex : dag->items()) {
    if (!vertex->IsMapping()) {
      return Status::InvalidArgument("dag vertices must be mappings");
    }
    StackVertexSpec vs;
    vs.mod_name = vertex->GetString("mod", "");
    if (vs.mod_name.empty()) {
      return Status::InvalidArgument("dag vertex requires a 'mod' name");
    }
    vs.uuid = vertex->GetString("uuid", vs.mod_name);
    vs.version = static_cast<uint32_t>(vertex->GetUint("version", 0));
    vs.params = vertex->Get("params");
    if (const yaml::NodePtr outputs = vertex->Get("outputs");
        outputs != nullptr && outputs->IsSequence()) {
      for (const yaml::NodePtr& out : outputs->items()) {
        if (out->IsScalar()) vs.outputs.push_back(out->scalar());
      }
    }
    spec.dag.push_back(std::move(vs));
  }
  return spec;
}

Result<StackSpec> StackSpec::Parse(std::string_view text) {
  LABSTOR_ASSIGN_OR_RETURN(root, yaml::Parse(text));
  return FromYaml(root);
}

Result<StackSpec> StackSpec::ParseFile(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(root, yaml::ParseFile(path));
  return FromYaml(root);
}

Status StackNamespace::Validate(const StackSpec& spec) const {
  if (spec.dag.empty()) {
    return Status::InvalidArgument("stack has no vertices");
  }
  if (spec.dag.size() > options_.max_stack_length) {
    return Status::InvalidArgument("stack exceeds maximum length " +
                                   std::to_string(options_.max_stack_length));
  }
  // Unique UUIDs; outputs must reference existing vertices.
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < spec.dag.size(); ++i) {
    if (!index.emplace(spec.dag[i].uuid, i).second) {
      return Status::InvalidArgument("duplicate vertex uuid '" +
                                     spec.dag[i].uuid + "'");
    }
  }
  std::vector<int> indegree(spec.dag.size(), 0);
  for (const StackVertexSpec& vs : spec.dag) {
    for (const std::string& out : vs.outputs) {
      const auto it = index.find(out);
      if (it == index.end()) {
        return Status::InvalidArgument("vertex '" + vs.uuid +
                                       "' outputs to unknown uuid '" + out +
                                       "'");
      }
      ++indegree[it->second];
    }
  }
  // Acyclicity (Kahn) and reachability from the root (first vertex).
  if (indegree[0] != 0) {
    return Status::InvalidArgument(
        "first vertex must be the stack root (no inputs)");
  }
  std::vector<size_t> order;
  std::vector<int> degree = indegree;
  for (size_t i = 0; i < degree.size(); ++i) {
    if (degree[i] == 0) order.push_back(i);
  }
  for (size_t head = 0; head < order.size(); ++head) {
    const StackVertexSpec& vs = spec.dag[order[head]];
    for (const std::string& out : vs.outputs) {
      if (--degree[index.at(out)] == 0) order.push_back(index.at(out));
    }
  }
  if (order.size() != spec.dag.size()) {
    return Status::InvalidArgument("stack DAG contains a cycle");
  }
  return Status::Ok();
}

Result<std::unique_ptr<Stack>> StackNamespace::Build(const StackSpec& spec,
                                                     ModuleRegistry& registry,
                                                     ModContext& ctx) const {
  LABSTOR_RETURN_IF_ERROR(Validate(spec));
  auto stack = std::make_unique<Stack>();
  stack->spec = spec;
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < spec.dag.size(); ++i) index[spec.dag[i].uuid] = i;
  // Instantiate (or reuse) each vertex's mod.
  for (const StackVertexSpec& vs : spec.dag) {
    // Mid-DAG mount failure: the partially-built stack is discarded
    // and the namespace stays untouched (already-instantiated mod
    // instances remain in the registry by design — they are shared
    // with other stacks and a retried mount reuses them).
    LABSTOR_FAULTPOINT("core.mount.middag");
    LABSTOR_ASSIGN_OR_RETURN(
        mod,
        registry.Instantiate(vs.mod_name, vs.uuid, vs.params, ctx, vs.version));
    Stack::Vertex vertex;
    vertex.uuid = vs.uuid;
    vertex.mod = mod;
    stack->vertices.push_back(std::move(vertex));
  }
  // Wire outputs and check type compatibility.
  for (size_t i = 0; i < spec.dag.size(); ++i) {
    for (const std::string& out : spec.dag[i].outputs) {
      const size_t j = index.at(out);
      if (!CanForward(stack->vertices[i].mod->type(),
                      stack->vertices[j].mod->type())) {
        return Status::InvalidArgument(
            std::string("incompatible edge: ") +
            std::string(ModTypeName(stack->vertices[i].mod->type())) +
            " -> " + std::string(ModTypeName(stack->vertices[j].mod->type())));
      }
      stack->vertices[i].outputs.push_back(j);
    }
  }
  // Every sink must be a terminal type (driver or dummy).
  for (const Stack::Vertex& v : stack->vertices) {
    if (v.outputs.empty() && v.mod->type() != ModType::kDriver &&
        v.mod->type() != ModType::kDummy) {
      return Status::InvalidArgument(
          "stack path ends in non-terminal mod '" + v.uuid + "' (" +
          std::string(ModTypeName(v.mod->type())) + ")");
    }
  }
  stack->root = 0;
  Fuse(*stack);
  return stack;
}

void StackNamespace::Fuse(Stack& stack) const {
  stack.fused.clear();
  if (!options_.enable_fusion) return;
  // Eligibility (DESIGN.md §11): sync exec mode (the fused chain is
  // the inline path), a single linear root-to-terminal chain (each
  // vertex at most one output — a fan-out would need the general
  // Forward loop anyway), and every mod sync-capable.
  if (stack.spec.rules.exec_mode != ExecMode::kSync) return;
  std::vector<Stack::FusedEntry> chain;
  chain.reserve(stack.vertices.size());
  size_t idx = stack.root;
  std::vector<bool> seen(stack.vertices.size(), false);
  while (true) {
    if (seen[idx]) return;  // cycle guard (Validate already rejects)
    seen[idx] = true;
    const Stack::Vertex& vertex = stack.vertices[idx];
    if (!vertex.mod->SyncCapable()) return;
    chain.push_back(Stack::FusedEntry{vertex.mod, idx});
    if (vertex.outputs.empty()) break;
    if (vertex.outputs.size() > 1) return;
    idx = vertex.outputs[0];
  }
  // Off-chain vertices (disconnected or multi-input wiring) mean the
  // chain does not cover the DAG; refuse rather than drop work.
  if (chain.size() != stack.vertices.size()) return;
  stack.fused = std::move(chain);
}

Result<Stack*> StackNamespace::Mount(const StackSpec& spec,
                                     ModuleRegistry& registry, ModContext& ctx,
                                     const ipc::Credentials& actor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stacks_.contains(spec.mount)) {
    return Status::AlreadyExists("mount point '" + spec.mount + "' in use");
  }
  LABSTOR_ASSIGN_OR_RETURN(stack, Build(spec, registry, ctx));
  stack->id = next_id_++;
  // The mounting user becomes an implicit admin.
  stack->spec.rules.admins.push_back(std::to_string(actor.uid));
  Stack* raw = stack.get();
  stacks_.emplace(spec.mount, std::move(stack));
  BumpEpoch();
  return raw;
}

Status StackNamespace::CheckAdmin(const Stack& stack,
                                  const ipc::Credentials& actor) const {
  if (actor.IsRoot()) return Status::Ok();
  const std::string uid = std::to_string(actor.uid);
  for (const std::string& admin : stack.spec.rules.admins) {
    if (admin == uid || (admin == "root" && actor.IsRoot())) {
      return Status::Ok();
    }
  }
  return Status::PermissionDenied("uid " + uid + " may not modify stack '" +
                                  stack.spec.mount + "'");
}

Status StackNamespace::Unmount(const std::string& mount,
                               const ipc::Credentials& actor) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stacks_.find(mount);
  if (it == stacks_.end()) return Status::NotFound("nothing mounted at '" + mount + "'");
  LABSTOR_RETURN_IF_ERROR(CheckAdmin(*it->second, actor));
  stacks_.erase(it);
  BumpEpoch();
  return Status::Ok();
}

Status StackNamespace::Modify(const StackSpec& updated,
                              ModuleRegistry& registry, ModContext& ctx,
                              const ipc::Credentials& actor) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stacks_.find(updated.mount);
  if (it == stacks_.end()) {
    return Status::NotFound("nothing mounted at '" + updated.mount + "'");
  }
  LABSTOR_RETURN_IF_ERROR(CheckAdmin(*it->second, actor));
  LABSTOR_ASSIGN_OR_RETURN(rebuilt, Build(updated, registry, ctx));
  // Keep identity and admin set; swap spec + wiring atomically.
  rebuilt->id = it->second->id;
  rebuilt->spec.rules.admins = it->second->spec.rules.admins;
  it->second = std::move(rebuilt);
  BumpEpoch();
  return Status::Ok();
}

Result<Stack*> StackNamespace::Resolve(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  Stack* best = nullptr;
  size_t best_len = 0;
  for (const auto& [mount, stack] : stacks_) {
    const bool exact = path == mount;
    const bool prefix =
        path.size() > mount.size() && StartsWith(path, mount) &&
        (mount.back() == '/' || path[mount.size()] == '/');
    if ((exact || prefix) && mount.size() >= best_len) {
      best = stack.get();
      best_len = mount.size();
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no stack mounted for path '" + path + "'");
  }
  return best;
}

Result<Stack*> StackNamespace::FindByMount(const std::string& mount) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stacks_.find(mount);
  if (it == stacks_.end()) {
    return Status::NotFound("nothing mounted at '" + mount + "'");
  }
  return it->second.get();
}

Result<Stack*> StackNamespace::FindById(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [mount, stack] : stacks_) {
    if (stack->id == id) return stack.get();
  }
  return Status::NotFound("no stack with id " + std::to_string(id));
}

Status StackNamespace::RefreshBindings(const ModuleRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [mount, stack] : stacks_) {
    for (Stack::Vertex& vertex : stack->vertices) {
      LABSTOR_ASSIGN_OR_RETURN(mod, registry.Find(vertex.uuid));
      vertex.mod = mod;
    }
    // Re-fuse against the fresh bindings (the upgrade's quiesce keeps
    // executions out while the chain mutates). An upgrade that swaps
    // in a non-SyncCapable version makes the stack refuse fusion here
    // and fall back to the DAG walk.
    Fuse(*stack);
  }
  BumpEpoch();
  return Status::Ok();
}

void StackNamespace::set_enable_fusion(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.enable_fusion == enabled) return;
  options_.enable_fusion = enabled;
  for (auto& [mount, stack] : stacks_) Fuse(*stack);
  BumpEpoch();
}

bool StackNamespace::fusion_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.enable_fusion;
}

std::vector<std::string> StackNamespace::Mounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> mounts;
  mounts.reserve(stacks_.size());
  for (const auto& [mount, _] : stacks_) mounts.push_back(mount);
  return mounts;
}

size_t StackNamespace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stacks_.size();
}

}  // namespace labstor::core
