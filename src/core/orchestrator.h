// Work Orchestrator (paper §III-C4): a modular userspace scheduling
// framework deciding which worker drains which request queues, and how
// many workers exist at all.
//
// Policies consume plain queue-load descriptors and emit an
// assignment, so the identical policy objects drive the real Runtime's
// rebalance thread and the DES benches (Fig. 5a/5b).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/environment.h"

namespace labstor::core {

struct QueueLoad {
  uint32_t qid = 0;
  // Max expected per-request software processing time among mods
  // reachable from this queue (EstProcessingTime).
  sim::Time est_processing_ns = 0;
  // Requests currently waiting.
  uint64_t backlog = 0;
};

struct Assignment {
  // assignment[w] = queue ids drained by worker w. Workers beyond
  // size() are decommissioned.
  std::vector<std::vector<uint32_t>> worker_queues;
  // Workers marked latency-dedicated get pinned cores (no sharing
  // with application threads).
  std::vector<bool> latency_dedicated;

  size_t num_workers() const { return worker_queues.size(); }
};

class WorkOrchestrator {
 public:
  virtual ~WorkOrchestrator() = default;
  virtual std::string_view name() const = 0;
  // `max_workers` bounds the pool; policies may use fewer.
  virtual Assignment Rebalance(const std::vector<QueueLoad>& queues,
                               size_t max_workers) = 0;
};

// Spreads queues evenly across all `max_workers` workers in queue-id
// order, ignoring load (the baseline the paper compares against).
class RoundRobinOrchestrator final : public WorkOrchestrator {
 public:
  std::string_view name() const override { return "round_robin"; }
  Assignment Rebalance(const std::vector<QueueLoad>& queues,
                       size_t max_workers) override;
};

// A fixed-size variant of round-robin used for the "1 worker" / "8
// workers" baselines of Fig. 5(a).
class FixedOrchestrator final : public WorkOrchestrator {
 public:
  explicit FixedOrchestrator(size_t workers) : workers_(workers) {}
  std::string_view name() const override { return "fixed"; }
  Assignment Rebalance(const std::vector<QueueLoad>& queues,
                       size_t max_workers) override;

 private:
  size_t workers_;
};

// The paper's dynamic policy:
//   1. classify queues into latency-sensitive (LQ) and computational
//      (CQ) by est processing time and backlog;
//   2. place LQs and CQs on disjoint worker subsets;
//   3. solve a min-workers balanced-partition ("modified knapsack"):
//      pick the fewest workers whose LPT makespan stays within
//      `loss_threshold` of the best achievable makespan.
class DynamicOrchestrator final : public WorkOrchestrator {
 public:
  struct Options {
    // Queues whose est processing time exceeds this are computational.
    sim::Time lq_threshold_ns = 100 * sim::kUs;
    // Acceptable slowdown over the max-worker makespan (e.g. 0.10 =
    // 10% performance loss allowed to save cores).
    double loss_threshold = 0.10;
    // A worker that can drain its whole assignment within one
    // orchestration epoch is not a bottleneck, regardless of relative
    // makespan — this is what lets light queues consolidate onto few
    // cores (the CPU savings of Fig. 5a). When queue backlogs report
    // per-epoch arrivals, this is also the planning horizon of the
    // capacity floor below.
    sim::Time epoch_budget_ns = 1 * sim::kMs;
    // Workers are kept below this utilization: the pool never shrinks
    // under ceil(total_work / (epoch * target_utilization)) workers.
    double target_utilization = 0.8;
  };

  DynamicOrchestrator() : DynamicOrchestrator(Options()) {}
  // Degenerate options (zero epoch budget, utilization outside (0, 1],
  // negative loss) are replaced by the defaults: a zero capacity
  // denominator previously produced an infinite worker floor whose
  // size_t cast was UB and whose value skipped consolidation entirely.
  explicit DynamicOrchestrator(Options options)
      : options_(Sanitize(options)) {}

  std::string_view name() const override { return "dynamic"; }
  Assignment Rebalance(const std::vector<QueueLoad>& queues,
                       size_t max_workers) override;

 private:
  static Options Sanitize(Options options);

  Options options_;
};

// Scaling wrapper for 100+-core pools: partitions queues by qid hash
// into `shards` groups, each packed by its own private inner policy
// over an even slice of the worker budget, and concatenates the
// per-shard assignments. Two wins at high core counts:
//   * the epoch-loop cost drops from one pack over Q queues x W
//     workers to S independent packs over Q/S x W/S (the inner
//     search is superlinear in both);
//   * per-shard policy state means no shared orchestrator state to
//     serialize on when shards rebalance concurrently (the DES drives
//     them from one loop today, but the partitioning is what makes
//     concurrent per-shard epochs possible at all).
// The per-shard worker slices are disjoint, so the concatenated
// assignment never exceeds max_workers.
class ShardedOrchestrator final : public WorkOrchestrator {
 public:
  using InnerFactory = std::function<std::unique_ptr<WorkOrchestrator>()>;

  // `shards` inner policies built by `make_inner` (default: one
  // DynamicOrchestrator per shard).
  explicit ShardedOrchestrator(size_t shards, InnerFactory make_inner = {});

  std::string_view name() const override { return "sharded"; }
  Assignment Rebalance(const std::vector<QueueLoad>& queues,
                       size_t max_workers) override;

  size_t shards() const { return inner_.size(); }

 private:
  std::vector<std::unique_ptr<WorkOrchestrator>> inner_;
};

// Shared helper: longest-processing-time bin packing of queue loads
// onto `k` workers. Returns per-worker queue lists and the makespan.
struct PackResult {
  std::vector<std::vector<uint32_t>> bins;
  uint64_t makespan = 0;
};
PackResult PackLpt(const std::vector<QueueLoad>& queues, size_t k);

}  // namespace labstor::core
