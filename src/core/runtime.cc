#include "core/runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "faultinject/faultinject.h"

namespace labstor::core {

namespace {

// One spin-loop iteration's pause hint (keeps the core from
// speculating down the poll loop and frees pipeline slots for the
// sibling hyperthread).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Spin → yield → exponential sleep, reset on work (DESIGN.md §7).
// Spinning keeps dequeue latency in the sub-µs range for ping-pong
// traffic; the sleep ceiling bounds idle CPU burn at the old fixed-
// sleep level. SleepAtCeiling() is the bulk-traffic escape hatch: a
// worker that just drained a full batch knows producers are streaming,
// so the kindest idle move is a long sleep that gives them the core to
// refill (spinning here would preempt the producer on a single-CPU
// host and serialize the pipeline into one context switch per
// request).
class IdleBackoff {
 public:
  IdleBackoff(uint32_t spin_polls, uint32_t yield_polls,
              std::chrono::nanoseconds sleep_min,
              std::chrono::nanoseconds sleep_max)
      : spin_polls_(spin_polls),
        yield_polls_(yield_polls),
        sleep_min_(sleep_min),
        sleep_max_(sleep_max < sleep_min ? sleep_min : sleep_max),
        cur_sleep_(sleep_min) {}

  void Reset() {
    idle_passes_ = 0;
    cur_sleep_ = sleep_min_;
  }

  // Advance the ladder one idle pass. Spin/yield rungs pause inline
  // and return zero; sleep rungs return the duration and leave the
  // actual wait to the caller — a worker on the doorbell parks on the
  // condvar for that long instead of a blind sleep_for.
  std::chrono::nanoseconds Idle() {
    if (idle_passes_ < spin_polls_) {
      ++idle_passes_;
      CpuRelax();
      return std::chrono::nanoseconds::zero();
    }
    if (idle_passes_ < spin_polls_ + yield_polls_) {
      ++idle_passes_;
      std::this_thread::yield();
      return std::chrono::nanoseconds::zero();
    }
    const std::chrono::nanoseconds d = cur_sleep_;
    cur_sleep_ = std::min(cur_sleep_ * 2, sleep_max_);
    return d;
  }

  std::chrono::nanoseconds SleepAtCeiling() {
    idle_passes_ = spin_polls_ + yield_polls_;
    cur_sleep_ = sleep_max_;
    return sleep_max_;
  }

 private:
  const uint32_t spin_polls_;
  const uint32_t yield_polls_;
  const std::chrono::nanoseconds sleep_min_;
  const std::chrono::nanoseconds sleep_max_;
  uint32_t idle_passes_ = 0;
  std::chrono::nanoseconds cur_sleep_;
};

}  // namespace

Runtime::Runtime(Options options, simdev::DeviceRegistry& devices)
    : options_(std::move(options)),
      devices_(devices),
      ipc_(options_.ipc),
      namespace_(options_.ns),
      module_manager_(registry_, namespace_, ipc_) {
  if (options_.orchestrator == nullptr) {
    options_.orchestrator = std::make_unique<DynamicOrchestrator>();
  }
  if (options_.worker_batch == 0) options_.worker_batch = 1;
  mod_context_.devices = &devices_;
  mod_context_.num_workers = static_cast<uint32_t>(options_.max_workers);
  mod_context_.telemetry = options_.telemetry;
  mod_context_.ns_epoch = &namespace_.epoch_ref();
  // Non-null empty table so pre-Start readers (active_workers, tests)
  // never special-case.
  auto empty = std::make_shared<AssignmentTable>();
  empty->per_worker.assign(options_.max_workers, {});
  assign_table_ = std::move(empty);
  if (telemetry::Telemetry* tel = options_.telemetry; tel != nullptr) {
    telemetry::MetricsRegistry& m = tel->metrics();
    wired_.worker_requests = m.GetCounter("runtime.worker.requests");
    wired_.exec_ns = m.GetHistogram("runtime.worker.exec_ns");
    wired_.queue_wait_ns = m.GetHistogram("ipc.queue.wait_ns");
    wired_.queue_depth = m.GetHistogram("ipc.queue.depth");
    wired_.rebalances = m.GetCounter("orchestrator.rebalance.count");
    wired_.active_workers = m.GetGauge("orchestrator.workers.active");
    wired_.completions_dropped = m.GetCounter("runtime.completion.dropped");
  }
}

Runtime::~Runtime() {
  if (running()) (void)Stop();
}

Status Runtime::Start() {
  if (running()) return Status::FailedPrecondition("runtime already running");
  ipc_.MarkOnline();
  StartThreads();
  return Status::Ok();
}

Status Runtime::Stop() {
  if (!running()) return Status::FailedPrecondition("runtime not running");
  StopThreads();
  ipc_.MarkOffline();
  return Status::Ok();
}

void Runtime::CrashForTesting() {
  // Offline first so clients observe the crash, then kill threads.
  ipc_.MarkOffline();
  StopThreads();
}

Status Runtime::Restart() {
  if (running()) return Status::FailedPrecondition("runtime already running");
  ipc_.MarkOnline();  // new epoch
  StartThreads();
  return Status::Ok();
}

void Runtime::StartThreads() {
  stop_.store(false, std::memory_order_release);
  worker_dead_ = std::make_unique<std::atomic<bool>[]>(options_.max_workers);
  Rebalance();
  workers_.reserve(options_.max_workers);
  for (size_t i = 0; i < options_.max_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  admin_ = std::thread([this] { AdminLoop(); });
  running_.store(true, std::memory_order_release);
}

void Runtime::StopThreads() {
  stop_.store(true, std::memory_order_release);
  // Wake doorbell-parked workers so shutdown doesn't wait out their
  // park timeout.
  {
    std::lock_guard<std::mutex> lock(doorbell_mu_);
  }
  doorbell_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  if (admin_.joinable()) admin_.join();
  running_.store(false, std::memory_order_release);
}

Result<Stack*> Runtime::MountStack(const StackSpec& spec,
                                   const ipc::Credentials& actor) {
  auto mounted = namespace_.Mount(spec, registry_, mod_context_, actor);
  if (mounted.ok()) Rebalance();
  return mounted;
}

Status Runtime::ModifyStack(const StackSpec& updated,
                            const ipc::Credentials& actor) {
  return namespace_.Modify(updated, registry_, mod_context_, actor);
}

Status Runtime::UnmountStack(const std::string& mount,
                             const ipc::Credentials& actor) {
  return namespace_.Unmount(mount, actor);
}

Stack* Runtime::LookupStack(uint32_t stack_id, ExecScratch& scratch) {
  // Per-thread cache keyed on the namespace mutation epoch: any mount
  // / unmount / modify / rebind invalidates every cached pointer, so
  // the common case is a handful of pointer compares with no lock.
  const uint64_t epoch = namespace_.epoch();
  if (epoch != scratch.ns_epoch) {
    scratch.stacks.clear();
    scratch.ns_epoch = epoch;
  }
  for (const auto& [id, stack] : scratch.stacks) {
    if (id == stack_id) return stack;
  }
  auto found = namespace_.FindById(stack_id);
  if (!found.ok()) return nullptr;
  // Don't cache across a concurrent mutation: the pointer we resolved
  // under the namespace lock may already be about to dangle.
  if (namespace_.epoch() == scratch.ns_epoch) {
    scratch.stacks.emplace_back(stack_id, *found);
  }
  return *found;
}

Status Runtime::ExecuteWith(ipc::Request& req, ExecScratch& scratch) {
  Stack* stack = LookupStack(req.stack_id, scratch);
  if (stack == nullptr) {
    req.Complete(StatusCode::kNotFound);
    return Status::NotFound("no stack with id " +
                            std::to_string(req.stack_id));
  }
  scratch.trace.Clear();
  scratch.exec.Reset(*stack, mod_context_, scratch.trace);
  const Status st = scratch.exec.Dispatch(req);
  req.Complete(st.ok() ? StatusCode::kOk : st.code(), req.result_u64);
  requests_processed_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Telemetry* tel = options_.telemetry;
      tel != nullptr && tel->enabled()) {
    scratch.trace.PublishTo(*tel, req.worker);
  }
  return st;
}

namespace {
// Set on the thread driving RunUpgradePass for its duration. A
// PhaseHook (or a mod's StateUpdate) that executes requests inline
// from inside the pass must bypass the quiesce gate — it IS the
// quiescer, and waiting on itself would deadlock.
thread_local bool tl_upgrade_pass_owner = false;
}  // namespace

Status Runtime::Execute(ipc::Request& req) {
  // Per-thread scratch: sync-mode clients and tests reuse the same
  // trace/exec/cache storage across calls (first call per thread pays
  // the reservation; steady state allocates nothing).
  thread_local ExecScratch scratch;
  if (tl_upgrade_pass_owner) return ExecuteWith(req, scratch);
  // Inline executions participate in the upgrade quiesce: join the
  // in-flight count first, then check the gate — seq_cst on both
  // sides of the handshake (this add + load, the quiescer's gate
  // store + in-flight load) makes the classic store-buffer outcome
  // impossible: the quiescer either sees us in flight (and waits us
  // out) or we see its gate (and wait it out); there is no
  // interleaving where an inline execution runs concurrently with the
  // registry swap / fused-chain rebuild. The epoch-validated stack
  // cache inside ExecuteWith then re-resolves after the gate drops,
  // so a stale fused chain can never run.
  while (true) {
    in_flight_.fetch_add(1, std::memory_order_seq_cst);
    if (!quiescing_.load(std::memory_order_seq_cst)) break;
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    inline_paused_.fetch_add(1, std::memory_order_relaxed);
    while (quiescing_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  const Status st = ExecuteWith(req, scratch);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return st;
}

Status Runtime::RunUpgradePass() {
  tl_upgrade_pass_owner = true;
  const Status st = module_manager_.ProcessUpgrades(mod_context_, [this] {
    quiescing_.store(true, std::memory_order_seq_cst);
    WaitQuiesce();
  });
  // The gate stays up from the quiesce barrier through the apply +
  // RefreshBindings that follow it inside ProcessUpgrades; inline
  // executions resume only once the pass is fully over.
  quiescing_.store(false, std::memory_order_release);
  tl_upgrade_pass_owner = false;
  return st;
}

Status Runtime::StepAdmin() {
  const Status st = RunUpgradePass();
  Rebalance();
  return st;
}

Status Runtime::EnsureRepaired(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(repair_mu_);
  if (repaired_epoch_ >= epoch) return Status::Ok();
  LABSTOR_RETURN_IF_ERROR(registry_.RepairAll());
  repaired_epoch_ = epoch;
  return Status::Ok();
}

Status Runtime::SaveFdState(ipc::ProcessId pid, std::string blob) {
  std::lock_guard<std::mutex> lock(fd_depot_mu_);
  fd_depot_[pid] = std::move(blob);
  return Status::Ok();
}

Result<std::string> Runtime::TakeFdState(ipc::ProcessId pid) {
  std::lock_guard<std::mutex> lock(fd_depot_mu_);
  const auto it = fd_depot_.find(pid);
  if (it == fd_depot_.end()) {
    return Status::NotFound("no parked fd state for pid " +
                            std::to_string(pid));
  }
  std::string blob = std::move(it->second);
  fd_depot_.erase(it);
  return blob;
}

size_t Runtime::dead_workers() const {
  if (worker_dead_ == nullptr) return 0;
  size_t dead = 0;
  for (size_t w = 0; w < options_.max_workers; ++w) {
    if (worker_dead_[w].load(std::memory_order_acquire)) ++dead;
  }
  return dead;
}

size_t Runtime::active_workers() const {
  const std::shared_ptr<const AssignmentTable> table = LoadAssignments();
  size_t active = 0;
  for (const auto& queues : table->per_worker) {
    if (!queues.empty()) ++active;
  }
  return active;
}

std::vector<ipc::QueuePair*> Runtime::AssignedQueues(size_t worker_id) const {
  const std::shared_ptr<const AssignmentTable> table = LoadAssignments();
  if (worker_id >= table->per_worker.size()) return {};
  return table->per_worker[worker_id];
}

void Runtime::WorkerLoop(size_t worker_id) {
  telemetry::Telemetry* tel = options_.telemetry;
  const size_t batch_max = options_.worker_batch;
  // Per-worker state, sized once: the drained-batch buffer, the
  // execution scratch, and the idle ladder. Nothing below allocates
  // once these are warm.
  std::vector<ipc::Request*> batch(batch_max, nullptr);
  ExecScratch scratch;
  IdleBackoff idle(options_.worker_spin_polls, options_.worker_yield_polls,
                   options_.worker_idle_sleep_min, options_.worker_idle_sleep);
  // RCU read side: hold the published table; re-load only when the
  // generation counter moves (one relaxed-ish atomic load per pass in
  // steady state, no mutex, no vector copy).
  std::shared_ptr<const AssignmentTable> table = LoadAssignments();
  uint64_t seen_generation = table->generation;
  // Bulk-traffic latch: set when a pass drains a full batch from some
  // queue (producers are streaming faster than one visit clears), so
  // the next idle moment should cede the core wholesale instead of
  // spinning. Cleared by any partial-drain working pass.
  bool bulk_traffic = false;
  // Sleep-rung wait: fixed sleep, or (event mode) a doorbell park
  // bounded by the same duration. `db_seen` is captured before the
  // poll pass, so a ring racing the empty poll flips the predicate
  // and the park returns immediately — no lost wakeup.
  const auto sleep_or_park = [this](std::chrono::nanoseconds d,
                                    uint64_t db_seen) {
    if (d <= std::chrono::nanoseconds::zero()) return;
    idle_sleeps_.fetch_add(1, std::memory_order_relaxed);
    if (!options_.event_wakeup) {
      std::this_thread::sleep_for(d);
      return;
    }
    std::unique_lock<std::mutex> lock(doorbell_mu_);
    const bool rung = doorbell_cv_.wait_for(lock, d, [&] {
      return stop_.load(std::memory_order_acquire) ||
             doorbell_seq_.load(std::memory_order_acquire) != db_seen;
    });
    if (rung && !stop_.load(std::memory_order_acquire)) {
      doorbell_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  while (!stop_.load(std::memory_order_acquire)) {
    const uint64_t db_seen =
        options_.event_wakeup
            ? doorbell_seq_.load(std::memory_order_acquire)
            : 0;
    const uint64_t generation =
        assign_generation_.load(std::memory_order_acquire);
    if (generation != seen_generation) {
      table = LoadAssignments();
      // The freshly-loaded table may be newer than `generation`; adopt
      // whatever we actually got.
      seen_generation = table->generation;
    }
    bool did_work = false;
    size_t max_drain = 0;
    static const std::vector<ipc::QueuePair*> kNoQueues;
    const std::vector<ipc::QueuePair*>& queues =
        worker_id < table->per_worker.size() ? table->per_worker[worker_id]
                                             : kNoQueues;
    for (ipc::QueuePair* qp : queues) {
      if (qp->update_pending()) {
        qp->AckUpdate();
        continue;  // paused for upgrade
      }
      size_t n = qp->PollSubmissionBatch(batch.data(), batch_max);
      if (n == 0) continue;
      did_work = true;
      max_drain = std::max(max_drain, n);

      if (faultinject::FaultInjector* fi = faultinject::Active();
          fi != nullptr) {
        size_t kept = 0;
        for (size_t i = 0; i < n; ++i) {
          ipc::Request* req = batch[i];
          // Worker death mid-batch: the thread exits with the drained
          // requests never completed. Checked before the in_flight_
          // increment so upgrade quiescing still converges; clients
          // recover via their Wait timeout + resubmission path, and
          // the immediate rebalance hands this worker's queues
          // (including the one holding the resubmissions) to a
          // survivor.
          if (fi->Evaluate("core.worker.death").has_value()) {
            worker_dead_[worker_id].store(true, std::memory_order_release);
            Rebalance();
            return;
          }
          // Poisoned slot: the request arrives unusable (stale
          // pointer, scribbled header); the worker rejects it without
          // executing but still accounts a completion so the
          // orchestrator's backlog estimate stays truthful.
          if (auto poison = fi->Evaluate("ipc.slot.poison")) {
            req->Complete(poison->code == StatusCode::kOk
                              ? StatusCode::kCorruption
                              : poison->code);
            qp->total_completed.fetch_add(1, std::memory_order_relaxed);
            if (!qp->Complete(req) &&
                wired_.completions_dropped != nullptr) {
              wired_.completions_dropped->Inc(worker_id);
            }
            continue;
          }
          batch[kept++] = req;
        }
        n = kept;
        if (n == 0) continue;
      }

      in_flight_.fetch_add(n, std::memory_order_acq_rel);
      const bool instrument = tel != nullptr && tel->enabled();
      uint64_t now = 0;
      if (instrument) {
        // One epoch-clock read covers queue-wait accounting for the
        // whole batch.
        now = tel->NowNs();
        wired_.queue_depth->Record(qp->PendingSubmissions(), worker_id);
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; ++i) {
        ipc::Request* req = batch[i];
        req->worker = static_cast<uint32_t>(worker_id);
        if (instrument && req->submit_ns != 0 && now >= req->submit_ns) {
          wired_.queue_wait_ns->Record(now - req->submit_ns, worker_id);
          tel->trace().Span(static_cast<uint32_t>(worker_id),
                            telemetry::kCatQueue, "queue.wait",
                            req->submit_ns, now - req->submit_ns, "qid",
                            qp->id());
        }
        (void)ExecuteWith(*req, scratch);
      }
      // Feed the measured processing time back to the orchestrator as
      // an EWMA (the paper: workers "periodically monitor LabMods to
      // get performance metrics, useful to work orchestration"). One
      // sample per batch — the batch mean — via a lost-update-free
      // CAS fold.
      const auto batch_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      const uint64_t per_request_ns = batch_ns / n;
      qp->UpdateEstProcessing(per_request_ns);
      qp->total_completed.fetch_add(n, std::memory_order_relaxed);
      const size_t accepted = qp->CompleteBatch(batch.data(), n);
      for (size_t i = accepted; i < n; ++i) {
        if (!qp->Complete(batch[i]) &&
            wired_.completions_dropped != nullptr) {
          wired_.completions_dropped->Inc(worker_id);
        }
      }
      in_flight_.fetch_sub(n, std::memory_order_acq_rel);
      if (instrument) {
        wired_.worker_requests->Add(n, worker_id);
        wired_.exec_ns->RecordN(per_request_ns, n, worker_id);
      }
    }
    if (did_work) {
      idle.Reset();
      bulk_traffic = max_drain >= batch_max;
    } else if (bulk_traffic) {
      sleep_or_park(idle.SleepAtCeiling(), db_seen);
    } else {
      sleep_or_park(idle.Idle(), db_seen);
    }
  }
}

void Runtime::RingDoorbell() {
  doorbell_rings_.fetch_add(1, std::memory_order_relaxed);
  doorbell_seq_.fetch_add(1, std::memory_order_release);
  if (!options_.event_wakeup) return;
  // Empty critical section: orders the sequence bump against a waiter
  // mid-predicate-check, so the notify below can never fire in the
  // window between its last predicate evaluation and the park.
  { std::lock_guard<std::mutex> lock(doorbell_mu_); }
  doorbell_cv_.notify_all();
}

void Runtime::AdminLoop() {
  auto last_rebalance = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    const Status st = RunUpgradePass();
    if (!st.ok()) {
      LOG_WARN << "upgrade processing: " << st.ToString();
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_rebalance >= 10 * options_.admin_poll) {
      Rebalance();
      last_rebalance = now;
    }
    std::this_thread::sleep_for(options_.admin_poll);
  }
}

void Runtime::PublishAssignments(std::shared_ptr<AssignmentTable> table) {
  // assign_mu_ serializes publishers (so generations stay monotonic
  // with the tables they describe) and guards the shared_ptr swap
  // against the rare reader refetch. Order matters: table first, then
  // generation (release), so a reader woken by the generation bump
  // always finds a table at least that new.
  std::lock_guard<std::mutex> lock(assign_mu_);
  const uint64_t generation =
      assign_generation_.load(std::memory_order_relaxed) + 1;
  table->generation = generation;
  assign_table_ = std::shared_ptr<const AssignmentTable>(std::move(table));
  assign_generation_.store(generation, std::memory_order_release);
}

void Runtime::Rebalance() {
  telemetry::Telemetry* tel = options_.telemetry;
  const bool instrument = tel != nullptr && tel->enabled();
  const uint64_t t0 = instrument ? tel->NowNs() : 0;
  std::vector<QueueLoad> loads;
  for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) {
    QueueLoad load;
    load.qid = qp->id();
    load.est_processing_ns = qp->est_processing_ns.load(std::memory_order_relaxed);
    if (load.est_processing_ns == 0) load.est_processing_ns = 3 * sim::kUs;
    load.backlog = qp->PendingSubmissions();
    loads.push_back(load);
  }
  // Pack across LIVE workers only: a queue left on a dead worker would
  // never be drained again, wedging every client that submits to it.
  std::vector<size_t> live;
  live.reserve(options_.max_workers);
  for (size_t w = 0; w < options_.max_workers; ++w) {
    if (worker_dead_ == nullptr ||
        !worker_dead_[w].load(std::memory_order_acquire)) {
      live.push_back(w);
    }
  }
  const Assignment assignment =
      options_.orchestrator->Rebalance(loads, live.size());
  if (instrument) {
    size_t commissioned = 0;
    for (const auto& queues : assignment.worker_queues) {
      if (!queues.empty()) ++commissioned;
    }
    wired_.rebalances->Inc();
    wired_.active_workers->Set(static_cast<int64_t>(commissioned));
    tel->trace().Span(0, telemetry::kCatOrchestrator,
                      std::string(options_.orchestrator->name()) + ".rebalance",
                      t0, tel->NowNs() - t0, "workers", commissioned);
  }
  auto table = std::make_shared<AssignmentTable>();
  table->per_worker.assign(options_.max_workers, {});
  for (size_t b = 0; b < assignment.worker_queues.size() && b < live.size();
       ++b) {
    for (const uint32_t qid : assignment.worker_queues[b]) {
      if (ipc::QueuePair* qp = ipc_.FindQueue(qid); qp != nullptr) {
        table->per_worker[live[b]].push_back(qp);
      }
    }
  }
  PublishAssignments(std::move(table));
}

void Runtime::WaitQuiesce() {
  // 1. Every assigned, marked primary queue must be acknowledged by
  //    its worker; queues no worker drains are acknowledged here. A
  //    queue's assignment-table entry only promises an ack while
  //    worker threads are actually running — on a never-Started (or
  //    crashed) runtime the table may still name queues, but nobody
  //    will ever drain them, so the barrier acks on their behalf.
  while (!stop_.load(std::memory_order_acquire)) {
    const bool workers_running = running_.load(std::memory_order_acquire);
    const std::shared_ptr<const AssignmentTable> table = LoadAssignments();
    std::vector<ipc::QueuePair*> assigned;
    for (const auto& queues : table->per_worker) {
      assigned.insert(assigned.end(), queues.begin(), queues.end());
    }
    bool all_acked = true;
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) {
      if (!qp->update_pending()) continue;
      const bool is_assigned =
          workers_running &&
          std::find(assigned.begin(), assigned.end(), qp) != assigned.end();
      if (!is_assigned) qp->AckUpdate();
      if (!qp->update_acked()) all_acked = false;
    }
    if (all_acked) break;
    std::this_thread::yield();
  }
  // 2. In-flight requests and intermediate queues must drain (the
  //    seq_cst load pairs with the inline gate in Execute()).
  while (!stop_.load(std::memory_order_acquire)) {
    if (in_flight_.load(std::memory_order_seq_cst) == 0) {
      bool drained = true;
      for (ipc::QueuePair* qp : ipc_.IntermediateQueues()) {
        if (qp->PendingSubmissions() != 0) {
          drained = false;
          break;
        }
      }
      if (drained) break;
    }
    std::this_thread::yield();
  }
}

}  // namespace labstor::core
