#include "core/runtime.h"

#include <algorithm>

#include "common/logging.h"
#include "faultinject/faultinject.h"

namespace labstor::core {

Runtime::Runtime(Options options, simdev::DeviceRegistry& devices)
    : options_(std::move(options)),
      devices_(devices),
      ipc_(options_.ipc),
      namespace_(options_.ns),
      module_manager_(registry_, namespace_, ipc_) {
  if (options_.orchestrator == nullptr) {
    options_.orchestrator = std::make_unique<DynamicOrchestrator>();
  }
  mod_context_.devices = &devices_;
  mod_context_.num_workers = static_cast<uint32_t>(options_.max_workers);
  mod_context_.telemetry = options_.telemetry;
  if (telemetry::Telemetry* tel = options_.telemetry; tel != nullptr) {
    telemetry::MetricsRegistry& m = tel->metrics();
    wired_.worker_requests = m.GetCounter("runtime.worker.requests");
    wired_.exec_ns = m.GetHistogram("runtime.worker.exec_ns");
    wired_.queue_wait_ns = m.GetHistogram("ipc.queue.wait_ns");
    wired_.queue_depth = m.GetHistogram("ipc.queue.depth");
    wired_.rebalances = m.GetCounter("orchestrator.rebalance.count");
    wired_.active_workers = m.GetGauge("orchestrator.workers.active");
    wired_.completions_dropped = m.GetCounter("runtime.completion.dropped");
  }
}

Runtime::~Runtime() {
  if (running()) (void)Stop();
}

Status Runtime::Start() {
  if (running()) return Status::FailedPrecondition("runtime already running");
  ipc_.MarkOnline();
  StartThreads();
  return Status::Ok();
}

Status Runtime::Stop() {
  if (!running()) return Status::FailedPrecondition("runtime not running");
  StopThreads();
  ipc_.MarkOffline();
  return Status::Ok();
}

void Runtime::CrashForTesting() {
  // Offline first so clients observe the crash, then kill threads.
  ipc_.MarkOffline();
  StopThreads();
}

Status Runtime::Restart() {
  if (running()) return Status::FailedPrecondition("runtime already running");
  ipc_.MarkOnline();  // new epoch
  StartThreads();
  return Status::Ok();
}

void Runtime::StartThreads() {
  stop_.store(false, std::memory_order_release);
  worker_dead_ = std::make_unique<std::atomic<bool>[]>(options_.max_workers);
  {
    std::lock_guard<std::mutex> lock(assign_mu_);
    assignments_.assign(options_.max_workers, {});
  }
  Rebalance();
  workers_.reserve(options_.max_workers);
  for (size_t i = 0; i < options_.max_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  admin_ = std::thread([this] { AdminLoop(); });
  running_.store(true, std::memory_order_release);
}

void Runtime::StopThreads() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  if (admin_.joinable()) admin_.join();
  running_.store(false, std::memory_order_release);
}

Result<Stack*> Runtime::MountStack(const StackSpec& spec,
                                   const ipc::Credentials& actor) {
  auto mounted = namespace_.Mount(spec, registry_, mod_context_, actor);
  if (mounted.ok()) Rebalance();
  return mounted;
}

Status Runtime::ModifyStack(const StackSpec& updated,
                            const ipc::Credentials& actor) {
  return namespace_.Modify(updated, registry_, mod_context_, actor);
}

Status Runtime::UnmountStack(const std::string& mount,
                             const ipc::Credentials& actor) {
  return namespace_.Unmount(mount, actor);
}

Status Runtime::Execute(ipc::Request& req) {
  auto stack = namespace_.FindById(req.stack_id);
  if (!stack.ok()) {
    req.Complete(stack.status().code());
    return stack.status();
  }
  ExecTrace trace;
  StackExec exec(**stack, mod_context_, trace);
  const Status st = exec.Dispatch(req);
  req.Complete(st.ok() ? StatusCode::kOk : st.code(), req.result_u64);
  requests_processed_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::Telemetry* tel = options_.telemetry;
      tel != nullptr && tel->enabled()) {
    trace.PublishTo(*tel, req.worker);
  }
  return st;
}

Status Runtime::EnsureRepaired(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(repair_mu_);
  if (repaired_epoch_ >= epoch) return Status::Ok();
  LABSTOR_RETURN_IF_ERROR(registry_.RepairAll());
  repaired_epoch_ = epoch;
  return Status::Ok();
}

Status Runtime::SaveFdState(ipc::ProcessId pid, std::string blob) {
  std::lock_guard<std::mutex> lock(fd_depot_mu_);
  fd_depot_[pid] = std::move(blob);
  return Status::Ok();
}

Result<std::string> Runtime::TakeFdState(ipc::ProcessId pid) {
  std::lock_guard<std::mutex> lock(fd_depot_mu_);
  const auto it = fd_depot_.find(pid);
  if (it == fd_depot_.end()) {
    return Status::NotFound("no parked fd state for pid " +
                            std::to_string(pid));
  }
  std::string blob = std::move(it->second);
  fd_depot_.erase(it);
  return blob;
}

size_t Runtime::dead_workers() const {
  if (worker_dead_ == nullptr) return 0;
  size_t dead = 0;
  for (size_t w = 0; w < options_.max_workers; ++w) {
    if (worker_dead_[w].load(std::memory_order_acquire)) ++dead;
  }
  return dead;
}

size_t Runtime::active_workers() const {
  std::lock_guard<std::mutex> lock(assign_mu_);
  size_t active = 0;
  for (const auto& queues : assignments_) {
    if (!queues.empty()) ++active;
  }
  return active;
}

std::vector<ipc::QueuePair*> Runtime::SnapshotQueues(size_t worker_id) const {
  std::lock_guard<std::mutex> lock(assign_mu_);
  if (worker_id >= assignments_.size()) return {};
  return assignments_[worker_id];
}

void Runtime::WorkerLoop(size_t worker_id) {
  telemetry::Telemetry* tel = options_.telemetry;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::vector<ipc::QueuePair*> queues = SnapshotQueues(worker_id);
    bool did_work = false;
    for (ipc::QueuePair* qp : queues) {
      if (qp->update_pending()) {
        qp->AckUpdate();
        continue;  // paused for upgrade
      }
      auto polled = qp->PollSubmission();
      if (!polled.has_value()) continue;
      ipc::Request* req = *polled;
      if (faultinject::FaultInjector* fi = faultinject::Active();
          fi != nullptr) {
        // Worker death mid-request: the thread exits with the dequeued
        // request never completed. Checked before the in_flight_
        // increment so upgrade quiescing still converges; the client
        // recovers via its Wait timeout + resubmission path, and the
        // immediate rebalance hands this worker's queues (including
        // the one holding the resubmission) to a survivor.
        if (fi->Evaluate("core.worker.death").has_value()) {
          worker_dead_[worker_id].store(true, std::memory_order_release);
          Rebalance();
          return;
        }
        // Poisoned slot: the request arrives unusable (stale pointer,
        // scribbled header); the worker rejects it without executing.
        if (auto poison = fi->Evaluate("ipc.slot.poison")) {
          req->Complete(poison->code == StatusCode::kOk
                            ? StatusCode::kCorruption
                            : poison->code);
          if (!qp->Complete(req) && wired_.completions_dropped != nullptr) {
            wired_.completions_dropped->Inc(worker_id);
          }
          did_work = true;
          continue;
        }
      }
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      req->worker = static_cast<uint32_t>(worker_id);
      if (tel != nullptr && tel->enabled()) {
        // Queue wait = dequeue time minus the client's submit stamp
        // (same epoch clock), emitted as the request's "queue" span.
        const uint64_t now = tel->NowNs();
        if (req->submit_ns != 0 && now >= req->submit_ns) {
          wired_.queue_wait_ns->Record(now - req->submit_ns, worker_id);
          tel->trace().Span(static_cast<uint32_t>(worker_id),
                            telemetry::kCatQueue, "queue.wait",
                            req->submit_ns, now - req->submit_ns, "qid",
                            qp->id());
        }
        wired_.queue_depth->Record(qp->PendingSubmissions(), worker_id);
      }
      const auto t0 = std::chrono::steady_clock::now();
      (void)Execute(*req);
      // Feed the measured processing time back to the orchestrator as
      // an EWMA (the paper: workers "periodically monitor LabMods to
      // get performance metrics, useful to work orchestration").
      const auto ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      const uint64_t prev =
          qp->est_processing_ns.load(std::memory_order_relaxed);
      qp->est_processing_ns.store(prev == 0 ? ns : (prev * 7 + ns) / 8,
                                  std::memory_order_relaxed);
      qp->total_completed.fetch_add(1, std::memory_order_relaxed);
      if (!qp->Complete(req) && wired_.completions_dropped != nullptr) {
        wired_.completions_dropped->Inc(worker_id);
      }
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      if (tel != nullptr && tel->enabled()) {
        wired_.worker_requests->Inc(worker_id);
        wired_.exec_ns->Record(ns, worker_id);
      }
      did_work = true;
    }
    if (!did_work) {
      // Paper: idle workers back off instead of busy-waiting a whole
      // orchestrator epoch.
      std::this_thread::sleep_for(options_.worker_idle_sleep);
    }
  }
}

void Runtime::AdminLoop() {
  auto last_rebalance = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    const Status st =
        module_manager_.ProcessUpgrades(mod_context_, [this] { WaitQuiesce(); });
    if (!st.ok()) {
      LOG_WARN << "upgrade processing: " << st.ToString();
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_rebalance >= 10 * options_.admin_poll) {
      Rebalance();
      last_rebalance = now;
    }
    std::this_thread::sleep_for(options_.admin_poll);
  }
}

void Runtime::Rebalance() {
  telemetry::Telemetry* tel = options_.telemetry;
  const bool instrument = tel != nullptr && tel->enabled();
  const uint64_t t0 = instrument ? tel->NowNs() : 0;
  std::vector<QueueLoad> loads;
  for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) {
    QueueLoad load;
    load.qid = qp->id();
    load.est_processing_ns = qp->est_processing_ns.load(std::memory_order_relaxed);
    if (load.est_processing_ns == 0) load.est_processing_ns = 3 * sim::kUs;
    load.backlog = qp->PendingSubmissions();
    loads.push_back(load);
  }
  // Pack across LIVE workers only: a queue left on a dead worker would
  // never be drained again, wedging every client that submits to it.
  std::vector<size_t> live;
  live.reserve(options_.max_workers);
  for (size_t w = 0; w < options_.max_workers; ++w) {
    if (worker_dead_ == nullptr ||
        !worker_dead_[w].load(std::memory_order_acquire)) {
      live.push_back(w);
    }
  }
  const Assignment assignment =
      options_.orchestrator->Rebalance(loads, live.size());
  if (instrument) {
    size_t commissioned = 0;
    for (const auto& queues : assignment.worker_queues) {
      if (!queues.empty()) ++commissioned;
    }
    wired_.rebalances->Inc();
    wired_.active_workers->Set(static_cast<int64_t>(commissioned));
    tel->trace().Span(0, telemetry::kCatOrchestrator,
                      std::string(options_.orchestrator->name()) + ".rebalance",
                      t0, tel->NowNs() - t0, "workers", commissioned);
  }
  std::lock_guard<std::mutex> lock(assign_mu_);
  assignments_.assign(options_.max_workers, {});
  for (size_t b = 0; b < assignment.worker_queues.size() && b < live.size();
       ++b) {
    for (const uint32_t qid : assignment.worker_queues[b]) {
      if (ipc::QueuePair* qp = ipc_.FindQueue(qid); qp != nullptr) {
        assignments_[live[b]].push_back(qp);
      }
    }
  }
}

void Runtime::WaitQuiesce() {
  // 1. Every assigned, marked primary queue must be acknowledged by
  //    its worker; queues no worker drains are acknowledged here.
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<ipc::QueuePair*> assigned;
    {
      std::lock_guard<std::mutex> lock(assign_mu_);
      for (const auto& queues : assignments_) {
        assigned.insert(assigned.end(), queues.begin(), queues.end());
      }
    }
    bool all_acked = true;
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) {
      if (!qp->update_pending()) continue;
      const bool is_assigned =
          std::find(assigned.begin(), assigned.end(), qp) != assigned.end();
      if (!is_assigned) qp->AckUpdate();
      if (!qp->update_acked()) all_acked = false;
    }
    if (all_acked) break;
    std::this_thread::yield();
  }
  // 2. In-flight requests and intermediate queues must drain.
  while (!stop_.load(std::memory_order_acquire)) {
    if (in_flight_.load(std::memory_order_acquire) == 0) {
      bool drained = true;
      for (ipc::QueuePair* qp : ipc_.IntermediateQueues()) {
        if (qp->PendingSubmissions() != 0) {
          drained = false;
          break;
        }
      }
      if (drained) break;
    }
    std::this_thread::yield();
  }
}

}  // namespace labstor::core
