#include "core/sim_runtime.h"

#include <algorithm>

namespace labstor::core {

SimRuntime::SimRuntime(sim::Environment& env, simdev::DeviceRegistry& devices,
                       size_t num_workers, const sim::SoftwareCosts& costs)
    : env_(env), costs_(costs) {
  ctx_.devices = &devices;
  ctx_.costs = &costs_;
  ctx_.num_workers = static_cast<uint32_t>(num_workers);
  ctx_.ns_epoch = &namespace_.epoch_ref();
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<sim::Resource>(env_, 1));
  }
  busy_ns_.assign(num_workers, 0);
  worker_requests_.assign(num_workers, 0);
  worker_irq_waits_.assign(num_workers, 0);
  worker_active_.assign(num_workers, true);
}

void SimRuntime::SetNumaTopology(const ipc::NumaTopology& topo,
                                 const sim::NumaCosts& costs,
                                 bool rehome_on_rebalance) {
  numa_topo_ = topo;
  numa_costs_ = costs;
  rehome_on_rebalance_ = rehome_on_rebalance;
  numa_enabled_ = topo.nodes > 1 && topo.cores_per_node > 0;
  // Re-home queues registered before the topology was known.
  for (auto& [qid, state] : queues_) {
    state.home_node =
        numa_topo_.NodeOfCore(static_cast<uint32_t>(state.worker));
  }
}

Result<Stack*> SimRuntime::Mount(const StackSpec& spec) {
  return namespace_.Mount(spec, registry_, ctx_, ipc::kRuntimeCreds);
}

Result<Stack*> SimRuntime::MountYaml(const std::string& yaml) {
  LABSTOR_ASSIGN_OR_RETURN(spec, StackSpec::Parse(yaml));
  return Mount(spec);
}

void SimRuntime::AttachTelemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  ctx_.telemetry = tel;
  if (tel != nullptr) tel->set_virtual_time(true);
}

void SimRuntime::RegisterQueue(uint32_t qid, sim::Time est_processing) {
  QueueState state;
  state.est_processing = est_processing;
  state.worker = qid % workers_.size();  // provisional round-robin
  state.home_node = numa_topo_.NodeOfCore(static_cast<uint32_t>(state.worker));
  queues_[qid] = state;
}

void SimRuntime::ApplyAssignment(const Assignment& assignment) {
  worker_active_.assign(workers_.size(), false);
  for (size_t w = 0; w < assignment.worker_queues.size() && w < workers_.size();
       ++w) {
    for (const uint32_t qid : assignment.worker_queues[w]) {
      const auto it = queues_.find(qid);
      if (it != queues_.end()) {
        it->second.worker = w;
        worker_active_[w] = true;
        if (numa_enabled_ && rehome_on_rebalance_) {
          const uint32_t wnode =
              numa_topo_.NodeOfCore(static_cast<uint32_t>(w));
          if (wnode != it->second.home_node) {
            // Migrate the queue's segment to the new worker's socket
            // so its steady-state access is local again.
            it->second.home_node = wnode;
            ++queues_rehomed_;
            if (Traced()) {
              tel_->metrics().GetCounter("numa.queue.rehomed")->Inc(w);
            }
          }
        }
      }
    }
  }
  if (Traced()) {
    const size_t active = ActiveWorkers();
    tel_->metrics().GetCounter("orchestrator.rebalance.count")->Inc();
    tel_->metrics()
        .GetGauge("orchestrator.workers.active")
        ->Set(static_cast<int64_t>(active));
    // The decision itself is instantaneous in virtual time (dur 0);
    // the span marks *when* the load was repartitioned.
    tel_->trace().Span(0, telemetry::kCatOrchestrator, "rebalance",
                       env_.now(), 0, "workers", active);
  }
}

std::vector<QueueLoad> SimRuntime::SnapshotLoads() const {
  std::vector<QueueLoad> loads;
  loads.reserve(queues_.size());
  for (const auto& [qid, state] : queues_) {
    // Load signal = instantaneous backlog plus the arrivals observed
    // over the last epoch (sustained-rate information the capacity
    // floor needs).
    loads.push_back(QueueLoad{qid, state.est_processing,
                              state.backlog + state.arrivals_in_epoch});
  }
  // Deterministic order (unordered_map iteration varies).
  std::sort(loads.begin(), loads.end(),
            [](const QueueLoad& a, const QueueLoad& b) { return a.qid < b.qid; });
  return loads;
}

sim::Task<void> SimRuntime::RebalanceLoop(WorkOrchestrator* policy,
                                          sim::Time period) {
  while (true) {
    co_await env_.Delay(period);
    // Stop when the simulation is otherwise idle (this process would
    // keep the event queue alive forever).
    if (env_.pending_events() == 0) co_return;
    ApplyAssignment(policy->Rebalance(SnapshotLoads(), workers_.size()));
    for (auto& [qid, state] : queues_) state.arrivals_in_epoch = 0;
  }
}

void SimRuntime::StartRebalancer(WorkOrchestrator* policy, sim::Time period) {
  ApplyAssignment(policy->Rebalance(SnapshotLoads(), workers_.size()));
  env_.Spawn(RebalanceLoop(policy, period));
}

sim::Task<void> SimRuntime::TimedDevOp(ExecTrace::DevOp op, uint32_t worker) {
  const sim::Time t0 = env_.now();
  co_await op.device->OccupyTimed(op.op, op.channel, op.offset, op.length);
  // Completion delivery (DESIGN.md §13): a polled CQE is observed the
  // moment it lands (the observation cost is the spin the waiter is
  // already burning); an interrupt-mode device charges the controller's
  // delivery latency plus the software IRQ path before the waiter sees
  // the CQE — in exchange the waiter spun zero cycles meanwhile (see
  // AvgBusyCores). Functional bytes moved at dispatch time, so the
  // recovery-visible state is identical across modes.
  sim::Time delivery = 0;
  if (op.device->completion_mode() == simdev::CompletionMode::kInterrupt) {
    delivery = costs_.irq_completion + op.device->params().interrupt_latency;
    co_await env_.Delay(delivery);
    ++interrupt_completions_;
  } else {
    ++polled_completions_;
  }
  if (Traced()) {
    tel_->trace().Span(worker, telemetry::kCatDevice, op.Summary(), t0,
                       env_.now() - t0, "channel", op.channel);
    tel_->metrics()
        .GetCounter(delivery != 0 ? "device.completion.interrupts"
                                  : "device.completion.polled")
        ->Inc(worker);
    if (delivery != 0) {
      tel_->metrics()
          .GetHistogram("device.wakeup.latency_ns")
          ->Record(delivery, worker);
    }
  }
}

ExecTrace* SimRuntime::AcquireTrace() {
  if (!free_traces_.empty()) {
    ExecTrace* trace = free_traces_.back();
    free_traces_.pop_back();
    return trace;
  }
  trace_pool_.push_back(std::make_unique<ExecTrace>());
  trace_pool_.back()->Reserve(/*sw_entries=*/32, /*dev_ops=*/16);
  return trace_pool_.back().get();
}

void SimRuntime::ReleaseTrace(ExecTrace* trace) {
  trace->Clear();
  free_traces_.push_back(trace);
}

sim::Task<Status> SimRuntime::Execute(uint32_t qid, Stack& stack,
                                      ipc::Request& req) {
  // Functional execution is immediate; the trace carries the time.
  const TraceLease lease(this, AcquireTrace());
  ExecTrace& trace = *lease.trace;
  // Pointer, not iterator: QueueState nodes are stable across rehash,
  // iterators are not, and this value lives across suspensions.
  const auto qit = queues_.find(qid);
  QueueState* qstate = qit != queues_.end() ? &qit->second : nullptr;
  req.worker = static_cast<uint32_t>(qstate != nullptr ? qstate->worker
                                                       : qid % workers_.size());
  exec_scratch_.Reset(stack, ctx_, trace);
  const Status st = exec_scratch_.Dispatch(req);
  req.Complete(st.ok() ? StatusCode::kOk : st.code(), req.result_u64);
  const sim::Time submitted = env_.now();
  // Replays the ledger as per-mod "mod" spans in virtual time: spans
  // are stamped arithmetically across the one Delay covering the
  // worker visit, so tracing never perturbs the event schedule.
  const auto emit_mod_spans = [this](const ExecTrace& t, sim::Time at,
                                     uint32_t wid) {
    for (const ExecTrace::SwEntry& e : t.software()) {
      tel_->trace().Span(wid, telemetry::kCatMod, std::string(e.component),
                         at, e.cost);
      at += e.cost;
    }
  };

  if (stack.exec_mode() == ExecMode::kSync) {
    // Decentralized: all software runs in the client; no IPC.
    co_await env_.Delay(Perturb("submit"));
    const sim::Time sw_start = env_.now();
    co_await env_.Delay(trace.TotalSoftware());
    if (Traced()) emit_mod_spans(trace, sw_start, req.worker);
    for (const ExecTrace::DevOp& op : trace.device_ops()) {
      if (op.async) {
        env_.Spawn(TimedDevOp(op, req.worker));
      } else {
        co_await TimedDevOp(op, req.worker);
      }
    }
    ++requests_done_;
    if (Traced()) {
      trace.PublishTo(*tel_, req.worker);
      tel_->metrics().GetCounter("runtime.worker.requests")->Inc(req.worker);
      tel_->metrics()
          .GetHistogram("runtime.request.latency_ns")
          ->Record(env_.now() - submitted, req.worker);
    }
    co_return st;
  }

  // Async: shared-memory submission to the assigned worker.
  co_await env_.Delay(costs_.shm_submit + Perturb("submit"));
  if (qstate == nullptr) qstate = &queues_.try_emplace(qid).first->second;
  QueueState& queue = *qstate;
  ++queue.backlog;
  ++queue.arrivals_in_epoch;
  sim::Resource& worker = *workers_[queue.worker % workers_.size()];
  const size_t wid = queue.worker % workers_.size();
  // Cross-socket queue access: a worker draining a queue whose segment
  // lives on another node pays interconnect hops per visit (the
  // request lines on the drain, a bare hop on the completion post).
  sim::Time numa_drain = 0, numa_reap = 0;
  if (numa_enabled_) {
    const uint32_t wnode = numa_topo_.NodeOfCore(static_cast<uint32_t>(wid));
    if (wnode != queue.home_node) {
      numa_drain = numa_costs_.RemoteAccess(req.length);
      numa_reap = numa_costs_.remote_hop;
      ++remote_queue_accesses_;
      if (Traced()) {
        tel_->metrics().GetCounter("numa.access.remote")->Inc(wid);
      }
    }
  }
  const sim::Time enqueued = env_.now();
  co_await worker.Acquire();
  --queue.backlog;
  if (Traced()) {
    tel_->trace().Span(static_cast<uint32_t>(wid), telemetry::kCatQueue,
                       "queue.wait", enqueued, env_.now() - enqueued, "qid",
                       qid);
    tel_->metrics()
        .GetHistogram("ipc.queue.wait_ns")
        ->Record(env_.now() - enqueued, wid);
    tel_->metrics().GetHistogram("ipc.queue.depth")->Record(queue.backlog, wid);
  }
  sim::Time start = env_.now();
  co_await env_.Delay(costs_.worker_poll + numa_drain +
                      Perturb("worker_poll") + trace.TotalSoftware());
  if (Traced()) {
    emit_mod_spans(trace, start + costs_.worker_poll + numa_drain,
                   static_cast<uint32_t>(wid));
  }
  busy_ns_[wid] += env_.now() - start;
  ++worker_requests_[wid];
  worker.Release();
  // Device ops complete asynchronously from the worker's perspective;
  // the client polls the CQ for the data ops, while async (log/group-
  // commit) writes never gate completion.
  bool waited_on_device = false;
  bool irq_wait = false;
  for (const ExecTrace::DevOp& op : trace.device_ops()) {
    if (op.async) {
      env_.Spawn(TimedDevOp(op, static_cast<uint32_t>(wid)));
    } else {
      if (op.device->completion_mode() ==
          simdev::CompletionMode::kInterrupt) {
        irq_wait = true;
      }
      co_await TimedDevOp(op, static_cast<uint32_t>(wid));
      waited_on_device = true;
    }
  }
  if (waited_on_device) {
    // The worker reaps the device CQE and posts the client's
    // completion (paper: workers poll intermediate completions and
    // continue the DAG's message-passing). Pure metadata requests
    // complete within the first worker visit and skip this hop.
    co_await worker.Acquire();
    start = env_.now();
    co_await env_.Delay(costs_.worker_poll + costs_.completion_post +
                        numa_reap + Perturb("completion"));
    busy_ns_[wid] += env_.now() - start;
    ++worker_requests_[wid];
    // An interrupt-delivered completion woke the worker — it slept
    // through the device time instead of burning its spin budget.
    if (irq_wait) ++worker_irq_waits_[wid];
    worker.Release();
  }
  co_await env_.Delay(costs_.shm_complete + Perturb("shm_complete"));
  ++requests_done_;
  if (Traced()) {
    trace.PublishTo(*tel_, static_cast<uint32_t>(wid));
    tel_->metrics().GetCounter("runtime.worker.requests")->Inc(wid);
    tel_->metrics()
        .GetHistogram("runtime.request.latency_ns")
        ->Record(env_.now() - submitted, wid);
  }
  co_return st;
}

double SimRuntime::AvgBusyCores(sim::Time elapsed) const {
  if (elapsed == 0) return 0.0;
  // A worker's core time = request processing + the busy-polling it
  // burns between requests (capped per request by the idle-backoff
  // threshold, and by the wall clock). This is the CPU the dynamic
  // policy saves by decommissioning workers.
  double total = 0;
  for (size_t w = 0; w < workers_.size(); ++w) {
    // Interrupt-delivered completions replace a spin gap with a sleep:
    // the worker visits still happened (worker_requests_), but the
    // idle-poll budget for those gaps was never burned.
    const uint64_t spinning_gaps =
        worker_requests_[w] > worker_irq_waits_[w]
            ? worker_requests_[w] - worker_irq_waits_[w]
            : 0;
    const double spin = static_cast<double>(spinning_gaps) *
                        static_cast<double>(costs_.worker_spin_cap);
    const double core_ns =
        std::min(static_cast<double>(elapsed),
                 static_cast<double>(busy_ns_[w]) + spin);
    total += core_ns;
  }
  return total / static_cast<double>(elapsed);
}

size_t SimRuntime::ActiveWorkers() const {
  size_t active = 0;
  for (const bool on : worker_active_) active += on ? 1 : 0;
  return active;
}

}  // namespace labstor::core
