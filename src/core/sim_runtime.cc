#include "core/sim_runtime.h"

#include <algorithm>

namespace labstor::core {

SimRuntime::SimRuntime(sim::Environment& env, simdev::DeviceRegistry& devices,
                       size_t num_workers, const sim::SoftwareCosts& costs)
    : env_(env), costs_(costs) {
  ctx_.devices = &devices;
  ctx_.costs = &costs_;
  ctx_.num_workers = static_cast<uint32_t>(num_workers);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<sim::Resource>(env_, 1));
  }
  busy_ns_.assign(num_workers, 0);
  worker_requests_.assign(num_workers, 0);
  worker_active_.assign(num_workers, true);
}

Result<Stack*> SimRuntime::Mount(const StackSpec& spec) {
  return namespace_.Mount(spec, registry_, ctx_, ipc::kRuntimeCreds);
}

Result<Stack*> SimRuntime::MountYaml(const std::string& yaml) {
  LABSTOR_ASSIGN_OR_RETURN(spec, StackSpec::Parse(yaml));
  return Mount(spec);
}

void SimRuntime::RegisterQueue(uint32_t qid, sim::Time est_processing) {
  QueueState state;
  state.est_processing = est_processing;
  state.worker = qid % workers_.size();  // provisional round-robin
  queues_[qid] = state;
}

void SimRuntime::ApplyAssignment(const Assignment& assignment) {
  worker_active_.assign(workers_.size(), false);
  for (size_t w = 0; w < assignment.worker_queues.size() && w < workers_.size();
       ++w) {
    for (const uint32_t qid : assignment.worker_queues[w]) {
      const auto it = queues_.find(qid);
      if (it != queues_.end()) {
        it->second.worker = w;
        worker_active_[w] = true;
      }
    }
  }
}

std::vector<QueueLoad> SimRuntime::SnapshotLoads() const {
  std::vector<QueueLoad> loads;
  loads.reserve(queues_.size());
  for (const auto& [qid, state] : queues_) {
    // Load signal = instantaneous backlog plus the arrivals observed
    // over the last epoch (sustained-rate information the capacity
    // floor needs).
    loads.push_back(QueueLoad{qid, state.est_processing,
                              state.backlog + state.arrivals_in_epoch});
  }
  // Deterministic order (unordered_map iteration varies).
  std::sort(loads.begin(), loads.end(),
            [](const QueueLoad& a, const QueueLoad& b) { return a.qid < b.qid; });
  return loads;
}

sim::Task<void> SimRuntime::RebalanceLoop(WorkOrchestrator* policy,
                                          sim::Time period) {
  while (true) {
    co_await env_.Delay(period);
    // Stop when the simulation is otherwise idle (this process would
    // keep the event queue alive forever).
    if (env_.pending_events() == 0) co_return;
    ApplyAssignment(policy->Rebalance(SnapshotLoads(), workers_.size()));
    for (auto& [qid, state] : queues_) state.arrivals_in_epoch = 0;
  }
}

void SimRuntime::StartRebalancer(WorkOrchestrator* policy, sim::Time period) {
  ApplyAssignment(policy->Rebalance(SnapshotLoads(), workers_.size()));
  env_.Spawn(RebalanceLoop(policy, period));
}

sim::Task<Status> SimRuntime::Execute(uint32_t qid, Stack& stack,
                                      ipc::Request& req) {
  // Functional execution is immediate; the trace carries the time.
  ExecTrace trace;
  StackExec exec(stack, ctx_, trace);
  req.worker = static_cast<uint32_t>(queues_.count(qid) != 0
                                         ? queues_[qid].worker
                                         : qid % workers_.size());
  const Status st = exec.Dispatch(req);
  req.Complete(st.ok() ? StatusCode::kOk : st.code(), req.result_u64);

  if (stack.exec_mode() == ExecMode::kSync) {
    // Decentralized: all software runs in the client; no IPC.
    co_await env_.Delay(trace.TotalSoftware());
    for (const ExecTrace::DevOp& op : trace.device_ops()) {
      if (op.async) {
        env_.Spawn(
            op.device->OccupyTimed(op.op, op.channel, op.offset, op.length));
      } else {
        co_await op.device->OccupyTimed(op.op, op.channel, op.offset,
                                        op.length);
      }
    }
    ++requests_done_;
    co_return st;
  }

  // Async: shared-memory submission to the assigned worker.
  co_await env_.Delay(costs_.shm_submit);
  QueueState& queue = queues_[qid];
  ++queue.backlog;
  ++queue.arrivals_in_epoch;
  sim::Resource& worker = *workers_[queue.worker % workers_.size()];
  const size_t wid = queue.worker % workers_.size();
  co_await worker.Acquire();
  --queue.backlog;
  sim::Time start = env_.now();
  co_await env_.Delay(costs_.worker_poll + trace.TotalSoftware());
  busy_ns_[wid] += env_.now() - start;
  ++worker_requests_[wid];
  worker.Release();
  // Device ops complete asynchronously from the worker's perspective;
  // the client polls the CQ for the data ops, while async (log/group-
  // commit) writes never gate completion.
  bool waited_on_device = false;
  for (const ExecTrace::DevOp& op : trace.device_ops()) {
    if (op.async) {
      env_.Spawn(
          op.device->OccupyTimed(op.op, op.channel, op.offset, op.length));
    } else {
      co_await op.device->OccupyTimed(op.op, op.channel, op.offset, op.length);
      waited_on_device = true;
    }
  }
  if (waited_on_device) {
    // The worker reaps the device CQE and posts the client's
    // completion (paper: workers poll intermediate completions and
    // continue the DAG's message-passing). Pure metadata requests
    // complete within the first worker visit and skip this hop.
    co_await worker.Acquire();
    start = env_.now();
    co_await env_.Delay(costs_.worker_poll + costs_.completion_post);
    busy_ns_[wid] += env_.now() - start;
    ++worker_requests_[wid];
    worker.Release();
  }
  co_await env_.Delay(costs_.shm_complete);
  ++requests_done_;
  co_return st;
}

double SimRuntime::AvgBusyCores(sim::Time elapsed) const {
  if (elapsed == 0) return 0.0;
  // A worker's core time = request processing + the busy-polling it
  // burns between requests (capped per request by the idle-backoff
  // threshold, and by the wall clock). This is the CPU the dynamic
  // policy saves by decommissioning workers.
  double total = 0;
  for (size_t w = 0; w < workers_.size(); ++w) {
    const double spin = static_cast<double>(worker_requests_[w]) *
                        static_cast<double>(costs_.worker_spin_cap);
    const double core_ns =
        std::min(static_cast<double>(elapsed),
                 static_cast<double>(busy_ns_[w]) + spin);
    total += core_ns;
  }
  return total / static_cast<double>(elapsed);
}

size_t SimRuntime::ActiveWorkers() const {
  size_t active = 0;
  for (const bool on : worker_active_) active += on ? 1 : 0;
  return active;
}

}  // namespace labstor::core
