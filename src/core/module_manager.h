// Module Manager: live-upgradable, hot-pluggable LabMods (§III-C2).
//
// Upgrade requests name a LabMod (by mod name), a target version, and
// a protocol. The centralized protocol quiesces the Runtime: primary
// queues are marked UPDATE_PENDING, workers acknowledge, intermediate
// traffic drains, every registry instance of the mod is replaced (with
// StateUpdate migrating state), stack bindings refresh, and queues
// reopen. The decentralized protocol performs the same swap but also
// refreshes every connected client's view (client-resident operators).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/module_registry.h"
#include "core/stack.h"
#include "ipc/ipc_manager.h"

namespace labstor::core {

// Centralized: quiesce every primary queue at once (full barrier),
// swap, reopen — the protocol §III-C2 details. Decentralized: the
// update propagates to clients one at a time; each client's queue is
// paused, its view refreshed, and reopened before the next (a rolling
// upgrade — at most one queue is ever paused, trading total upgrade
// latency for per-client availability).
enum class UpgradeKind : uint8_t { kCentralized, kDecentralized };

struct UpgradeRequest {
  std::string mod_name;
  uint32_t new_version = 0;  // 0 = latest registered
  UpgradeKind kind = UpgradeKind::kCentralized;
  // Size of the "updated code object" (the paper's dummy module is
  // 1MB on NVMe); benches charge its load time.
  uint64_t code_size_bytes = 1 << 20;
};

class ModuleManager {
 public:
  ModuleManager(ModuleRegistry& registry, StackNamespace& ns,
                ipc::IpcManager& ipc)
      : registry_(registry), ns_(ns), ipc_(ipc) {}

  // The modify.mods API: enqueue an upgrade.
  void SubmitUpgrade(UpgradeRequest request);
  size_t pending() const;
  // Requests that performed at least one real instance swap.
  uint64_t upgrades_applied() const { return applied_; }
  // Requests that completed successfully without swapping anything
  // (every instance already ran the target version). Counted apart
  // from upgrades_applied so "how many times did code actually change"
  // stays answerable.
  uint64_t noop_upgrades() const { return noops_; }

  // Hook invoked once per applied upgrade, before the swap — models
  // loading the updated code object from storage (the dominant cost in
  // the paper's Table I: ~5ms for a 1MB module on NVMe). Default: none.
  using CodeLoadFn = std::function<void(const UpgradeRequest&)>;
  void SetCodeLoadFn(CodeLoadFn fn) { code_load_ = std::move(fn); }

  // Test/DST observability: invoked (from the upgrading thread) at
  // named points of the upgrade protocols —
  //   "centralized.quiesced"        every primary paused, traffic drained
  //   "centralized.applied"         swaps + rebinding done, still paused
  //   "decentralized.swap.quiesced" global swap barrier reached
  //   "decentralized.roll.paused"   one client's queue paused (rolling)
  // The hook runs with no ModuleManager/IpcManager lock held, so it
  // may connect clients, submit requests, or inspect queues.
  using PhaseHook = std::function<void(std::string_view)>;
  void SetPhaseHook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  // Invoked by the Runtime Admin every t ms. `wait_quiesce` blocks
  // until all marked primary queues are acknowledged and in-flight
  // work has drained; the Runtime supplies a worker-aware
  // implementation (tests may pass a no-op).
  Status ProcessUpgrades(ModContext& ctx,
                         const std::function<void()>& wait_quiesce);

 private:
  // Applies one request to every instance of its mod (all-or-nothing
  // via ModuleRegistry::UpgradeAll); reports how many instances
  // actually swapped vs were already on the target version.
  Status ApplyOne(const UpgradeRequest& request, ModContext& ctx,
                  size_t* swapped, size_t* noops);
  void Phase(std::string_view phase) const {
    if (phase_hook_) phase_hook_(phase);
  }

  ModuleRegistry& registry_;
  StackNamespace& ns_;
  ipc::IpcManager& ipc_;
  mutable std::mutex mu_;
  std::deque<UpgradeRequest> queue_;
  CodeLoadFn code_load_;
  PhaseHook phase_hook_;
  uint64_t applied_ = 0;
  uint64_t noops_ = 0;
};

}  // namespace labstor::core
