// ExecTrace: the time ledger attached to each request execution.
//
// LabMods run their functional work synchronously (data actually moves
// through the SparseStore-backed devices) and *record* their software
// cost and any device operations here. In real mode the trace is
// informational (Fig. 4a-style anatomy); in simulated mode the DES
// worker replays the ledger as virtual-time delays and contended
// device-channel occupancy — the mechanism that lets one mod
// implementation serve both correctness tests and figure benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/environment.h"
#include "simdev/sim_device.h"
#include "telemetry/telemetry.h"

namespace labstor::core {

class ExecTrace {
 public:
  struct SwEntry {
    std::string_view component;  // "labfs", "lru_cache", "ipc", ...
    sim::Time cost = 0;
  };
  struct DevOp {
    simdev::SimDevice* device = nullptr;
    simdev::IoOp op = simdev::IoOp::kRead;
    uint32_t channel = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    // Async ops (log appends, group-committed journal writes) occupy
    // the device but do not delay request completion.
    bool async = false;

    // Short human/trace label: "read 4096B ch0" (+" async").
    std::string Summary() const {
      std::string s;
      switch (op) {
        case simdev::IoOp::kRead: s = "read"; break;
        case simdev::IoOp::kWrite: s = "write"; break;
        case simdev::IoOp::kZoneReset: s = "zone_reset"; break;
        case simdev::IoOp::kZoneFinish: s = "zone_finish"; break;
      }
      s += ' ';
      s += std::to_string(length);
      s += "B ch";
      s += std::to_string(channel);
      if (async) s += " async";
      return s;
    }
  };

  // Per-component software totals in first-appearance order (the
  // ledger's natural stack order) — the shared aggregation behind the
  // TraceRecorder wiring and bench_anatomy's table.
  struct ComponentTotal {
    std::string_view component;
    sim::Time total = 0;
  };
  std::vector<ComponentTotal> Summarize() const {
    std::vector<ComponentTotal> totals;
    for (const SwEntry& e : sw_) {
      bool found = false;
      for (ComponentTotal& t : totals) {
        if (t.component == e.component) {
          t.total += e.cost;
          found = true;
          break;
        }
      }
      if (!found) totals.push_back(ComponentTotal{e.component, e.cost});
    }
    return totals;
  }

  void Charge(std::string_view component, sim::Time cost) {
    sw_.push_back(SwEntry{component, cost});
  }
  void Device(simdev::SimDevice* device, simdev::IoOp op, uint32_t channel,
              uint64_t offset, uint64_t length, bool async = false) {
    dev_ops_.push_back(DevOp{device, op, channel, offset, length, async});
  }

  const std::vector<SwEntry>& software() const { return sw_; }
  const std::vector<DevOp>& device_ops() const { return dev_ops_; }

  sim::Time TotalSoftware() const {
    sim::Time total = 0;
    for (const SwEntry& e : sw_) total += e.cost;
    return total;
  }
  sim::Time SoftwareFor(std::string_view component) const {
    sim::Time total = 0;
    for (const SwEntry& e : sw_) {
      if (e.component == component) total += e.cost;
    }
    return total;
  }

  // Telemetry tap: publish this ledger's per-mod software charges and
  // device ops as sharded metrics under `mod.<component>.charged_ns` /
  // `device.<r|w>.{ops,bytes}`. Mods keep calling Charge()/Device()
  // unchanged; the runtime taps the ledger once per request.
  void PublishTo(telemetry::Telemetry& tel, uint32_t worker) const {
    telemetry::MetricsRegistry& metrics = tel.metrics();
    for (const ComponentTotal& t : Summarize()) {
      metrics
          .GetCounter("mod." + std::string(t.component) + ".charged_ns")
          ->Add(t.total, worker);
    }
    uint64_t read_ops = 0, read_bytes = 0, write_ops = 0, write_bytes = 0;
    uint64_t zone_ops = 0;
    for (const DevOp& op : dev_ops_) {
      switch (op.op) {
        case simdev::IoOp::kRead:
          ++read_ops;
          read_bytes += op.length;
          break;
        case simdev::IoOp::kWrite:
          ++write_ops;
          write_bytes += op.length;
          break;
        case simdev::IoOp::kZoneReset:
        case simdev::IoOp::kZoneFinish:
          // Zone-management commands move no data — counting them as
          // 0-byte writes would skew device.write.ops.
          ++zone_ops;
          break;
      }
    }
    if (read_ops != 0) {
      metrics.GetCounter("device.read.ops")->Add(read_ops, worker);
      metrics.GetCounter("device.read.bytes")->Add(read_bytes, worker);
    }
    if (write_ops != 0) {
      metrics.GetCounter("device.write.ops")->Add(write_ops, worker);
      metrics.GetCounter("device.write.bytes")->Add(write_bytes, worker);
    }
    if (zone_ops != 0) {
      metrics.GetCounter("device.zone.ops")->Add(zone_ops, worker);
    }
  }

  void Clear() {
    sw_.clear();
    dev_ops_.clear();
  }

  // Pre-size the ledger so steady-state executions (per-worker reused
  // traces) never grow the vectors on the hot path.
  void Reserve(size_t sw_entries, size_t dev_ops) {
    sw_.reserve(sw_entries);
    dev_ops_.reserve(dev_ops);
  }

 private:
  std::vector<SwEntry> sw_;
  std::vector<DevOp> dev_ops_;
};

}  // namespace labstor::core
