// ExecTrace: the time ledger attached to each request execution.
//
// LabMods run their functional work synchronously (data actually moves
// through the SparseStore-backed devices) and *record* their software
// cost and any device operations here. In real mode the trace is
// informational (Fig. 4a-style anatomy); in simulated mode the DES
// worker replays the ledger as virtual-time delays and contended
// device-channel occupancy — the mechanism that lets one mod
// implementation serve both correctness tests and figure benches.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/environment.h"
#include "simdev/sim_device.h"

namespace labstor::core {

class ExecTrace {
 public:
  struct SwEntry {
    std::string_view component;  // "labfs", "lru_cache", "ipc", ...
    sim::Time cost = 0;
  };
  struct DevOp {
    simdev::SimDevice* device = nullptr;
    simdev::IoOp op = simdev::IoOp::kRead;
    uint32_t channel = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    // Async ops (log appends, group-committed journal writes) occupy
    // the device but do not delay request completion.
    bool async = false;
  };

  void Charge(std::string_view component, sim::Time cost) {
    sw_.push_back(SwEntry{component, cost});
  }
  void Device(simdev::SimDevice* device, simdev::IoOp op, uint32_t channel,
              uint64_t offset, uint64_t length, bool async = false) {
    dev_ops_.push_back(DevOp{device, op, channel, offset, length, async});
  }

  const std::vector<SwEntry>& software() const { return sw_; }
  const std::vector<DevOp>& device_ops() const { return dev_ops_; }

  sim::Time TotalSoftware() const {
    sim::Time total = 0;
    for (const SwEntry& e : sw_) total += e.cost;
    return total;
  }
  sim::Time SoftwareFor(std::string_view component) const {
    sim::Time total = 0;
    for (const SwEntry& e : sw_) {
      if (e.component == component) total += e.cost;
    }
    return total;
  }

  void Clear() {
    sw_.clear();
    dev_ops_.clear();
  }

 private:
  std::vector<SwEntry> sw_;
  std::vector<DevOp> dev_ops_;
};

}  // namespace labstor::core
