#include "core/module_manager.h"

#include "common/logging.h"

namespace labstor::core {

void ModuleManager::SubmitUpgrade(UpgradeRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(request));
}

size_t ModuleManager::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Status ModuleManager::ApplyOne(const UpgradeRequest& request, ModContext& ctx,
                               size_t* swapped, size_t* noops) {
  if (code_load_) code_load_(request);
  // UpgradeAll resolves the target version once (every instance lands
  // on the same code object) and stages all fresh instances before
  // swapping any, so a failure on instance N of M leaves all M on
  // their old version — never a mixed-version registry.
  auto result = registry_.UpgradeAll(request.mod_name, request.new_version, ctx);
  if (!result.ok()) return result.status();
  *swapped += result->swapped;
  *noops += result->noops;
  return Status::Ok();
}

Status ModuleManager::ProcessUpgrades(
    ModContext& ctx, const std::function<void()>& wait_quiesce) {
  std::unique_lock<std::mutex> lock(mu_);
  // Early-out before constructing the batch deque: libstdc++'s deque
  // allocates on default construction, which would make every idle
  // admin pass heap-churn.
  if (queue_.empty()) return Status::Ok();
  std::deque<UpgradeRequest> batch;
  batch.swap(queue_);
  lock.unlock();

  // Split by protocol: centralized requests share one global quiesce;
  // decentralized requests roll across clients afterwards.
  std::deque<UpgradeRequest> centralized;
  std::deque<UpgradeRequest> decentralized;
  for (UpgradeRequest& request : batch) {
    (request.kind == UpgradeKind::kCentralized ? centralized : decentralized)
        .push_back(std::move(request));
  }

  Status first_error;
  const auto note = [&](const UpgradeRequest& request, const Status& st,
                        size_t swapped) {
    if (!st.ok()) {
      LOG_WARN << "upgrade of '" << request.mod_name
               << "' failed: " << st.ToString();
      if (first_error.ok()) first_error = st;
    } else if (swapped > 0) {
      ++applied_;
    } else {
      ++noops_;
    }
  };

  if (!centralized.empty()) {
    // Quiesce everything: stop new submissions, wait for workers to
    // acknowledge and intermediate traffic to complete. The mark and
    // clear sweeps live in the IpcManager (Begin/EndQuiesce) under its
    // connection lock, so a queue registering mid-upgrade is born
    // paused and is reopened by the same EndQuiesce as everyone else —
    // it can neither admit traffic through the quiesce nor be left
    // pending forever.
    ipc_.BeginQuiesce();
    wait_quiesce();
    Phase("centralized.quiesced");
    for (const UpgradeRequest& request : centralized) {
      size_t swapped = 0;
      size_t noops = 0;
      // Sequenced: note()'s swapped argument is passed by value, so
      // ApplyOne must run before the call is built.
      const Status st = ApplyOne(request, ctx, &swapped, &noops);
      note(request, st, swapped);
    }
    // Stacks must point at the new instances before traffic resumes.
    const Status refresh = ns_.RefreshBindings(registry_);
    if (!refresh.ok() && first_error.ok()) first_error = refresh;
    Phase("centralized.applied");
    ipc_.EndQuiesce();
  }

  for (const UpgradeRequest& request : decentralized) {
    // The instance swap itself still needs a global barrier (the old
    // code object is destroyed; no worker may be inside it)...
    ipc_.BeginQuiesce();
    wait_quiesce();
    Phase("decentralized.swap.quiesced");
    size_t swapped = 0;
    size_t noops = 0;
    const Status st = ApplyOne(request, ctx, &swapped, &noops);
    note(request, st, swapped);
    const Status refresh = ns_.RefreshBindings(registry_);
    if (!refresh.ok() && first_error.ok()) first_error = refresh;
    ipc_.EndQuiesce();
    // ...then the update propagates client by client: each connected
    // client's view is refreshed with only that client's queue briefly
    // paused — the per-client work that makes decentralized upgrades
    // slightly slower in Table I.
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) {
      qp->MarkUpdatePending();
      wait_quiesce();  // drains just this pause (others stay open)
      Phase("decentralized.roll.paused");
      qp->ClearUpdate();
    }
  }
  return first_error;
}

}  // namespace labstor::core
