#include "core/module_manager.h"

#include "common/logging.h"

namespace labstor::core {

void ModuleManager::SubmitUpgrade(UpgradeRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(request));
}

size_t ModuleManager::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Status ModuleManager::ApplyOne(const UpgradeRequest& request,
                               ModContext& ctx) {
  if (code_load_) code_load_(request);
  // Resolve the target version once so every instance lands on the
  // same code object.
  uint32_t version = request.new_version;
  if (version == 0) {
    auto latest = ModFactory::Global().LatestVersion(request.mod_name);
    if (!latest.ok()) return latest.status();
    version = *latest;
  }
  const std::vector<std::string> instances =
      registry_.InstancesOf(request.mod_name);
  if (instances.empty()) {
    return Status::NotFound("no running instances of '" + request.mod_name +
                            "'");
  }
  for (const std::string& uuid : instances) {
    LABSTOR_RETURN_IF_ERROR(registry_.Upgrade(uuid, version, ctx));
  }
  return Status::Ok();
}

Status ModuleManager::ProcessUpgrades(
    ModContext& ctx, const std::function<void()>& wait_quiesce) {
  std::unique_lock<std::mutex> lock(mu_);
  // Early-out before constructing the batch deque: libstdc++'s deque
  // allocates on default construction, which would make every idle
  // admin pass heap-churn.
  if (queue_.empty()) return Status::Ok();
  std::deque<UpgradeRequest> batch;
  batch.swap(queue_);
  lock.unlock();

  // Split by protocol: centralized requests share one global quiesce;
  // decentralized requests roll across clients afterwards.
  std::deque<UpgradeRequest> centralized;
  std::deque<UpgradeRequest> decentralized;
  for (UpgradeRequest& request : batch) {
    (request.kind == UpgradeKind::kCentralized ? centralized : decentralized)
        .push_back(std::move(request));
  }

  Status first_error;
  const auto note = [&](const UpgradeRequest& request, const Status& st) {
    if (!st.ok()) {
      LOG_WARN << "upgrade of '" << request.mod_name
               << "' failed: " << st.ToString();
      if (first_error.ok()) first_error = st;
    } else {
      ++applied_;
    }
  };

  if (!centralized.empty()) {
    // Quiesce everything: stop new submissions, wait for workers to
    // acknowledge and intermediate traffic to complete.
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) qp->MarkUpdatePending();
    wait_quiesce();
    for (const UpgradeRequest& request : centralized) {
      note(request, ApplyOne(request, ctx));
    }
    // Stacks must point at the new instances before traffic resumes.
    const Status refresh = ns_.RefreshBindings(registry_);
    if (!refresh.ok() && first_error.ok()) first_error = refresh;
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) qp->ClearUpdate();
  }

  for (const UpgradeRequest& request : decentralized) {
    // The instance swap itself still needs a global barrier (the old
    // code object is destroyed; no worker may be inside it)...
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) qp->MarkUpdatePending();
    wait_quiesce();
    note(request, ApplyOne(request, ctx));
    const Status refresh = ns_.RefreshBindings(registry_);
    if (!refresh.ok() && first_error.ok()) first_error = refresh;
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) qp->ClearUpdate();
    // ...then the update propagates client by client: each connected
    // client's view is refreshed with only that client's queue briefly
    // paused — the per-client work that makes decentralized upgrades
    // slightly slower in Table I.
    for (ipc::QueuePair* qp : ipc_.PrimaryQueues()) {
      qp->MarkUpdatePending();
      wait_quiesce();  // drains just this pause (others stay open)
      qp->ClearUpdate();
    }
  }
  return first_error;
}

}  // namespace labstor::core
