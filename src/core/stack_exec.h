// StackExec: drives one request through a LabStack's DAG.
//
// Mods receive the exec object and call Forward(req) to hand the
// (possibly rewritten) request to their output vertices. Execution is
// a synchronous call chain — the functional behaviour of both exec
// modes; the *timing* difference between sync and async modes (IPC
// hop vs inline) is charged by the runtime/bench layer around this.
//
// A StackExec is rebindable: workers keep one per thread and Reset()
// it between requests so steady-state execution reuses the call-stack
// storage instead of heap-allocating a fresh exec per request.
#pragma once

#include <vector>

#include "common/status.h"
#include "core/exec_trace.h"
#include "core/labmod.h"
#include "core/stack.h"
#include "ipc/request.h"

namespace labstor::core {

class StackExec {
 public:
  // Unbound exec for per-worker scratch; bind with Reset() before use.
  StackExec() = default;

  StackExec(Stack& stack, ModContext& ctx, ExecTrace& trace)
      : stack_(&stack), ctx_(&ctx), trace_(&trace) {}

  // Rebind to a new (stack, ctx, trace) triple, keeping the call-stack
  // vector's capacity — the zero-allocation reuse path.
  void Reset(Stack& stack, ModContext& ctx, ExecTrace& trace) {
    stack_ = &stack;
    ctx_ = &ctx;
    trace_ = &trace;
    call_stack_.clear();
    fused_pos_ = kNotFused;
  }

  // Pre-size the call stack (depth ≥ the deepest stack's DAG) so
  // RunVertex never grows it mid-request.
  void ReserveCallStack(size_t depth) { call_stack_.reserve(depth); }

  // Run the request from the stack root. A fused stack (DESIGN.md §11)
  // takes the flat-chain path: Forward becomes an index increment and
  // a direct Process call, with no call-stack pushes and no per-vertex
  // output iteration. Per-mod wall-clock spans need the vertex walk,
  // so a real-time-telemetry dispatch falls back to the general path
  // (sim mode reconstructs spans from the ExecTrace and stays fused).
  Status Dispatch(ipc::Request& req) {
    if (stack_->is_fused()) {
      telemetry::Telemetry* tel = ctx_->telemetry;
      if (tel == nullptr || !tel->enabled() || tel->virtual_time()) {
        fused_pos_ = 0;
        const Status st = stack_->fused[0].mod->Process(req, *this);
        fused_pos_ = kNotFused;
        return st;
      }
    }
    return RunVertex(stack_->root, req);
  }

  // Run the outputs of the vertex currently executing. Errors
  // short-circuit: the first failing output wins.
  Status Forward(ipc::Request& req) {
    if (fused_pos_ != kNotFused) {
      const size_t next = fused_pos_ + 1;
      // Terminal vertex forwarding: the DAG walk iterates an empty
      // output list and returns Ok — match it.
      if (next >= stack_->fused.size()) return Status::Ok();
      fused_pos_ = next;
      const Status st = stack_->fused[next].mod->Process(req, *this);
      // Restore so a mod that Forwards more than once (cache fill
      // after a miss, FS issuing per-block ops) re-runs its own
      // downstream, exactly like the vertex walk would.
      fused_pos_ = next - 1;
      return st;
    }
    if (call_stack_.empty()) {
      return Status::Internal("Forward called outside vertex execution");
    }
    const Stack::Vertex& vertex = stack_->vertices[call_stack_.back()];
    for (const size_t out : vertex.outputs) {
      LABSTOR_RETURN_IF_ERROR(RunVertex(out, req));
    }
    return Status::Ok();
  }

  // Does the current vertex have anywhere to forward to?
  bool HasDownstream() const {
    if (fused_pos_ != kNotFused) {
      return fused_pos_ + 1 < stack_->fused.size();
    }
    return !call_stack_.empty() &&
           !stack_->vertices[call_stack_.back()].outputs.empty();
  }

  Stack& stack() { return *stack_; }
  ModContext& ctx() { return *ctx_; }
  ExecTrace& trace() { return *trace_; }

  // The vertex currently executing (valid during Process).
  size_t current_vertex() const {
    if (fused_pos_ != kNotFused) return stack_->fused[fused_pos_].vertex;
    return call_stack_.back();
  }

 private:
  static constexpr size_t kNotFused = static_cast<size_t>(-1);

  Status RunVertex(size_t idx, ipc::Request& req) {
    call_stack_.push_back(idx);
    Status st;
    // Real-mode per-mod spans (nested "mod" events, one per vertex).
    // Sim mode reconstructs these from the ExecTrace ledger in virtual
    // time instead, so wall-clock capture switches itself off there.
    telemetry::Telemetry* tel = ctx_->telemetry;
    if (tel != nullptr && tel->enabled() && !tel->virtual_time()) {
      const uint64_t t0 = tel->NowNs();
      st = stack_->vertices[idx].mod->Process(req, *this);
      tel->trace().Span(req.worker, telemetry::kCatMod,
                        stack_->vertices[idx].mod->mod_name(), t0,
                        tel->NowNs() - t0);
    } else {
      st = stack_->vertices[idx].mod->Process(req, *this);
    }
    call_stack_.pop_back();
    return st;
  }

  Stack* stack_ = nullptr;
  ModContext* ctx_ = nullptr;
  ExecTrace* trace_ = nullptr;
  std::vector<size_t> call_stack_;
  // Index into stack_->fused while a fused dispatch is running;
  // kNotFused selects the general DAG walk.
  size_t fused_pos_ = kNotFused;
};

}  // namespace labstor::core
