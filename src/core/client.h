// LabStor client library (paper §III-D "Application-Side").
//
// Wraps the IPC handshake, request submission, completion waiting, and
// crash recovery. Interface LabMods (GenericFS / GenericKVS) build on
// this to offer POSIX-like and KVS calls to applications.
#pragma once

#include <string>

#include "common/status.h"
#include "core/runtime.h"
#include "core/stack_exec.h"
#include "ipc/ipc_manager.h"

namespace labstor::core {

class Client {
 public:
  Client(Runtime& runtime, ipc::Credentials creds)
      : runtime_(runtime), creds_(creds) {}

  // Handshake over the (simulated) UNIX domain socket.
  Status Connect();
  bool connected() const { return channel_.qp != nullptr; }
  const ipc::Credentials& creds() const { return creds_; }

  // Fork/execve support: drop the channel and establish a fresh one
  // (new shared-memory queues), as the paper's IPC Manager does when
  // intercepting clone/execve.
  Status Reconnect();

  // Allocates a request (+payload) in this client's shared segment.
  Result<ipc::Request*> NewRequest(uint64_t payload_bytes = 0);

  // Resolve a path against the LabStack Namespace.
  Result<Stack*> ResolvePath(const std::string& path) {
    return runtime_.ns().Resolve(path);
  }

  // Executes `req` against `stack` honoring its exec mode:
  //   * sync:  DAG runs inline in this thread (decentralized design);
  //   * async: submit to the primary queue, poll for completion, and
  //     run the crash-recovery protocol if the Runtime dies.
  Status Execute(ipc::Request& req, Stack& stack);

  Runtime& runtime() { return runtime_; }

 private:
  Status SubmitWithBackpressure(ipc::Request& req);
  Status WaitWithRecovery(ipc::Request& req);

  Runtime& runtime_;
  ipc::Credentials creds_;
  ipc::ClientChannel channel_;
  uint64_t connect_epoch_ = 0;
};

}  // namespace labstor::core
