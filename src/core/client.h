// LabStor client library (paper §III-D "Application-Side").
//
// Wraps the IPC handshake, request submission, completion waiting, and
// crash recovery. Interface LabMods (GenericFS / GenericKVS) build on
// this to offer POSIX-like and KVS calls to applications.
#pragma once

#include <chrono>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/runtime.h"
#include "core/stack_exec.h"
#include "ipc/ipc_manager.h"

namespace labstor::core {

// Bounds every client-side wait loop. Transient failures (kUnavailable,
// kTimeout — see IsRetryable) are retried with exponential backoff and
// seeded jitter; anything else is surfaced immediately. After
// max_attempts the client reports kTimeout with DEADLINE_EXCEEDED
// semantics instead of spinning forever.
struct RetryPolicy {
  int max_attempts = 4;
  std::chrono::microseconds initial_backoff{200};
  std::chrono::microseconds max_backoff{10'000};
  double jitter = 0.25;  // backoff multiplied by U[1-jitter, 1+jitter]
  // Submission-side bound: how long Submit may stay rejected (ring
  // full / quiesced / injected overflow) before giving up.
  std::chrono::milliseconds submit_deadline{2000};
};

class Client {
 public:
  Client(Runtime& runtime, ipc::Credentials creds, RetryPolicy retry = {})
      : runtime_(runtime),
        creds_(creds),
        retry_(retry),
        rng_(Rng(creds.pid ^ 0x6661756C74ULL)) {}  // per-client jitter stream

  // Handshake over the (simulated) UNIX domain socket.
  Status Connect();
  bool connected() const { return channel_.qp != nullptr; }
  const ipc::Credentials& creds() const { return creds_; }

  // Fork/execve support: drop the channel and establish a fresh one
  // (new shared-memory queues), as the paper's IPC Manager does when
  // intercepting clone/execve.
  Status Reconnect();

  // Allocates a request (+payload) in this client's shared segment.
  Result<ipc::Request*> NewRequest(uint64_t payload_bytes = 0);

  // Resolve a path against the LabStack Namespace.
  Result<Stack*> ResolvePath(const std::string& path) {
    return runtime_.ns().Resolve(path);
  }

  // Executes `req` against `stack` honoring its exec mode:
  //   * sync:  DAG runs inline in this thread (decentralized design);
  //   * async: submit to the primary queue, poll for completion, and
  //     run the crash-recovery protocol if the Runtime dies.
  Status Execute(ipc::Request& req, Stack& stack);

  Runtime& runtime() { return runtime_; }

  const RetryPolicy& retry_policy() const { return retry_; }
  // Transport-level retries performed by this client (wait timeouts
  // recovered by resubmission; also mirrored to the telemetry counter
  // "client.retry.count").
  uint64_t retries() const { return retries_; }

 private:
  Status SubmitWithBackpressure(ipc::Request& req);
  Status WaitWithRecovery(ipc::Request& req);
  // Drain this channel's completion ring. Clients learn completion by
  // polling req->state, so the cq entries are pure notifications — but
  // left unread they fill the ring and workers start counting drops.
  void ReapCompletions();
  // Runs the per-epoch StateRepair handshake if the runtime restarted
  // while we were waiting.
  Status RepairIfNewEpoch();
  std::chrono::microseconds BackoffDelay(int attempt);
  void CountRetry(const char* counter);

  Runtime& runtime_;
  ipc::Credentials creds_;
  RetryPolicy retry_;
  Rng rng_;
  uint64_t retries_ = 0;
  ipc::ClientChannel channel_;
  uint64_t connect_epoch_ = 0;
};

}  // namespace labstor::core
