// Debug harness (paper §III-A): "LabStor provides a debugging mode
// that allows LabMods to be run in isolation and supports existing
// tools such as GDB or Valgrind to fully test their individual LabMods
// before deploying them in production."
//
// The harness instantiates one LabMod with a capturing sink as its
// only downstream vertex, so a developer (or a unit test) can feed it
// requests and inspect exactly what it forwarded, charged, and
// completed — no Runtime, no queues, no other mods.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/exec_trace.h"
#include "core/module_registry.h"
#include "core/stack.h"
#include "core/stack_exec.h"

namespace labstor::core {

// Terminal sink recording every request it receives (a "loopback
// driver"). Downstream data reads are served from an internal buffer
// so read paths can be exercised without a device.
class CaptureSinkMod final : public LabMod {
 public:
  struct Captured {
    ipc::OpCode op;
    uint64_t offset;
    uint64_t length;
    bool had_data;
  };

  CaptureSinkMod() : LabMod("capture_sink", ModType::kDriver, 1) {}

  Status Process(ipc::Request& req, StackExec& exec) override {
    (void)exec;
    captured_.push_back(
        Captured{req.op, req.offset, req.length, req.data != nullptr});
    if (req.op == ipc::OpCode::kBlkRead && req.data != nullptr) {
      for (uint64_t i = 0; i < req.length; ++i) {
        req.data[i] = fill_byte_;
      }
    }
    req.result_u64 = req.length;
    return Status::Ok();
  }

  const std::vector<Captured>& captured() const { return captured_; }
  void set_fill_byte(uint8_t b) { fill_byte_ = b; }
  void Clear() { captured_.clear(); }

 private:
  std::vector<Captured> captured_;
  uint8_t fill_byte_ = 0;
};

// One mod + one sink, wired as a two-vertex stack.
class DebugHarness {
 public:
  // Builds the harness around a freshly-created instance of
  // `mod_name` (from the global factory), initialized with `params`.
  static Result<std::unique_ptr<DebugHarness>> Create(
      const std::string& mod_name, const yaml::NodePtr& params,
      ModContext context) {
    auto harness = std::unique_ptr<DebugHarness>(new DebugHarness());
    harness->ctx_ = std::move(context);
    LABSTOR_ASSIGN_OR_RETURN(created, ModFactory::Global().Create(mod_name));
    harness->mod_ = std::move(created);
    harness->mod_->Bind("debug_" + mod_name);
    LABSTOR_RETURN_IF_ERROR(harness->mod_->Init(params, harness->ctx_));
    harness->sink_ = std::make_unique<CaptureSinkMod>();
    harness->sink_->Bind("debug_sink");

    harness->stack_.id = 1;
    harness->stack_.spec.mount = "debug::/harness";
    Stack::Vertex subject;
    subject.uuid = harness->mod_->instance_uuid();
    subject.mod = harness->mod_.get();
    subject.outputs.push_back(1);
    Stack::Vertex sink;
    sink.uuid = "debug_sink";
    sink.mod = harness->sink_.get();
    harness->stack_.vertices.push_back(std::move(subject));
    harness->stack_.vertices.push_back(std::move(sink));
    return harness;
  }

  // Feed one request through the mod; the trace is reset per call.
  Status Feed(ipc::Request& req) {
    trace_.Clear();
    StackExec exec(stack_, ctx_, trace_);
    return exec.Dispatch(req);
  }

  LabMod& mod() { return *mod_; }
  CaptureSinkMod& sink() { return *sink_; }
  const ExecTrace& trace() const { return trace_; }

 private:
  DebugHarness() = default;

  ModContext ctx_;
  std::unique_ptr<LabMod> mod_;
  std::unique_ptr<CaptureSinkMod> sink_;
  Stack stack_;
  ExecTrace trace_;
};

}  // namespace labstor::core
