// SimRuntime: the Runtime's execution semantics under the DES.
//
// Benches cannot use wall-clock worker threads to reproduce the
// paper's 24-core results on this host, so SimRuntime re-creates the
// async execution path in virtual time while running the *same*
// library code everywhere it matters:
//   * stacks are mounted through the real StackNamespace/ModuleRegistry;
//   * requests run through the real StackExec/mod Process functions
//     (functional effects are immediate);
//   * the recorded ExecTrace is then replayed as virtual time: IPC
//     hops, worker occupancy (FIFO per simulated worker, as assigned
//     by a real WorkOrchestrator policy), and contended device ops.
//
// Worker model: a request occupies its worker for its *software* time
// only; device ops are forwarded asynchronously (paper §III-E's
// "asynchronous message passing and polling" pattern). Computational
// mods (compression) therefore block their worker — exactly the
// head-of-line effect Fig. 5(b) measures.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/module_registry.h"
#include "core/orchestrator.h"
#include "core/stack.h"
#include "core/stack_exec.h"
#include "ipc/numa.h"
#include "sim/cost_model.h"
#include "sim/environment.h"
#include "simdev/registry.h"

namespace labstor::core {

class SimRuntime {
 public:
  SimRuntime(sim::Environment& env, simdev::DeviceRegistry& devices,
             size_t num_workers,
             const sim::SoftwareCosts& costs = sim::DefaultCosts());

  Result<Stack*> Mount(const StackSpec& spec);
  Result<Stack*> MountYaml(const std::string& yaml);

  // Declare a client queue. `est_processing` feeds the orchestrator's
  // LQ/CQ classification (the paper reads it from EstProcessingTime).
  void RegisterQueue(uint32_t qid, sim::Time est_processing);

  // Execute one request from queue `qid` through `stack`, honoring its
  // exec mode. Returns when the completion would reach the client.
  sim::Task<Status> Execute(uint32_t qid, Stack& stack, ipc::Request& req);

  // --- orchestration ---
  void ApplyAssignment(const Assignment& assignment);
  // Spawn a periodic rebalance process using `policy` (caller keeps it
  // alive). Runs until the environment drains.
  void StartRebalancer(WorkOrchestrator* policy, sim::Time period);

  // --- deterministic simulation (src/dst) ---
  // When set, every scheduling decision in Execute() asks the hook for
  // an extra virtual-time delay keyed by the decision site ("submit",
  // "worker_poll", "completion", "shm_complete"). A seeded
  // dst::Schedule supplies the hook, so one 64-bit seed reproducibly
  // perturbs the order in which submissions, worker visits, and device
  // completions interleave under the DES — without touching the cost
  // model when no hook is installed.
  using ScheduleHook = std::function<sim::Time(const char* site)>;
  void SetScheduleHook(ScheduleHook hook) { schedule_hook_ = std::move(hook); }

  // --- telemetry ---
  // Attach a metrics/trace sink (not owned; must outlive the
  // SimRuntime). Switches it to virtual time: every span below is
  // stamped with sim::Environment::now(), so the exported Chrome
  // trace renders the DES timeline exactly as a real-mode one.
  void AttachTelemetry(telemetry::Telemetry* tel);
  telemetry::Telemetry* telemetry() const { return tel_; }

  // --- NUMA (DESIGN.md §13) ---
  // Teach the runtime the simulated socket layout. Queues are homed on
  // the node of their assigned worker at registration; a worker on a
  // different node pays NumaCosts per visit ("numa.access.remote").
  // With `rehome_on_rebalance`, ApplyAssignment migrates a reassigned
  // queue's segment to the new worker's node (counted in
  // queues_rehomed) so steady-state access turns local again.
  void SetNumaTopology(const ipc::NumaTopology& topo,
                       const sim::NumaCosts& costs = sim::DefaultNumaCosts(),
                       bool rehome_on_rebalance = false);
  const ipc::NumaTopology& numa_topology() const { return numa_topo_; }
  uint64_t remote_queue_accesses() const { return remote_queue_accesses_; }
  uint64_t queues_rehomed() const { return queues_rehomed_; }

  // --- stats ---
  // Average number of busy cores over [0, elapsed].
  double AvgBusyCores(sim::Time elapsed) const;
  size_t ActiveWorkers() const;
  uint64_t requests_done() const { return requests_done_; }
  // Completion-delivery split across all device waits this run
  // (polled CQE observations vs interrupt-delivered wakeups).
  uint64_t polled_completions() const { return polled_completions_; }
  uint64_t interrupt_completions() const { return interrupt_completions_; }

  ModuleRegistry& registry() { return registry_; }
  StackNamespace& ns() { return namespace_; }
  ModContext& ctx() { return ctx_; }
  const sim::SoftwareCosts& costs() const { return costs_; }

 private:
  struct QueueState {
    sim::Time est_processing = 3 * sim::kUs;
    uint64_t backlog = 0;           // submitted, not yet picked up
    uint64_t arrivals_in_epoch = 0; // since the last rebalance
    size_t worker = 0;
    // NUMA node the queue's shared segment lives on (see
    // SetNumaTopology); 0 while the runtime is NUMA-oblivious.
    uint32_t home_node = 0;
  };

  sim::Task<void> RebalanceLoop(WorkOrchestrator* policy, sim::Time period);
  std::vector<QueueLoad> SnapshotLoads() const;

  // Trace pool: an Execute coroutine's ExecTrace must outlive its
  // suspensions (device replay reads it after co_awaits), so it cannot
  // be a shared scratch like the StackExec — but allocating a fresh
  // ledger per request made the 100+-core sweep allocation-bound.
  // Acquire pops a recycled ledger (or mints one); the lease returns
  // it when the coroutine frame dies.
  ExecTrace* AcquireTrace();
  void ReleaseTrace(ExecTrace* trace);
  struct TraceLease {
    SimRuntime* rt = nullptr;
    ExecTrace* trace = nullptr;
    TraceLease(SimRuntime* r, ExecTrace* t) : rt(r), trace(t) {}
    TraceLease(const TraceLease&) = delete;
    TraceLease& operator=(const TraceLease&) = delete;
    ~TraceLease() {
      if (trace != nullptr) rt->ReleaseTrace(trace);
    }
  };

  // Occupy the device for `op`, emitting a "device" span when traced.
  sim::Task<void> TimedDevOp(ExecTrace::DevOp op, uint32_t worker);
  bool Traced() const { return tel_ != nullptr && tel_->enabled(); }

  sim::Environment& env_;
  const sim::SoftwareCosts& costs_;
  ModuleRegistry registry_;
  StackNamespace namespace_;
  ModContext ctx_;

  std::vector<std::unique_ptr<sim::Resource>> workers_;
  std::vector<sim::Time> busy_ns_;
  std::vector<uint64_t> worker_requests_;
  // Reap visits where the worker slept on an interrupt-delivered
  // completion instead of busy-polling the CQ — each one removes a
  // worker_spin_cap of idle-poll work from AvgBusyCores.
  std::vector<uint64_t> worker_irq_waits_;
  std::vector<bool> worker_active_;
  std::unordered_map<uint32_t, QueueState> queues_;
  ipc::NumaTopology numa_topo_;
  sim::NumaCosts numa_costs_;
  bool numa_enabled_ = false;
  bool rehome_on_rebalance_ = false;
  uint64_t remote_queue_accesses_ = 0;
  uint64_t queues_rehomed_ = 0;
  uint64_t polled_completions_ = 0;
  uint64_t interrupt_completions_ = 0;
  // Recycled ExecTrace ledgers (see AcquireTrace) and the shared
  // functional-dispatch scratch. The StackExec is safe to share across
  // in-flight requests because Dispatch() completes before Execute's
  // first co_await — no coroutine ever suspends while bound to it.
  std::vector<std::unique_ptr<ExecTrace>> trace_pool_;
  std::vector<ExecTrace*> free_traces_;
  StackExec exec_scratch_;
  uint64_t requests_done_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
  ScheduleHook schedule_hook_;
  sim::Time Perturb(const char* site) const {
    return schedule_hook_ ? schedule_hook_(site) : 0;
  }
};

}  // namespace labstor::core
