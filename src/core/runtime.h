// The LabStor Runtime (paper §III-C): warehouse and execution engine
// for LabStacks.
//
// Real-mode composition:
//   * worker threads poll request queues assigned by the Work
//     Orchestrator and execute stack DAGs;
//   * an admin thread periodically processes module upgrades
//     (quiescing via UPDATE_PENDING/ACKED) and rebalances queues;
//   * clients connect through the IPC Manager and either submit into
//     shared-memory queues (async stacks) or execute DAGs inline
//     (sync stacks).
//
// Hot-path design (DESIGN.md §7):
//   * queue assignments are published RCU-style — the rebalancer
//     builds an immutable AssignmentTable and swaps it into an atomic
//     shared_ptr; workers poll a generation counter and reload only
//     when it changes (no mutex, no copy per pass);
//   * workers drain queues in batches (PollSubmissionBatch) and push
//     completions in batches, amortizing ring CAS traffic, telemetry
//     clock reads, and EWMA updates;
//   * execution is allocation-free steady-state: per-thread ExecScratch
//     reuses the ExecTrace/StackExec and caches stack_id → Stack*
//     lookups validated against the namespace epoch;
//   * idle workers follow a spin → yield → exponential-sleep backoff
//     that resets to spinning the moment work appears.
//
// The Runtime can be crash-tested: CrashForTesting() drops it offline
// with state intact; Restart() brings a fresh epoch online, after
// which client libraries trigger StateRepair on every LabMod.
#pragma once

#include <atomic>
#include <unordered_map>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/module_manager.h"
#include "core/module_registry.h"
#include "core/orchestrator.h"
#include "core/stack.h"
#include "core/stack_exec.h"
#include "ipc/ipc_manager.h"
#include "simdev/registry.h"

namespace labstor::core {

class Runtime {
 public:
  struct Options {
    size_t max_workers = 4;
    std::unique_ptr<WorkOrchestrator> orchestrator;  // default: dynamic
    std::chrono::milliseconds admin_poll{5};
    // Max requests a worker pulls from one queue per visit. Bounds both
    // the amortization win and the fairness cost: another queue waits
    // at most worker_batch executions.
    size_t worker_batch = 16;
    // Idle policy: spin worker_spin_polls empty passes (cpu-relax),
    // then yield worker_yield_polls passes, then sleep with exponential
    // backoff from worker_idle_sleep_min up to worker_idle_sleep.
    // Finding work resets the ladder to spinning — unless the last
    // working pass drained a full batch, which signals bulk traffic:
    // then the worker skips straight to the sleep ceiling so the
    // producers get uninterrupted time to refill (decisive on
    // single-CPU hosts, where spinning preempts the producer).
    uint32_t worker_spin_polls = 64;
    uint32_t worker_yield_polls = 16;
    std::chrono::microseconds worker_idle_sleep_min{4};
    std::chrono::microseconds worker_idle_sleep{100};  // backoff ceiling
    // Event-driven wakeup (DESIGN.md §13): when set, a worker that
    // reaches the sleep rungs of the idle ladder parks on the runtime
    // doorbell instead of a fixed-length sleep — the client's Submit
    // rings it, so low-load dequeue latency is one condvar wakeup
    // rather than a sleep-quantum gamble. The spin/yield rungs are
    // untouched (busy traffic never reaches the doorbell), and false
    // means the exact pre-doorbell ladder, bit for bit.
    bool event_wakeup = false;
    ipc::IpcManager::Options ipc;
    StackNamespace::Options ns;
    // Optional metrics/tracing sink (not owned; must outlive the
    // Runtime). nullptr keeps every instrumentation site inert.
    telemetry::Telemetry* telemetry = nullptr;
  };

  Runtime(Options options, simdev::DeviceRegistry& devices);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Status Start();
  Status Stop();

  // Abrupt failure injection: runtime goes offline, worker/admin
  // threads die, but registry/namespace state survives (it lives in
  // "shared memory").
  void CrashForTesting();
  // Administrator restart: new epoch, threads resume draining the
  // same queues.
  Status Restart();

  // --- control plane (the mount.stack / modify.stack / modify.mods
  // utilities call these) ---
  Result<Stack*> MountStack(const StackSpec& spec,
                            const ipc::Credentials& actor);
  Status ModifyStack(const StackSpec& updated, const ipc::Credentials& actor);
  Status UnmountStack(const std::string& mount, const ipc::Credentials& actor);
  void SubmitUpgrade(UpgradeRequest request) {
    module_manager_.SubmitUpgrade(std::move(request));
  }

  // Executes one request against its stack (worker path; also used by
  // sync-mode clients inline). Uses a per-thread ExecScratch, so
  // steady-state calls perform no heap allocation.
  Status Execute(ipc::Request& req);

  // --- deterministic admin stepping (DST lifecycle scheduler) ---
  // One admin pass, inline in the caller: process queued upgrades
  // (with the real quiesce barrier) and rebalance. On a never-Started
  // runtime this is single-threaded and fully deterministic — the
  // quiesce converges because no queue is worker-assigned, so
  // WaitQuiesce acknowledges marked queues itself. The threaded
  // AdminLoop does exactly this on a timer.
  Status StepAdmin();
  // One rebalance pass, inline (the admin timer's other half).
  void RebalanceNow() { Rebalance(); }

  // Crash recovery: run StateRepair across all mods once per epoch.
  Status EnsureRepaired(uint64_t epoch);

  // execve support (paper §III-F): the client library parks its open
  // fd state in the Runtime before the address space is replaced and
  // reclaims it afterwards.
  Status SaveFdState(ipc::ProcessId pid, std::string blob);
  Result<std::string> TakeFdState(ipc::ProcessId pid);

  // --- accessors ---
  ipc::IpcManager& ipc() { return ipc_; }
  ModuleRegistry& registry() { return registry_; }
  StackNamespace& ns() { return namespace_; }
  ModuleManager& module_manager() { return module_manager_; }
  simdev::DeviceRegistry& devices() { return devices_; }
  ModContext& mod_context() { return mod_context_; }
  telemetry::Telemetry* telemetry() const { return options_.telemetry; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t active_workers() const;
  // Workers that exited abnormally (injected death, escaped exception
  // path) since the last Start/Restart. Their queues are redistributed
  // to the survivors.
  size_t dead_workers() const;
  bool worker_dead(size_t worker_id) const {
    return worker_dead_ != nullptr && worker_id < options_.max_workers &&
           worker_dead_[worker_id].load(std::memory_order_acquire);
  }
  uint64_t requests_processed() const {
    return requests_processed_.load(std::memory_order_relaxed);
  }
  // Inline (sync-path) executions that arrived during an upgrade
  // quiesce and were held at the gate until it lifted. Strictly
  // monotonic evidence — the mirror of QueuePair::refused_while_paused
  // for the path that never touches a queue.
  uint64_t inline_execs_paused() const {
    return inline_paused_.load(std::memory_order_relaxed);
  }
  // Current assignment-table generation (bumped by every Rebalance).
  uint64_t assignment_generation() const {
    return assign_generation_.load(std::memory_order_acquire);
  }
  // Submission doorbell: clients ring after every enqueue. With
  // event_wakeup the ring wakes doorbell-parked workers; without, it
  // only ticks the counter (so the polled/event comparison can report
  // rings in both configurations).
  void RingDoorbell();
  uint64_t doorbell_rings() const {
    return doorbell_rings_.load(std::memory_order_relaxed);
  }
  // Doorbell waits that ended because a ring arrived (vs timing out at
  // the backoff ceiling).
  uint64_t doorbell_wakeups() const {
    return doorbell_wakeups_.load(std::memory_order_relaxed);
  }
  // Idle passes that reached a sleep rung (fixed sleep or doorbell
  // park) — the idle-poll work the spin/yield rungs did not absorb.
  uint64_t idle_sleeps() const {
    return idle_sleeps_.load(std::memory_order_relaxed);
  }
  // Copy of worker_id's currently-published queue list (test/debug
  // visibility into the lock-free table).
  std::vector<ipc::QueuePair*> AssignedQueues(size_t worker_id) const;

 private:
  // Immutable queue→worker map published by Rebalance. Workers hold a
  // shared_ptr, so a table stays alive while any worker still drains
  // from it even after a newer one is published (classic RCU shape).
  struct AssignmentTable {
    uint64_t generation = 0;
    std::vector<std::vector<ipc::QueuePair*>> per_worker;
  };

  // Per-thread execution scratch: reused trace + exec + an epoch-
  // validated stack cache so the hot path never locks the namespace
  // or allocates after warm-up.
  struct ExecScratch {
    ExecScratch() {
      trace.Reserve(/*sw_entries=*/32, /*dev_ops=*/16);
      exec.ReserveCallStack(32);
      stacks.reserve(16);
    }
    ExecTrace trace;
    StackExec exec;
    std::vector<std::pair<uint32_t, Stack*>> stacks;
    uint64_t ns_epoch = 0;
  };

  // Hot-path metric handles, resolved once at construction so worker
  // loops never hit the registry map (see MetricsRegistry docs).
  struct WiredMetrics {
    telemetry::Counter* worker_requests = nullptr;
    telemetry::LatencyHistogram* exec_ns = nullptr;
    telemetry::LatencyHistogram* queue_wait_ns = nullptr;
    telemetry::LatencyHistogram* queue_depth = nullptr;
    telemetry::Counter* rebalances = nullptr;
    telemetry::Gauge* active_workers = nullptr;
    // Unhandled-fault audit: completions the worker could not publish
    // (cq full). Non-zero means a fault escaped every surfaced path;
    // the fault-injection CI job fails on it.
    telemetry::Counter* completions_dropped = nullptr;
  };

  Status ExecuteWith(ipc::Request& req, ExecScratch& scratch);
  Stack* LookupStack(uint32_t stack_id, ExecScratch& scratch);
  // One upgrade-processing pass with the quiesce gate raised for its
  // duration (shared by StepAdmin and AdminLoop).
  Status RunUpgradePass();
  void WorkerLoop(size_t worker_id);
  void AdminLoop();
  void Rebalance();
  void WaitQuiesce();
  void PublishAssignments(std::shared_ptr<AssignmentTable> table);
  std::shared_ptr<const AssignmentTable> LoadAssignments() const {
    std::lock_guard<std::mutex> lock(assign_mu_);
    return assign_table_;
  }
  void StartThreads();
  void StopThreads();

  Options options_;
  simdev::DeviceRegistry& devices_;
  ipc::IpcManager ipc_;
  ModuleRegistry registry_;
  StackNamespace namespace_;
  ModuleManager module_manager_;
  ModContext mod_context_;
  WiredMetrics wired_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> in_flight_{0};
  // Raised while an upgrade pass is quiescing/applying. Worker-path
  // requests are held back by the UPDATE_PENDING queue marks; inline
  // sync executions never cross a queue, so without this gate they
  // could slip between WaitQuiesce observing in_flight_ == 0 and the
  // registry swap — running a stale Stack binding (or fused chain)
  // mid-replacement. Execute() joins in_flight_ and re-checks the
  // gate, closing the namespace-epoch validation-to-execution window.
  std::atomic<bool> quiescing_{false};
  std::atomic<uint64_t> inline_paused_{0};
  std::atomic<uint64_t> requests_processed_{0};
  uint64_t repaired_epoch_ = 0;
  std::mutex repair_mu_;
  std::mutex fd_depot_mu_;
  std::unordered_map<ipc::ProcessId, std::string> fd_depot_;

  std::vector<std::thread> workers_;
  std::thread admin_;
  // worker_dead_[i] is set when WorkerLoop i returns while the runtime
  // is still running; Rebalance() skips dead workers so their queues
  // are not stranded. Reset on Start/Restart.
  std::unique_ptr<std::atomic<bool>[]> worker_dead_;

  // Publication protocol: the generation counter is the lock-free
  // fast-path signal — workers poll it (acquire) once per pass and
  // only when it changed do they take assign_mu_ to refetch the
  // shared_ptr (a reader can observe a table newer than the generation
  // that woke it; it adopts that table's own generation, so nothing is
  // lost). Publishers set the table and then bump the generation
  // (release) under the same lock. So the mutex is touched only on
  // rebalance — never in the steady-state loop. (The shared_ptr itself
  // is mutex-guarded rather than std::atomic<std::shared_ptr> because
  // libstdc++-12's _Sp_atomic lock-bit protocol is opaque to TSan.)
  mutable std::mutex assign_mu_;
  std::shared_ptr<const AssignmentTable> assign_table_;
  std::atomic<uint64_t> assign_generation_{0};

  // Doorbell protocol: Submit bumps the sequence (release) and
  // notifies; a worker captures the sequence before its poll pass and
  // parks only while it is unchanged — a ring landing between the
  // empty poll and the park flips the predicate, so no wakeup is ever
  // lost. The mutex guards only the park/notify rendezvous; the hot
  // submit path touches one atomic and, in event mode, an uncontended
  // lock/unlock.
  std::atomic<uint64_t> doorbell_seq_{0};
  std::mutex doorbell_mu_;
  std::condition_variable doorbell_cv_;
  std::atomic<uint64_t> doorbell_rings_{0};
  std::atomic<uint64_t> doorbell_wakeups_{0};
  std::atomic<uint64_t> idle_sleeps_{0};
};

}  // namespace labstor::core
