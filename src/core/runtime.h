// The LabStor Runtime (paper §III-C): warehouse and execution engine
// for LabStacks.
//
// Real-mode composition:
//   * worker threads poll request queues assigned by the Work
//     Orchestrator and execute stack DAGs;
//   * an admin thread periodically processes module upgrades
//     (quiescing via UPDATE_PENDING/ACKED) and rebalances queues;
//   * clients connect through the IPC Manager and either submit into
//     shared-memory queues (async stacks) or execute DAGs inline
//     (sync stacks).
//
// The Runtime can be crash-tested: CrashForTesting() drops it offline
// with state intact; Restart() brings a fresh epoch online, after
// which client libraries trigger StateRepair on every LabMod.
#pragma once

#include <atomic>
#include <unordered_map>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/module_manager.h"
#include "core/module_registry.h"
#include "core/orchestrator.h"
#include "core/stack.h"
#include "core/stack_exec.h"
#include "ipc/ipc_manager.h"
#include "simdev/registry.h"

namespace labstor::core {

class Runtime {
 public:
  struct Options {
    size_t max_workers = 4;
    std::unique_ptr<WorkOrchestrator> orchestrator;  // default: dynamic
    std::chrono::milliseconds admin_poll{5};
    std::chrono::microseconds worker_idle_sleep{100};
    ipc::IpcManager::Options ipc;
    StackNamespace::Options ns;
    // Optional metrics/tracing sink (not owned; must outlive the
    // Runtime). nullptr keeps every instrumentation site inert.
    telemetry::Telemetry* telemetry = nullptr;
  };

  Runtime(Options options, simdev::DeviceRegistry& devices);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  Status Start();
  Status Stop();

  // Abrupt failure injection: runtime goes offline, worker/admin
  // threads die, but registry/namespace state survives (it lives in
  // "shared memory").
  void CrashForTesting();
  // Administrator restart: new epoch, threads resume draining the
  // same queues.
  Status Restart();

  // --- control plane (the mount.stack / modify.stack / modify.mods
  // utilities call these) ---
  Result<Stack*> MountStack(const StackSpec& spec,
                            const ipc::Credentials& actor);
  Status ModifyStack(const StackSpec& updated, const ipc::Credentials& actor);
  Status UnmountStack(const std::string& mount, const ipc::Credentials& actor);
  void SubmitUpgrade(UpgradeRequest request) {
    module_manager_.SubmitUpgrade(std::move(request));
  }

  // Executes one request against its stack (worker path; also used by
  // sync-mode clients inline).
  Status Execute(ipc::Request& req);

  // Crash recovery: run StateRepair across all mods once per epoch.
  Status EnsureRepaired(uint64_t epoch);

  // execve support (paper §III-F): the client library parks its open
  // fd state in the Runtime before the address space is replaced and
  // reclaims it afterwards.
  Status SaveFdState(ipc::ProcessId pid, std::string blob);
  Result<std::string> TakeFdState(ipc::ProcessId pid);

  // --- accessors ---
  ipc::IpcManager& ipc() { return ipc_; }
  ModuleRegistry& registry() { return registry_; }
  StackNamespace& ns() { return namespace_; }
  ModuleManager& module_manager() { return module_manager_; }
  simdev::DeviceRegistry& devices() { return devices_; }
  ModContext& mod_context() { return mod_context_; }
  telemetry::Telemetry* telemetry() const { return options_.telemetry; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t active_workers() const;
  // Workers that exited abnormally (injected death, escaped exception
  // path) since the last Start/Restart. Their queues are redistributed
  // to the survivors.
  size_t dead_workers() const;
  uint64_t requests_processed() const {
    return requests_processed_.load(std::memory_order_relaxed);
  }

 private:
  // Hot-path metric handles, resolved once at construction so worker
  // loops never hit the registry map (see MetricsRegistry docs).
  struct WiredMetrics {
    telemetry::Counter* worker_requests = nullptr;
    telemetry::LatencyHistogram* exec_ns = nullptr;
    telemetry::LatencyHistogram* queue_wait_ns = nullptr;
    telemetry::LatencyHistogram* queue_depth = nullptr;
    telemetry::Counter* rebalances = nullptr;
    telemetry::Gauge* active_workers = nullptr;
    // Unhandled-fault audit: completions the worker could not publish
    // (cq full). Non-zero means a fault escaped every surfaced path;
    // the fault-injection CI job fails on it.
    telemetry::Counter* completions_dropped = nullptr;
  };

  void WorkerLoop(size_t worker_id);
  void AdminLoop();
  void Rebalance();
  void WaitQuiesce();
  std::vector<ipc::QueuePair*> SnapshotQueues(size_t worker_id) const;
  void StartThreads();
  void StopThreads();

  Options options_;
  simdev::DeviceRegistry& devices_;
  ipc::IpcManager ipc_;
  ModuleRegistry registry_;
  StackNamespace namespace_;
  ModuleManager module_manager_;
  ModContext mod_context_;
  WiredMetrics wired_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> requests_processed_{0};
  uint64_t repaired_epoch_ = 0;
  std::mutex repair_mu_;
  std::mutex fd_depot_mu_;
  std::unordered_map<ipc::ProcessId, std::string> fd_depot_;

  std::vector<std::thread> workers_;
  std::thread admin_;
  // worker_dead_[i] is set when WorkerLoop i returns while the runtime
  // is still running; Rebalance() skips dead workers so their queues
  // are not stranded. Reset on Start/Restart.
  std::unique_ptr<std::atomic<bool>[]> worker_dead_;

  mutable std::mutex assign_mu_;
  std::vector<std::vector<ipc::QueuePair*>> assignments_;
};

}  // namespace labstor::core
