// LabMod: the unit of modularity in LabStor (paper §III-A).
//
// A LabMod is a single-purpose, self-contained code object with four
// elements: a *type* (the API set it implements), an *operation*
// (Process), *state* (its private members), and a *connector* (the
// client-side code that builds requests — GenericFS/GenericKVS here).
//
// Required platform APIs beyond Process:
//   * StateUpdate  — copy state from the previous version (live upgrade)
//   * StateRepair  — revalidate state after a Runtime crash/restart
//   * EstProcessingTime / EstTotalTime — performance counters the Work
//     Orchestrator uses to classify queues as latency-sensitive vs
//     computational.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/yaml.h"
#include "core/exec_trace.h"
#include "ipc/request.h"
#include "sim/cost_model.h"
#include "simdev/registry.h"

namespace labstor::core {

class StackExec;

// The set of APIs a LabMod implements. Stacked mods are validated for
// type compatibility when a LabStack is mounted.
enum class ModType : uint8_t {
  kFilesystem,   // POSIX-ish file ops -> block ops
  kKvs,          // put/get/delete -> block ops
  kPushdown,     // sandboxed op chains -> any server-side op (passes
                 // non-chain requests through unchanged)
  kScheduler,    // block ops -> block ops (queue selection)
  kCache,        // block ops -> block ops (may absorb)
  kPermissions,  // any -> same (gate)
  kTransform,    // block ops -> block ops (compression etc.)
  kConsistency,  // block ops -> block ops (durability policy)
  kDriver,       // block ops -> device (terminal)
  kGeneric,      // client-side interface mod (connector host)
  kDummy,        // control/testing
};

std::string_view ModTypeName(ModType type);

// Services the Runtime hands to module operations.
struct ModContext {
  simdev::DeviceRegistry* devices = nullptr;
  const sim::SoftwareCosts* costs = &sim::DefaultCosts();
  uint32_t num_workers = 1;
  // Namespace mutation epoch of the owning runtime (nullptr = no
  // namespace, treated as epoch 0). The pushdown mod keys chain
  // re-registration off this: replacing a registered chain id requires
  // the namespace to have advanced past the epoch it was installed in.
  const std::atomic<uint64_t>* ns_epoch = nullptr;
  // Optional metrics/tracing sink (nullptr = telemetry off, zero
  // cost). Mods that keep private stats (cache hit/miss) mirror them
  // here; the per-mod span capture lives in StackExec/SimRuntime.
  telemetry::Telemetry* telemetry = nullptr;
};

class LabMod {
 public:
  LabMod(std::string mod_name, ModType type, uint32_t version)
      : mod_name_(std::move(mod_name)), type_(type), version_(version) {}
  virtual ~LabMod() = default;

  LabMod(const LabMod&) = delete;
  LabMod& operator=(const LabMod&) = delete;

  const std::string& mod_name() const { return mod_name_; }
  const std::string& instance_uuid() const { return instance_uuid_; }
  ModType type() const { return type_; }
  uint32_t version() const { return version_; }

  // Called by the Module Registry when instantiated into a stack.
  void Bind(std::string instance_uuid) {
    instance_uuid_ = std::move(instance_uuid);
  }

  // Lifecycle: `params` is the vertex's attribute map from the
  // LabStack YAML (may be null).
  virtual Status Init(const yaml::NodePtr& params, ModContext& ctx) {
    (void)params;
    (void)ctx;
    return Status::Ok();
  }

  // The operation. Implementations do their functional work, charge
  // their software cost to exec.trace(), and forward downstream via
  // exec.Forward(req) when the request continues through the DAG.
  virtual Status Process(ipc::Request& req, StackExec& exec) = 0;

  // Live upgrade: copy state out of the retiring instance. `old` is
  // guaranteed to be the same mod_name with version() < this->version().
  virtual Status StateUpdate(LabMod& old) {
    (void)old;
    return Status::Ok();
  }

  // Crash recovery: revalidate/rebuild state after a Runtime restart.
  virtual Status StateRepair() { return Status::Ok(); }

  // May this mod run to completion inside the caller's thread without
  // parking on external progress (ExecMode::kSync eligibility)? Stack
  // fusion (DESIGN.md §11) composes a linear chain of sync-capable
  // mods into one fused call chain at stack-build time; a single
  // false vertex makes the whole stack refuse fusion. Mods that hand
  // work to a real asynchronous engine (io_uring submission queues)
  // must return false.
  virtual bool SyncCapable() const { return true; }

  // Work Orchestrator counters: expected software processing time for
  // one request (ns), and expected end-to-end time including device.
  virtual sim::Time EstProcessingTime() const { return 1 * sim::kUs; }
  virtual sim::Time EstTotalTime(const ipc::Request& req) const {
    (void)req;
    return EstProcessingTime();
  }

 private:
  std::string mod_name_;
  std::string instance_uuid_;
  ModType type_;
  uint32_t version_;
};

inline std::string_view ModTypeName(ModType type) {
  switch (type) {
    case ModType::kFilesystem: return "filesystem";
    case ModType::kKvs: return "kvs";
    case ModType::kPushdown: return "pushdown";
    case ModType::kScheduler: return "scheduler";
    case ModType::kCache: return "cache";
    case ModType::kPermissions: return "permissions";
    case ModType::kTransform: return "transform";
    case ModType::kConsistency: return "consistency";
    case ModType::kDriver: return "driver";
    case ModType::kGeneric: return "generic";
    case ModType::kDummy: return "dummy";
  }
  return "?";
}

}  // namespace labstor::core
