// Module factory and Module Registry.
//
// ModFactory is the in-process stand-in for LabMod repos + dlopen: a
// plugin registry keyed by (mod name, version). Mods self-register via
// LABSTOR_REGISTER_LABMOD from their translation units; live upgrades
// register a higher version and ask the Module Manager to swap.
//
// ModuleRegistry holds *instances* keyed by the human-readable
// instance UUID (paper: "a key-value store where keys are LabMod UUIDs
// and values are the LabMod instances"). Mounting a stack instantiates
// a vertex only if its UUID is not yet present, so stacks can share
// instances (e.g. two stacks over one allocator).
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/labmod.h"

namespace labstor::core {

using ModMaker = std::function<std::unique_ptr<LabMod>()>;

class ModFactory {
 public:
  // The process-wide factory (what "installed LabMod repos" resolve
  // against). Tests may build private factories.
  static ModFactory& Global();

  Status Register(const std::string& name, uint32_t version, ModMaker maker);
  bool Has(const std::string& name) const;
  // Highest registered version for `name`.
  Result<uint32_t> LatestVersion(const std::string& name) const;
  // version == 0 means "latest".
  Result<std::unique_ptr<LabMod>> Create(const std::string& name,
                                         uint32_t version = 0) const;
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::map<uint32_t, ModMaker>> makers_;
};

namespace internal {
struct ModRegistrar {
  ModRegistrar(const char* name, uint32_t version, ModMaker maker) {
    (void)ModFactory::Global().Register(name, version, std::move(maker));
  }
};
}  // namespace internal

// Place in a .cc file:
//   LABSTOR_REGISTER_LABMOD("labfs", 1, LabFs);
#define LABSTOR_REGISTER_LABMOD(name, version, Type)                   \
  static const ::labstor::core::internal::ModRegistrar                 \
      labstor_mod_registrar_##Type##_##version(                        \
          name, version, [] { return std::make_unique<Type>(); })

class ModuleRegistry {
 public:
  explicit ModuleRegistry(const ModFactory* factory = &ModFactory::Global())
      : factory_(factory) {}

  // Instantiates `mod_name` (version 0 = latest) under `instance_uuid`
  // unless that UUID already exists, in which case the existing
  // instance is returned (after a mod-name consistency check).
  Result<LabMod*> Instantiate(const std::string& mod_name,
                              const std::string& instance_uuid,
                              const yaml::NodePtr& params, ModContext& ctx,
                              uint32_t version = 0);

  Result<LabMod*> Find(const std::string& instance_uuid) const;
  bool Has(const std::string& instance_uuid) const;

  // Live upgrade step: create version `new_version` (0 = latest) of
  // the same mod name, Init it with the *stored creation params* (the
  // ones the old instance was configured with), run StateUpdate(old),
  // swap the instance. Requesting the version already running is a
  // no-op success (reported via `was_noop`) — no Create/Init/
  // StateUpdate churn; strict downgrades are rejected.
  // Existing LabMod* pointers become invalid after a real swap;
  // callers must re-resolve (stacks re-resolve by UUID after
  // upgrades).
  Status Upgrade(const std::string& instance_uuid, uint32_t new_version,
                 ModContext& ctx, bool* was_noop = nullptr);

  // All-or-nothing upgrade of every instance of `mod_name` under one
  // lock hold: every fresh instance is staged (Create + Init with the
  // stored params + StateUpdate) first; the registry swaps only after
  // *all* of them succeed. Any failure destroys the staged instances
  // and leaves every entry on its old version — no mixed-version
  // states. Instances already on the target version are counted in
  // `noops` and left untouched.
  struct UpgradeAllResult {
    size_t swapped = 0;
    size_t noops = 0;
  };
  Result<UpgradeAllResult> UpgradeAll(const std::string& mod_name,
                                      uint32_t new_version, ModContext& ctx);

  // The creation params recorded for an instance (null if it was
  // instantiated without params).
  Result<yaml::NodePtr> ParamsOf(const std::string& instance_uuid) const;

  std::vector<std::string> InstancesOf(const std::string& mod_name) const;
  std::vector<std::string> AllInstances() const;

  // Crash recovery: invoke StateRepair on every instance.
  Status RepairAll();

 private:
  struct Entry {
    std::unique_ptr<LabMod> mod;
    // Creation params, kept so live upgrades can re-Init the fresh
    // instance with the configuration the operator actually mounted
    // (Init(nullptr) would silently reset every param to defaults).
    yaml::NodePtr params;
  };

  // Instances are sharded by UUID hash: per-request-rate paths (Find
  // during RefreshBindings sweeps, Instantiate during mounts) contend
  // only on their own shard's mutex instead of one registry-wide lock
  // — the module-registry half of the 100+-core scaling fixes
  // (DESIGN.md §11). Cross-shard operations (UpgradeAll's
  // all-or-nothing staging, RepairAll, the listings) take every shard
  // lock in index order, so they serialize with each other but never
  // deadlock against the single-shard paths.
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> instances;
  };

  Shard& ShardFor(const std::string& uuid) const {
    return shards_[std::hash<std::string>{}(uuid) % kShards];
  }

  // Stage a replacement for `entry` at `version` (resolved, > old
  // version): Create + Bind + Init(stored params) + StateUpdate(old).
  // Pure with respect to the registry: failure just destroys the
  // staged instance. Caller holds the entry's shard lock (or all of
  // them).
  Result<std::unique_ptr<LabMod>> StageLocked(const std::string& uuid,
                                              const Entry& entry,
                                              uint32_t version,
                                              ModContext& ctx);

  const ModFactory* factory_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace labstor::core
