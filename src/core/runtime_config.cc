#include "core/runtime_config.h"

namespace labstor::core {

namespace {

Result<std::unique_ptr<WorkOrchestrator>> BuildOrchestrator(
    const yaml::NodePtr& node) {
  if (node == nullptr) {
    return std::unique_ptr<WorkOrchestrator>(new DynamicOrchestrator());
  }
  const std::string policy = node->GetString("policy", "dynamic");
  if (policy == "round_robin") {
    return std::unique_ptr<WorkOrchestrator>(new RoundRobinOrchestrator());
  }
  if (policy == "fixed") {
    const uint64_t workers = node->GetUint("fixed_workers", 1);
    if (workers == 0) {
      return Status::InvalidArgument("fixed_workers must be >= 1");
    }
    return std::unique_ptr<WorkOrchestrator>(
        new FixedOrchestrator(static_cast<size_t>(workers)));
  }
  if (policy == "dynamic") {
    DynamicOrchestrator::Options options;
    options.lq_threshold_ns =
        node->GetUint("lq_threshold_us", 100) * sim::kUs;
    options.loss_threshold = node->GetDouble("loss_threshold", 0.10);
    options.epoch_budget_ns = node->GetUint("epoch_budget_us", 1000) * sim::kUs;
    return std::unique_ptr<WorkOrchestrator>(new DynamicOrchestrator(options));
  }
  return Status::InvalidArgument("unknown orchestrator policy '" + policy +
                                 "'");
}

Result<simdev::DeviceParams> BuildDevice(const yaml::NodePtr& node) {
  if (node == nullptr || !node->IsMapping()) {
    return Status::InvalidArgument("device entry must be a mapping");
  }
  const std::string preset = node->GetString("preset", "");
  const uint64_t capacity = node->GetUint("capacity_mb", 64) << 20;
  simdev::DeviceParams params;
  if (preset == "nvme") {
    params = simdev::DeviceParams::NvmeP3700(capacity);
  } else if (preset == "sata_ssd") {
    params = simdev::DeviceParams::SataSsd(capacity);
  } else if (preset == "hdd") {
    params = simdev::DeviceParams::SasHdd(capacity);
  } else if (preset == "pmem") {
    params = simdev::DeviceParams::PmemEmulated(capacity);
  } else {
    return Status::InvalidArgument("unknown device preset '" + preset + "'");
  }
  params.name = node->GetString("name", params.name);
  return params;
}

}  // namespace

Result<RuntimeConfig> RuntimeConfig::FromYaml(const yaml::NodePtr& root) {
  if (root == nullptr || !root->IsMapping()) {
    return Status::InvalidArgument("runtime config must be a mapping");
  }
  RuntimeConfig config;
  config.options.max_workers =
      static_cast<size_t>(root->GetUint("workers", 4));
  if (config.options.max_workers == 0) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  config.options.admin_poll =
      std::chrono::milliseconds(root->GetUint("admin_poll_ms", 5));
  LABSTOR_ASSIGN_OR_RETURN(orchestrator,
                           BuildOrchestrator(root->Get("orchestrator")));
  config.options.orchestrator = std::move(orchestrator);

  if (const yaml::NodePtr ipc = root->Get("ipc"); ipc != nullptr) {
    config.options.ipc.segment_bytes =
        static_cast<size_t>(ipc->GetUint("segment_mb", 16)) << 20;
    const uint64_t depth = ipc->GetUint("queue_depth", 1024);
    if ((depth & (depth - 1)) != 0 || depth < 2) {
      return Status::InvalidArgument("queue_depth must be a power of two");
    }
    config.options.ipc.queue_depth = static_cast<size_t>(depth);
    // Per-request wait bound: 0 disables the timeout (a lost request
    // then wedges its waiter, so only disable for debugging).
    config.options.ipc.request_timeout = std::chrono::milliseconds(
        ipc->GetUint("request_timeout_ms",
                     static_cast<uint64_t>(
                         config.options.ipc.request_timeout.count())));
  }
  if (const yaml::NodePtr ns = root->Get("namespace"); ns != nullptr) {
    config.options.ns.max_stack_length =
        static_cast<size_t>(ns->GetUint("max_stack_length", 16));
  }
  if (const yaml::NodePtr repos = root->Get("repos");
      repos != nullptr && repos->IsSequence()) {
    for (const yaml::NodePtr& repo : repos->items()) {
      if (repo->IsScalar()) config.repos.push_back(repo->scalar());
    }
  }
  config.max_repos_per_user =
      static_cast<size_t>(root->GetUint("max_repos_per_user", 4));
  if (config.repos.size() > config.max_repos_per_user) {
    return Status::InvalidArgument("more repos than max_repos_per_user");
  }
  if (const yaml::NodePtr devices = root->Get("devices");
      devices != nullptr && devices->IsSequence()) {
    for (const yaml::NodePtr& entry : devices->items()) {
      LABSTOR_ASSIGN_OR_RETURN(device, BuildDevice(entry));
      config.devices.push_back(std::move(device));
    }
  }
  return config;
}

Result<RuntimeConfig> RuntimeConfig::Parse(std::string_view text) {
  LABSTOR_ASSIGN_OR_RETURN(root, yaml::Parse(text));
  return FromYaml(root);
}

Result<RuntimeConfig> RuntimeConfig::ParseFile(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(root, yaml::ParseFile(path));
  return FromYaml(root);
}

Status RuntimeConfig::ApplyDevices(simdev::DeviceRegistry& registry) const {
  for (const simdev::DeviceParams& params : devices) {
    LABSTOR_RETURN_IF_ERROR(registry.Create(params).status());
  }
  return Status::Ok();
}

}  // namespace labstor::core
