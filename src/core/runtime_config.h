// Runtime configuration file (paper §III-D: "Trusted users can modify
// the Runtime configuration YAML, which contains information such as
// LabMod locations and work orchestration policies").
//
// Example:
//   workers: 8
//   admin_poll_ms: 5
//   orchestrator:
//     policy: dynamic            # round_robin | fixed | dynamic
//     fixed_workers: 4           # fixed only
//     lq_threshold_us: 100       # dynamic only
//     loss_threshold: 0.1
//   ipc:
//     segment_mb: 16
//     queue_depth: 1024
//     request_timeout_ms: 30000  # 0 = wait forever (debug only)
//   namespace:
//     max_stack_length: 16
//   repos:                       # searched for installed LabMods
//     - /opt/labstor/mods
//   max_repos_per_user: 4
//   devices:
//     - preset: nvme             # nvme | sata_ssd | hdd | pmem
//       name: nvme0
//       capacity_mb: 256
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/yaml.h"
#include "core/runtime.h"
#include "simdev/registry.h"

namespace labstor::core {

struct RuntimeConfig {
  Runtime::Options options;
  // Declarative device list, applied to a DeviceRegistry at startup.
  std::vector<simdev::DeviceParams> devices;
  // LabMod repo directories (informational in this in-process build:
  // mods register via static initializers, but the list is validated
  // and surfaced to tooling).
  std::vector<std::string> repos;
  size_t max_repos_per_user = 4;

  static Result<RuntimeConfig> FromYaml(const yaml::NodePtr& root);
  static Result<RuntimeConfig> Parse(std::string_view text);
  static Result<RuntimeConfig> ParseFile(const std::string& path);

  // Registers every declared device.
  Status ApplyDevices(simdev::DeviceRegistry& registry) const;
};

}  // namespace labstor::core
