#include "core/client.h"

#include <thread>

namespace labstor::core {

Status Client::Connect() {
  auto channel = runtime_.ipc().Connect(creds_);
  if (!channel.ok()) return channel.status();
  channel_ = *channel;
  connect_epoch_ = runtime_.ipc().epoch();
  return Status::Ok();
}

Status Client::Reconnect() {
  if (connected()) {
    LABSTOR_RETURN_IF_ERROR(runtime_.ipc().Disconnect(creds_));
    channel_ = ipc::ClientChannel{};
  }
  return Connect();
}

Result<ipc::Request*> Client::NewRequest(uint64_t payload_bytes) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  ipc::Request* req = channel_.NewRequest(payload_bytes);
  if (req == nullptr) {
    return Status::ResourceExhausted("client shared segment exhausted");
  }
  return req;
}

Status Client::Execute(ipc::Request& req, Stack& stack) {
  req.stack_id = stack.id;
  if (stack.exec_mode() == ExecMode::kSync) {
    // Decentralized: no IPC, no Runtime involvement.
    return runtime_.Execute(req);
  }
  LABSTOR_RETURN_IF_ERROR(SubmitWithBackpressure(req));
  return WaitWithRecovery(req);
}

Status Client::SubmitWithBackpressure(ipc::Request& req) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  if (telemetry::Telemetry* tel = runtime_.telemetry();
      tel != nullptr && tel->enabled()) {
    // Queue-wait accounting: stamped on the runtime's epoch clock and
    // read back by the worker that dequeues the request.
    req.submit_ns = tel->NowNs();
  }
  // Submission fails when the ring is full or the queue is quiesced
  // for an upgrade; both clear on their own.
  for (int spin = 0; spin < 50'000'000; ++spin) {
    if (channel_.qp->Submit(&req)) {
      channel_.qp->total_submitted.fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    }
    if (!runtime_.ipc().online()) {
      return Status::Unavailable("runtime offline during submission");
    }
    std::this_thread::yield();
  }
  return Status::Timeout("submission queue stayed full");
}

Status Client::WaitWithRecovery(ipc::Request& req) {
  const Status st = runtime_.ipc().Wait(&req);
  const uint64_t epoch = runtime_.ipc().epoch();
  if (epoch != connect_epoch_ && runtime_.ipc().online()) {
    // The Runtime died and was restarted while we were waiting: walk
    // the namespace and run StateRepair before continuing (paper
    // §III-C3). Idempotent per epoch.
    LABSTOR_RETURN_IF_ERROR(runtime_.EnsureRepaired(epoch));
    connect_epoch_ = epoch;
  }
  return st;
}

}  // namespace labstor::core
