#include "core/client.h"

#include <algorithm>
#include <thread>

namespace labstor::core {

Status Client::Connect() {
  auto channel = runtime_.ipc().Connect(creds_);
  if (!channel.ok()) return channel.status();
  channel_ = *channel;
  connect_epoch_ = runtime_.ipc().epoch();
  return Status::Ok();
}

Status Client::Reconnect() {
  if (connected()) {
    LABSTOR_RETURN_IF_ERROR(runtime_.ipc().Disconnect(creds_));
    channel_ = ipc::ClientChannel{};
  }
  return Connect();
}

Result<ipc::Request*> Client::NewRequest(uint64_t payload_bytes) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  ipc::Request* req = channel_.NewRequest(payload_bytes);
  if (req == nullptr) {
    return Status::ResourceExhausted("client shared segment exhausted");
  }
  return req;
}

Status Client::Execute(ipc::Request& req, Stack& stack) {
  req.stack_id = stack.id;
  if (stack.exec_mode() == ExecMode::kSync) {
    // Decentralized: no IPC, no Runtime involvement.
    return runtime_.Execute(req);
  }
  LABSTOR_RETURN_IF_ERROR(SubmitWithBackpressure(req));
  const Status st = WaitWithRecovery(req);
  ReapCompletions();
  return st;
}

void Client::ReapCompletions() {
  if (!connected()) return;
  while (channel_.qp->PollCompletion().has_value()) {
  }
}

std::chrono::microseconds Client::BackoffDelay(int attempt) {
  uint64_t us = static_cast<uint64_t>(retry_.initial_backoff.count());
  us <<= std::min(attempt, 20);
  us = std::min(us, static_cast<uint64_t>(retry_.max_backoff.count()));
  // Jitter decorrelates clients that failed in lockstep (thundering
  // herd on recovery); the stream is seeded, so runs stay reproducible.
  const double factor = 1.0 + retry_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  us = static_cast<uint64_t>(static_cast<double>(us) *
                             std::max(factor, 0.0));
  return std::chrono::microseconds(us);
}

void Client::CountRetry(const char* counter) {
  if (telemetry::Telemetry* tel = runtime_.telemetry();
      tel != nullptr && tel->enabled()) {
    tel->metrics().GetCounter(counter)->Inc();
  }
}

Status Client::SubmitWithBackpressure(ipc::Request& req) {
  if (!connected()) return Status::FailedPrecondition("client not connected");
  if (telemetry::Telemetry* tel = runtime_.telemetry();
      tel != nullptr && tel->enabled()) {
    // Queue-wait accounting: stamped on the runtime's epoch clock and
    // read back by the worker that dequeues the request.
    req.submit_ns = tel->NowNs();
  } else {
    // Telemetry toggled off mid-run: clear any stamp from an earlier
    // submission so the worker can't compute wait from a stale epoch.
    req.submit_ns = 0;
  }
  // Submission fails when the ring is full or the queue is quiesced
  // for an upgrade; both usually clear quickly, so spin briefly, then
  // back off exponentially until the submit deadline expires.
  const auto deadline =
      std::chrono::steady_clock::now() + retry_.submit_deadline;
  int spins = 0;
  int attempt = 0;
  while (true) {
    if (channel_.qp->Submit(&req)) {
      channel_.qp->total_submitted.fetch_add(1, std::memory_order_relaxed);
      // The MMIO doorbell of the shm transport: wakes doorbell-parked
      // workers under Options::event_wakeup, ticks a counter otherwise.
      runtime_.RingDoorbell();
      return Status::Ok();
    }
    if (!runtime_.ipc().online()) {
      return Status::Unavailable("runtime offline during submission");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Timeout(
          "submission queue stayed full for " +
          std::to_string(retry_.submit_deadline.count()) +
          "ms (deadline exceeded)");
    }
    if (++spins <= 4096) {
      std::this_thread::yield();
      continue;
    }
    CountRetry("client.submit.retries");
    std::this_thread::sleep_for(BackoffDelay(attempt));
    if (attempt < 16) ++attempt;
  }
}

Status Client::RepairIfNewEpoch() {
  const uint64_t epoch = runtime_.ipc().epoch();
  if (epoch != connect_epoch_ && runtime_.ipc().online()) {
    // The Runtime died and was restarted while we were waiting: walk
    // the namespace and run StateRepair before continuing (paper
    // §III-C3). Idempotent per epoch.
    LABSTOR_RETURN_IF_ERROR(runtime_.EnsureRepaired(epoch));
    connect_epoch_ = epoch;
  }
  return Status::Ok();
}

Status Client::WaitWithRecovery(ipc::Request& req) {
  for (int attempt = 0;; ++attempt) {
    const Status st = runtime_.ipc().Wait(&req);
    LABSTOR_RETURN_IF_ERROR(RepairIfNewEpoch());
    // A completed request carries the worker's verdict — final whether
    // ok or not; retrying a module-level error could double-apply it.
    if (req.IsDone()) return st;
    // Not done: transport-level failure. kUnavailable means the
    // runtime stayed offline past the grace period — reconnection is
    // an administrative decision, not something to retry blindly.
    if (!IsRetryable(st.code()) ||
        st.code() == StatusCode::kUnavailable) {
      return st;
    }
    // kTimeout: the request was likely dequeued by a worker that died.
    if (attempt + 1 >= retry_.max_attempts) {
      return Status::Timeout(
          "deadline exceeded: request not completed after " +
          std::to_string(retry_.max_attempts) + " attempts (last: " +
          st.ToString() + ")");
    }
    ++retries_;
    CountRetry("client.retry.count");
    std::this_thread::sleep_for(BackoffDelay(attempt));
    if (req.IsDone()) continue;  // completed during backoff
    // Resubmit the same request object: the previous pointer vanished
    // with its worker. This is at-least-once recovery — a merely-slow
    // worker could still complete the first copy, which is acceptable
    // under the log-replay consistency model (DESIGN.md §6).
    LABSTOR_RETURN_IF_ERROR(SubmitWithBackpressure(req));
  }
}

}  // namespace labstor::core
