#include "core/orchestrator.h"

#include <algorithm>
#include <cmath>
#include <cassert>

namespace labstor::core {

namespace {

// Weight of a queue for balancing: expected time to drain its backlog
// (at least one request's worth, so idle queues still cost something
// to poll).
uint64_t QueueWeight(const QueueLoad& q) {
  const uint64_t backlog = std::max<uint64_t>(q.backlog, 1);
  return q.est_processing_ns * backlog;
}

}  // namespace

PackResult PackLpt(const std::vector<QueueLoad>& queues, size_t k) {
  PackResult result;
  if (k == 0) return result;
  result.bins.resize(k);
  std::vector<uint64_t> load(k, 0);
  // Longest processing time first.
  std::vector<const QueueLoad*> sorted;
  sorted.reserve(queues.size());
  for (const QueueLoad& q : queues) sorted.push_back(&q);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const QueueLoad* a, const QueueLoad* b) {
                     return QueueWeight(*a) > QueueWeight(*b);
                   });
  for (const QueueLoad* q : sorted) {
    const size_t bin = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    result.bins[bin].push_back(q->qid);
    load[bin] += QueueWeight(*q);
  }
  result.makespan = *std::max_element(load.begin(), load.end());
  return result;
}

Assignment RoundRobinOrchestrator::Rebalance(
    const std::vector<QueueLoad>& queues, size_t max_workers) {
  Assignment assignment;
  if (max_workers == 0 || queues.empty()) return assignment;
  assignment.worker_queues.resize(max_workers);
  assignment.latency_dedicated.assign(max_workers, false);
  for (size_t i = 0; i < queues.size(); ++i) {
    assignment.worker_queues[i % max_workers].push_back(queues[i].qid);
  }
  return assignment;
}

Assignment FixedOrchestrator::Rebalance(const std::vector<QueueLoad>& queues,
                                        size_t max_workers) {
  RoundRobinOrchestrator rr;
  return rr.Rebalance(queues, std::min(workers_, max_workers));
}

Assignment DynamicOrchestrator::Rebalance(const std::vector<QueueLoad>& queues,
                                          size_t max_workers) {
  Assignment assignment;
  if (max_workers == 0 || queues.empty()) return assignment;

  // 1. Classification.
  std::vector<QueueLoad> lqs;
  std::vector<QueueLoad> cqs;
  for (const QueueLoad& q : queues) {
    if (q.est_processing_ns <= options_.lq_threshold_ns) {
      lqs.push_back(q);
    } else {
      cqs.push_back(q);
    }
  }

  // 2./3. Choose the fewest workers per class whose makespan stays
  // within (1 + loss_threshold) of the best achievable (all workers).
  const auto pick = [&](const std::vector<QueueLoad>& group,
                        size_t budget) -> PackResult {
    if (group.empty() || budget == 0) return PackResult{};
    const PackResult best = PackLpt(group, budget);
    // Capacity floor: enough workers that sustained arrivals fit in
    // the epoch at the target utilization (fewer workers would build
    // unbounded backlog no matter how the queues are packed).
    uint64_t total_work = 0;
    for (const QueueLoad& q : group) {
      total_work += q.est_processing_ns * std::max<uint64_t>(q.backlog, 1);
    }
    const double capacity_per_worker =
        static_cast<double>(options_.epoch_budget_ns) *
        options_.target_utilization;
    const size_t k_floor = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(static_cast<double>(total_work) /
                                         capacity_per_worker)));
    // Acceptable makespan: within the loss threshold of the best
    // achievable, or small enough to drain inside one epoch anyway.
    const double acceptable = std::max(
        static_cast<double>(best.makespan) * (1.0 + options_.loss_threshold),
        capacity_per_worker);
    for (size_t k = std::min(k_floor, budget); k < budget; ++k) {
      PackResult candidate = PackLpt(group, k);
      if (static_cast<double>(candidate.makespan) <= acceptable) {
        return candidate;
      }
    }
    return best;
  };

  // With one worker and both classes present no separation is
  // possible: everything shares the worker.
  if (max_workers == 1 && !lqs.empty() && !cqs.empty()) {
    assignment.worker_queues.emplace_back();
    assignment.latency_dedicated.push_back(false);
    for (const QueueLoad& q : queues) {
      assignment.worker_queues[0].push_back(q.qid);
    }
    return assignment;
  }
  // LQs get priority on the worker budget (they are why the policy
  // exists) but must leave at least one worker for the CQs; the CQs
  // take exactly what remains, so the total never exceeds the budget.
  const size_t lq_budget = cqs.empty() ? max_workers : max_workers - 1;
  PackResult lq_pack = pick(lqs, lq_budget);
  size_t lq_used = 0;
  for (const auto& bin : lq_pack.bins) lq_used += bin.empty() ? 0 : 1;
  const size_t cq_budget = cqs.empty() ? 0 : max_workers - lq_used;
  PackResult cq_pack = pick(cqs, cq_budget);

  for (std::vector<uint32_t>& bin : lq_pack.bins) {
    if (bin.empty()) continue;
    assignment.worker_queues.push_back(std::move(bin));
    assignment.latency_dedicated.push_back(true);
  }
  for (std::vector<uint32_t>& bin : cq_pack.bins) {
    if (bin.empty()) continue;
    assignment.worker_queues.push_back(std::move(bin));
    assignment.latency_dedicated.push_back(false);
  }
  // Degenerate case: all bins empty (no queues had weight) — fall back
  // to one worker holding everything.
  if (assignment.worker_queues.empty()) {
    assignment.worker_queues.emplace_back();
    assignment.latency_dedicated.push_back(false);
    for (const QueueLoad& q : queues) {
      assignment.worker_queues[0].push_back(q.qid);
    }
  }
  return assignment;
}

}  // namespace labstor::core
