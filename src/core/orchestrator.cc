#include "core/orchestrator.h"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <queue>
#include <utility>

namespace labstor::core {

namespace {

// Weight of a queue for balancing: expected time to drain its backlog
// (at least one request's worth, so idle queues still cost something
// to poll).
uint64_t QueueWeight(const QueueLoad& q) {
  const uint64_t backlog = std::max<uint64_t>(q.backlog, 1);
  return q.est_processing_ns * backlog;
}

}  // namespace

PackResult PackLpt(const std::vector<QueueLoad>& queues, size_t k) {
  PackResult result;
  if (k == 0) return result;
  result.bins.resize(k);
  std::vector<uint64_t> load(k, 0);
  // Longest processing time first.
  std::vector<const QueueLoad*> sorted;
  sorted.reserve(queues.size());
  for (const QueueLoad& q : queues) sorted.push_back(&q);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const QueueLoad* a, const QueueLoad* b) {
                     return QueueWeight(*a) > QueueWeight(*b);
                   });
  // Min-heap over (load, bin): each placement is O(log k) instead of
  // the O(k) min_element scan — with hundreds of workers the linear
  // scan made one pack quadratic in the pool size. Ties break toward
  // the lowest bin index (the order min_element picked), so results
  // are unchanged.
  using Slot = std::pair<uint64_t, size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (size_t b = 0; b < k; ++b) heap.emplace(0, b);
  for (const QueueLoad* q : sorted) {
    auto [bin_load, bin] = heap.top();
    heap.pop();
    result.bins[bin].push_back(q->qid);
    load[bin] = bin_load + QueueWeight(*q);
    heap.emplace(load[bin], bin);
  }
  result.makespan = *std::max_element(load.begin(), load.end());
  return result;
}

Assignment RoundRobinOrchestrator::Rebalance(
    const std::vector<QueueLoad>& queues, size_t max_workers) {
  Assignment assignment;
  if (max_workers == 0 || queues.empty()) return assignment;
  assignment.worker_queues.resize(max_workers);
  assignment.latency_dedicated.assign(max_workers, false);
  for (size_t i = 0; i < queues.size(); ++i) {
    assignment.worker_queues[i % max_workers].push_back(queues[i].qid);
  }
  return assignment;
}

Assignment FixedOrchestrator::Rebalance(const std::vector<QueueLoad>& queues,
                                        size_t max_workers) {
  RoundRobinOrchestrator rr;
  return rr.Rebalance(queues, std::min(workers_, max_workers));
}

DynamicOrchestrator::Options DynamicOrchestrator::Sanitize(Options options) {
  const Options defaults;
  if (options.epoch_budget_ns == 0) {
    options.epoch_budget_ns = defaults.epoch_budget_ns;
  }
  // NaN fails both comparisons' complements, so !(x > 0) catches it.
  if (!(options.target_utilization > 0.0) ||
      options.target_utilization > 1.0) {
    options.target_utilization = defaults.target_utilization;
  }
  if (!(options.loss_threshold >= 0.0)) {
    options.loss_threshold = defaults.loss_threshold;
  }
  if (options.lq_threshold_ns == 0) {
    options.lq_threshold_ns = defaults.lq_threshold_ns;
  }
  return options;
}

Assignment DynamicOrchestrator::Rebalance(const std::vector<QueueLoad>& queues,
                                          size_t max_workers) {
  Assignment assignment;
  if (max_workers == 0 || queues.empty()) return assignment;

  // 1. Classification.
  std::vector<QueueLoad> lqs;
  std::vector<QueueLoad> cqs;
  for (const QueueLoad& q : queues) {
    if (q.est_processing_ns <= options_.lq_threshold_ns) {
      lqs.push_back(q);
    } else {
      cqs.push_back(q);
    }
  }

  // 2./3. Choose the fewest workers per class whose makespan stays
  // within (1 + loss_threshold) of the best achievable (all workers).
  const auto pick = [&](const std::vector<QueueLoad>& group,
                        size_t budget) -> PackResult {
    if (group.empty() || budget == 0) return PackResult{};
    const PackResult best = PackLpt(group, budget);
    // Capacity floor: enough workers that sustained arrivals fit in
    // the epoch at the target utilization (fewer workers would build
    // unbounded backlog no matter how the queues are packed).
    uint64_t total_work = 0;
    for (const QueueLoad& q : group) {
      total_work += q.est_processing_ns * std::max<uint64_t>(q.backlog, 1);
    }
    const double capacity_per_worker =
        static_cast<double>(options_.epoch_budget_ns) *
        options_.target_utilization;
    // Clamp the floor into [1, budget] while still a double: a
    // non-finite or over-budget quotient cast straight to size_t is
    // undefined and used to either commission every worker or, via
    // wraparound, demand zero.
    double floor_d = std::ceil(static_cast<double>(total_work) /
                               capacity_per_worker);
    if (!std::isfinite(floor_d) || floor_d < 1.0) floor_d = 1.0;
    const size_t k_floor = floor_d >= static_cast<double>(budget)
                               ? budget
                               : static_cast<size_t>(floor_d);
    // Acceptable makespan: within the loss threshold of the best
    // achievable, or small enough to drain inside one epoch anyway.
    const double acceptable = std::max(
        static_cast<double>(best.makespan) * (1.0 + options_.loss_threshold),
        capacity_per_worker);
    const auto fits = [&](size_t k) -> bool {
      return static_cast<double>(PackLpt(group, k).makespan) <= acceptable;
    };
    // Find the smallest acceptable k in [k_floor, budget]. LPT
    // makespans are (near-)monotone in k, so gallop up from the floor
    // and binary-search the last doubling interval: O(log budget)
    // packs instead of the old linear scan, which at 256 workers ran
    // hundreds of packs per class per epoch and serialized the
    // orchestrator loop. k == budget always fits (acceptable ≥
    // best.makespan by construction), so the search is well-defined.
    size_t lo = k_floor;  // candidate; everything below lo - 1 rejected
    if (!fits(lo)) {
      size_t step = 1;
      size_t bad = lo;  // highest k known not to fit
      while (true) {
        const size_t probe = bad + step >= budget ? budget : bad + step;
        if (probe == budget || fits(probe)) {
          // Binary search in (bad, probe].
          size_t hi = probe;
          while (bad + 1 < hi) {
            const size_t mid = bad + (hi - bad) / 2;
            if (fits(mid)) {
              hi = mid;
            } else {
              bad = mid;
            }
          }
          lo = hi;
          break;
        }
        bad = probe;
        step *= 2;
      }
    }
    return lo >= budget ? best : PackLpt(group, lo);
  };

  // With one worker and both classes present no separation is
  // possible: everything shares the worker.
  if (max_workers == 1 && !lqs.empty() && !cqs.empty()) {
    assignment.worker_queues.emplace_back();
    assignment.latency_dedicated.push_back(false);
    for (const QueueLoad& q : queues) {
      assignment.worker_queues[0].push_back(q.qid);
    }
    return assignment;
  }
  // LQs get priority on the worker budget (they are why the policy
  // exists) but must leave at least one worker for the CQs; the CQs
  // take exactly what remains, so the total never exceeds the budget.
  const size_t lq_budget = cqs.empty() ? max_workers : max_workers - 1;
  PackResult lq_pack = pick(lqs, lq_budget);
  size_t lq_used = 0;
  for (const auto& bin : lq_pack.bins) lq_used += bin.empty() ? 0 : 1;
  const size_t cq_budget = cqs.empty() ? 0 : max_workers - lq_used;
  PackResult cq_pack = pick(cqs, cq_budget);

  for (std::vector<uint32_t>& bin : lq_pack.bins) {
    if (bin.empty()) continue;
    assignment.worker_queues.push_back(std::move(bin));
    assignment.latency_dedicated.push_back(true);
  }
  for (std::vector<uint32_t>& bin : cq_pack.bins) {
    if (bin.empty()) continue;
    assignment.worker_queues.push_back(std::move(bin));
    assignment.latency_dedicated.push_back(false);
  }
  // Degenerate case: all bins empty (no queues had weight) — fall back
  // to one worker holding everything.
  if (assignment.worker_queues.empty()) {
    assignment.worker_queues.emplace_back();
    assignment.latency_dedicated.push_back(false);
    for (const QueueLoad& q : queues) {
      assignment.worker_queues[0].push_back(q.qid);
    }
  }
  return assignment;
}

ShardedOrchestrator::ShardedOrchestrator(size_t shards,
                                         InnerFactory make_inner) {
  if (shards == 0) shards = 1;
  inner_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    inner_.push_back(make_inner ? make_inner()
                                : std::make_unique<DynamicOrchestrator>());
  }
}

Assignment ShardedOrchestrator::Rebalance(const std::vector<QueueLoad>& queues,
                                          size_t max_workers) {
  Assignment assignment;
  if (max_workers == 0 || queues.empty()) return assignment;
  const size_t shards = std::min(inner_.size(), max_workers);
  if (shards <= 1) return inner_[0]->Rebalance(queues, max_workers);
  // Stable partition by qid: a queue's shard never changes across
  // epochs, so per-shard EWMA/backlog history stays coherent.
  std::vector<std::vector<QueueLoad>> groups(shards);
  for (const QueueLoad& q : queues) groups[q.qid % shards].push_back(q);
  // Even worker slices, remainder to the lowest shards; every shard
  // with queues keeps at least one worker (slices stay disjoint
  // because shards ≤ max_workers).
  const size_t base = max_workers / shards;
  const size_t extra = max_workers % shards;
  for (size_t s = 0; s < shards; ++s) {
    if (groups[s].empty()) continue;
    const size_t slice = std::max<size_t>(1, base + (s < extra ? 1 : 0));
    Assignment part = inner_[s]->Rebalance(groups[s], slice);
    for (size_t b = 0; b < part.worker_queues.size(); ++b) {
      if (part.worker_queues[b].empty()) continue;
      assignment.worker_queues.push_back(std::move(part.worker_queues[b]));
      assignment.latency_dedicated.push_back(
          b < part.latency_dedicated.size() && part.latency_dedicated[b]);
    }
  }
  return assignment;
}

}  // namespace labstor::core
