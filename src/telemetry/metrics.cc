#include "telemetry/metrics.h"

#include <cmath>
#include <cstdio>

namespace labstor::telemetry {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Counter::Counter(size_t shards)
    : slots_(RoundUpPow2(shards)), mask_(slots_.size() - 1) {}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
}

LatencyHistogram::LatencyHistogram(size_t shards) {
  const size_t n = RoundUpPow2(shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  mask_ = n - 1;
}

void LatencyHistogram::Record(uint64_t value, size_t shard) {
  Shard& s = *shards_[shard & mask_];
  std::lock_guard<std::mutex> lock(s.mu);
  s.histogram.Record(value);
}

void LatencyHistogram::RecordN(uint64_t value, uint64_t count, size_t shard) {
  if (count == 0) return;
  Shard& s = *shards_[shard & mask_];
  std::lock_guard<std::mutex> lock(s.mu);
  s.histogram.RecordN(value, count);
}

Histogram LatencyHistogram::Merged() const {
  Histogram merged;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    merged.Merge(shard->histogram);
  }
  return merged;
}

void LatencyHistogram::Reset() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->histogram.Reset();
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%llu,\"mean\":%.1f,\"min\":%llu,\"p50\":%llu,"
                  "\"p90\":%llu,\"p99\":%llu,\"max\":%llu}",
                  static_cast<unsigned long long>(h.count()), h.Mean(),
                  static_cast<unsigned long long>(h.Min()),
                  static_cast<unsigned long long>(h.Percentile(50)),
                  static_cast<unsigned long long>(h.Percentile(90)),
                  static_cast<unsigned long long>(h.Percentile(99)),
                  static_cast<unsigned long long>(h.Max()));
    out += buf;
  }
  out += "}}";
  return out;
}

MetricsRegistry::MetricsRegistry(size_t shards)
    : shards_(RoundUpPow2(shards == 0 ? 1 : shards)) {}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(shards_);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>(shards_);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Merged();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace labstor::telemetry
