// MetricsRegistry: lock-light, sharded runtime metrics.
//
// Counters/gauges/latency histograms are registered under stable
// `subsystem.mod.metric` keys (e.g. "cache.lru_cache.hits",
// "ipc.queue.wait_ns"). Writers pass their worker id as the shard:
// each shard is a cache-line-padded atomic slot (counters) or an
// independently-locked histogram, so concurrent workers never contend
// on the hot path. Shards merge only on Scrape(), the pattern the
// paper's per-layer cost accounting needs at zero steady-state cost.
//
// Handle lookup (GetCounter & co.) takes the registry mutex; callers
// on hot paths should resolve handles once and cache the pointer.
// Handles stay valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace labstor::telemetry {

class Counter {
 public:
  explicit Counter(size_t shards);

  void Inc(size_t shard = 0) { Add(1, shard); }
  void Add(uint64_t delta, size_t shard = 0) {
    slots_[shard & mask_].value.fetch_add(delta, std::memory_order_relaxed);
  }
  // Merge across shards (scrape side).
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  std::vector<Slot> slots_;
  size_t mask_;
};

// A point-in-time signed value (queue depth, active workers). Gauges
// are written by one owner (admin thread / rebalancer), so a single
// atomic slot suffices.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Sharded latency histogram: each shard owns a common/histogram under
// its own mutex (uncontended when writers stick to their worker id).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(size_t shards);

  void Record(uint64_t value, size_t shard = 0);
  // Batch-aware record: `count` samples of `value` with one lock
  // acquisition (workers fold a drained batch into one call).
  void RecordN(uint64_t value, uint64_t count, size_t shard = 0);
  // Merge-on-scrape: collapse every shard into one histogram.
  Histogram Merged() const;
  void Reset();

 private:
  struct Shard {
    mutable std::mutex mu;
    Histogram histogram;
  };
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t mask_;
};

// A merged, point-in-time view of every metric in a registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,
  //  min,p50,p90,p99,max}}}
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // `shards` is rounded up to a power of two; writers index by worker
  // id (masked), so size it to at least the worker-pool bound.
  explicit MetricsRegistry(size_t shards = 16);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Create-or-get. Never returns nullptr; pointers live as long as the
  // registry.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Scrape() const;
  std::string ToJson() const { return Scrape().ToJson(); }
  // Zero every metric (names stay registered; handles stay valid).
  void Reset();

  size_t shards() const { return shards_; }

 private:
  size_t shards_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace labstor::telemetry
