#include "telemetry/trace_recorder.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace labstor::telemetry {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder(size_t shards, size_t capacity_per_shard)
    : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  const size_t n = RoundUpPow2(shards == 0 ? 1 : shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  mask_ = n - 1;
}

void TraceRecorder::Span(uint32_t shard, const char* category,
                         std::string name, uint64_t ts_ns, uint64_t dur_ns,
                         const char* arg_key, uint64_t arg_value) {
  Shard& s = *shards_[shard & mask_];
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.tid = shard;
  event.arg_key = arg_key;
  event.arg_value = arg_value;
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring.size() < capacity_) {
    s.ring.push_back(std::move(event));
  } else {
    s.ring[s.next] = std::move(event);
  }
  s.next = (s.next + 1) % capacity_;
  ++s.total;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    events.insert(events.end(), shard->ring.begin(), shard->ring.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::set<uint32_t> tids;
  bool first = true;
  for (const TraceEvent& e : events) {
    tids.insert(e.tid);
    if (!first) out += ',';
    first = false;
    char buf[160];
    // Chrome trace ts/dur are microseconds; keep ns precision in the
    // fraction.
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"cat\":\"%s\",\"name\":\"",
                  e.tid, static_cast<double>(e.ts_ns) / 1000.0,
                  static_cast<double>(e.dur_ns) / 1000.0, e.category);
    out += buf;
    AppendEscaped(out, e.name);
    out += '"';
    if (e.arg_key != nullptr) {
      out += ",\"args\":{\"";
      out += e.arg_key;
      out += "\":";
      out += std::to_string(e.arg_value);
      out += '}';
    }
    out += '}';
  }
  for (const uint32_t tid : tids) {
    if (!first) out += ',';
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"worker-%u\"}}",
                  tid, tid);
    out += buf;
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::Ok();
}

size_t TraceRecorder::recorded() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->ring.size();
  }
  return total;
}

uint64_t TraceRecorder::dropped() const {
  uint64_t overwritten = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    overwritten += shard->total - shard->ring.size();
  }
  return overwritten;
}

void TraceRecorder::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->ring.clear();
    shard->next = 0;
    shard->total = 0;
  }
}

}  // namespace labstor::telemetry
