// TraceRecorder: per-worker ring buffers of request-lifecycle spans,
// exported as Chrome trace-event JSON (loadable in Perfetto /
// chrome://tracing).
//
// Each worker writes into its own bounded shard (oldest events are
// overwritten once the ring fills; the drop count is kept), so
// recording is lock-light: the per-shard mutex only ever contends when
// a scrape races a writer. Timestamps are nanoseconds on the owning
// Telemetry's epoch clock — wall time since telemetry start in real
// mode, sim::Environment virtual time in sim mode — so both trace
// flavours render on the same kind of timeline.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace labstor::telemetry {

// Span categories used across the runtime wiring; the acceptance
// contract for traces is that these appear as `cat` values.
inline constexpr const char* kCatQueue = "queue";
inline constexpr const char* kCatMod = "mod";
inline constexpr const char* kCatDevice = "device";
inline constexpr const char* kCatOrchestrator = "orchestrator";
inline constexpr const char* kCatRuntime = "runtime";

struct TraceEvent {
  std::string name;
  const char* category = kCatRuntime;  // must point at static storage
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // worker id
  // Optional single numeric argument ({"args":{arg_key:arg_value}}).
  const char* arg_key = nullptr;  // static storage; nullptr = no args
  uint64_t arg_value = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t shards = 16, size_t capacity_per_shard = 32768);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Record a complete ("ph":"X") span on worker `shard`'s timeline.
  void Span(uint32_t shard, const char* category, std::string name,
            uint64_t ts_ns, uint64_t dur_ns, const char* arg_key = nullptr,
            uint64_t arg_value = 0);

  // All recorded events, merged across shards and sorted by timestamp.
  std::vector<TraceEvent> Snapshot() const;

  // {"displayTimeUnit":"ms","traceEvents":[...]} with ts/dur in
  // microseconds (the Chrome trace-event convention) plus thread-name
  // metadata per worker.
  std::string ToChromeJson() const;
  Status WriteFile(const std::string& path) const;

  size_t recorded() const;  // events currently retained
  uint64_t dropped() const;  // events overwritten by ring wraparound
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  // capacity-bounded, circular
    size_t next = 0;               // ring index of the next write
    uint64_t total = 0;            // events ever written
  };

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t mask_;
};

}  // namespace labstor::telemetry
