// Telemetry: the metrics + tracing bundle threaded through the
// runtime (ModContext, Runtime::Options, SimRuntime).
//
// A Telemetry object owns one MetricsRegistry and one TraceRecorder
// and defines their shared epoch clock:
//   * real mode  — NowNs() is wall time since the Telemetry was
//     created (steady clock), so Runtime worker threads stamp spans
//     directly;
//   * virtual mode — set_virtual_time(true); the DES passes
//     sim::Environment::now() explicitly and real-clock span capture
//     (e.g. StackExec per-mod spans) switches itself off.
//
// Instrumentation sites gate on `tel != nullptr && tel->enabled()`:
// a null pointer (the default everywhere) costs nothing, which is how
// the disabled-overhead budget (<= 1% on bench_anatomy) is met.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "telemetry/metrics.h"
#include "telemetry/trace_recorder.h"

namespace labstor::telemetry {

class Telemetry {
 public:
  struct Options {
    // Shard count for counters/histograms/trace rings; size to the
    // worker-pool bound (rounded up to a power of two internally).
    size_t shards = 16;
    size_t trace_capacity_per_shard = 32768;
    bool enabled = true;
    // Virtual (DES) timestamps instead of the wall epoch clock.
    bool virtual_time = false;
  };

  Telemetry() : Telemetry(Options()) {}
  explicit Telemetry(Options options)
      : enabled_(options.enabled),
        virtual_time_(options.virtual_time),
        origin_(std::chrono::steady_clock::now()),
        metrics_(options.shards),
        trace_(options.shards, options.trace_capacity_per_shard) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  bool virtual_time() const {
    return virtual_time_.load(std::memory_order_relaxed);
  }
  void set_virtual_time(bool on) {
    virtual_time_.store(on, std::memory_order_relaxed);
  }

  // Nanoseconds since this Telemetry's creation (real-mode epoch).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  std::string MetricsJson() const { return metrics_.ToJson(); }
  std::string TraceJson() const { return trace_.ToChromeJson(); }

 private:
  std::atomic<bool> enabled_;
  std::atomic<bool> virtual_time_;
  std::chrono::steady_clock::time_point origin_;
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace labstor::telemetry
