// labstorctl — the administration utility bundled with the platform
// (the paper's mount.stack / modify.stack / mount.repo command family,
// folded into one binary for this in-process build).
//
//   labstorctl mods
//       List every LabMod installed in the factory registry, with
//       available versions.
//   labstorctl validate-stack <stack.yaml>
//       Parse and validate a LabStack specification (DAG rules, type
//       compatibility is checked at mount).
//   labstorctl validate-config <runtime.yaml>
//       Parse a Runtime configuration and print the resolved settings.
//   labstorctl demo <runtime.yaml> <stack.yaml>
//       Boot a Runtime from the config, mount the stack, run a
//       write/read smoke test through GenericFS, report stats.
//   labstorctl stats <runtime.yaml> <stack.yaml>
//       Run the smoke workload with telemetry attached and print the
//       merged metrics registry as JSON.
//   labstorctl trace <runtime.yaml> <stack.yaml> [out.json]
//       Same workload; write a Chrome trace-event file (open it in
//       https://ui.perfetto.dev or chrome://tracing).
//   labstorctl faults <runtime.yaml> <stack.yaml> <faults.yaml>
//       Arm the fault-injection plan, run the smoke workload under it
//       (tolerating injected failures), and report per-site fire
//       counts, client retries, and the unhandled-fault audit counter.
//   labstorctl cluster [nodes] [ops]
//       Boot a simulated sharded cluster (default 4 nodes), run a
//       deterministic workload with one node join mid-stream, and
//       print the topology: shard-map generation, per-node state and
//       net queue depths, and routing/migration counters.
//   labstorctl pushdown [depth] [execs]
//       Boot a pushdown stack, register the canonical pointer-chase
//       (given depth) and read-modify-write chains, execute them, and
//       list each registered chain with its execution count plus the
//       cumulative crossings-saved counters from telemetry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "cluster/cluster.h"
#include "core/client.h"
#include "core/sim_runtime.h"
#include "faultinject/faultinject.h"
#include "core/module_registry.h"
#include "core/runtime.h"
#include "core/runtime_config.h"
#include "core/stack.h"
#include "ipc/chain.h"
#include "labmods/genericfs.h"
#include "labmods/pushdown.h"
#include "simdev/registry.h"
#include "telemetry/telemetry.h"

namespace {

using namespace labstor;

int Usage() {
  std::fprintf(stderr,
               "usage: labstorctl <command> [args]\n"
               "  mods\n"
               "  validate-stack <stack.yaml>\n"
               "  validate-config <runtime.yaml>\n"
               "  demo <runtime.yaml> <stack.yaml>\n"
               "  stats <runtime.yaml> <stack.yaml>\n"
               "  trace <runtime.yaml> <stack.yaml> [out.json]\n"
               "  faults <runtime.yaml> <stack.yaml> <faults.yaml>\n"
               "  cluster [nodes] [ops]\n"
               "  pushdown [depth] [execs]\n");
  return 2;
}

int ListMods() {
  core::ModFactory& factory = core::ModFactory::Global();
  std::printf("installed LabMods:\n");
  for (const std::string& name : factory.Names()) {
    auto latest = factory.LatestVersion(name);
    std::printf("  %-18s latest v%u\n", name.c_str(),
                latest.ok() ? *latest : 0);
  }
  return 0;
}

int ValidateStack(const char* path) {
  auto spec = core::StackSpec::ParseFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "parse error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  core::StackNamespace ns;
  const Status st = ns.Validate(*spec);
  if (!st.ok()) {
    std::fprintf(stderr, "invalid stack: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("OK: mount '%s', %zu vertices, exec_mode %s\n",
              spec->mount.c_str(), spec->dag.size(),
              spec->rules.exec_mode == core::ExecMode::kSync ? "sync" : "async");
  for (const core::StackVertexSpec& vs : spec->dag) {
    std::printf("  %-14s uuid=%s outputs=%zu%s\n", vs.mod_name.c_str(),
                vs.uuid.c_str(), vs.outputs.size(),
                core::ModFactory::Global().Has(vs.mod_name)
                    ? ""
                    : "  [WARNING: mod not installed]");
  }
  return 0;
}

int ValidateConfig(const char* path) {
  auto config = core::RuntimeConfig::ParseFile(path);
  if (!config.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  std::printf("OK: workers=%zu orchestrator=%s queue_depth=%zu segment=%zuMB\n",
              config->options.max_workers,
              std::string(config->options.orchestrator->name()).c_str(),
              config->options.ipc.queue_depth,
              config->options.ipc.segment_bytes >> 20);
  for (const auto& device : config->devices) {
    std::printf("  device %-8s %-9s %llu MB\n", device.name.c_str(),
                std::string(simdev::DeviceKindName(device.kind)).c_str(),
                static_cast<unsigned long long>(device.capacity_bytes >> 20));
  }
  for (const auto& repo : config->repos) {
    std::printf("  repo %s\n", repo.c_str());
  }
  return 0;
}

int Demo(const char* config_path, const char* stack_path) {
  auto config = core::RuntimeConfig::ParseFile(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  simdev::DeviceRegistry devices(nullptr);
  if (const Status st = config->ApplyDevices(devices); !st.ok()) {
    std::fprintf(stderr, "devices: %s\n", st.ToString().c_str());
    return 1;
  }
  core::Runtime runtime(std::move(config->options), devices);
  if (!runtime.Start().ok()) return 1;

  auto spec = core::StackSpec::ParseFile(stack_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "stack: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) {
    std::fprintf(stderr, "mount: %s\n", stack.status().ToString().c_str());
    return 1;
  }
  std::printf("mounted '%s' (id %u)\n", spec->mount.c_str(), (*stack)->id);

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericFs fs(client);
  const std::string path = spec->mount + "/labstorctl_smoke";
  auto fd = fs.Create(path);
  if (!fd.ok()) {
    std::fprintf(stderr, "create: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> data(4096);
  std::iota(data.begin(), data.end(), 0);
  auto wrote = fs.Write(*fd, data, 0);
  std::vector<uint8_t> back(4096);
  auto read = fs.Read(*fd, back, 0);
  std::printf("smoke test: wrote %llu, read %llu, %s\n",
              static_cast<unsigned long long>(wrote.value_or(0)),
              static_cast<unsigned long long>(read.value_or(0)),
              back == data ? "content OK" : "CONTENT MISMATCH");
  (void)fs.Unlink(path);
  (void)runtime.Stop();
  return back == data ? 0 : 1;
}

// Boot a runtime with telemetry attached, run a small write/read
// workload, and either print the metrics JSON (stats) or write the
// Perfetto-loadable trace (trace).
int Telemetrize(const char* config_path, const char* stack_path,
                const char* trace_out) {
  auto config = core::RuntimeConfig::ParseFile(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  simdev::DeviceRegistry devices(nullptr);
  if (const Status st = config->ApplyDevices(devices); !st.ok()) {
    std::fprintf(stderr, "devices: %s\n", st.ToString().c_str());
    return 1;
  }
  telemetry::Telemetry::Options topts;
  topts.shards = config->options.max_workers;
  telemetry::Telemetry tel(topts);
  config->options.telemetry = &tel;
  core::Runtime runtime(std::move(config->options), devices);
  if (!runtime.Start().ok()) return 1;

  auto spec = core::StackSpec::ParseFile(stack_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "stack: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) {
    std::fprintf(stderr, "mount: %s\n", stack.status().ToString().c_str());
    return 1;
  }

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericFs fs(client);
  const std::string path = spec->mount + "/labstorctl_telemetry";
  auto fd = fs.Create(path);
  if (!fd.ok()) {
    std::fprintf(stderr, "create: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> data(4096);
  std::iota(data.begin(), data.end(), 0);
  constexpr int kOps = 64;
  for (int i = 0; i < kOps; ++i) {
    if (!fs.Write(*fd, data, static_cast<uint64_t>(i) * data.size()).ok()) {
      std::fprintf(stderr, "write %d failed\n", i);
      return 1;
    }
  }
  for (int i = 0; i < kOps; ++i) {
    if (!fs.Read(*fd, data, static_cast<uint64_t>(i) * data.size()).ok()) {
      std::fprintf(stderr, "read %d failed\n", i);
      return 1;
    }
  }
  (void)fs.Unlink(path);
  (void)runtime.Stop();

  if (trace_out == nullptr) {
    std::printf("%s\n", tel.MetricsJson().c_str());
    return 0;
  }
  if (const Status st = tel.trace().WriteFile(trace_out); !st.ok()) {
    std::fprintf(stderr, "trace: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %zu trace events to %s (open in https://ui.perfetto.dev "
      "or chrome://tracing)\n",
      tel.trace().recorded(), trace_out);
  return 0;
}

// Arm a fault plan, run the smoke workload under it, and report what
// fired. Injected failures are expected — the interesting outputs are
// the per-site fire counts, the client's transport retries, and the
// "runtime.completion.dropped" audit counter, which must stay zero
// (a nonzero value means a worker completed a request nobody could
// observe: an unhandled fault).
int RunWithFaults(const char* config_path, const char* stack_path,
                  const char* faults_path) {
  auto config = core::RuntimeConfig::ParseFile(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  simdev::DeviceRegistry devices(nullptr);
  if (const Status st = config->ApplyDevices(devices); !st.ok()) {
    std::fprintf(stderr, "devices: %s\n", st.ToString().c_str());
    return 1;
  }
  telemetry::Telemetry::Options topts;
  topts.shards = config->options.max_workers;
  telemetry::Telemetry tel(topts);
  config->options.telemetry = &tel;

  faultinject::FaultInjector injector;
  if (const Status st = injector.LoadYamlFile(faults_path); !st.ok()) {
    std::fprintf(stderr, "faults: %s\n", st.ToString().c_str());
    return 1;
  }
  injector.AttachTelemetry(&tel);
  faultinject::ScopedInstall armed(injector);
  std::printf("armed %s (seed %llu)\n", faults_path,
              static_cast<unsigned long long>(injector.seed()));

  core::Runtime runtime(std::move(config->options), devices);
  if (!runtime.Start().ok()) return 1;
  auto spec = core::StackSpec::ParseFile(stack_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "stack: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto stack = runtime.MountStack(*spec, ipc::Credentials{1, 0, 0});
  if (!stack.ok()) {
    std::fprintf(stderr, "mount: %s\n", stack.status().ToString().c_str());
    return 1;
  }

  core::Client client(runtime, ipc::Credentials{100, 1000, 1000});
  if (!client.Connect().ok()) return 1;
  labmods::GenericFs fs(client);
  const std::string path = spec->mount + "/labstorctl_faults";
  int ok_ops = 0;
  int failed_ops = 0;
  auto fd = fs.Create(path);
  if (fd.ok()) {
    std::vector<uint8_t> data(4096);
    std::iota(data.begin(), data.end(), 0);
    constexpr int kOps = 128;
    for (int i = 0; i < kOps; ++i) {
      const uint64_t off = static_cast<uint64_t>(i % 32) * data.size();
      const bool write_ok = fs.Write(*fd, data, off).ok();
      const bool read_ok = fs.Read(*fd, data, off).ok();
      ok_ops += static_cast<int>(write_ok) + static_cast<int>(read_ok);
      failed_ops += static_cast<int>(!write_ok) + static_cast<int>(!read_ok);
    }
    (void)fs.Unlink(path);
  } else {
    ++failed_ops;
    std::fprintf(stderr, "create: %s\n", fd.status().ToString().c_str());
  }
  (void)runtime.Stop();

  std::printf("workload: %d ops ok, %d ops failed (injected)\n", ok_ops,
              failed_ops);
  std::printf("failpoint fires (%llu total):\n",
              static_cast<unsigned long long>(injector.total_fires()));
  for (const auto& [site, fires] : injector.FireCounts()) {
    std::printf("  %-28s %llu\n", site.c_str(),
                static_cast<unsigned long long>(fires));
  }
  std::printf("client retries: %llu\n",
              static_cast<unsigned long long>(client.retries()));
  const uint64_t dropped =
      tel.metrics().GetCounter("runtime.completion.dropped")->Value();
  std::printf("unhandled-fault audit (runtime.completion.dropped): %llu\n",
              static_cast<unsigned long long>(dropped));
  return dropped == 0 ? 0 : 1;
}

// ---------------------------------------------------------------
// cluster: boot N nodes, drive a deterministic workload with a join
// mid-stream, dump the topology.
// ---------------------------------------------------------------

sim::Task<void> ClusterWorkload(sim::Environment* env,
                                cluster::Cluster* cluster, uint32_t nodes,
                                uint64_t ops, Status* out) {
  for (uint64_t i = 0; i < ops; ++i) {
    const uint32_t tenant = static_cast<uint32_t>(i % 4);
    const uint32_t gateway = static_cast<uint32_t>(i % nodes);
    const std::string label =
        "t" + std::to_string(tenant) + "/obj" + std::to_string(i % 32);
    Status st = co_await cluster->Put(gateway, tenant, label,
                                      4096 + (i % 8) * 1024);
    if (!st.ok()) {
      *out = st;
      co_return;
    }
    if (i == ops / 2) {
      // Mid-stream join: the map widens and ~1/N of the shards
      // migrate onto the new node while traffic continues.
      st = co_await cluster->AddNode(nullptr);
      if (!st.ok()) {
        *out = st;
        co_return;
      }
    }
  }
  for (uint64_t i = 0; i < ops; ++i) {
    const uint32_t tenant = static_cast<uint32_t>(i % 4);
    const std::string label =
        "t" + std::to_string(tenant) + "/obj" + std::to_string(i % 32);
    const Status st = co_await cluster->Get(
        static_cast<uint32_t>((i + 1) % nodes), tenant, label);
    if (!st.ok()) {
      *out = st;
      co_return;
    }
  }
  Status st = co_await cluster->Rebalance();
  if (!st.ok()) {
    *out = st;
    co_return;
  }
  *out = cluster->CheckInvariants(/*strict=*/true);
  (void)env;
}

// ---------------------------------------------------------------
// pushdown: boot a pushdown stack, register the canonical chains,
// run them, and dump per-chain execution counts plus the cumulative
// crossings-saved counters from telemetry.
// ---------------------------------------------------------------

sim::Task<void> PushdownWorkload(sim::Environment* env, core::SimRuntime* rt,
                                 core::Stack* stack, uint32_t depth,
                                 uint64_t execs, Status* out) {
  const auto key = [](uint32_t i) {
    return "kvs::/ctl/k" + std::to_string(i);
  };
  // Register the canonical chains over the wire (kChainRegister), the
  // same framing a remote client uses — so the registration counter in
  // telemetry ticks too.
  for (const ipc::ChainProgram& program :
       {ipc::BuildPointerChaseChain(1, depth, 32), ipc::BuildRmwChain(2, 0, 7)}) {
    std::vector<uint8_t> encoded(sizeof(ipc::ChainProgram));
    ipc::EncodeChainProgram(program, encoded.data());
    ipc::Request req;
    req.op = ipc::OpCode::kChainRegister;
    req.client_pid = 1;
    req.length = encoded.size();
    req.data = encoded.data();
    req.SetPath("kvs::/ctl/");
    const Status st = co_await rt->Execute(1, *stack, req);
    if (!st.ok()) {
      *out = st;
      co_return;
    }
  }
  // Seed the pointer chase k0 -> ... -> k(depth-1); the RMW chain
  // shares k(depth-1) as its counter (first 8 value bytes).
  for (uint32_t i = 0; i < depth; ++i) {
    std::vector<uint8_t> value(64, static_cast<uint8_t>(0xC0 + i));
    if (i + 1 < depth) {
      std::fill(value.begin(), value.begin() + 32, uint8_t{0});
      const std::string next = key(i + 1);
      std::memcpy(value.data(), next.data(), next.size());
    } else {
      const uint64_t counter = 1000;
      std::memcpy(value.data(), &counter, sizeof(counter));
    }
    ipc::Request req;
    req.op = ipc::OpCode::kPut;
    req.client_pid = 1;
    req.length = value.size();
    req.data = value.data();
    req.SetPath(key(i));
    const Status st = co_await rt->Execute(1, *stack, req);
    if (!st.ok()) {
      *out = st;
      co_return;
    }
  }
  std::vector<uint8_t> buf(4096);
  for (uint64_t i = 0; i < execs; ++i) {
    // Alternate chase (chain 1, starts at k0) and RMW (chain 2,
    // increments the counter stored at the chase's tail key).
    ipc::Request req;
    req.op = ipc::OpCode::kChainExec;
    req.client_pid = 1;
    req.chain_id = i % 2 == 0 ? 1 : 2;
    req.length = buf.size();
    req.data = buf.data();
    req.SetPath(req.chain_id == 1 ? key(0) : key(depth - 1));
    const Status st = co_await rt->Execute(1, *stack, req);
    if (!st.ok()) {
      *out = st;
      co_return;
    }
  }
  (void)env;
}

int PushdownStatus(uint32_t depth, uint64_t execs) {
  sim::Environment env;
  telemetry::Telemetry::Options topts;
  topts.virtual_time = true;
  telemetry::Telemetry tel(topts);
  simdev::DeviceRegistry devices(&env);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700()).ok()) {
    std::fprintf(stderr, "device create failed\n");
    return 1;
  }
  core::SimRuntime rt(env, devices, /*workers=*/2);
  rt.AttachTelemetry(&tel);
  auto stack = rt.MountYaml(
      "mount: kvs::/ctl\n"
      "rules:\n"
      "  exec_mode: async\n"
      "dag:\n"
      "  - mod: pushdown\n"
      "    uuid: pd_ctl\n"
      "    outputs: [kvs_ctl]\n"
      "  - mod: labkvs\n"
      "    uuid: kvs_ctl\n"
      "    params:\n"
      "      device: nvme0\n"
      "      log_records_per_worker: 8192\n"
      "    outputs: [sched_ctl]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_ctl\n"
      "    outputs: [drv_ctl]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_ctl\n"
      "    params:\n"
      "      device: nvme0\n");
  if (!stack.ok()) {
    std::fprintf(stderr, "mount: %s\n", stack.status().ToString().c_str());
    return 1;
  }
  rt.RegisterQueue(1, 3 * sim::kUs);
  auto mod = rt.registry().Find("pd_ctl");
  auto* pd = mod.ok() ? dynamic_cast<labmods::PushdownMod*>(*mod) : nullptr;
  if (pd == nullptr) {
    std::fprintf(stderr, "pushdown mod not found\n");
    return 1;
  }
  Status workload_status;
  env.Spawn(
      PushdownWorkload(&env, &rt, *stack, depth, execs, &workload_status));
  env.Run();
  if (!workload_status.ok()) {
    std::fprintf(stderr, "pushdown workload: %s\n",
                 workload_status.ToString().c_str());
    return 1;
  }

  std::printf("registered chains:\n");
  std::printf("%-6s %-6s %-8s %-6s %-11s %-6s %-16s %s\n", "chain", "steps",
              "mutates", "epoch", "executions", "steps", "crossings_saved",
              "saved_ns");
  for (const labmods::PushdownMod::ChainInfo& c : pd->ListChains()) {
    std::printf("%-6u %-6u %-8s %-6llu %-11llu %-6llu %-16llu %llu\n", c.id,
                c.num_steps, c.mutates ? "yes" : "no",
                static_cast<unsigned long long>(c.registered_epoch),
                static_cast<unsigned long long>(c.executions),
                static_cast<unsigned long long>(c.steps_executed),
                static_cast<unsigned long long>(c.crossings_saved),
                static_cast<unsigned long long>(c.saved_ns));
  }
  const auto counter = [&](const char* name) {
    return static_cast<unsigned long long>(
        tel.metrics().GetCounter(name)->Value());
  };
  std::printf("telemetry (cumulative):\n");
  std::printf("  pushdown.chains.registered  %llu\n",
              counter("pushdown.chains.registered"));
  std::printf("  pushdown.chains.executed    %llu\n",
              counter("pushdown.chains.executed"));
  std::printf("  pushdown.steps.executed     %llu\n",
              counter("pushdown.steps.executed"));
  std::printf("  pushdown.hops.collapsed     %llu\n",
              counter("pushdown.hops.collapsed"));
  std::printf("  pushdown.crossings.saved    %llu\n",
              counter("pushdown.crossings.saved"));
  std::printf("  pushdown.crossings.saved_ns %llu\n",
              counter("pushdown.crossings.saved_ns"));
  return 0;
}

int ClusterStatus(uint32_t nodes, uint64_t ops) {
  sim::Environment env;
  cluster::ClusterConfig config;
  config.initial_nodes = nodes;
  cluster::Cluster cluster(env, config);
  if (!cluster.init_status().ok()) {
    std::fprintf(stderr, "cluster init: %s\n",
                 cluster.init_status().ToString().c_str());
    return 1;
  }
  Status workload_status;
  env.Spawn(ClusterWorkload(&env, &cluster, nodes, ops, &workload_status));
  env.Run();
  if (!workload_status.ok()) {
    std::fprintf(stderr, "cluster workload: %s\n",
                 workload_status.ToString().c_str());
    return 1;
  }

  const cluster::Topology topo = cluster.GetTopology();
  std::printf("shard map: generation %llu, %u virtual nodes per node\n",
              static_cast<unsigned long long>(topo.map_generation),
              topo.virtual_nodes);
  std::printf("%-5s %-5s %-9s %-8s %-8s %-7s %-9s %s\n", "node", "up",
              "draining", "version", "map_gen", "labels", "executed",
              "net_queue");
  for (const cluster::NodeInfo& n : topo.nodes) {
    std::printf("%-5u %-5s %-9s %-8u %-8llu %-7llu %-9llu %zu\n", n.id,
                n.up ? "yes" : "no", n.draining ? "yes" : "no", n.version,
                static_cast<unsigned long long>(n.map_generation),
                static_cast<unsigned long long>(n.labels),
                static_cast<unsigned long long>(n.executed),
                n.net_queue_depth);
  }
  std::printf("acked labels:    %llu\n",
              static_cast<unsigned long long>(topo.acked_labels));
  std::printf("forwarded hops:  %llu\n",
              static_cast<unsigned long long>(topo.forwarded));
  std::printf("fallback reads:  %llu\n",
              static_cast<unsigned long long>(topo.fallback_reads));
  std::printf("forward loops:   %llu\n",
              static_cast<unsigned long long>(topo.forward_loops));
  std::printf("migrated labels: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(topo.migrated),
              static_cast<unsigned long long>(topo.migration_bytes));
  std::printf("net messages:    %llu (%llu bytes)\n",
              static_cast<unsigned long long>(topo.net_messages),
              static_cast<unsigned long long>(topo.net_bytes));
  std::printf("invariants:      ok (single_owner, no_lost_acked_writes, "
              "loop_free, monotone_generations)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "mods") == 0) return ListMods();
  if (std::strcmp(argv[1], "validate-stack") == 0 && argc == 3) {
    return ValidateStack(argv[2]);
  }
  if (std::strcmp(argv[1], "validate-config") == 0 && argc == 3) {
    return ValidateConfig(argv[2]);
  }
  if (std::strcmp(argv[1], "demo") == 0 && argc == 4) {
    return Demo(argv[2], argv[3]);
  }
  if (std::strcmp(argv[1], "stats") == 0 && argc == 4) {
    return Telemetrize(argv[2], argv[3], nullptr);
  }
  if (std::strcmp(argv[1], "trace") == 0 && (argc == 4 || argc == 5)) {
    return Telemetrize(argv[2], argv[3],
                       argc == 5 ? argv[4] : "labstor_trace.json");
  }
  if (std::strcmp(argv[1], "faults") == 0 && argc == 5) {
    return RunWithFaults(argv[2], argv[3], argv[4]);
  }
  if (std::strcmp(argv[1], "cluster") == 0 && argc <= 4) {
    const uint32_t nodes =
        argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
                 : 4;
    const uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;
    if (nodes == 0 || ops == 0) return Usage();
    return ClusterStatus(nodes, ops);
  }
  if (std::strcmp(argv[1], "pushdown") == 0 && argc <= 4) {
    const uint32_t depth =
        argc >= 3 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10))
                  : 8;
    const uint64_t execs =
        argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 16;
    if (depth < 2 || depth > 8 || execs == 0) return Usage();
    return PushdownStatus(depth, execs);
  }
  return Usage();
}
