#include "kernelsim/kernel_fs.h"

namespace labstor::kernelsim {

std::string_view KfsKindName(KfsKind kind) {
  switch (kind) {
    case KfsKind::kExt4: return "ext4";
    case KfsKind::kXfs: return "xfs";
    case KfsKind::kF2fs: return "f2fs";
  }
  return "?";
}

KfsParams KfsParams::For(KfsKind kind) {
  KfsParams p;
  switch (kind) {
    case KfsKind::kExt4:
      // jbd2 transaction + inode table + dentry under one big lock.
      p.create_locked = 12 * sim::kUs;
      p.create_unlocked = 10 * sim::kUs;
      p.lock_tokens = 1;
      p.journal_bytes = 4096;
      p.data_op_fixed = 800;  // extent tree
      break;
    case KfsKind::kXfs:
      // Per-AG locking buys some metadata parallelism.
      p.create_locked = 12 * sim::kUs;
      p.create_unlocked = 12 * sim::kUs;
      p.lock_tokens = 4;
      p.journal_bytes = 4096;
      p.data_op_fixed = 1000;  // btree extents
      break;
    case KfsKind::kF2fs:
      // Log-structured: cheaper creates, one current-segment lock.
      p.create_locked = 8 * sim::kUs;
      p.create_unlocked = 9 * sim::kUs;
      p.lock_tokens = 1;
      p.journal_bytes = 512;  // node update
      p.data_op_fixed = 600;
      break;
  }
  return p;
}

KernelFs::KernelFs(sim::Environment& env, simdev::SimDevice& device,
                   KfsKind kind, const sim::SoftwareCosts& costs)
    : env_(env),
      device_(device),
      kind_(kind),
      costs_(costs),
      params_(KfsParams::For(kind)),
      meta_lock_(env, KfsParams::For(kind).lock_tokens) {}

sim::Task<void> KernelFs::Create() {
  co_await env_.Delay(SyscallEntry() + params_.create_unlocked);
  co_await meta_lock_.Acquire();
  co_await env_.Delay(params_.create_locked);
  // Journal append: group-committed asynchronously (jbd2-style). Many
  // transactions share one commit block, so flush one batched write
  // per kJournalBatch metadata ops; it occupies the device but does
  // not gate the create's return.
  constexpr uint64_t kJournalBatch = 32;
  if (++journal_cursor_ % kJournalBatch == 0) {
    const uint64_t off = (journal_cursor_ / kJournalBatch % 4096) * 32768;
    env_.Spawn(device_.WriteTimed(0, off, params_.journal_bytes * 8));
  }
  meta_lock_.Release();
  ++ops_;
}

sim::Task<void> KernelFs::Unlink() {
  // Same shape as create (dentry removal + journal).
  co_await Create();
}

sim::Task<void> KernelFs::Open() {
  co_await env_.Delay(SyscallEntry());
  co_await meta_lock_.Acquire();
  co_await env_.Delay(params_.create_locked / 4);  // dentry walk
  meta_lock_.Release();
  ++ops_;
}

sim::Task<void> KernelFs::Close() {
  co_await env_.Delay(costs_.syscall);
  ++ops_;
}

sim::Task<void> KernelFs::Fsync(uint32_t channel) {
  co_await env_.Delay(SyscallEntry());
  co_await device_.WriteTimed(channel, 0, params_.journal_bytes);
  ++ops_;
}

sim::Task<void> KernelFs::Write(uint32_t channel, uint64_t offset,
                                uint64_t length) {
  co_await env_.Delay(SyscallEntry() + params_.data_op_fixed +
                      costs_.CopyCost(length) + KernelBlockSpine(costs_) +
                      2 * costs_.context_switch);
  co_await device_.WriteTimed(channel, offset, length);
  ++ops_;
}

sim::Task<void> KernelFs::Read(uint32_t channel, uint64_t offset,
                               uint64_t length) {
  co_await env_.Delay(SyscallEntry() + params_.data_op_fixed +
                      costs_.CopyCost(length) + KernelBlockSpine(costs_) +
                      2 * costs_.context_switch);
  co_await device_.ReadTimed(channel, offset, length);
  ++ops_;
}

sim::Task<void> KernelFs::OpenSeekWriteClose(uint32_t channel, uint64_t offset,
                                             uint64_t length) {
  co_await Open();
  co_await env_.Delay(costs_.syscall);  // lseek
  co_await Write(channel, offset, length);
  co_await Close();
}

}  // namespace labstor::kernelsim
