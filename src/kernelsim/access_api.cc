#include "kernelsim/access_api.h"

#include <limits>

namespace labstor::kernelsim {

uint32_t BlkSwitchPickQueue(const simdev::SimDevice& device, uint64_t length,
                            uint32_t num_queues,
                            uint64_t lat_size_threshold) {
  const bool throughput_bound = length > lat_size_threshold;
  const uint32_t begin = throughput_bound ? num_queues / 2 : 0;
  const uint32_t end = throughput_bound ? num_queues : num_queues / 2;
  uint32_t best = begin;
  size_t best_depth = std::numeric_limits<size_t>::max();
  for (uint32_t ch = begin; ch < end; ++ch) {
    const size_t depth = device.ChannelQueueDepth(ch);
    if (depth < best_depth) {
      best_depth = depth;
      best = ch;
    }
  }
  return best;
}

sim::Task<void> AccessApi::DoIo(simdev::IoOp op, uint32_t channel,
                                uint64_t offset, uint64_t length) {
  co_await env_.Delay(SoftwareOverhead());
  if (op == simdev::IoOp::kRead) {
    co_await device_.ReadTimed(channel, offset, length);
  } else {
    co_await device_.WriteTimed(channel, offset, length);
  }
}

}  // namespace labstor::kernelsim
