// Kernel filesystem models: EXT4, XFS, F2FS over the simulated block
// layer — the baselines of Fig. 7 (metadata scaling), Fig. 9(b)
// (LABIOS backends), and Fig. 9(c) (Filebench).
//
// The scaling behaviour the paper measures comes from the locking
// discipline, so the models implement real serialization points as DES
// resources:
//   * ext4 — one journal (jbd2) and one directory/inode-table lock;
//   * xfs  — per-allocation-group locks (default 4 AGs) + log lock;
//   * f2fs — log-structured (cheap creates) but one "curseg" lock.
// Every metadata op pays syscall + VFS entry, holds its FS's lock for
// a model-specific time, and journals to the device. Data ops pay the
// kernel block spine plus a page-cache copy, then occupy the device.
#pragma once

#include <memory>
#include <string>

#include "kernelsim/paths.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "simdev/sim_device.h"

namespace labstor::kernelsim {

enum class KfsKind : uint8_t { kExt4, kXfs, kF2fs };

std::string_view KfsKindName(KfsKind kind);

struct KfsParams {
  sim::Time create_locked = 0;    // work done under the global lock
  sim::Time create_unlocked = 0;  // parallelizable part of create
  uint64_t lock_tokens = 1;       // parallelism of the serialization point
  sim::Time journal_bytes = 0;    // journal write per metadata op
  sim::Time data_op_fixed = 0;    // extra per data op (extent tree etc.)

  static KfsParams For(KfsKind kind);
};

class KernelFs {
 public:
  KernelFs(sim::Environment& env, simdev::SimDevice& device, KfsKind kind,
           const sim::SoftwareCosts& costs = sim::DefaultCosts());

  KfsKind kind() const { return kind_; }

  // --- metadata ops (timing actors) ---
  sim::Task<void> Create();
  sim::Task<void> Unlink();
  sim::Task<void> Open();   // lookup only: no journal, still locks dentry
  sim::Task<void> Close();  // syscall only
  sim::Task<void> Fsync(uint32_t channel);

  // --- data ops ---
  sim::Task<void> Write(uint32_t channel, uint64_t offset, uint64_t length);
  sim::Task<void> Read(uint32_t channel, uint64_t offset, uint64_t length);

  // The LABIOS worker sequence: open-seek-write-close as one label
  // store (4 syscalls; Fig. 9b's point).
  sim::Task<void> OpenSeekWriteClose(uint32_t channel, uint64_t offset,
                                     uint64_t length);

  uint64_t ops_completed() const { return ops_; }

 private:
  sim::Time SyscallEntry() const { return costs_.syscall + costs_.vfs_lookup; }

  sim::Environment& env_;
  simdev::SimDevice& device_;
  KfsKind kind_;
  const sim::SoftwareCosts& costs_;
  KfsParams params_;
  sim::Resource meta_lock_;
  uint64_t journal_cursor_ = 0;
  uint64_t ops_ = 0;
};

}  // namespace labstor::kernelsim
