// DES actor issuing I/O through a chosen route (Fig. 6's subjects):
// charges the route's software overhead, then occupies the device.
#pragma once

#include "kernelsim/paths.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "simdev/sim_device.h"

namespace labstor::kernelsim {

class AccessApi {
 public:
  AccessApi(sim::Environment& env, simdev::SimDevice& device, ApiKind kind,
            const sim::SoftwareCosts& costs = sim::DefaultCosts())
      : env_(env), device_(device), kind_(kind), costs_(costs) {}

  ApiKind kind() const { return kind_; }

  // One synchronous I/O: software overhead + device service (queued on
  // `channel`). Completion time is the caller's virtual now().
  sim::Task<void> DoIo(simdev::IoOp op, uint32_t channel, uint64_t offset,
                       uint64_t length);

  sim::Time SoftwareOverhead() const { return ApiOverhead(kind_, costs_); }

 private:
  sim::Environment& env_;
  simdev::SimDevice& device_;
  ApiKind kind_;
  const sim::SoftwareCosts& costs_;
};

}  // namespace labstor::kernelsim
