// Composable software-path cost formulas for every I/O route the
// paper's Fig. 6 compares. Pure functions over the cost table so the
// calibration is unit-testable; the DES actors below charge these as
// virtual-time delays.
//
// Kernel routes share the block-layer spine (request allocation, tag
// management, DMA mapping, IRQ-driven completion); they differ in how
// the application reaches it:
//   * POSIX sync  — syscall + VFS + blocking context switches
//   * POSIX AIO   — POSIX + user-level queue + worker-thread hops
//   * libaio      — submit + reap syscalls, no blocking
//   * io_uring    — one (batched) syscall, no blocking
// LabStor routes replace kernel crossings with shared-memory queues:
//   * KernelDriver — shm round trip + hctx submit (async stacks)
//   * SPDK         — user-mapped SQ doorbell, client-side (sync)
//   * DAX          — address translation + CPU load/store (sync)
#pragma once

#include <string_view>

#include "sim/cost_model.h"
#include "simdev/sim_device.h"

namespace labstor::kernelsim {

enum class ApiKind : uint8_t {
  kPosix,
  kPosixAio,
  kLibAio,
  kIoUring,
  kLabKernelDriver,
  kLabSpdk,
  kLabDax,
};

std::string_view ApiKindName(ApiKind kind);

// The kernel block-layer spine every kernel API pays per I/O.
inline sim::Time KernelBlockSpine(const sim::SoftwareCosts& c) {
  return c.block_layer + c.bio_alloc + c.dma_map + c.driver_submit +
         c.irq_completion;
}

// Per-I/O software overhead (device time excluded) for each route.
inline sim::Time ApiOverhead(ApiKind kind, const sim::SoftwareCosts& c) {
  switch (kind) {
    case ApiKind::kPosix:
      // read()/write() with O_DIRECT: enter, dispatch, sleep, wake.
      return c.syscall + c.vfs_lookup + KernelBlockSpine(c) +
             2 * c.context_switch;
    case ApiKind::kPosixAio:
      // POSIX path plus the glibc AIO thread pool: enqueue, hand off
      // to the worker thread, completion notification hop.
      return c.syscall + c.vfs_lookup + KernelBlockSpine(c) +
             2 * c.context_switch + c.aio_queue_mgmt + 3 * c.context_switch;
    case ApiKind::kLibAio:
      // io_submit + io_getevents; no blocking context switch.
      return 2 * c.syscall + c.vfs_lookup + KernelBlockSpine(c);
    case ApiKind::kIoUring:
      // One SQE/CQE round; syscall amortizes across the batch.
      return c.syscall + KernelBlockSpine(c);
    case ApiKind::kLabKernelDriver:
      // Shared-memory submission to a Runtime worker that submits
      // straight to the hardware dispatch queue and polls completion.
      return c.shm_submit + c.worker_poll + c.request_alloc +
             c.driver_submit + c.shm_complete;
    case ApiKind::kLabSpdk:
      // Client-side userspace driver: doorbell write + poll.
      return c.spdk_submit + c.request_alloc;
    case ApiKind::kLabDax:
      return c.dax_store_setup;
  }
  return 0;
}

inline std::string_view ApiKindName(ApiKind kind) {
  switch (kind) {
    case ApiKind::kPosix: return "posix";
    case ApiKind::kPosixAio: return "posix_aio";
    case ApiKind::kLibAio: return "libaio";
    case ApiKind::kIoUring: return "io_uring";
    case ApiKind::kLabKernelDriver: return "lab_kernel_driver";
    case ApiKind::kLabSpdk: return "lab_spdk";
    case ApiKind::kLabDax: return "lab_dax";
  }
  return "?";
}

// --- pushdown crossing accounting (DESIGN.md §12) ----------------------
//
// One client↔worker round trip on the LabStor shared-memory path pays
// submission-side and completion-side software on both ends. A
// client-driven N-hop dependent sequence pays it N times; a pushdown
// chain pays it once and resubmits internally, so N-1 round trips
// (2·(N-1) crossings, two per round trip) are saved. The pushdown mod
// prices its "crossings saved" telemetry with these formulas so the
// counter is directly comparable to the Fig. 4/6 cost anatomy.

// Virtual ns one client↔worker round trip costs in software (the
// async-stack datapath: enqueue, worker dequeue, CQE reap + post,
// completion poll).
inline sim::Time LabRoundTripCost(const sim::SoftwareCosts& c) {
  return c.shm_submit + c.worker_poll + c.completion_post + c.shm_complete;
}

// Virtual ns saved by collapsing `hops` dependent submissions into one
// (hops ≥ 1; the single pushdown submission still pays one round trip).
inline sim::Time PushdownSavingsNs(const sim::SoftwareCosts& c,
                                   uint64_t hops) {
  return hops == 0 ? 0 : (hops - 1) * LabRoundTripCost(c);
}

// Client↔worker boundary crossings saved by the same collapse (each
// round trip crosses twice: submit and complete).
inline uint64_t PushdownCrossingsSaved(uint64_t hops) {
  return hops == 0 ? 0 : 2 * (hops - 1);
}

// Scheduler queue-pick policies shared between the kernel baselines
// and the bench drivers (the LabMods implement the same logic within
// stacks).
inline uint32_t NoOpPickQueue(uint32_t origin_core, uint32_t num_queues) {
  return origin_core % num_queues;
}

// blk-switch: size-classed, least-loaded within the class.
uint32_t BlkSwitchPickQueue(const simdev::SimDevice& device, uint64_t length,
                            uint32_t num_queues,
                            uint64_t lat_size_threshold = 16 * 1024);

}  // namespace labstor::kernelsim
