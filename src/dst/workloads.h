// Seeded randomized workloads for the crash-point enumerator.
//
// Every operation is drawn from the Schedule's decision streams (so
// one seed fixes the whole op sequence), issued through the rig's
// client, and — once acknowledged — recorded in the ledger with the
// device-journal window it spanned. A workload failing mid-run is an
// error: these run against a healthy rig; faults come later, from the
// crash enumerator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "dst/journal.h"
#include "dst/model.h"
#include "dst/rigs.h"
#include "dst/schedule.h"

namespace labstor::dst {

// Deterministic payload bytes: position-dependent and tagged, so two
// different writes never produce the same byte stream.
std::vector<uint8_t> PatternBytes(uint64_t tag, size_t len);

// Random create/write/truncate/rename/unlink mix over a small file
// population on a SyncFsRig. Records every ack into `model`.
Status RunFsWorkload(CrashRig& rig, Schedule& sched,
                     const DeviceJournal& journal, FsModel& model,
                     size_t num_ops);

// Random put/delete (with read-back verification) mix on a SyncKvsRig.
Status RunKvsWorkload(CrashRig& rig, Schedule& sched,
                      const DeviceJournal& journal, KvModel& model,
                      size_t num_ops);

}  // namespace labstor::dst
