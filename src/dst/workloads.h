// Seeded randomized workloads for the crash-point enumerator.
//
// Every operation is drawn from the Schedule's decision streams (so
// one seed fixes the whole op sequence), issued through the rig's
// client, and — once acknowledged — recorded in the ledger with the
// device-journal window it spanned. A workload failing mid-run is an
// error: these run against a healthy rig; faults come later, from the
// crash enumerator.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dst/crash_enum.h"
#include "dst/journal.h"
#include "dst/model.h"
#include "dst/rigs.h"
#include "dst/schedule.h"

namespace labstor::dst {

// Deterministic payload bytes: position-dependent and tagged, so two
// different writes never produce the same byte stream.
std::vector<uint8_t> PatternBytes(uint64_t tag, size_t len);

// The fixed file/key population the steppers draw from. Exposed so
// end-of-run audits can also verify *absence*: a pool member missing
// from the model must be missing from the system too.
inline constexpr size_t kWorkloadPoolSize = 6;
std::string WorkloadFsPath(size_t i);
std::string WorkloadKvsKey(size_t i);

// Shadow state the steppers consult when choosing an applicable op
// (which files/keys currently exist and how big they are). One struct
// per workload so callers can interleave the two streams.
struct FsWorkloadState {
  std::map<std::string, uint64_t> live;  // path -> size
};
struct KvsWorkloadState {
  std::map<std::string, std::vector<uint8_t>> live;  // key -> value
};

// Single acked operation drawn from the Schedule streams. The crash
// workloads loop these against a journaled rig; the lifecycle
// scheduler (dst/lifecycle.h) interleaves them with upgrade/rebalance/
// restart events. `journal` may be null (no crash-point enumeration on
// that rig) — windows are then recorded as [0, 0), which StateAt
// treats as always durable.
Status StepFsOp(labmods::GenericFs& fs, core::Client& client,
                core::Stack& stack, Schedule& sched,
                const DeviceJournal* journal, FsModel& model,
                FsWorkloadState& state);
Status StepKvsOp(labmods::GenericKvs& kvs, Schedule& sched,
                 const DeviceJournal* journal, KvModel& model,
                 KvsWorkloadState& state);

// Random create/write/truncate/rename/unlink mix over a small file
// population on a SyncFsRig. Records every ack into `model`.
Status RunFsWorkload(CrashRig& rig, Schedule& sched,
                     const DeviceJournal& journal, FsModel& model,
                     size_t num_ops);

// Random put/delete (with read-back verification) mix on a SyncKvsRig.
Status RunKvsWorkload(CrashRig& rig, Schedule& sched,
                      const DeviceJournal& journal, KvModel& model,
                      size_t num_ops);

// Pushdown RMW-chain mix on a PushdownKvsRig: seeds a counter-bearing
// value pool, registers a get-modify-put chain, then executes it
// `num_chains` times through the IPC path with read-back verification.
// Each acked chain is recorded in the KV model as a put of its final
// value, and the durable-journal length after every chain step is
// appended to `ledger.chain_step_boundaries` (via the PushdownMod step
// hook) so the crash enumerator revisits every mid-chain state.
Status RunPushdownWorkload(CrashRig& rig, Schedule& sched,
                           const DeviceJournal& journal,
                           WorkloadLedger& ledger, size_t num_chains);

}  // namespace labstor::dst
