// DeviceJournal: records every functional write a SimDevice performs,
// in order, via the device's write observer.
//
// This is the crash-point enumerator's persistence model: the device
// state "as of" any point in the run is reconstructed by replaying a
// prefix of the journal into a fresh device — optionally tearing the
// boundary entry at an arbitrary byte prefix, which for a 256-byte
// fslog record slot leaves a CRC-mismatching tail exactly like a real
// torn write (fslog's Replay drops it and stops the region scan).
// Everything journaled after the boundary — later log appends AND the
// data-block writes interleaved with them — is simply absent, the way
// it would be after a power cut.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "simdev/sim_device.h"

namespace labstor::dst {

class DeviceJournal {
 public:
  struct Entry {
    uint64_t offset = 0;
    std::vector<uint8_t> bytes;  // what actually persisted (torn prefix
                                 // for injected torn writes)
  };

  // Starts recording `dev` (replaces any previous observer on it).
  void Attach(simdev::SimDevice& dev);
  // Stops recording (clears the device's observer).
  static void Detach(simdev::SimDevice& dev);

  size_t entries() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  // Indices of entries that are metadata-log appends: writes landing
  // inside [log_offset, log_offset + log_bytes). These are the
  // persistence boundaries the crash enumerator visits.
  std::vector<size_t> LogBoundaries(uint64_t log_offset,
                                    uint64_t log_bytes) const;

  // Reconstructs a crash state on `dev`: entries [0, upto) replay in
  // full; when torn_bytes > 0 and upto < entries(), the first
  // torn_bytes bytes of entry `upto` follow (a torn boundary write).
  Status ReplayInto(simdev::SimDevice& dev, size_t upto,
                    size_t torn_bytes) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace labstor::dst
