#include "dst/journal.h"

#include <algorithm>
#include <span>

namespace labstor::dst {

void DeviceJournal::Attach(simdev::SimDevice& dev) {
  dev.SetWriteObserver(
      [this](uint64_t offset, std::span<const uint8_t> data) {
        entries_.push_back(
            Entry{offset, std::vector<uint8_t>(data.begin(), data.end())});
      });
}

void DeviceJournal::Detach(simdev::SimDevice& dev) {
  dev.SetWriteObserver(nullptr);
}

std::vector<size_t> DeviceJournal::LogBoundaries(uint64_t log_offset,
                                                 uint64_t log_bytes) const {
  std::vector<size_t> boundaries;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.offset >= log_offset && e.offset < log_offset + log_bytes) {
      boundaries.push_back(i);
    }
  }
  return boundaries;
}

Status DeviceJournal::ReplayInto(simdev::SimDevice& dev, size_t upto,
                                 size_t torn_bytes) const {
  upto = std::min(upto, entries_.size());
  for (size_t i = 0; i < upto; ++i) {
    const Entry& e = entries_[i];
    LABSTOR_RETURN_IF_ERROR(dev.WriteNow(e.offset, std::span(e.bytes)));
  }
  if (torn_bytes > 0 && upto < entries_.size()) {
    const Entry& e = entries_[upto];
    const size_t keep = std::min(torn_bytes, e.bytes.size());
    LABSTOR_RETURN_IF_ERROR(
        dev.WriteNow(e.offset, std::span(e.bytes).first(keep)));
  }
  return Status::Ok();
}

}  // namespace labstor::dst
