// Concrete recovery invariants for LabFS and LabKVS (tentpole item 3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dst/invariant.h"

namespace labstor::dst {

// Every acknowledged, fully-durable FS operation survives recovery:
// expected files exist with byte-exact sizes and contents, and no
// unexpected paths appear. Paths touched by the (at most one) op in
// flight at the crash point are exempt — partial effects are legal
// there.
class LabFsNoLostAckedWrites final : public Invariant {
 public:
  std::string_view name() const override { return "labfs.no_lost_acked_writes"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Block accounting is exact after recovery: every data-region block is
// either free in the rebuilt allocator or mapped by exactly one
// (inode, file-block) slot — no leaks, no double-mappings, nothing
// outside the region.
class LabFsNoOrphanedBlocks final : public Invariant {
 public:
  std::string_view name() const override { return "labfs.no_orphaned_blocks"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Replay is idempotent: running StateRepair a second time over the
// same log reproduces the identical namespace and block accounting.
class LabFsReplayIdempotence final : public Invariant {
 public:
  std::string_view name() const override { return "labfs.replay_idempotence"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Every acknowledged, fully-durable put is visible after recovery with
// byte-exact value; deleted keys stay gone; no unexpected keys.
class LabKvsAckedPutsVisible final : public Invariant {
 public:
  std::string_view name() const override { return "labkvs.acked_puts_visible"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Pushdown RMW chain atomicity (DESIGN.md §12): at EVERY crash point —
// including mid-chain, between journal-touching steps — the recovered
// value of the chain's target key is byte-exact either the pre-chain
// value or the post-chain value, never an intermediate and never
// absent. The journal txn markers (kTxnBegin/kTxnCommit) are what
// makes this hold: recovery buffers the chain's records and applies
// them only at the commit. Constructed per test with the two legal
// states. `enforce_from` points at the journal boundary where the
// pre-chain value became durable (the workload fills it in before the
// enumerator starts visiting); crash points before it predate the
// chain's world and are vacuously fine — earlier invariants (acked
// puts visible, with in-flight exemptions) already cover them.
class PushdownChainAtomicity final : public Invariant {
 public:
  PushdownChainAtomicity(std::string key, std::vector<uint8_t> before,
                         std::vector<uint8_t> after,
                         const size_t* enforce_from = nullptr)
      : key_(std::move(key)),
        before_(std::move(before)),
        after_(std::move(after)),
        enforce_from_(enforce_from) {}

  std::string_view name() const override { return "pushdown.chain_atomicity"; }
  Status Check(const InvariantContext& ctx) const override;

 private:
  std::string key_;
  std::vector<uint8_t> before_;
  std::vector<uint8_t> after_;
  const size_t* enforce_from_ = nullptr;
};

}  // namespace labstor::dst
