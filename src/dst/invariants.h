// Concrete recovery invariants for LabFS and LabKVS (tentpole item 3).
#pragma once

#include "dst/invariant.h"

namespace labstor::dst {

// Every acknowledged, fully-durable FS operation survives recovery:
// expected files exist with byte-exact sizes and contents, and no
// unexpected paths appear. Paths touched by the (at most one) op in
// flight at the crash point are exempt — partial effects are legal
// there.
class LabFsNoLostAckedWrites final : public Invariant {
 public:
  std::string_view name() const override { return "labfs.no_lost_acked_writes"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Block accounting is exact after recovery: every data-region block is
// either free in the rebuilt allocator or mapped by exactly one
// (inode, file-block) slot — no leaks, no double-mappings, nothing
// outside the region.
class LabFsNoOrphanedBlocks final : public Invariant {
 public:
  std::string_view name() const override { return "labfs.no_orphaned_blocks"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Replay is idempotent: running StateRepair a second time over the
// same log reproduces the identical namespace and block accounting.
class LabFsReplayIdempotence final : public Invariant {
 public:
  std::string_view name() const override { return "labfs.replay_idempotence"; }
  Status Check(const InvariantContext& ctx) const override;
};

// Every acknowledged, fully-durable put is visible after recovery with
// byte-exact value; deleted keys stay gone; no unexpected keys.
class LabKvsAckedPutsVisible final : public Invariant {
 public:
  std::string_view name() const override { return "labkvs.acked_puts_visible"; }
  Status Check(const InvariantContext& ctx) const override;
};

}  // namespace labstor::dst
