#include "dst/invariants.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "dst/rigs.h"

namespace labstor::dst {
namespace {

std::string Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Status LabFsNoLostAckedWrites::Check(const InvariantContext& ctx) const {
  labmods::LabFsMod* mod = ctx.rig.labfs();
  labmods::GenericFs* fs = ctx.rig.fs();
  if (mod == nullptr || fs == nullptr || ctx.fs_model == nullptr) {
    return Status::FailedPrecondition("not a LabFS rig");
  }
  const auto expected = ctx.fs_model->StateAt(ctx.point.boundary);
  const auto in_flight = ctx.fs_model->InFlightAt(ctx.point.boundary);

  for (const auto& [path, file] : expected) {
    if (in_flight.count(path) != 0) continue;
    if (!mod->Exists(path)) {
      return Status::Internal("acked file lost after recovery: " + path);
    }
    LABSTOR_ASSIGN_OR_RETURN(size, mod->FileSize(path));
    if (size != file.content.size()) {
      return Status::Internal(
          "acked size lost for " + path + ": expected " +
          std::to_string(file.content.size()) + ", recovered " +
          std::to_string(size));
    }
    if (!file.is_dir && !file.content.empty()) {
      LABSTOR_ASSIGN_OR_RETURN(fd, fs->Open(path, 0));
      std::vector<uint8_t> got(file.content.size());
      auto read = fs->Read(fd, got, 0);
      (void)fs->Close(fd);
      LABSTOR_RETURN_IF_ERROR(read.status());
      if (*read != file.content.size() || got != file.content) {
        return Status::Internal("acked content lost for " + path);
      }
    }
  }
  for (const std::string& path : mod->ListPaths()) {
    if (expected.count(path) == 0 && in_flight.count(path) == 0) {
      return Status::Internal("unexpected path after recovery: " + path);
    }
  }
  return Status::Ok();
}

Status LabFsNoOrphanedBlocks::Check(const InvariantContext& ctx) const {
  labmods::LabFsMod* mod = ctx.rig.labfs();
  if (mod == nullptr) return Status::FailedPrecondition("not a LabFS rig");
  const labmods::LabFsMod::BlockAudit audit = mod->AuditBlocks();
  if (!audit.Consistent()) {
    return Status::Internal(
        "block audit inconsistent: data=" + std::to_string(audit.data_blocks) +
        " free=" + std::to_string(audit.free_blocks) +
        " mapped=" + std::to_string(audit.mapped_blocks) +
        " dup=" + std::to_string(audit.duplicate_mappings) +
        " out_of_region=" + std::to_string(audit.out_of_region));
  }
  return Status::Ok();
}

Status LabFsReplayIdempotence::Check(const InvariantContext& ctx) const {
  labmods::LabFsMod* mod = ctx.rig.labfs();
  if (mod == nullptr) return Status::FailedPrecondition("not a LabFS rig");

  const auto capture = [mod]() {
    std::map<std::string, uint64_t> sizes;
    for (const std::string& path : mod->ListPaths()) {
      auto size = mod->FileSize(path);
      sizes[path] = size.ok() ? *size : ~uint64_t{0};
    }
    return sizes;
  };

  const auto before = capture();
  const labmods::LabFsMod::BlockAudit audit_before = mod->AuditBlocks();
  LABSTOR_RETURN_IF_ERROR(mod->StateRepair());
  const auto after = capture();
  const labmods::LabFsMod::BlockAudit audit_after = mod->AuditBlocks();

  if (before != after) {
    return Status::Internal("second replay changed the namespace (" +
                            std::to_string(before.size()) + " -> " +
                            std::to_string(after.size()) + " paths)");
  }
  if (audit_before.free_blocks != audit_after.free_blocks ||
      audit_before.mapped_blocks != audit_after.mapped_blocks) {
    return Status::Internal(
        "second replay changed block accounting: free " +
        std::to_string(audit_before.free_blocks) + " -> " +
        std::to_string(audit_after.free_blocks) + ", mapped " +
        std::to_string(audit_before.mapped_blocks) + " -> " +
        std::to_string(audit_after.mapped_blocks));
  }
  return Status::Ok();
}

Status LabKvsAckedPutsVisible::Check(const InvariantContext& ctx) const {
  labmods::LabKvsMod* mod = ctx.rig.labkvs();
  labmods::GenericKvs* kvs = ctx.rig.kvs();
  if (mod == nullptr || kvs == nullptr || ctx.kv_model == nullptr) {
    return Status::FailedPrecondition("not a LabKVS rig");
  }
  const auto expected = ctx.kv_model->StateAt(ctx.point.boundary);
  const auto in_flight = ctx.kv_model->InFlightAt(ctx.point.boundary);

  for (const auto& [key, value] : expected) {
    if (in_flight.count(key) != 0) continue;
    LABSTOR_ASSIGN_OR_RETURN(size, mod->ValueSize(key));
    if (size != value.size()) {
      return Status::Internal("acked put size lost for " + key +
                              ": expected " + std::to_string(value.size()) +
                              ", recovered " + std::to_string(size));
    }
    std::vector<uint8_t> got(value.size());
    LABSTOR_ASSIGN_OR_RETURN(read, kvs->Get(key, got));
    if (read != value.size() || got != value) {
      return Status::Internal("acked put content lost for " + key +
                              " (value tag " + Hex(value.empty() ? 0 : value[0]) +
                              ")");
    }
  }
  for (const std::string& key : mod->ListKeys()) {
    if (expected.count(key) == 0 && in_flight.count(key) == 0) {
      return Status::Internal("unexpected key after recovery: " + key);
    }
  }
  return Status::Ok();
}

Status PushdownChainAtomicity::Check(const InvariantContext& ctx) const {
  labmods::LabKvsMod* mod = ctx.rig.labkvs();
  labmods::GenericKvs* kvs = ctx.rig.kvs();
  if (mod == nullptr || kvs == nullptr) {
    return Status::FailedPrecondition("not a LabKVS rig");
  }
  if (enforce_from_ != nullptr && ctx.point.boundary < *enforce_from_) {
    return Status::Ok();  // crash predates the pre-chain value
  }
  const auto size = mod->ValueSize(key_);
  if (!size.ok()) {
    return Status::Internal("chain target '" + key_ +
                            "' absent after recovery: a partially executed "
                            "chain must leave the pre-chain value");
  }
  std::vector<uint8_t> got(*size);
  LABSTOR_ASSIGN_OR_RETURN(read, kvs->Get(key_, got));
  got.resize(read);
  if (got != before_ && got != after_) {
    return Status::Internal(
        "chain target '" + key_ + "' recovered to an intermediate state (" +
        std::to_string(got.size()) + " bytes, expected pre- or post-chain "
        "value) at boundary " + std::to_string(ctx.point.boundary));
  }
  return Status::Ok();
}

}  // namespace labstor::dst
