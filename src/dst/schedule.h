// Deterministic-simulation schedule controller (DESIGN.md §8).
//
// FoundationDB-style principle: one 64-bit seed determines every
// decision the harness makes — which operations a randomized workload
// issues, how much virtual-time jitter each scheduling site receives
// (and therefore the order in which worker polls, queue drains, and
// simdev completions interleave under the DES), and which crash
// points get sampled. A failing run prints the seed; re-running with
// --dst_seed=<seed> (or LABSTOR_DST_SEED) replays it exactly.
//
// Each decision site draws from its own stream, derived from
// (seed, FNV-1a(site name)). Streams are independent, so adding a new
// decision site to the harness never shifts the sequences existing
// sites observe — a seed reported by last month's CI still replays
// the same schedule on a build with unrelated new sites.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "sim/environment.h"

namespace labstor::dst {

class Schedule {
 public:
  explicit Schedule(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  // --- per-site decision streams ---
  uint64_t NextU64(std::string_view site);
  // Uniform in [lo, hi], inclusive.
  uint64_t Range(std::string_view site, uint64_t lo, uint64_t hi);
  bool Chance(std::string_view site, double p);
  // Uniform virtual-time jitter in [0, max_ns].
  sim::Time Jitter(std::string_view site, sim::Time max_ns);

  // Hook for core::SimRuntime::SetScheduleHook: jitter in [0, max_ns]
  // drawn from the "sim.<site>" stream at every scheduling decision.
  std::function<sim::Time(const char*)> MakeSimHook(sim::Time max_ns);

  // --- event trace ---
  // Note() appends one line to the trace. Two runs with the same seed
  // must produce byte-identical traces; a divergence is a determinism
  // bug in the code under test (wall-clock, address-order, or
  // container-iteration dependence).
  void Note(std::string_view line);
  const std::string& trace() const { return trace_; }
  size_t events() const { return events_; }

  // "replay with --dst_seed=0x..." — attach to every failure message.
  std::string ReplayHint() const;

 private:
  Rng& StreamFor(std::string_view site);

  uint64_t seed_;
  // Ordered map: stream creation order must not depend on hash layout.
  std::map<std::string, Rng, std::less<>> streams_;
  std::string trace_;
  size_t events_ = 0;
};

// --- seed plumbing for test binaries ---
// Parses and strips harness flags from argv (call before
// InitGoogleTest): --dst_seed=0x<hex>|<dec> pins a single seed;
// --dst_random_seeds=N appends N freshly drawn seeds to the sweep and
// prints them to stdout so CI can echo them into the job summary. The
// LABSTOR_DST_SEED environment variable acts like --dst_seed.
void InitSeeds(int* argc, char** argv);

// The seeds every dst test sweeps: the fixed corpus by default, a
// single pinned seed under --dst_seed, plus any --dst_random_seeds.
const std::vector<uint64_t>& SeedList();

}  // namespace labstor::dst
