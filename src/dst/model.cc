#include "dst/model.h"

#include <algorithm>
#include <cstddef>

namespace labstor::dst {

void FsModel::AckCreate(const std::string& path, bool is_dir,
                        size_t journal_before, size_t journal_after) {
  Op op;
  op.kind = Kind::kCreate;
  op.path = path;
  op.is_dir = is_dir;
  op.journal_before = journal_before;
  op.journal_after = journal_after;
  ops_.push_back(std::move(op));
}

void FsModel::AckWrite(const std::string& path, uint64_t offset,
                       const std::vector<uint8_t>& data, size_t journal_before,
                       size_t journal_after) {
  Op op;
  op.kind = Kind::kWrite;
  op.path = path;
  op.offset = offset;
  op.data = data;
  op.journal_before = journal_before;
  op.journal_after = journal_after;
  ops_.push_back(std::move(op));
}

void FsModel::AckTruncate(const std::string& path, uint64_t size,
                          size_t journal_before, size_t journal_after) {
  Op op;
  op.kind = Kind::kTruncate;
  op.path = path;
  op.size = size;
  op.journal_before = journal_before;
  op.journal_after = journal_after;
  ops_.push_back(std::move(op));
}

void FsModel::AckRename(const std::string& from, const std::string& to,
                        size_t journal_before, size_t journal_after) {
  Op op;
  op.kind = Kind::kRename;
  op.path = from;
  op.path2 = to;
  op.journal_before = journal_before;
  op.journal_after = journal_after;
  ops_.push_back(std::move(op));
}

void FsModel::AckUnlink(const std::string& path, size_t journal_before,
                        size_t journal_after) {
  Op op;
  op.kind = Kind::kUnlink;
  op.path = path;
  op.journal_before = journal_before;
  op.journal_after = journal_after;
  ops_.push_back(std::move(op));
}

std::map<std::string, FsModel::FileState> FsModel::StateAt(
    size_t boundary) const {
  std::map<std::string, FileState> state;
  for (const Op& op : ops_) {
    if (op.journal_after > boundary) continue;
    switch (op.kind) {
      case Kind::kCreate: {
        FileState file;
        file.is_dir = op.is_dir;
        state[op.path] = std::move(file);
        break;
      }
      case Kind::kWrite: {
        auto& file = state[op.path];
        const uint64_t end = op.offset + op.data.size();
        if (file.content.size() < end) file.content.resize(end, 0);
        std::copy(op.data.begin(), op.data.end(),
                  file.content.begin() + static_cast<std::ptrdiff_t>(op.offset));
        break;
      }
      case Kind::kTruncate: {
        auto& file = state[op.path];
        file.content.resize(op.size, 0);
        break;
      }
      case Kind::kRename: {
        const auto it = state.find(op.path);
        if (it != state.end()) {
          state[op.path2] = std::move(it->second);
          state.erase(op.path);
        }
        break;
      }
      case Kind::kUnlink:
        state.erase(op.path);
        break;
    }
  }
  return state;
}

std::set<std::string> FsModel::InFlightAt(size_t boundary) const {
  std::set<std::string> paths;
  for (const Op& op : ops_) {
    if (op.journal_before <= boundary && boundary < op.journal_after) {
      paths.insert(op.path);
      if (!op.path2.empty()) paths.insert(op.path2);
    }
  }
  return paths;
}

void KvModel::AckPut(const std::string& key, const std::vector<uint8_t>& value,
                     size_t journal_before, size_t journal_after) {
  ops_.push_back(Op{true, key, value, journal_before, journal_after});
}

void KvModel::AckDelete(const std::string& key, size_t journal_before,
                        size_t journal_after) {
  ops_.push_back(Op{false, key, {}, journal_before, journal_after});
}

std::map<std::string, std::vector<uint8_t>> KvModel::StateAt(
    size_t boundary) const {
  std::map<std::string, std::vector<uint8_t>> state;
  for (const Op& op : ops_) {
    if (op.journal_after > boundary) continue;
    if (op.is_put) {
      state[op.key] = op.value;
    } else {
      state.erase(op.key);
    }
  }
  return state;
}

std::set<std::string> KvModel::InFlightAt(size_t boundary) const {
  std::set<std::string> keys;
  for (const Op& op : ops_) {
    if (op.journal_before <= boundary && boundary < op.journal_after) {
      keys.insert(op.key);
    }
  }
  return keys;
}

}  // namespace labstor::dst
