// dst::Invariant: pluggable recovery-invariant checkers.
//
// The crash-point enumerator reconstructs the device at a crash
// point, runs recovery (StateRepair) on a fresh rig, then asks every
// registered invariant whether the recovered state is acceptable
// given the ledger of acknowledged operations. An invariant returns
// Ok() or an error Status whose message becomes the reported failure
// — the enumerator attaches the crash point and the replay seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "dst/model.h"

namespace labstor::dst {

class CrashRig;

// Where the crash landed: `boundary` journal entries were fully
// durable. (A torn boundary write adds a partial log record on top,
// which recovery must treat as absent — the CRC torn-write model.)
struct CrashPoint {
  size_t boundary = 0;
  size_t torn_bytes = 0;  // bytes of the boundary entry that persisted
};

struct InvariantContext {
  CrashRig& rig;  // the RECOVERED rig (Recover() already ran)
  CrashPoint point;
  uint64_t seed = 0;
  const FsModel* fs_model = nullptr;  // set for LabFS rigs
  const KvModel* kv_model = nullptr;  // set for LabKVS rigs
};

class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual std::string_view name() const = 0;
  // Ok when the invariant holds on the recovered state.
  virtual Status Check(const InvariantContext& ctx) const = 0;
};

}  // namespace labstor::dst
