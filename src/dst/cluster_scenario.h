// Deterministic cluster scenario (DESIGN.md §10).
//
// The cluster-level sibling of the lifecycle scheduler: one seed draws
// an action stream — tenant put/get/delete traffic, node join, graceful
// leave, crash, rejoin, and rolling upgrade — against a ClusterRig, and
// the always-on cluster invariants are checked after every step:
// single live ownership under the published shard map, no lost acked
// writes across crash/rejoin/migration, loop-free forwarding, and
// monotone map generations. Membership steps overlap a put and a get
// with the migration in flight, so the stale-map forwarding path and
// the previous-map read fallback are exercised on every seed.
//
// Coverage floors force any event class the stream missed, and the
// end-of-run audit rejoins every down node, rebalances to convergence,
// asserts the strict placement invariant (exactly one live holder per
// acked label, and it is the owner), and reads back every acked label
// byte-for-size. Every decision flows through dst::Schedule, so a
// failing run replays exactly from --dst_seed, trace included.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dst/rigs.h"
#include "dst/schedule.h"

namespace labstor::dst {

struct ClusterScenarioOptions {
  size_t num_steps = 100;
  // Label universe: "t<tenant>/obj<i>" for i in [0, label_universe).
  size_t label_universe = 48;
  uint32_t tenants = 4;
  uint64_t max_value_bytes = 64 * 1024;
  // Join is skipped (traffic substituted) once the cluster reaches
  // this many member nodes.
  uint32_t max_nodes = 12;
  // Coverage floors: event classes the random stream missed are forced
  // after the main loop so every seed exercises every class.
  size_t min_joins = 1;
  size_t min_leaves = 1;
  size_t min_crashes = 1;
  size_t min_rejoins = 1;
  size_t min_upgrades = 1;
};

struct ClusterScenarioStats {
  size_t steps = 0;
  size_t puts = 0;
  size_t gets = 0;
  size_t deletes = 0;
  size_t ok_ops = 0;
  size_t unavailable_ops = 0;
  size_t joins = 0;
  size_t leaves = 0;
  size_t crashes = 0;
  size_t rejoins = 0;
  size_t upgrades = 0;
  size_t invariant_checks = 0;
  uint64_t forwarded = 0;
  uint64_t fallback_reads = 0;
  uint32_t final_version = 0;
  size_t final_nodes = 0;
  size_t acked_labels = 0;
};

Result<ClusterScenarioStats> RunClusterScenario(
    ClusterRig& rig, Schedule& sched,
    const ClusterScenarioOptions& opts = {});

}  // namespace labstor::dst
