#include "dst/crash_enum.h"

#include <algorithm>

namespace labstor::dst {

std::string CrashEnumReport::Summary() const {
  std::string out = "crash enumeration: " + std::to_string(boundaries) +
                    " boundaries, " + std::to_string(points_visited) +
                    " points visited, " + std::to_string(failures.size()) +
                    " failures";
  for (const CrashFailure& f : failures) {
    out += "\n  [" + f.invariant + "] boundary=" +
           std::to_string(f.point.boundary) +
           " torn=" + std::to_string(f.point.torn_bytes) + ": " + f.detail;
  }
  return out;
}

namespace {

// Recover one crash state and run the invariants against it.
Status VisitPoint(const RigFactory& factory, const DeviceJournal& journal,
                  size_t replay_upto, size_t torn_bytes,
                  const std::vector<const Invariant*>& invariants,
                  const WorkloadLedger& ledger, Schedule& schedule,
                  CrashEnumReport& report) {
  LABSTOR_ASSIGN_OR_RETURN(rig, factory());
  LABSTOR_RETURN_IF_ERROR(
      journal.ReplayInto(rig->device(), replay_upto, torn_bytes));

  CrashPoint point;
  point.boundary = replay_upto;  // fully-durable journal entries
  point.torn_bytes = torn_bytes;

  const Status recovered = rig->Recover();
  if (!recovered.ok()) {
    report.failures.push_back(
        CrashFailure{point, "recovery",
                     recovered.ToString() + "; " + schedule.ReplayHint()});
    ++report.points_visited;
    return Status::Ok();
  }

  InvariantContext ctx{*rig, point, schedule.seed(), &ledger.fs, &ledger.kv};
  for (const Invariant* invariant : invariants) {
    const Status st = invariant->Check(ctx);
    if (!st.ok()) {
      report.failures.push_back(
          CrashFailure{point, std::string(invariant->name()),
                       st.ToString() + "; " + schedule.ReplayHint()});
    }
  }
  ++report.points_visited;
  return Status::Ok();
}

}  // namespace

Result<CrashEnumReport> EnumerateCrashPoints(
    const RigFactory& factory, const Workload& workload,
    const std::vector<const Invariant*>& invariants, Schedule& schedule,
    const CrashEnumOptions& opts) {
  // Phase 1: one healthy run, journaling every device write.
  LABSTOR_ASSIGN_OR_RETURN(rig0, factory());
  DeviceJournal journal;
  journal.Attach(rig0->device());
  WorkloadLedger ledger;
  const Status ran = workload(*rig0, schedule, journal, ledger);
  DeviceJournal::Detach(rig0->device());
  LABSTOR_RETURN_IF_ERROR(ran);

  const labmods::MetadataLog* log = rig0->log();
  if (log == nullptr) {
    return Status::FailedPrecondition("rig exposes no metadata log");
  }
  const std::vector<size_t> boundaries =
      journal.LogBoundaries(log->region_offset(), log->region_bytes());

  CrashEnumReport report;
  report.boundaries = boundaries.size();

  // Phase 2: every append boundary x every torn prefix class.
  const size_t stride = std::max<size_t>(opts.torn_stride, 1);
  for (const size_t boundary : boundaries) {
    const size_t record_bytes = journal.entry(boundary).bytes.size();
    for (size_t torn = 0; torn < record_bytes; torn += stride) {
      LABSTOR_RETURN_IF_ERROR(VisitPoint(factory, journal, boundary, torn,
                                         invariants, ledger, schedule,
                                         report));
    }
    // Fully-persisted boundary record (crash just after the append).
    LABSTOR_RETURN_IF_ERROR(VisitPoint(factory, journal, boundary + 1, 0,
                                       invariants, ledger, schedule, report));
  }
  // End-of-run: the complete journal must recover to the final state.
  LABSTOR_RETURN_IF_ERROR(VisitPoint(factory, journal, journal.entries(), 0,
                                     invariants, ledger, schedule, report));
  // Chain-step boundaries (pushdown workloads): reconstruct the exact
  // durable prefix the step hook observed after every chain step, so
  // a mid-chain crash is visited even at steps that appended nothing.
  for (const size_t step_boundary : ledger.chain_step_boundaries) {
    LABSTOR_RETURN_IF_ERROR(
        VisitPoint(factory, journal,
                   std::min(step_boundary, journal.entries()), 0, invariants,
                   ledger, schedule, report));
  }
  // Interrupt-delivery boundaries: the durable prefix as of each
  // simulated IRQ — the op's writes persisted, the waiter never saw
  // the completion. Recovery must treat these like any other crash.
  for (const size_t irq_boundary : ledger.interrupt_boundaries) {
    LABSTOR_RETURN_IF_ERROR(
        VisitPoint(factory, journal,
                   std::min(irq_boundary, journal.entries()), 0, invariants,
                   ledger, schedule, report));
  }
  return report;
}

}  // namespace labstor::dst
