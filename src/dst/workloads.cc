#include "dst/workloads.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string>

#include "ipc/chain.h"
#include "ipc/request.h"

namespace labstor::dst {

std::vector<uint8_t> PatternBytes(uint64_t tag, size_t len) {
  std::vector<uint8_t> bytes(len);
  for (size_t i = 0; i < len; ++i) {
    bytes[i] = static_cast<uint8_t>(tag * 131 + i * 7 + (i >> 8));
  }
  return bytes;
}

std::string WorkloadFsPath(size_t i) {
  return "fs::/dst/f" + std::to_string(i);
}
std::string WorkloadKvsKey(size_t i) {
  return "kvs::/dst/k" + std::to_string(i);
}

namespace {

constexpr size_t kPoolSize = kWorkloadPoolSize;
constexpr uint64_t kMaxWriteLen = 12000;  // spans multiple 4KB blocks

std::string FsPath(size_t i) { return WorkloadFsPath(i); }
std::string KvsKey(size_t i) { return WorkloadKvsKey(i); }

size_t JournalEntries(const DeviceJournal* journal) {
  return journal != nullptr ? journal->entries() : 0;
}

}  // namespace

Status StepFsOp(labmods::GenericFs& fs, core::Client& client,
                core::Stack& stack, Schedule& sched,
                const DeviceJournal* journal, FsModel& model,
                FsWorkloadState& state) {
  std::map<std::string, uint64_t>& live = state.live;
  const std::string path = FsPath(sched.Range("fs.pick", 0, kPoolSize - 1));
  const bool exists = live.count(path) != 0;
  uint64_t roll = sched.Range("fs.op", 0, 99);
  if (!exists) roll = 0;  // only a write/create applies

  if (roll < 50) {
    // Write (creating first when needed). Two separately-acked ops,
    // each with its own journal window.
    if (!exists) {
      const size_t jb = JournalEntries(journal);
      LABSTOR_ASSIGN_OR_RETURN(fd, fs.Create(path));
      LABSTOR_RETURN_IF_ERROR(fs.Close(fd));
      model.AckCreate(path, false, jb, JournalEntries(journal));
      live[path] = 0;
      sched.Note("fs op=create path=" + path);
    }
    const uint64_t len = sched.Range("fs.len", 1, kMaxWriteLen);
    const uint64_t offset = sched.Chance("fs.off0", 0.5)
                                ? 0
                                : sched.Range("fs.off", 0, live[path]);
    const std::vector<uint8_t> data =
        PatternBytes(sched.NextU64("fs.tag"), len);
    const size_t jb = JournalEntries(journal);
    LABSTOR_ASSIGN_OR_RETURN(fd, fs.Open(path, 0));
    LABSTOR_ASSIGN_OR_RETURN(written, fs.Write(fd, data, offset));
    LABSTOR_RETURN_IF_ERROR(fs.Close(fd));
    if (written != len) {
      return Status::Internal("short write in fs workload");
    }
    model.AckWrite(path, offset, data, jb, JournalEntries(journal));
    live[path] = std::max(live[path], offset + len);
    sched.Note("fs op=write path=" + path + " off=" + std::to_string(offset) +
               " len=" + std::to_string(len));
  } else if (roll < 65) {
    const uint64_t size = sched.Range("fs.trunc", 0, live[path]);
    ipc::Request req;
    req.op = ipc::OpCode::kTruncate;
    req.SetPath(path);
    req.offset = size;
    const size_t jb = JournalEntries(journal);
    LABSTOR_RETURN_IF_ERROR(client.Execute(req, stack));
    LABSTOR_RETURN_IF_ERROR(req.ToStatus());
    model.AckTruncate(path, size, jb, JournalEntries(journal));
    live[path] = size;
    sched.Note("fs op=truncate path=" + path + " size=" +
               std::to_string(size));
  } else if (roll < 80) {
    // Rename to a currently-unused pool slot (dst must not exist).
    std::string to;
    for (size_t j = 0; j < kPoolSize; ++j) {
      const std::string candidate = FsPath(j);
      if (candidate != path && live.count(candidate) == 0) {
        to = candidate;
        break;
      }
    }
    if (to.empty()) return Status::Ok();  // pool full; deterministic skip
    const size_t jb = JournalEntries(journal);
    LABSTOR_RETURN_IF_ERROR(fs.Rename(path, to));
    model.AckRename(path, to, jb, JournalEntries(journal));
    live[to] = live[path];
    live.erase(path);
    sched.Note("fs op=rename from=" + path + " to=" + to);
  } else {
    const size_t jb = JournalEntries(journal);
    LABSTOR_RETURN_IF_ERROR(fs.Unlink(path));
    model.AckUnlink(path, jb, JournalEntries(journal));
    live.erase(path);
    sched.Note("fs op=unlink path=" + path);
  }
  return Status::Ok();
}

Status StepKvsOp(labmods::GenericKvs& kvs, Schedule& sched,
                 const DeviceJournal* journal, KvModel& model,
                 KvsWorkloadState& state) {
  std::map<std::string, std::vector<uint8_t>>& live = state.live;
  const std::string key = KvsKey(sched.Range("kvs.pick", 0, kPoolSize - 1));
  const bool exists = live.count(key) != 0;
  uint64_t roll = sched.Range("kvs.op", 0, 99);
  if (!exists) roll = 0;  // only a put applies

  if (roll < 60) {
    const uint64_t len = sched.Range("kvs.len", 1, kMaxWriteLen);
    const std::vector<uint8_t> value =
        PatternBytes(sched.NextU64("kvs.tag"), len);
    const size_t jb = JournalEntries(journal);
    LABSTOR_RETURN_IF_ERROR(kvs.Put(key, value));
    model.AckPut(key, value, jb, JournalEntries(journal));
    live[key] = value;
    sched.Note("kvs op=put key=" + key + " len=" + std::to_string(len));
  } else if (roll < 80) {
    // Read-back verification against the shadow (sanity on the
    // healthy rig; the invariants re-verify after every crash).
    std::vector<uint8_t> got(live[key].size());
    LABSTOR_ASSIGN_OR_RETURN(read, kvs.Get(key, got));
    if (read != live[key].size() || got != live[key]) {
      return Status::Internal("kvs read-back mismatch for " + key);
    }
    sched.Note("kvs op=get key=" + key);
  } else {
    const size_t jb = JournalEntries(journal);
    LABSTOR_RETURN_IF_ERROR(kvs.Delete(key));
    model.AckDelete(key, jb, JournalEntries(journal));
    live.erase(key);
    sched.Note("kvs op=delete key=" + key);
  }
  return Status::Ok();
}

Status RunFsWorkload(CrashRig& rig, Schedule& sched,
                     const DeviceJournal& journal, FsModel& model,
                     size_t num_ops) {
  labmods::GenericFs* fs = rig.fs();
  if (fs == nullptr) return Status::FailedPrecondition("rig has no GenericFs");
  FsWorkloadState state;
  for (size_t i = 0; i < num_ops; ++i) {
    LABSTOR_RETURN_IF_ERROR(StepFsOp(*fs, rig.client(), rig.stack(), sched,
                                     &journal, model, state));
  }
  return Status::Ok();
}

Status RunKvsWorkload(CrashRig& rig, Schedule& sched,
                      const DeviceJournal& journal, KvModel& model,
                      size_t num_ops) {
  labmods::GenericKvs* kvs = rig.kvs();
  if (kvs == nullptr) {
    return Status::FailedPrecondition("rig has no GenericKvs");
  }
  KvsWorkloadState state;
  for (size_t i = 0; i < num_ops; ++i) {
    LABSTOR_RETURN_IF_ERROR(StepKvsOp(*kvs, sched, &journal, model, state));
  }
  return Status::Ok();
}

Status RunPushdownWorkload(CrashRig& rig, Schedule& sched,
                           const DeviceJournal& journal,
                           WorkloadLedger& ledger, size_t num_chains) {
  labmods::GenericKvs* kvs = rig.kvs();
  labmods::PushdownMod* pd = rig.pushdown();
  if (kvs == nullptr || pd == nullptr) {
    return Status::FailedPrecondition("rig has no pushdown stack");
  }
  KvModel& model = ledger.kv;
  constexpr uint64_t kValueLen = 64;
  constexpr uint32_t kChainId = 1;
  const uint64_t delta = sched.Range("pushdown.delta", 1, 1000);

  // Seed the pool: every key holds a kValueLen-byte value whose first
  // 8 bytes are a little-endian counter the RMW chain increments.
  std::map<std::string, std::vector<uint8_t>> live;
  for (size_t i = 0; i < kWorkloadPoolSize; ++i) {
    const std::string key = KvsKey(i);
    std::vector<uint8_t> value =
        PatternBytes(sched.NextU64("pushdown.tag"), kValueLen);
    const uint64_t counter = sched.Range("pushdown.init", 0, 1 << 20);
    std::memcpy(value.data(), &counter, sizeof(counter));
    const size_t jb = journal.entries();
    LABSTOR_RETURN_IF_ERROR(kvs->Put(key, value));
    model.AckPut(key, value, jb, journal.entries());
    live[key] = std::move(value);
    sched.Note("pushdown op=seed key=" + key);
  }

  const ipc::ChainProgram chain = ipc::BuildRmwChain(kChainId, 0, delta);
  LABSTOR_RETURN_IF_ERROR(kvs->RegisterChain("kvs::/dst", chain));

  // Durable-journal length after every chain step: the crash-point
  // enumerator revisits each of these as a mid-chain crash state.
  pd->SetStepHook([&ledger, &journal](uint32_t, uint32_t) {
    ledger.chain_step_boundaries.push_back(journal.entries());
  });

  Status st;
  for (size_t i = 0; i < num_chains && st.ok(); ++i) {
    const std::string key =
        KvsKey(sched.Range("pushdown.pick", 0, kWorkloadPoolSize - 1));
    std::vector<uint8_t> expect = live[key];
    uint64_t counter = 0;
    std::memcpy(&counter, expect.data(), sizeof(counter));
    counter += delta;
    std::memcpy(expect.data(), &counter, sizeof(counter));

    std::vector<uint8_t> out(kValueLen);
    const size_t jb = journal.entries();
    const auto copied = kvs->ExecChain(kChainId, key, out);
    if (!copied.ok()) {
      st = copied.status();
      break;
    }
    model.AckPut(key, expect, jb, journal.entries());
    if (*copied != kValueLen || out != expect) {
      st = Status::Internal("pushdown chain read-back mismatch for " + key);
      break;
    }
    live[key] = std::move(expect);
    sched.Note("pushdown op=chain key=" + key +
               " counter=" + std::to_string(counter));
  }
  pd->SetStepHook(nullptr);
  return st;
}

}  // namespace labstor::dst
