// Acked-operation ledgers: the oracle side of the recovery invariants.
//
// A workload records every operation the system ACKNOWLEDGED, stamped
// with the device-journal length observed before the op started
// (`journal_before`) and after its ack (`journal_after`). At a crash
// boundary b (b journal entries durable):
//   * ops with journal_after  <= b are fully durable — recovery must
//     reproduce their effects exactly;
//   * ops with journal_before <= b < journal_after were in flight —
//     their effects may be absent, partial, or complete, so the
//     paths/keys they touch are exempt from exact-match checks;
//   * ops with journal_before  > b never started.
// Workloads are single-threaded, so at most one op is in flight at
// any boundary.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace labstor::dst {

// In-memory model of a LabFS namespace. Content is tracked byte-exact
// (files in the DST workloads are small), so no-lost-acked-writes can
// compare actual read-back bytes, not just sizes.
class FsModel {
 public:
  struct FileState {
    bool is_dir = false;
    std::vector<uint8_t> content;  // size == content.size()
  };

  void AckCreate(const std::string& path, bool is_dir, size_t journal_before,
                 size_t journal_after);
  // Write of `data` at `offset` (extends and zero-fills as needed).
  void AckWrite(const std::string& path, uint64_t offset,
                const std::vector<uint8_t>& data, size_t journal_before,
                size_t journal_after);
  void AckTruncate(const std::string& path, uint64_t size,
                   size_t journal_before, size_t journal_after);
  void AckRename(const std::string& from, const std::string& to,
                 size_t journal_before, size_t journal_after);
  void AckUnlink(const std::string& path, size_t journal_before,
                 size_t journal_after);

  // Expected fully-durable namespace at journal boundary b.
  std::map<std::string, FileState> StateAt(size_t boundary) const;
  // Paths whose acked op straddles b (exempt from exact-match checks).
  std::set<std::string> InFlightAt(size_t boundary) const;

  size_t ops() const { return ops_.size(); }

 private:
  enum class Kind { kCreate, kWrite, kTruncate, kRename, kUnlink };
  struct Op {
    Kind kind;
    std::string path;        // kRename: source
    std::string path2;       // kRename: destination
    bool is_dir = false;     // kCreate
    uint64_t offset = 0;     // kWrite
    uint64_t size = 0;       // kTruncate
    std::vector<uint8_t> data;  // kWrite
    size_t journal_before = 0;
    size_t journal_after = 0;
  };
  std::vector<Op> ops_;
};

// In-memory model of a LabKVS store (byte-exact values).
class KvModel {
 public:
  void AckPut(const std::string& key, const std::vector<uint8_t>& value,
              size_t journal_before, size_t journal_after);
  void AckDelete(const std::string& key, size_t journal_before,
                 size_t journal_after);

  std::map<std::string, std::vector<uint8_t>> StateAt(size_t boundary) const;
  std::set<std::string> InFlightAt(size_t boundary) const;

  size_t ops() const { return ops_.size(); }

 private:
  struct Op {
    bool is_put = false;
    std::string key;
    std::vector<uint8_t> value;
    size_t journal_before = 0;
    size_t journal_after = 0;
  };
  std::vector<Op> ops_;
};

}  // namespace labstor::dst
