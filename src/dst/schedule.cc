#include "dst/schedule.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

namespace labstor::dst {
namespace {

// FNV-1a: stable across platforms/builds, unlike std::hash.
uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x00000100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng& Schedule::StreamFor(std::string_view site) {
  const auto it = streams_.find(site);
  if (it != streams_.end()) return it->second;
  return streams_.emplace(std::string(site), Rng(seed_ ^ HashSite(site)))
      .first->second;
}

uint64_t Schedule::NextU64(std::string_view site) {
  return StreamFor(site).Next();
}

uint64_t Schedule::Range(std::string_view site, uint64_t lo, uint64_t hi) {
  return StreamFor(site).Range(lo, hi);
}

bool Schedule::Chance(std::string_view site, double p) {
  return StreamFor(site).Bernoulli(p);
}

sim::Time Schedule::Jitter(std::string_view site, sim::Time max_ns) {
  if (max_ns == 0) return 0;
  return StreamFor(site).Range(0, max_ns);
}

std::function<sim::Time(const char*)> Schedule::MakeSimHook(sim::Time max_ns) {
  return [this, max_ns](const char* site) -> sim::Time {
    return Jitter(std::string("sim.") + site, max_ns);
  };
}

void Schedule::Note(std::string_view line) {
  trace_.append(line);
  trace_.push_back('\n');
  ++events_;
}

std::string Schedule::ReplayHint() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "replay with --dst_seed=0x%" PRIx64, seed_);
  return buf;
}

namespace {

// Fixed corpus: seeds every push exercises. Deliberately includes 0
// and ~0 (degenerate expansions) next to arbitrary values.
std::vector<uint64_t> g_seeds = {0x4C414253, 0, ~uint64_t{0},
                                 0xDEADBEEFCAFEF00D, 0x1234567890ABCDEF};

uint64_t ParseSeed(const char* text) {
  return std::strtoull(text, nullptr, 0);  // accepts 0x-prefixed hex
}

}  // namespace

void InitSeeds(int* argc, char** argv) {
  bool pinned = false;
  uint64_t pinned_seed = 0;
  size_t random_count = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--dst_seed=", 11) == 0) {
      pinned = true;
      pinned_seed = ParseSeed(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--dst_random_seeds=", 19) == 0) {
      random_count = std::strtoul(argv[i] + 19, nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;

  if (const char* env = std::getenv("LABSTOR_DST_SEED");
      env != nullptr && !pinned) {
    pinned = true;
    pinned_seed = ParseSeed(env);
  }

  if (pinned) {
    g_seeds.assign(1, pinned_seed);
    std::printf("dst: pinned seed 0x%" PRIx64 "\n", pinned_seed);
    return;
  }
  if (random_count > 0) {
    // The one place true entropy enters the harness: fresh seeds for
    // the nightly sweep. Each is printed so a failure is replayable.
    std::random_device rd;
    for (size_t i = 0; i < random_count; ++i) {
      const uint64_t seed =
          (static_cast<uint64_t>(rd()) << 32) | static_cast<uint64_t>(rd());
      g_seeds.push_back(seed);
      std::printf("dst: random seed 0x%" PRIx64 "\n", seed);
    }
    std::fflush(stdout);
  }
}

const std::vector<uint64_t>& SeedList() { return g_seeds; }

}  // namespace labstor::dst
