// Crash-point enumerator (tentpole item 2).
//
// Runs a workload once against a journaled rig, then systematically
// visits EVERY fslog append boundary the run produced: for each log
// write i it reconstructs the device with journal entries [0, i)
// replayed in full plus entry i torn at every `torn_stride`-spaced
// byte prefix (0, stride, ..., and the full record), builds a fresh
// Runtime on that device, runs recovery, and checks every registered
// invariant. A final point replays the complete journal. This is
// exhaustive where fault_injection_test samples: no append boundary
// and no record prefix class goes unvisited.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dst/invariant.h"
#include "dst/journal.h"
#include "dst/model.h"
#include "dst/rigs.h"
#include "dst/schedule.h"

namespace labstor::dst {

struct CrashEnumOptions {
  // Byte stride between torn prefixes of the boundary record. 64 over
  // a 256-byte LogRecord visits prefixes 0/64/128/192 plus the full
  // record — covering "nothing persisted", three CRC-mismatching
  // partials, and "fully persisted".
  size_t torn_stride = 64;
};

struct CrashFailure {
  CrashPoint point;
  std::string invariant;
  std::string detail;  // includes the replay hint
};

struct CrashEnumReport {
  size_t boundaries = 0;      // distinct fslog append boundaries found
  size_t points_visited = 0;  // boundary x torn-prefix states recovered
  std::vector<CrashFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// Both ledgers in one bundle so a single workload signature fits FS
// and KVS rigs; each workload fills the one that applies.
struct WorkloadLedger {
  FsModel fs;
  KvModel kv;
  // Durable-journal lengths observed at pushdown chain-step boundaries
  // (a PushdownMod step hook records journal.entries() after each
  // step). The enumerator additionally reconstructs each of these
  // prefixes, so a crash at EVERY chain-step boundary is visited even
  // when the step itself produced no journal append.
  std::vector<size_t> chain_step_boundaries;
  // Durable-journal lengths observed at interrupt-delivery points: for
  // a device in kInterrupt mode the workload records journal.entries()
  // where the simulated IRQ would fire (after the device op, before
  // the waiter resumes). A crash in that window — op durable, host not
  // yet notified — is the classic lost-completion case; the enumerator
  // reconstructs each such prefix like the chain-step boundaries.
  std::vector<size_t> interrupt_boundaries;
};

using RigFactory = std::function<Result<std::unique_ptr<CrashRig>>()>;
using Workload = std::function<Status(CrashRig&, Schedule&,
                                      const DeviceJournal&, WorkloadLedger&)>;

Result<CrashEnumReport> EnumerateCrashPoints(
    const RigFactory& factory, const Workload& workload,
    const std::vector<const Invariant*>& invariants, Schedule& schedule,
    const CrashEnumOptions& opts = {});

}  // namespace labstor::dst
