#include "dst/cluster_scenario.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace labstor::dst {
namespace {

struct OpResult {
  Status status;
  uint64_t size = 0;
  bool done = false;
};

sim::Task<void> DriveOp(cluster::Cluster& c, ipc::OpCode op, uint32_t gw,
                        uint32_t tenant, std::string label, uint64_t size,
                        std::shared_ptr<OpResult> out) {
  if (op == ipc::OpCode::kPut) {
    out->status = co_await c.Put(gw, tenant, label, size);
  } else if (op == ipc::OpCode::kDelete) {
    out->status = co_await c.Delete(gw, tenant, label);
  } else {
    out->status = co_await c.Get(gw, tenant, label, &out->size);
  }
  out->done = true;
}

sim::Task<void> DriveStatus(sim::Task<Status> task,
                            std::shared_ptr<OpResult> out) {
  out->status = co_await std::move(task);
  out->done = true;
}

class ScenarioRunner {
 public:
  ScenarioRunner(ClusterRig& rig, Schedule& sched,
                 const ClusterScenarioOptions& opts)
      : rig_(rig), sched_(sched), opts_(opts) {}

  Result<ClusterScenarioStats> Run();

 private:
  cluster::Cluster& cluster() { return rig_.cluster(); }

  std::string LabelAt(uint64_t idx) const {
    return "t" + std::to_string(idx % opts_.tenants) + "/obj" +
           std::to_string(idx);
  }
  uint32_t TenantOf(uint64_t idx) const {
    return static_cast<uint32_t>(idx % opts_.tenants);
  }

  // Schedule-drawn live gateway, or kNoGateway when everything is down.
  static constexpr uint32_t kNoGateway = ~0u;
  uint32_t PickGateway(const char* site) {
    const std::vector<uint32_t> live = cluster().LiveNodeIds();
    if (live.empty()) return kNoGateway;
    return live[sched_.Range(site, 0, live.size() - 1)];
  }

  Status Fail(const std::string& what) const {
    return Status::Internal(what + " (" + sched_.ReplayHint() + ")");
  }

  // Base invariants + model/ledger agreement, after every step.
  Status CheckAfter(const std::string& what);

  // One serialized client op; the DES runs to quiescence inside.
  Status TrafficOp();
  // Spawn one put and one get (distinct labels) WITHOUT running the
  // environment — they interleave with whatever the caller spawns next.
  void SpawnOverlap(std::vector<std::pair<std::shared_ptr<OpResult>,
                                          std::string>>* puts,
                    std::vector<std::pair<std::shared_ptr<OpResult>,
                                          std::string>>* gets);
  // Apply model updates / relaxed assertions once the DES is drained.
  Status SettleOverlap(
      const std::vector<std::pair<std::shared_ptr<OpResult>, std::string>>&
          puts,
      const std::vector<std::pair<std::shared_ptr<OpResult>, std::string>>&
          gets,
      const std::map<std::string, uint64_t>& sizes_before);

  Status DoJoin();
  Status DoLeave();
  Status DoCrash();
  Status DoRejoin();
  Status DoUpgrade();
  Status FinalAudit();

  // A mutation that returns Unavailable is indeterminate: it may have
  // applied at the owner before the response hop (or the gateway) died.
  // Until a determinate op resolves the label, every state reachable by
  // applying-or-not each lost mutation is legal.
  struct MaybeState {
    bool may_be_absent = false;
    std::set<uint64_t> sizes;  // legal present sizes
  };
  void MarkIndeterminatePut(const std::string& label, uint64_t size);
  void MarkIndeterminateDelete(const std::string& label);
  void Resolve(const std::string& label, bool present, uint64_t size);

  ClusterRig& rig_;
  Schedule& sched_;
  const ClusterScenarioOptions& opts_;
  ClusterScenarioStats stats_;
  // Ground truth the cluster's applied ledger and read-backs are
  // checked against: label -> last acked size. Labels with a lost
  // in-flight mutation move to indeterminate_ until resolved.
  std::map<std::string, uint64_t> model_;
  std::map<std::string, MaybeState> indeterminate_;
  uint32_t version_ = 1;
};

void ScenarioRunner::MarkIndeterminatePut(const std::string& label,
                                          uint64_t size) {
  MaybeState maybe;
  if (const auto ind = indeterminate_.find(label);
      ind != indeterminate_.end()) {
    maybe = ind->second;  // prior states stay legal (op may not apply)
  } else if (const auto it = model_.find(label); it != model_.end()) {
    maybe.sizes.insert(it->second);
    model_.erase(it);
  } else {
    maybe.may_be_absent = true;
  }
  maybe.sizes.insert(size);
  indeterminate_[label] = std::move(maybe);
}

void ScenarioRunner::MarkIndeterminateDelete(const std::string& label) {
  MaybeState maybe;
  if (const auto ind = indeterminate_.find(label);
      ind != indeterminate_.end()) {
    maybe = ind->second;
  } else if (const auto it = model_.find(label); it != model_.end()) {
    maybe.sizes.insert(it->second);
    model_.erase(it);
  }
  maybe.may_be_absent = true;  // the delete may have applied
  indeterminate_[label] = std::move(maybe);
}

void ScenarioRunner::Resolve(const std::string& label, bool present,
                             uint64_t size) {
  indeterminate_.erase(label);
  if (present) {
    model_[label] = size;
  } else {
    model_.erase(label);
  }
}

Status ScenarioRunner::CheckAfter(const std::string& what) {
  ++stats_.invariant_checks;
  if (const Status st = cluster().CheckInvariants(false); !st.ok()) {
    return Fail(what + ": " + st.message());
  }
  // The cluster ledger records *applied* mutations; ops whose response
  // hop died are applied-but-unacked, so an indeterminate label may
  // legally sit in any of its candidate states.
  const auto& applied = cluster().acked();
  for (const auto& [label, size] : model_) {
    const auto it = applied.find(label);
    if (it == applied.end()) {
      return Fail(what + ": ledger lost acked label " + label);
    }
    if (it->second != size) {
      return Fail(what + ": ledger size mismatch on " + label);
    }
  }
  for (const auto& [label, size] : applied) {
    if (model_.count(label) != 0) continue;
    const auto ind = indeterminate_.find(label);
    if (ind == indeterminate_.end()) {
      return Fail(what + ": ledger holds unexpected label " + label);
    }
    if (ind->second.sizes.count(size) == 0) {
      return Fail(what + ": ledger holds " + label +
                  " at a size no lost mutation wrote");
    }
  }
  for (const auto& [label, maybe] : indeterminate_) {
    if (!maybe.may_be_absent && applied.count(label) == 0) {
      return Fail(what + ": ledger dropped " + label +
                  " which must exist in some state");
    }
  }
  return Status::Ok();
}

Status ScenarioRunner::TrafficOp() {
  const uint32_t gw = PickGateway("cluster.gw");
  if (gw == kNoGateway) return Status::Ok();  // whole cluster dark
  const uint64_t idx =
      sched_.Range("cluster.label", 0, opts_.label_universe - 1);
  const std::string label = LabelAt(idx);
  const uint64_t kind = sched_.Range("cluster.op", 0, 9);
  const ipc::OpCode op = kind < 5    ? ipc::OpCode::kPut
                         : kind < 9  ? ipc::OpCode::kGet
                                     : ipc::OpCode::kDelete;
  const uint64_t size = sched_.Range("cluster.size", 1, opts_.max_value_bytes);

  auto res = std::make_shared<OpResult>();
  rig_.env().Spawn(
      DriveOp(cluster(), op, gw, TenantOf(idx), label, size, res));
  rig_.env().Run();
  if (!res->done) return Fail("traffic op never completed");

  sched_.Note("op " + std::string(ipc::OpCodeName(op)) + " " + label + " gw=" +
              std::to_string(gw) + " -> " +
              std::string(StatusCodeName(res->status.code())));

  const StatusCode code = res->status.code();
  if (code == StatusCode::kUnavailable) {
    ++stats_.unavailable_ops;  // outcome unknown: node down, or the
    if (op == ipc::OpCode::kPut) {  // response hop died post-apply
      MarkIndeterminatePut(label, size);
    } else if (op == ipc::OpCode::kDelete) {
      MarkIndeterminateDelete(label);
    }
    return Status::Ok();
  }
  switch (op) {
    case ipc::OpCode::kPut:
      ++stats_.puts;
      if (!res->status.ok()) return Fail("put failed: " + res->status.message());
      ++stats_.ok_ops;
      Resolve(label, /*present=*/true, size);
      break;
    case ipc::OpCode::kGet: {
      ++stats_.gets;
      const auto it = model_.find(label);
      const auto ind = indeterminate_.find(label);
      if (res->status.ok()) {
        ++stats_.ok_ops;
        if (it != model_.end()) {
          if (it->second != res->size) {
            return Fail("get size mismatch on " + label + ": acked " +
                        std::to_string(it->second) + " read " +
                        std::to_string(res->size));
          }
        } else if (ind != indeterminate_.end()) {
          if (ind->second.sizes.count(res->size) == 0) {
            return Fail("get on " + label +
                        " returned a size no lost mutation wrote");
          }
          Resolve(label, /*present=*/true, res->size);
        } else {
          return Fail("get found unacked label " + label);
        }
      } else if (code == StatusCode::kNotFound) {
        if (it != model_.end()) {
          return Fail("acked label " + label + " invisible to get");
        }
        if (ind != indeterminate_.end()) {
          // A returned NotFound is authoritative (fully live membership
          // or an owner-held tombstone): the lost mutation chain must
          // admit absence, and the label resolves to absent.
          if (!ind->second.may_be_absent) {
            return Fail("get lost label " + label +
                        " which must exist in some state");
          }
          Resolve(label, /*present=*/false, 0);
        }
      } else {
        return Fail("get failed: " + res->status.message());
      }
      break;
    }
    default:
      ++stats_.deletes;
      if (res->status.ok()) {
        ++stats_.ok_ops;
        Resolve(label, /*present=*/false, 0);
      } else if (code != StatusCode::kNotFound) {
        return Fail("delete failed: " + res->status.message());
      }
      // A NotFound delete is left unresolved: the label may still be
      // applied-but-stranded on a down node the owner cannot see.
      break;
  }
  return Status::Ok();
}

void ScenarioRunner::SpawnOverlap(
    std::vector<std::pair<std::shared_ptr<OpResult>, std::string>>* puts,
    std::vector<std::pair<std::shared_ptr<OpResult>, std::string>>* gets) {
  const uint32_t gw = PickGateway("cluster.overlap_gw");
  if (gw == kNoGateway) return;
  const uint64_t put_idx =
      sched_.Range("cluster.overlap_put", 0, opts_.label_universe - 1);
  uint64_t get_idx =
      sched_.Range("cluster.overlap_get", 0, opts_.label_universe - 1);
  if (get_idx == put_idx) get_idx = (get_idx + 1) % opts_.label_universe;
  const uint64_t size =
      sched_.Range("cluster.overlap_size", 1, opts_.max_value_bytes);

  const std::string put_label = LabelAt(put_idx);
  const std::string get_label = LabelAt(get_idx);
  auto put_res = std::make_shared<OpResult>();
  auto get_res = std::make_shared<OpResult>();
  rig_.env().Spawn(DriveOp(cluster(), ipc::OpCode::kPut, gw,
                           TenantOf(put_idx), put_label, size, put_res));
  rig_.env().Spawn(DriveOp(cluster(), ipc::OpCode::kGet, gw,
                           TenantOf(get_idx), get_label, 0, get_res));
  puts->emplace_back(put_res, put_label);
  gets->emplace_back(get_res, get_label);
  // Remember the put size through to SettleOverlap via the result slot.
  put_res->size = size;
}

Status ScenarioRunner::SettleOverlap(
    const std::vector<std::pair<std::shared_ptr<OpResult>, std::string>>& puts,
    const std::vector<std::pair<std::shared_ptr<OpResult>, std::string>>& gets,
    const std::map<std::string, uint64_t>& sizes_before) {
  for (const auto& [res, label] : puts) {
    if (!res->done) return Fail("overlapped put never completed");
    ++stats_.puts;
    if (res->status.ok()) {
      ++stats_.ok_ops;
      Resolve(label, /*present=*/true, res->size);
    } else if (res->status.code() == StatusCode::kUnavailable) {
      ++stats_.unavailable_ops;
      MarkIndeterminatePut(label, res->size);
    } else {
      return Fail("overlapped put failed: " + res->status.message());
    }
    sched_.Note("overlap put " + label + " -> " +
                std::string(StatusCodeName(res->status.code())));
  }
  for (const auto& [res, label] : gets) {
    if (!res->done) return Fail("overlapped get never completed");
    ++stats_.gets;
    const auto it = sizes_before.find(label);
    const bool was_indeterminate = indeterminate_.count(label) != 0;
    if (res->status.ok()) {
      ++stats_.ok_ops;
      // The get label had no concurrent writer (distinct from the put
      // label), so a successful read must match the pre-step ack — or
      // one of the candidate states of a label with a lost mutation.
      if (was_indeterminate) {
        if (indeterminate_[label].sizes.count(res->size) == 0) {
          return Fail("overlapped get on " + label + " returned wrong data");
        }
      } else if (it == sizes_before.end() || it->second != res->size) {
        return Fail("overlapped get on " + label + " returned wrong data");
      }
    } else if (res->status.code() == StatusCode::kNotFound) {
      if (it != sizes_before.end()) {
        return Fail("overlapped get lost acked label " + label);
      }
    } else if (res->status.code() == StatusCode::kUnavailable) {
      ++stats_.unavailable_ops;
    } else {
      return Fail("overlapped get failed: " + res->status.message());
    }
    sched_.Note("overlap get " + label + " -> " +
                std::string(StatusCodeName(res->status.code())));
  }
  return Status::Ok();
}

Status ScenarioRunner::DoJoin() {
  if (cluster().NodeIds().size() >= opts_.max_nodes) return TrafficOp();
  auto res = std::make_shared<OpResult>();
  auto id = std::make_shared<uint32_t>(0);
  std::vector<std::pair<std::shared_ptr<OpResult>, std::string>> puts, gets;
  const auto sizes_before = model_;
  auto task = [](cluster::Cluster& c, std::shared_ptr<uint32_t> out_id,
                 std::shared_ptr<OpResult> out) -> sim::Task<void> {
    out->status = co_await c.AddNode(out_id.get());
    out->done = true;
  }(cluster(), id, res);
  rig_.env().Spawn(std::move(task));
  SpawnOverlap(&puts, &gets);
  rig_.env().Run();
  if (!res->done || !res->status.ok()) {
    return Fail("join failed: " + res->status.message());
  }
  ++stats_.joins;
  sched_.Note("join node=" + std::to_string(*id));
  return SettleOverlap(puts, gets, sizes_before);
}

Status ScenarioRunner::DoLeave() {
  const std::vector<uint32_t> live = cluster().LiveNodeIds();
  // Keep at least two live nodes, and only leave from a fully live
  // membership: RemoveNode refuses to drain toward a down owner.
  if (live.size() < 3 || live.size() != cluster().NodeIds().size()) {
    return TrafficOp();
  }
  const uint32_t id = live[sched_.Range("cluster.leave", 0, live.size() - 1)];
  auto res = std::make_shared<OpResult>();
  std::vector<std::pair<std::shared_ptr<OpResult>, std::string>> puts, gets;
  const auto sizes_before = model_;
  rig_.env().Spawn(DriveStatus(cluster().RemoveNode(id), res));
  SpawnOverlap(&puts, &gets);
  rig_.env().Run();
  if (!res->done || !res->status.ok()) {
    return Fail("leave of node " + std::to_string(id) +
                " failed: " + res->status.message());
  }
  ++stats_.leaves;
  sched_.Note("leave node=" + std::to_string(id));
  return SettleOverlap(puts, gets, sizes_before);
}

Status ScenarioRunner::DoCrash() {
  const std::vector<uint32_t> live = cluster().LiveNodeIds();
  if (live.size() < 2) return TrafficOp();  // keep one node serving
  const uint32_t id = live[sched_.Range("cluster.crash", 0, live.size() - 1)];
  if (const Status st = cluster().CrashNode(id); !st.ok()) {
    return Fail("crash of node " + std::to_string(id) +
                " failed: " + st.message());
  }
  ++stats_.crashes;
  sched_.Note("crash node=" + std::to_string(id));
  return Status::Ok();
}

Status ScenarioRunner::DoRejoin() {
  std::vector<uint32_t> down;
  for (const uint32_t id : cluster().NodeIds()) {
    const cluster::ClusterNode* n = cluster().node(id);
    if (n != nullptr && !n->up()) down.push_back(id);
  }
  if (down.empty()) return TrafficOp();
  const uint32_t id = down[sched_.Range("cluster.rejoin", 0, down.size() - 1)];
  auto res = std::make_shared<OpResult>();
  rig_.env().Spawn(DriveStatus(cluster().RejoinNode(id), res));
  rig_.env().Run();
  if (!res->done || !res->status.ok()) {
    return Fail("rejoin of node " + std::to_string(id) +
                " failed: " + res->status.message());
  }
  ++stats_.rejoins;
  sched_.Note("rejoin node=" + std::to_string(id));
  return Status::Ok();
}

Status ScenarioRunner::DoUpgrade() {
  ++version_;
  auto res = std::make_shared<OpResult>();
  std::vector<std::pair<std::shared_ptr<OpResult>, std::string>> puts, gets;
  const auto sizes_before = model_;
  rig_.env().Spawn(DriveStatus(cluster().RollingUpgrade(version_), res));
  SpawnOverlap(&puts, &gets);
  rig_.env().Run();
  if (!res->done || !res->status.ok()) {
    return Fail("rolling upgrade to v" + std::to_string(version_) +
                " failed: " + res->status.message());
  }
  for (const uint32_t id : cluster().LiveNodeIds()) {
    const cluster::ClusterNode* n = cluster().node(id);
    if (n->version() != version_) {
      return Fail("node " + std::to_string(id) + " missed upgrade to v" +
                  std::to_string(version_));
    }
  }
  ++stats_.upgrades;
  sched_.Note("upgrade v=" + std::to_string(version_));
  return SettleOverlap(puts, gets, sizes_before);
}

Status ScenarioRunner::FinalAudit() {
  // Bring everything back and settle placement.
  for (const uint32_t id : cluster().NodeIds()) {
    const cluster::ClusterNode* n = cluster().node(id);
    if (n == nullptr || n->up()) continue;
    auto res = std::make_shared<OpResult>();
    rig_.env().Spawn(DriveStatus(cluster().RejoinNode(id), res));
    rig_.env().Run();
    if (!res->done || !res->status.ok()) {
      return Fail("final rejoin of node " + std::to_string(id) +
                  " failed: " + res->status.message());
    }
  }
  {
    auto res = std::make_shared<OpResult>();
    rig_.env().Spawn(DriveStatus(cluster().Rebalance(), res));
    rig_.env().Run();
    if (!res->done || !res->status.ok()) {
      return Fail("final rebalance failed: " + res->status.message());
    }
  }
  if (const Status st = cluster().CheckInvariants(/*strict=*/true);
      !st.ok()) {
    return Fail("strict invariants after convergence: " + st.message());
  }
  // Every node is up and placement has converged, so reads are now
  // authoritative: resolve the labels whose last mutation was lost.
  while (!indeterminate_.empty()) {
    const std::string label = indeterminate_.begin()->first;
    const MaybeState maybe = indeterminate_.begin()->second;
    const uint32_t gw = PickGateway("cluster.resolve_gw");
    if (gw == kNoGateway) return Fail("no live gateway for final audit");
    const uint32_t tenant = static_cast<uint32_t>(
        std::stoul(label.substr(1, label.find('/') - 1)));
    auto res = std::make_shared<OpResult>();
    rig_.env().Spawn(DriveOp(cluster(), ipc::OpCode::kGet, gw, tenant, label,
                             0, res));
    rig_.env().Run();
    if (!res->done) return Fail("resolving read of " + label + " hung");
    if (res->status.ok()) {
      if (maybe.sizes.count(res->size) == 0) {
        return Fail("resolving read of " + label +
                    " returned a size no lost mutation wrote");
      }
      Resolve(label, /*present=*/true, res->size);
    } else if (res->status.code() == StatusCode::kNotFound) {
      if (!maybe.may_be_absent) {
        return Fail("resolving read lost " + label +
                    " which must exist in some state");
      }
      Resolve(label, /*present=*/false, 0);
    } else {
      return Fail("resolving read of " + label +
                  " failed: " + res->status.ToString());
    }
  }
  // Byte-for-size read-back of every acked label, via schedule-drawn
  // gateways so forwarding is part of the audit too.
  for (const auto& [label, size] : model_) {
    const uint32_t gw = PickGateway("cluster.audit_gw");
    if (gw == kNoGateway) return Fail("no live gateway for final audit");
    auto res = std::make_shared<OpResult>();
    // Tenants are encoded in the label ("t<tenant>/...").
    const uint32_t tenant = static_cast<uint32_t>(
        std::stoul(label.substr(1, label.find('/') - 1)));
    rig_.env().Spawn(DriveOp(cluster(), ipc::OpCode::kGet, gw, tenant, label,
                             0, res));
    rig_.env().Run();
    if (!res->done || !res->status.ok()) {
      return Fail("final read-back of " + label +
                  " failed: " + res->status.ToString());
    }
    if (res->size != size) {
      return Fail("final read-back of " + label + " returned size " +
                  std::to_string(res->size) + ", acked " +
                  std::to_string(size));
    }
  }
  return CheckAfter("final audit");
}

Result<ClusterScenarioStats> ScenarioRunner::Run() {
  version_ = 1;
  for (size_t step = 0; step < opts_.num_steps; ++step) {
    ++stats_.steps;
    const uint64_t roll = sched_.Range("cluster.action", 0, 99);
    Status st;
    if (roll < 70) {
      st = TrafficOp();
    } else if (roll < 77) {
      st = DoJoin();
    } else if (roll < 84) {
      st = DoLeave();
    } else if (roll < 90) {
      st = DoCrash();
    } else if (roll < 96) {
      st = DoRejoin();
    } else {
      st = DoUpgrade();
    }
    if (!st.ok()) return st;
    if (const Status chk = CheckAfter("step " + std::to_string(step));
        !chk.ok()) {
      return chk;
    }
  }

  // Coverage floors: force what the stream missed, traffic in between.
  // Each Do* call below has its precondition established first, so
  // every loop iteration increments its stat and terminates.
  while (stats_.joins < opts_.min_joins &&
         cluster().NodeIds().size() < opts_.max_nodes) {
    LABSTOR_RETURN_IF_ERROR(TrafficOp());
    LABSTOR_RETURN_IF_ERROR(DoJoin());
    LABSTOR_RETURN_IF_ERROR(CheckAfter("forced join"));
  }
  while (stats_.crashes < opts_.min_crashes &&
         cluster().LiveNodeIds().size() >= 2) {
    LABSTOR_RETURN_IF_ERROR(TrafficOp());
    LABSTOR_RETURN_IF_ERROR(DoCrash());
    LABSTOR_RETURN_IF_ERROR(CheckAfter("forced crash"));
  }
  while (stats_.rejoins < opts_.min_rejoins) {
    if (cluster().LiveNodeIds().size() == cluster().NodeIds().size()) {
      if (cluster().LiveNodeIds().size() < 2) break;  // nothing to crash
      LABSTOR_RETURN_IF_ERROR(DoCrash());
    }
    LABSTOR_RETURN_IF_ERROR(TrafficOp());
    LABSTOR_RETURN_IF_ERROR(DoRejoin());
    LABSTOR_RETURN_IF_ERROR(CheckAfter("forced rejoin"));
  }
  while (stats_.leaves < opts_.min_leaves &&
         cluster().NodeIds().size() >= 3) {
    // Leave needs every member up; rejoin any crash leftovers first.
    while (cluster().LiveNodeIds().size() != cluster().NodeIds().size()) {
      LABSTOR_RETURN_IF_ERROR(DoRejoin());
    }
    LABSTOR_RETURN_IF_ERROR(TrafficOp());
    LABSTOR_RETURN_IF_ERROR(DoLeave());
    LABSTOR_RETURN_IF_ERROR(CheckAfter("forced leave"));
  }
  while (stats_.upgrades < opts_.min_upgrades) {
    LABSTOR_RETURN_IF_ERROR(TrafficOp());
    LABSTOR_RETURN_IF_ERROR(DoUpgrade());
    LABSTOR_RETURN_IF_ERROR(CheckAfter("forced upgrade"));
  }

  LABSTOR_RETURN_IF_ERROR(FinalAudit());

  stats_.forwarded = cluster().forwarded();
  stats_.fallback_reads = cluster().fallback_reads();
  stats_.final_version = version_;
  stats_.final_nodes = cluster().NodeIds().size();
  stats_.acked_labels = model_.size();
  return stats_;
}

}  // namespace

Result<ClusterScenarioStats> RunClusterScenario(
    ClusterRig& rig, Schedule& sched, const ClusterScenarioOptions& opts) {
  ScenarioRunner runner(rig, sched, opts);
  return runner.Run();
}

}  // namespace labstor::dst
