// Deterministic lifecycle scheduler (DESIGN.md §9).
//
// PR 4's harness enumerates *crash points*; this module schedules
// *lifecycle events* — centralized and decentralized live upgrades,
// worker rebalances, client restarts, crash+recover, and live stack
// modification — interleaved with LabFS/LabKVS/probe traffic in one
// seed-replayable action stream. Every decision is drawn from the
// per-site salted Schedule streams, so a failing run prints a seed and
// --dst_seed=<seed> replays the exact event order, byte-identical
// trace included.
//
// Pluggable invariants are checked after every step and at end of run:
//   (a) upgrade atomicity     — all instances of an upgraded mod on
//                               the same version; acked requests only
//                               ever executed against live instances;
//   (b) config preservation   — upgraded instances observe their
//                               predecessors' creation params;
//   (c) quiesce correctness   — nothing admitted past MarkUpdatePending
//                               and every paused queue reopened, even
//                               queues born mid-upgrade;
//   (d) namespace-epoch coherence — stack vertex bindings always match
//                               the registry, and the per-worker stack
//                               cache never serves a stale Stack*
//                               across RefreshBindings/Modify.
// This file is the permanent home for reproducing lifecycle bugs:
// every one we fix grows either an invariant or an event here.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/client.h"
#include "core/runtime.h"
#include "dst/model.h"
#include "dst/schedule.h"
#include "labmods/genericfs.h"
#include "labmods/generickvs.h"

namespace labstor::dst {

// Param-and-state-sensitive canary mod ("dst_probe", versions
// 1..kMaxVersion). Each Process adds `units` (an Init param) to
// req.result_u64 and bumps an op counter, so a single request through
// the probe stack proves three things at once: the binding is live
// (IsLive canary against executed-after-destroy), the configuration
// survived the last upgrade (result == sum of configured units), and
// the op history survived StateUpdate. StateUpdate migrates *only*
// mutable state (ops) — configuration must come from Init with the
// stored creation params, which is exactly what the pre-fix
// Init(nullptr, ctx) upgrade path failed to do.
class ProbeMod final : public core::LabMod {
 public:
  // Registered headroom: enough versions that a full-length lifecycle
  // run can keep stepping cur+1 without ever saturating (a saturated
  // upgrade would degrade to a no-op and starve the coverage floors).
  static constexpr uint32_t kMaxVersion = 240;

  explicit ProbeMod(uint32_t version);
  ~ProbeMod() override;

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;

  uint64_t units() const { return units_; }
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  bool inited_with_params() const { return inited_with_params_; }

  // Membership in the process-wide set of constructed-and-not-yet-
  // destroyed ProbeMods: a registry/stack pointer to a destroyed
  // instance fails this before it turns into use-after-free.
  static bool IsLive(const core::LabMod* mod);

 private:
  uint64_t units_ = 1;
  bool inited_with_params_ = false;
  std::atomic<uint64_t> ops_{0};
};

// Idempotently registers dst_probe v1..kMaxVersion in the global
// factory. labstor_dst is a static library, so registration cannot
// rely on static-initializer side effects surviving the link; rigs
// call this explicitly.
void EnsureProbeModsRegistered();

// One runtime hosting the three lifecycle stacks, sync mode, never
// Started (thread-free — events and I/O interleave deterministically
// on the caller's thread, and StepAdmin drives the real quiesce
// machinery inline):
//   fs::/dst    labfs -> kernel_driver           (device nvme0)
//   kvs::/dst   labkvs -> kernel_driver          (device nvme1)
//   ctl::/probe dst_probe(probe_a, units: 7) -> dst_probe(probe_b, units: 3)
// Two probe instances of one mod name make every upgrade
// multi-instance — the shape the all-or-nothing staging protects.
class LifecycleRig {
 public:
  static Result<std::unique_ptr<LifecycleRig>> Create();

  core::Runtime& runtime() { return runtime_; }
  core::Client& client() { return client_; }
  // Second connected client: restart/reconnect events toggle between
  // the two so one channel churns while the other carries traffic.
  core::Client& aux_client() { return aux_client_; }
  labmods::GenericFs& fs() { return fs_; }
  labmods::GenericKvs& kvs() { return kvs_; }

  // Always resolved fresh from the namespace: Modify replaces Stack
  // objects, so holding one across events is exactly the stale-pointer
  // bug invariant (d) polices.
  Result<core::Stack*> fs_stack();
  Result<core::Stack*> probe_stack();
  const core::StackSpec& fs_spec() const { return fs_spec_; }

 private:
  LifecycleRig();
  Status init_status_;

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
  core::Client client_;
  core::Client aux_client_;
  labmods::GenericFs fs_;
  labmods::GenericKvs kvs_;
  core::StackSpec fs_spec_;
};

struct LifecycleStats {
  size_t steps = 0;
  size_t fs_ops = 0;
  size_t kvs_ops = 0;
  size_t probe_ops = 0;
  size_t upgrades_centralized = 0;
  size_t upgrades_decentralized = 0;
  size_t upgrade_noops = 0;
  size_t rebalances = 0;
  size_t client_restarts = 0;
  size_t runtime_restarts = 0;
  size_t stack_modifies = 0;
  size_t invariant_checks = 0;
};

struct LifecycleOptions {
  size_t num_steps = 140;
  // Coverage floors: if the random stream missed an event class, it is
  // forced (sandwiched between fs and kvs ops, deterministically) so
  // every run exercises every class.
  size_t min_centralized_upgrades = 1;
  size_t min_decentralized_upgrades = 1;
  size_t min_rebalances = 1;
  size_t min_client_restarts = 1;
  size_t min_runtime_restarts = 1;
};

// What the runner believes the system should look like; invariants
// compare the live system against this.
struct LifecycleExpectation {
  uint32_t probe_version = 1;  // all dst_probe instances must agree
  std::map<std::string, uint64_t> probe_units;  // uuid -> configured units
  uint64_t probe_ops = 0;  // per-instance executed-op count
};

struct LifecycleContext {
  LifecycleRig& rig;
  const LifecycleStats& stats;
  const LifecycleExpectation& expect;
  uint64_t seed = 0;
  std::string_view event;  // the step just performed
};

class LifecycleInvariant {
 public:
  virtual ~LifecycleInvariant() = default;
  virtual std::string_view name() const = 0;
  virtual Status Check(const LifecycleContext& ctx) const = 0;
};

// (a) Every dst_probe instance reports expect.probe_version, and every
// registry pointer refers to a live (never-destroyed) instance.
class UpgradeAtomicityInvariant final : public LifecycleInvariant {
 public:
  std::string_view name() const override { return "upgrade-atomicity"; }
  Status Check(const LifecycleContext& ctx) const override;
};

// (b) Every dst_probe instance observes its predecessor's creation
// params (units), was actually Init'ed with params, and the registry
// still stores those params for the next upgrade.
class ConfigPreservationInvariant final : public LifecycleInvariant {
 public:
  std::string_view name() const override { return "config-preservation"; }
  Status Check(const LifecycleContext& ctx) const override;
};

// (c) Between upgrades no queue is left UPDATE_PENDING, every pause
// transition has a matching clear, and the manager is not latched in a
// quiesce.
class QuiesceCorrectnessInvariant final : public LifecycleInvariant {
 public:
  std::string_view name() const override { return "quiesce-correctness"; }
  Status Check(const LifecycleContext& ctx) const override;
};

// (d) Every mounted stack resolves by id to itself and every vertex's
// cached LabMod* matches the registry (RefreshBindings left nothing
// stale behind).
class NamespaceEpochCoherenceInvariant final : public LifecycleInvariant {
 public:
  std::string_view name() const override { return "namespace-epoch-coherence"; }
  Status Check(const LifecycleContext& ctx) const override;
};

// The four shipped invariants (static storage; pointers stay valid).
const std::vector<const LifecycleInvariant*>& DefaultLifecycleInvariants();

// Drives `opts.num_steps` schedule-drawn steps against the rig,
// checking `invariants` after every one, then forces any unmet
// coverage floors and runs the end-of-run audit: final invariant pass,
// byte-exact LabFS/LabKVS read-back against the acked-op models, and
// probe op-count continuity across every upgrade/restart in the run.
Result<LifecycleStats> RunLifecycle(
    LifecycleRig& rig, Schedule& sched,
    const std::vector<const LifecycleInvariant*>& invariants,
    const LifecycleOptions& opts = {});

}  // namespace labstor::dst
