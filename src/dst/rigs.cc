#include "dst/rigs.h"

namespace labstor::dst {
namespace {

// Small device + small log keep per-crash-point rebuild cheap while
// leaving thousands of data blocks for the workloads.
constexpr uint64_t kDeviceBytes = 16 << 20;

constexpr const char* kFsStackYaml =
    "mount: fs::/dst\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: labfs\n"
    "    uuid: labfs_dst\n"
    "    params:\n"
    "      log_records_per_worker: 512\n"
    "    outputs: [drv_labfs_dst]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_labfs_dst\n";

constexpr const char* kKvsStackYaml =
    "mount: kvs::/dst\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: labkvs\n"
    "    uuid: labkvs_dst\n"
    "    params:\n"
    "      log_records_per_worker: 512\n"
    "    outputs: [drv_labkvs_dst]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_labkvs_dst\n";

constexpr const char* kPushdownKvsStackYaml =
    "mount: kvs::/dst\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: pushdown\n"
    "    uuid: pd_dst\n"
    "    outputs: [labkvs_dst]\n"
    "  - mod: labkvs\n"
    "    uuid: labkvs_dst\n"
    "    params:\n"
    "      log_records_per_worker: 512\n"
    "    outputs: [drv_labkvs_dst]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_labkvs_dst\n";

core::Runtime::Options RigOptions() {
  core::Runtime::Options options;
  // One worker: every fslog append goes to region 0 in seq order, so a
  // journal prefix is exactly a log prefix (see file comment).
  options.max_workers = 1;
  return options;
}

template <typename Mod>
Result<Mod*> FindMod(core::Runtime& runtime, const std::string& uuid) {
  LABSTOR_ASSIGN_OR_RETURN(mod, runtime.registry().Find(uuid));
  auto* typed = dynamic_cast<Mod*>(mod);
  if (typed == nullptr) {
    return Status::Internal("mod '" + uuid + "' has unexpected type");
  }
  return typed;
}

template <typename Rig>
Status InitRig(Rig& rig, simdev::DeviceRegistry& devices,
               core::Runtime& runtime, core::Client& client,
               const char* stack_yaml, core::Stack** stack_out,
               simdev::SimDevice** device_out) {
  LABSTOR_ASSIGN_OR_RETURN(
      device, devices.Create(simdev::DeviceParams::NvmeP3700(kDeviceBytes)));
  *device_out = device;
  LABSTOR_ASSIGN_OR_RETURN(spec, core::StackSpec::Parse(stack_yaml));
  LABSTOR_ASSIGN_OR_RETURN(stack,
                           runtime.MountStack(spec, ipc::Credentials{1, 0, 0}));
  *stack_out = stack;
  LABSTOR_RETURN_IF_ERROR(client.Connect());
  (void)rig;
  return Status::Ok();
}

}  // namespace

SyncFsRig::SyncFsRig()
    : devices_(nullptr),
      runtime_(RigOptions(), devices_),
      client_(runtime_, ipc::Credentials{100, 1000, 1000}),
      fs_(client_) {
  init_status_ = InitRig(*this, devices_, runtime_, client_, kFsStackYaml,
                         &stack_, &device_);
  if (init_status_.ok()) {
    auto mod = FindMod<labmods::LabFsMod>(runtime_, "labfs_dst");
    if (mod.ok()) {
      labfs_ = *mod;
    } else {
      init_status_ = mod.status();
    }
  }
}

Result<std::unique_ptr<SyncFsRig>> SyncFsRig::Create() {
  std::unique_ptr<SyncFsRig> rig(new SyncFsRig());
  LABSTOR_RETURN_IF_ERROR(rig->init_status_);
  return rig;
}

SyncKvsRig::SyncKvsRig()
    : devices_(nullptr),
      runtime_(RigOptions(), devices_),
      client_(runtime_, ipc::Credentials{100, 1000, 1000}),
      kvs_(client_) {
  init_status_ = InitRig(*this, devices_, runtime_, client_, kKvsStackYaml,
                         &stack_, &device_);
  if (init_status_.ok()) {
    auto mod = FindMod<labmods::LabKvsMod>(runtime_, "labkvs_dst");
    if (mod.ok()) {
      labkvs_ = *mod;
    } else {
      init_status_ = mod.status();
    }
  }
}

Result<std::unique_ptr<SyncKvsRig>> SyncKvsRig::Create() {
  std::unique_ptr<SyncKvsRig> rig(new SyncKvsRig());
  LABSTOR_RETURN_IF_ERROR(rig->init_status_);
  return rig;
}

PushdownKvsRig::PushdownKvsRig()
    : devices_(nullptr),
      runtime_(RigOptions(), devices_),
      client_(runtime_, ipc::Credentials{100, 1000, 1000}),
      kvs_(client_) {
  init_status_ = InitRig(*this, devices_, runtime_, client_,
                         kPushdownKvsStackYaml, &stack_, &device_);
  if (init_status_.ok()) {
    auto mod = FindMod<labmods::LabKvsMod>(runtime_, "labkvs_dst");
    if (mod.ok()) {
      labkvs_ = *mod;
    } else {
      init_status_ = mod.status();
    }
  }
  if (init_status_.ok()) {
    auto mod = FindMod<labmods::PushdownMod>(runtime_, "pd_dst");
    if (mod.ok()) {
      pushdown_ = *mod;
    } else {
      init_status_ = mod.status();
    }
  }
}

Result<std::unique_ptr<PushdownKvsRig>> PushdownKvsRig::Create() {
  std::unique_ptr<PushdownKvsRig> rig(new PushdownKvsRig());
  LABSTOR_RETURN_IF_ERROR(rig->init_status_);
  return rig;
}

ClusterRig::ClusterRig(const cluster::ClusterConfig& config)
    : tel_([] {
        telemetry::Telemetry::Options opts;
        opts.virtual_time = true;
        return opts;
      }()) {
  cluster_ = std::make_unique<cluster::Cluster>(env_, config, &tel_);
  init_status_ = cluster_->init_status();
}

Result<std::unique_ptr<ClusterRig>> ClusterRig::Create(
    const cluster::ClusterConfig& config) {
  std::unique_ptr<ClusterRig> rig(new ClusterRig(config));
  LABSTOR_RETURN_IF_ERROR(rig->init_status_);
  return rig;
}

}  // namespace labstor::dst
