#include "dst/lifecycle.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <mutex>
#include <set>
#include <utility>

#include "dst/workloads.h"
#include "ipc/request.h"
#include "simdev/device_params.h"

namespace labstor::dst {

// ---------------------------------------------------------------------------
// ProbeMod

namespace {

std::mutex& ProbeLiveMutex() {
  static std::mutex mu;
  return mu;
}

std::set<const core::LabMod*>& ProbeLiveSet() {
  static std::set<const core::LabMod*> live;
  return live;
}

}  // namespace

ProbeMod::ProbeMod(uint32_t version)
    : core::LabMod("dst_probe", core::ModType::kDummy, version) {
  std::lock_guard<std::mutex> lock(ProbeLiveMutex());
  ProbeLiveSet().insert(this);
}

ProbeMod::~ProbeMod() {
  std::lock_guard<std::mutex> lock(ProbeLiveMutex());
  ProbeLiveSet().erase(this);
}

bool ProbeMod::IsLive(const core::LabMod* mod) {
  std::lock_guard<std::mutex> lock(ProbeLiveMutex());
  return ProbeLiveSet().count(mod) != 0;
}

Status ProbeMod::Init(const yaml::NodePtr& params, core::ModContext& ctx) {
  (void)ctx;
  if (params != nullptr) {
    units_ = params->GetUint("units", 1);
    inited_with_params_ = true;
  }
  return Status::Ok();
}

Status ProbeMod::Process(ipc::Request& req, core::StackExec& exec) {
  // A stale binding (registry pointer or cached Stack*) executing a
  // retired instance surfaces here as an error instead of silent
  // use-after-free.
  if (!IsLive(this)) {
    return Status::Internal("dst_probe executed after destruction");
  }
  ops_.fetch_add(1, std::memory_order_relaxed);
  req.result_u64 += units_;
  if (exec.HasDownstream()) return exec.Forward(req);
  return Status::Ok();
}

Status ProbeMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<ProbeMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  // Only mutable state migrates. Configuration (units_) must arrive
  // via Init with the stored creation params — copying it here would
  // mask the Init(nullptr) upgrade bug this mod exists to catch.
  ops_.store(prev->ops(), std::memory_order_relaxed);
  return Status::Ok();
}

void EnsureProbeModsRegistered() {
  static const bool registered = [] {
    for (uint32_t v = 1; v <= ProbeMod::kMaxVersion; ++v) {
      // kAlreadyExists is fine: another binary section may have
      // registered the same versions first.
      (void)core::ModFactory::Global().Register(
          "dst_probe", v, [v] { return std::make_unique<ProbeMod>(v); });
    }
    return true;
  }();
  (void)registered;
}

// ---------------------------------------------------------------------------
// LifecycleRig

namespace {

constexpr uint64_t kDeviceBytes = 16 << 20;

constexpr const char* kLifecycleFsYaml =
    "mount: fs::/dst\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: labfs\n"
    "    uuid: labfs_life\n"
    "    params:\n"
    "      log_records_per_worker: 512\n"
    "    outputs: [drv_labfs_life]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_labfs_life\n";

constexpr const char* kLifecycleKvsYaml =
    "mount: kvs::/dst\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: labkvs\n"
    "    uuid: labkvs_life\n"
    "    params:\n"
    "      device: nvme1\n"
    "      log_records_per_worker: 512\n"
    "    outputs: [drv_labkvs_life]\n"
    "  - mod: kernel_driver\n"
    "    uuid: drv_labkvs_life\n"
    "    params:\n"
    "      device: nvme1\n";

// Two instances of one mod name, chained, each with distinct params:
// every upgrade is multi-instance (the all-or-nothing shape) and a
// single dummy request proves both configs survived (7 + 3 == 10).
constexpr const char* kLifecycleProbeYaml =
    "mount: ctl::/probe\n"
    "rules:\n"
    "  exec_mode: sync\n"
    "dag:\n"
    "  - mod: dst_probe\n"
    "    uuid: probe_a\n"
    "    version: 1\n"
    "    params:\n"
    "      units: 7\n"
    "    outputs: [probe_b]\n"
    "  - mod: dst_probe\n"
    "    uuid: probe_b\n"
    "    version: 1\n"
    "    params:\n"
    "      units: 3\n";

core::Runtime::Options LifecycleRigOptions() {
  core::Runtime::Options options;
  // One worker, never Started: every event runs inline on the caller's
  // thread, so the schedule stream is the only source of ordering.
  options.max_workers = 1;
  return options;
}

}  // namespace

LifecycleRig::LifecycleRig()
    : devices_(nullptr),
      runtime_(LifecycleRigOptions(), devices_),
      client_(runtime_, ipc::Credentials{100, 1000, 1000}),
      aux_client_(runtime_, ipc::Credentials{200, 1000, 1000}),
      fs_(client_),
      kvs_(client_) {
  init_status_ = [&]() -> Status {
    EnsureProbeModsRegistered();
    LABSTOR_ASSIGN_OR_RETURN(
        dev0, devices_.Create(simdev::DeviceParams::NvmeP3700(kDeviceBytes)));
    (void)dev0;
    simdev::DeviceParams second = simdev::DeviceParams::NvmeP3700(kDeviceBytes);
    second.name = "nvme1";
    LABSTOR_ASSIGN_OR_RETURN(dev1, devices_.Create(second));
    (void)dev1;

    LABSTOR_ASSIGN_OR_RETURN(fs_spec,
                             core::StackSpec::Parse(kLifecycleFsYaml));
    fs_spec_ = fs_spec;
    LABSTOR_ASSIGN_OR_RETURN(
        fs_stack, runtime_.MountStack(fs_spec_, ipc::Credentials{1, 0, 0}));
    (void)fs_stack;
    LABSTOR_ASSIGN_OR_RETURN(kvs_spec,
                             core::StackSpec::Parse(kLifecycleKvsYaml));
    LABSTOR_ASSIGN_OR_RETURN(
        kvs_stack, runtime_.MountStack(kvs_spec, ipc::Credentials{1, 0, 0}));
    (void)kvs_stack;
    LABSTOR_ASSIGN_OR_RETURN(probe_spec,
                             core::StackSpec::Parse(kLifecycleProbeYaml));
    LABSTOR_ASSIGN_OR_RETURN(
        probe_stack,
        runtime_.MountStack(probe_spec, ipc::Credentials{1, 0, 0}));
    (void)probe_stack;

    LABSTOR_RETURN_IF_ERROR(client_.Connect());
    LABSTOR_RETURN_IF_ERROR(aux_client_.Connect());
    return Status::Ok();
  }();
}

Result<std::unique_ptr<LifecycleRig>> LifecycleRig::Create() {
  std::unique_ptr<LifecycleRig> rig(new LifecycleRig());
  LABSTOR_RETURN_IF_ERROR(rig->init_status_);
  return rig;
}

Result<core::Stack*> LifecycleRig::fs_stack() {
  return runtime_.ns().FindByMount("fs::/dst");
}

Result<core::Stack*> LifecycleRig::probe_stack() {
  return runtime_.ns().FindByMount("ctl::/probe");
}

// ---------------------------------------------------------------------------
// Invariants

namespace {

// Sorted instance list: invariant failure messages must not depend on
// unordered_map layout (byte-identical traces across runs).
std::vector<std::string> SortedProbeInstances(const core::ModuleRegistry& reg) {
  std::vector<std::string> uuids = reg.InstancesOf("dst_probe");
  std::sort(uuids.begin(), uuids.end());
  return uuids;
}

}  // namespace

Status UpgradeAtomicityInvariant::Check(const LifecycleContext& ctx) const {
  const core::ModuleRegistry& reg = ctx.rig.runtime().registry();
  const std::vector<std::string> uuids = SortedProbeInstances(reg);
  if (uuids.size() != ctx.expect.probe_units.size()) {
    return Status::Internal("probe instance count changed: " +
                            std::to_string(uuids.size()));
  }
  for (const std::string& uuid : uuids) {
    LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find(uuid));
    if (!ProbeMod::IsLive(mod)) {
      return Status::Internal("registry serves destroyed instance '" + uuid +
                              "'");
    }
    if (mod->version() != ctx.expect.probe_version) {
      return Status::Internal(
          "mixed versions: '" + uuid + "' runs v" +
          std::to_string(mod->version()) + ", expected v" +
          std::to_string(ctx.expect.probe_version));
    }
  }
  return Status::Ok();
}

Status ConfigPreservationInvariant::Check(const LifecycleContext& ctx) const {
  const core::ModuleRegistry& reg = ctx.rig.runtime().registry();
  for (const auto& [uuid, units] : ctx.expect.probe_units) {
    LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find(uuid));
    const auto* probe = dynamic_cast<const ProbeMod*>(mod);
    if (probe == nullptr) {
      return Status::Internal("'" + uuid + "' is not a ProbeMod");
    }
    if (!probe->inited_with_params()) {
      return Status::Internal("'" + uuid +
                              "' was Init'ed without creation params");
    }
    if (probe->units() != units) {
      return Status::Internal("'" + uuid + "' lost its config: units=" +
                              std::to_string(probe->units()) + ", expected " +
                              std::to_string(units));
    }
    // The registry must still hold the params for the *next* upgrade.
    LABSTOR_ASSIGN_OR_RETURN(params, reg.ParamsOf(uuid));
    if (params == nullptr || params->GetUint("units", 0) != units) {
      return Status::Internal("registry dropped creation params for '" +
                              uuid + "'");
    }
  }
  return Status::Ok();
}

Status QuiesceCorrectnessInvariant::Check(const LifecycleContext& ctx) const {
  ipc::IpcManager& ipc = ctx.rig.runtime().ipc();
  // Checks run between events, never inside an upgrade: the barrier
  // must be fully released.
  if (ipc.quiescing()) {
    return Status::Internal("quiesce barrier still latched");
  }
  if (const size_t paused = ipc.PausedPrimaryCount(); paused != 0) {
    return Status::Internal(std::to_string(paused) +
                            " primary queue(s) left paused");
  }
  for (ipc::QueuePair* qp : ipc.PrimaryQueues()) {
    if (qp->update_pending()) {
      return Status::Internal("queue left UPDATE_PENDING");
    }
    if (qp->pauses() != qp->clears()) {
      return Status::Internal(
          "pause/clear imbalance: " + std::to_string(qp->pauses()) +
          " pauses vs " + std::to_string(qp->clears()) + " clears");
    }
  }
  return Status::Ok();
}

Status NamespaceEpochCoherenceInvariant::Check(
    const LifecycleContext& ctx) const {
  core::Runtime& runtime = ctx.rig.runtime();
  const core::StackNamespace& ns = runtime.ns();
  const core::ModuleRegistry& reg = runtime.registry();
  std::vector<std::string> mounts = ns.Mounts();
  std::sort(mounts.begin(), mounts.end());
  for (const std::string& mount : mounts) {
    LABSTOR_ASSIGN_OR_RETURN(stack, ns.FindByMount(mount));
    LABSTOR_ASSIGN_OR_RETURN(by_id, ns.FindById(stack->id));
    if (by_id != stack) {
      return Status::Internal("id/mount lookup disagree for '" + mount + "'");
    }
    for (const core::Stack::Vertex& vertex : stack->vertices) {
      LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find(vertex.uuid));
      if (mod != vertex.mod) {
        return Status::Internal("stale binding: vertex '" + vertex.uuid +
                                "' in '" + mount +
                                "' does not match the registry");
      }
    }
    // Fused-chain coherence (DESIGN.md §11): a fused stack's flat
    // chain must have been rebuilt by the same RefreshBindings pass
    // that re-resolved the vertices — a fused entry pointing at a
    // pre-upgrade mod is exactly the stale-chain bug the re-fuse-
    // under-quiesce rule exists to prevent.
    if (stack->is_fused()) {
      if (stack->fused.size() != stack->vertices.size()) {
        return Status::Internal("fused chain in '" + mount + "' covers " +
                                std::to_string(stack->fused.size()) + " of " +
                                std::to_string(stack->vertices.size()) +
                                " vertices");
      }
      for (const core::Stack::FusedEntry& entry : stack->fused) {
        const core::Stack::Vertex& vertex = stack->vertices[entry.vertex];
        if (entry.mod != vertex.mod) {
          return Status::Internal("stale fused chain: entry for vertex '" +
                                  vertex.uuid + "' in '" + mount +
                                  "' does not match the rebound vertex");
        }
      }
    }
  }
  return Status::Ok();
}

const std::vector<const LifecycleInvariant*>& DefaultLifecycleInvariants() {
  static const UpgradeAtomicityInvariant atomicity;
  static const ConfigPreservationInvariant config;
  static const QuiesceCorrectnessInvariant quiesce;
  static const NamespaceEpochCoherenceInvariant coherence;
  static const std::vector<const LifecycleInvariant*> all = {
      &atomicity, &config, &quiesce, &coherence};
  return all;
}

// ---------------------------------------------------------------------------
// RunLifecycle

Result<LifecycleStats> RunLifecycle(
    LifecycleRig& rig, Schedule& sched,
    const std::vector<const LifecycleInvariant*>& invariants,
    const LifecycleOptions& opts) {
  LifecycleStats stats;
  LifecycleExpectation expect;
  core::Runtime& runtime = rig.runtime();
  core::ModuleRegistry& reg = runtime.registry();
  core::ModuleManager& mm = runtime.module_manager();

  // Seed the expectation from the freshly-mounted rig.
  {
    const std::vector<std::string> uuids = SortedProbeInstances(reg);
    if (uuids.empty()) {
      return Status::FailedPrecondition("rig has no dst_probe instances");
    }
    for (const std::string& uuid : uuids) {
      LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find(uuid));
      const auto* probe = dynamic_cast<const ProbeMod*>(mod);
      if (probe == nullptr) {
        return Status::Internal("'" + uuid + "' is not a ProbeMod");
      }
      expect.probe_units[uuid] = probe->units();
      expect.probe_version = mod->version();
    }
  }
  uint64_t units_sum = 0;
  for (const auto& [uuid, units] : expect.probe_units) units_sum += units;

  FsModel fs_model;
  KvModel kv_model;
  FsWorkloadState fs_state;
  KvsWorkloadState kvs_state;

  auto check_all = [&](std::string_view event) -> Status {
    const LifecycleContext ctx{rig, stats, expect, sched.seed(), event};
    for (const LifecycleInvariant* inv : invariants) {
      ++stats.invariant_checks;
      const Status st = inv->Check(ctx);
      if (!st.ok()) {
        return Status(st.code(), "invariant '" + std::string(inv->name()) +
                                     "' violated after " + std::string(event) +
                                     ": " + st.message() + " (" +
                                     sched.ReplayHint() + ")");
      }
    }
    return Status::Ok();
  };

  // --- events -------------------------------------------------------------

  auto do_fs = [&]() -> Status {
    LABSTOR_ASSIGN_OR_RETURN(stack, rig.fs_stack());
    LABSTOR_RETURN_IF_ERROR(StepFsOp(rig.fs(), rig.client(), *stack, sched,
                                     /*journal=*/nullptr, fs_model, fs_state));
    ++stats.fs_ops;
    return Status::Ok();
  };

  auto do_kvs = [&]() -> Status {
    LABSTOR_RETURN_IF_ERROR(
        StepKvsOp(rig.kvs(), sched, /*journal=*/nullptr, kv_model, kvs_state));
    ++stats.kvs_ops;
    return Status::Ok();
  };

  // One dummy request through probe_a -> probe_b. result_u64 carries
  // the sum of both instances' configured units, so a lost config or
  // stale binding fails the very next probe.
  auto probe_once = [&]() -> Status {
    LABSTOR_ASSIGN_OR_RETURN(stack, rig.probe_stack());
    ipc::Request req;
    req.op = ipc::OpCode::kDummy;
    LABSTOR_RETURN_IF_ERROR(rig.client().Execute(req, *stack));
    LABSTOR_RETURN_IF_ERROR(req.ToStatus());
    if (req.result_u64 != units_sum) {
      return Status::Internal("probe sum " + std::to_string(req.result_u64) +
                              ", expected " + std::to_string(units_sum));
    }
    ++expect.probe_ops;
    ++stats.probe_ops;
    sched.Note("life op=probe");
    return Status::Ok();
  };

  auto do_upgrade = [&](core::UpgradeKind kind) -> Status {
    LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find("probe_a"));
    const uint32_t cur = mod->version();
    if (cur >= ProbeMod::kMaxVersion) {
      return Status::FailedPrecondition(
          "dst_probe version headroom exhausted; raise "
          "ProbeMod::kMaxVersion");
    }
    const uint32_t target = cur + 1;
    const uint64_t applied_before = mm.upgrades_applied();
    const uint64_t epoch_before = runtime.ns().epoch();
    core::UpgradeRequest request;
    request.mod_name = "dst_probe";
    request.new_version = target;
    request.kind = kind;
    runtime.SubmitUpgrade(request);
    LABSTOR_RETURN_IF_ERROR(runtime.StepAdmin());
    if (mm.upgrades_applied() != applied_before + 1) {
      return Status::Internal("upgrade to v" + std::to_string(target) +
                              " did not apply");
    }
    if (runtime.ns().epoch() == epoch_before) {
      return Status::Internal("upgrade swapped without rebinding stacks");
    }
    expect.probe_version = target;
    const bool centralized = kind == core::UpgradeKind::kCentralized;
    if (centralized) {
      ++stats.upgrades_centralized;
    } else {
      ++stats.upgrades_decentralized;
    }
    sched.Note(std::string("life op=upgrade kind=") +
               (centralized ? "centralized" : "decentralized") + " v=" +
               std::to_string(target));
    // Immediately prove the swapped instances serve correctly.
    return probe_once();
  };

  // Same-version request: must complete as a counted no-op, with the
  // full quiesce protocol still balancing its pauses and clears.
  auto do_noop_upgrade = [&](core::UpgradeKind kind) -> Status {
    LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find("probe_a"));
    const uint32_t cur = mod->version();
    const uint64_t applied_before = mm.upgrades_applied();
    const uint64_t noops_before = mm.noop_upgrades();
    core::UpgradeRequest request;
    request.mod_name = "dst_probe";
    request.new_version = cur;
    request.kind = kind;
    runtime.SubmitUpgrade(request);
    LABSTOR_RETURN_IF_ERROR(runtime.StepAdmin());
    if (mm.upgrades_applied() != applied_before) {
      return Status::Internal("same-version upgrade counted as applied");
    }
    if (mm.noop_upgrades() != noops_before + 1) {
      return Status::Internal("same-version upgrade not counted as no-op");
    }
    ++stats.upgrade_noops;
    sched.Note("life op=upgrade-noop v=" + std::to_string(cur));
    return probe_once();
  };

  auto do_rebalance = [&]() -> Status {
    runtime.RebalanceNow();
    ++stats.rebalances;
    sched.Note("life op=rebalance");
    return Status::Ok();
  };

  auto do_client_restart = [&]() -> Status {
    const bool aux = sched.Chance("life.client.aux", 0.5);
    core::Client& client = aux ? rig.aux_client() : rig.client();
    LABSTOR_RETURN_IF_ERROR(client.Reconnect());
    ++stats.client_restarts;
    sched.Note(std::string("life op=client-restart which=") +
               (aux ? "aux" : "primary"));
    return Status::Ok();
  };

  // Runtime crash + administrator restart, thread-free: liveness flips
  // and every mod runs StateRepair, exactly what the threaded recovery
  // path does, minus the threads.
  auto do_runtime_restart = [&]() -> Status {
    ipc::IpcManager& ipc = runtime.ipc();
    ipc.MarkOffline();
    ipc.MarkOnline();
    LABSTOR_RETURN_IF_ERROR(runtime.EnsureRepaired(ipc.epoch()));
    ++stats.runtime_restarts;
    sched.Note("life op=runtime-restart");
    return Status::Ok();
  };

  // Re-apply the fs stack's own spec: a diff-less Modify still replaces
  // the Stack object and bumps the namespace epoch — the stale-pointer
  // stressor for every cached Stack*.
  auto do_modify = [&]() -> Status {
    LABSTOR_RETURN_IF_ERROR(
        runtime.ModifyStack(rig.fs_spec(), ipc::Credentials{1, 0, 0}));
    ++stats.stack_modifies;
    sched.Note("life op=stack-modify mount=fs::/dst");
    return Status::Ok();
  };

  auto upgrade_kind = [&](std::string_view site) {
    return sched.Chance(site, 0.5) ? core::UpgradeKind::kCentralized
                                   : core::UpgradeKind::kDecentralized;
  };

  // --- main action stream -------------------------------------------------

  LABSTOR_RETURN_IF_ERROR(check_all("initial"));
  for (size_t step = 0; step < opts.num_steps; ++step) {
    ++stats.steps;
    const uint64_t roll = sched.Range("life.action", 0, 99);
    std::string_view event;
    Status st;
    if (roll < 32) {
      event = "fs-op";
      st = do_fs();
    } else if (roll < 58) {
      event = "kvs-op";
      st = do_kvs();
    } else if (roll < 70) {
      event = "probe";
      st = probe_once();
    } else if (roll < 82) {
      const core::UpgradeKind kind = upgrade_kind("life.upgrade.kind");
      event = kind == core::UpgradeKind::kCentralized
                  ? "upgrade-centralized"
                  : "upgrade-decentralized";
      st = do_upgrade(kind);
    } else if (roll < 86) {
      event = "upgrade-noop";
      st = do_noop_upgrade(upgrade_kind("life.noop.kind"));
    } else if (roll < 90) {
      event = "rebalance";
      st = do_rebalance();
    } else if (roll < 94) {
      event = "client-restart";
      st = do_client_restart();
    } else if (roll < 97) {
      event = "runtime-restart";
      st = do_runtime_restart();
    } else {
      event = "stack-modify";
      st = do_modify();
    }
    if (!st.ok()) {
      return Status(st.code(), std::string(event) + " failed at step " +
                                   std::to_string(step) + ": " + st.message() +
                                   " (" + sched.ReplayHint() + ")");
    }
    LABSTOR_RETURN_IF_ERROR(check_all(event));
  }

  // --- coverage floors ----------------------------------------------------
  // Any event class the random stream missed is forced now, sandwiched
  // between I/O so it still runs against live traffic.
  auto force = [&](const size_t& counter, size_t need, std::string_view event,
                   const std::function<Status()>& fire) -> Status {
    while (counter < need) {
      LABSTOR_RETURN_IF_ERROR(do_fs());
      LABSTOR_RETURN_IF_ERROR(check_all("fs-op"));
      Status st = fire();
      if (!st.ok()) {
        return Status(st.code(), "forced " + std::string(event) +
                                     " failed: " + st.message() + " (" +
                                     sched.ReplayHint() + ")");
      }
      LABSTOR_RETURN_IF_ERROR(check_all(event));
      LABSTOR_RETURN_IF_ERROR(do_kvs());
      LABSTOR_RETURN_IF_ERROR(check_all("kvs-op"));
    }
    return Status::Ok();
  };
  LABSTOR_RETURN_IF_ERROR(force(
      stats.upgrades_centralized, opts.min_centralized_upgrades,
      "upgrade-centralized",
      [&] { return do_upgrade(core::UpgradeKind::kCentralized); }));
  LABSTOR_RETURN_IF_ERROR(force(
      stats.upgrades_decentralized, opts.min_decentralized_upgrades,
      "upgrade-decentralized",
      [&] { return do_upgrade(core::UpgradeKind::kDecentralized); }));
  LABSTOR_RETURN_IF_ERROR(
      force(stats.rebalances, opts.min_rebalances, "rebalance", do_rebalance));
  LABSTOR_RETURN_IF_ERROR(force(stats.client_restarts,
                                opts.min_client_restarts, "client-restart",
                                do_client_restart));
  LABSTOR_RETURN_IF_ERROR(force(stats.runtime_restarts,
                                opts.min_runtime_restarts, "runtime-restart",
                                do_runtime_restart));

  // --- end-of-run audit ---------------------------------------------------

  LABSTOR_RETURN_IF_ERROR(check_all("end-of-run"));

  // Byte-exact LabFS read-back. Every op was synchronously acked with
  // no journal (windows [0, 0]), so the whole ledger is durable at
  // boundary 0.
  const auto fs_want = fs_model.StateAt(0);
  for (const auto& [path, file] : fs_want) {
    if (file.is_dir) continue;
    LABSTOR_ASSIGN_OR_RETURN(size, rig.fs().StatSize(path));
    if (size != file.content.size()) {
      return Status::Internal("fs size mismatch for " + path + ": " +
                              std::to_string(size) + " vs " +
                              std::to_string(file.content.size()) + " (" +
                              sched.ReplayHint() + ")");
    }
    if (file.content.empty()) continue;
    std::vector<uint8_t> got(file.content.size());
    LABSTOR_ASSIGN_OR_RETURN(fd, rig.fs().Open(path, 0));
    LABSTOR_ASSIGN_OR_RETURN(read, rig.fs().Read(fd, got, 0));
    LABSTOR_RETURN_IF_ERROR(rig.fs().Close(fd));
    if (read != got.size() || got != file.content) {
      return Status::Internal("fs content mismatch for " + path + " (" +
                              sched.ReplayHint() + ")");
    }
  }
  for (size_t i = 0; i < kWorkloadPoolSize; ++i) {
    const std::string path = WorkloadFsPath(i);
    if (fs_want.count(path) != 0) continue;
    if (rig.fs().Stat(path).ok()) {
      return Status::Internal("unlinked file still present: " + path + " (" +
                              sched.ReplayHint() + ")");
    }
  }

  // Byte-exact LabKVS read-back, including absence of deleted keys.
  const auto kvs_want = kv_model.StateAt(0);
  for (const auto& [key, value] : kvs_want) {
    std::vector<uint8_t> got(value.size());
    LABSTOR_ASSIGN_OR_RETURN(read, rig.kvs().Get(key, got));
    if (read != value.size() || got != value) {
      return Status::Internal("kvs value mismatch for " + key + " (" +
                              sched.ReplayHint() + ")");
    }
  }
  for (size_t i = 0; i < kWorkloadPoolSize; ++i) {
    const std::string key = WorkloadKvsKey(i);
    if (kvs_want.count(key) != 0) continue;
    LABSTOR_ASSIGN_OR_RETURN(exists, rig.kvs().Exists(key));
    if (exists) {
      return Status::Internal("deleted key still present: " + key + " (" +
                              sched.ReplayHint() + ")");
    }
  }

  // Probe op-count continuity: every request this run executed must
  // have survived every StateUpdate and StateRepair in between.
  for (const auto& [uuid, units] : expect.probe_units) {
    (void)units;
    LABSTOR_ASSIGN_OR_RETURN(mod, reg.Find(uuid));
    const auto* probe = dynamic_cast<const ProbeMod*>(mod);
    if (probe == nullptr) {
      return Status::Internal("'" + uuid + "' is not a ProbeMod");
    }
    if (probe->ops() != expect.probe_ops) {
      return Status::Internal(
          "op history lost across upgrades: '" + uuid + "' counts " +
          std::to_string(probe->ops()) + ", expected " +
          std::to_string(expect.probe_ops) + " (" + sched.ReplayHint() + ")");
    }
  }

  sched.Note("life done steps=" + std::to_string(stats.steps) +
             " fs=" + std::to_string(stats.fs_ops) +
             " kvs=" + std::to_string(stats.kvs_ops) +
             " probe=" + std::to_string(stats.probe_ops) +
             " upc=" + std::to_string(stats.upgrades_centralized) +
             " upd=" + std::to_string(stats.upgrades_decentralized) +
             " noop=" + std::to_string(stats.upgrade_noops) +
             " reb=" + std::to_string(stats.rebalances) +
             " crst=" + std::to_string(stats.client_restarts) +
             " rrst=" + std::to_string(stats.runtime_restarts) +
             " mod=" + std::to_string(stats.stack_modifies));
  return stats;
}

}  // namespace labstor::dst
