// Crash rigs: disposable sync-mode Runtime + stack + client bundles
// the crash-point enumerator rebuilds for every crash point.
//
// Rigs run decentralized (sync) stacks and never Start() the Runtime,
// so there are no threads: a LabFS or LabKVS request executes inline
// in the caller, every fslog append lands in worker region 0 in
// strict sequence order, and building hundreds of rigs per test is
// cheap. The journal-replay crash model depends on that ordering — a
// journal prefix cleanly partitions the log into durable records and
// never-happened records.
#pragma once

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "core/client.h"
#include "core/runtime.h"
#include "labmods/genericfs.h"
#include "labmods/generickvs.h"
#include "labmods/labfs.h"
#include "labmods/labkvs.h"
#include "labmods/pushdown.h"
#include "sim/environment.h"
#include "simdev/registry.h"
#include "telemetry/telemetry.h"

namespace labstor::dst {

class CrashRig {
 public:
  virtual ~CrashRig() = default;

  virtual simdev::SimDevice& device() = 0;
  virtual core::Runtime& runtime() = 0;
  virtual core::Client& client() = 0;
  virtual core::Stack& stack() = 0;
  // The metadata log under test (defines the crash-point boundaries).
  virtual const labmods::MetadataLog* log() const = 0;

  // What a restarted administrator does: StateRepair on every mod.
  Status Recover() { return runtime().registry().RepairAll(); }

  // Typed access; null on rigs that don't host that mod.
  virtual labmods::GenericFs* fs() { return nullptr; }
  virtual labmods::GenericKvs* kvs() { return nullptr; }
  virtual labmods::LabFsMod* labfs() { return nullptr; }
  virtual labmods::LabKvsMod* labkvs() { return nullptr; }
  virtual labmods::PushdownMod* pushdown() { return nullptr; }
};

// LabFS over kernel_driver, mounted at fs::/dst, sync mode, 1 worker.
class SyncFsRig final : public CrashRig {
 public:
  static Result<std::unique_ptr<SyncFsRig>> Create();

  simdev::SimDevice& device() override { return *device_; }
  core::Runtime& runtime() override { return runtime_; }
  core::Client& client() override { return client_; }
  core::Stack& stack() override { return *stack_; }
  const labmods::MetadataLog* log() const override { return labfs_->log(); }
  labmods::GenericFs* fs() override { return &fs_; }
  labmods::LabFsMod* labfs() override { return labfs_; }

 private:
  SyncFsRig();
  Status init_status_;

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
  core::Client client_;
  labmods::GenericFs fs_;
  simdev::SimDevice* device_ = nullptr;
  core::Stack* stack_ = nullptr;
  labmods::LabFsMod* labfs_ = nullptr;
};

// LabKVS over kernel_driver, mounted at kvs::/dst, sync mode, 1 worker.
class SyncKvsRig final : public CrashRig {
 public:
  static Result<std::unique_ptr<SyncKvsRig>> Create();

  simdev::SimDevice& device() override { return *device_; }
  core::Runtime& runtime() override { return runtime_; }
  core::Client& client() override { return client_; }
  core::Stack& stack() override { return *stack_; }
  const labmods::MetadataLog* log() const override { return labkvs_->log(); }
  labmods::GenericKvs* kvs() override { return &kvs_; }
  labmods::LabKvsMod* labkvs() override { return labkvs_; }

 private:
  SyncKvsRig();
  Status init_status_;

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
  core::Client client_;
  labmods::GenericKvs kvs_;
  simdev::SimDevice* device_ = nullptr;
  core::Stack* stack_ = nullptr;
  labmods::LabKvsMod* labkvs_ = nullptr;
};

// Pushdown → LabKVS over kernel_driver, mounted at kvs::/dst, sync
// mode, 1 worker: the chain interpreter runs inline in the caller, so
// every journal append a chain step produces lands in strict sequence
// order and the crash-point enumerator can tear the log at every
// chain-step boundary.
class PushdownKvsRig final : public CrashRig {
 public:
  static Result<std::unique_ptr<PushdownKvsRig>> Create();

  simdev::SimDevice& device() override { return *device_; }
  core::Runtime& runtime() override { return runtime_; }
  core::Client& client() override { return client_; }
  core::Stack& stack() override { return *stack_; }
  const labmods::MetadataLog* log() const override { return labkvs_->log(); }
  labmods::GenericKvs* kvs() override { return &kvs_; }
  labmods::LabKvsMod* labkvs() override { return labkvs_; }
  labmods::PushdownMod* pushdown() override { return pushdown_; }

 private:
  PushdownKvsRig();
  Status init_status_;

  simdev::DeviceRegistry devices_;
  core::Runtime runtime_;
  core::Client client_;
  labmods::GenericKvs kvs_;
  simdev::SimDevice* device_ = nullptr;
  core::Stack* stack_ = nullptr;
  labmods::LabKvsMod* labkvs_ = nullptr;
  labmods::PushdownMod* pushdown_ = nullptr;
};

// Multi-node cluster under one DES: its own Environment, a
// virtual-time Telemetry, and a cluster::Cluster of full per-node
// LabStor runtimes. Unlike the sync crash rigs there IS concurrency —
// in virtual time — but it is deterministic: the scenario driver
// (dst/cluster_scenario.h) steps the environment to quiescence between
// schedule decisions.
class ClusterRig {
 public:
  static Result<std::unique_ptr<ClusterRig>> Create(
      const cluster::ClusterConfig& config = {});

  sim::Environment& env() { return env_; }
  telemetry::Telemetry& telemetry() { return tel_; }
  cluster::Cluster& cluster() { return *cluster_; }

 private:
  explicit ClusterRig(const cluster::ClusterConfig& config);
  Status init_status_;

  sim::Environment env_;
  telemetry::Telemetry tel_;
  std::unique_ptr<cluster::Cluster> cluster_;
};

}  // namespace labstor::dst
