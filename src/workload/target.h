// Interfaces the workload generators drive. Each benchmark subject
// (kernel API, kernel FS, LabStor stack) adapts to one of these, so a
// single generator produces comparable series for every backend.
#pragma once

#include <cstdint>

#include "sim/task.h"
#include "simdev/timing_model.h"

namespace labstor::workload {

// Raw block route (FIO over a device file / driver LabMod).
class BlockTarget {
 public:
  virtual ~BlockTarget() = default;
  virtual sim::Task<void> Io(simdev::IoOp op, uint32_t thread,
                             uint64_t offset, uint64_t length) = 0;
};

// Filesystem route (FxMark / Filebench / PFS locals). Timing-oriented:
// paths are implicit (each generator thread works on its own files).
class FsTarget {
 public:
  virtual ~FsTarget() = default;
  virtual sim::Task<void> Create(uint32_t thread) = 0;
  virtual sim::Task<void> Open(uint32_t thread) = 0;
  virtual sim::Task<void> Close(uint32_t thread) = 0;
  virtual sim::Task<void> Write(uint32_t thread, uint64_t offset,
                                uint64_t length) = 0;
  virtual sim::Task<void> Read(uint32_t thread, uint64_t offset,
                               uint64_t length) = 0;
  virtual sim::Task<void> Fsync(uint32_t thread) = 0;
  virtual sim::Task<void> Unlink(uint32_t thread) = 0;
};

// Parallel-filesystem route (VPIC / BD-CATS drive the mini-PFS).
class PfsTarget {
 public:
  virtual ~PfsTarget() = default;
  virtual sim::Task<void> WriteFile(uint32_t client, uint64_t offset,
                                    uint64_t length) = 0;
  virtual sim::Task<void> ReadFile(uint32_t client, uint64_t offset,
                                   uint64_t length) = 0;
};

// Label/object route (LABIOS worker).
class LabelTarget {
 public:
  virtual ~LabelTarget() = default;
  virtual sim::Task<void> StoreLabel(uint32_t thread, uint64_t index,
                                     uint64_t length) = 0;
  virtual sim::Task<void> LoadLabel(uint32_t thread, uint64_t index,
                                    uint64_t length) = 0;
};

}  // namespace labstor::workload
