// VPIC / BD-CATS workload models (Fig. 9a).
//
// VPIC: a particle-in-cell simulation where every process writes its
// particle block each timestep (sequential appends). BD-CATS: the
// companion clustering analysis that reads VPIC's output back.
#pragma once

#include "sim/environment.h"
#include "workload/target.h"

namespace labstor::workload {

struct VpicConfig {
  uint32_t processes = 64;
  uint32_t timesteps = 4;
  // Bytes each process writes per timestep (particles x 8 floats).
  uint64_t bytes_per_step = 16ull << 20;
};

struct VpicResult {
  sim::Time write_makespan = 0;  // VPIC
  sim::Time read_makespan = 0;   // BD-CATS
  uint64_t total_bytes = 0;

  double WriteBandwidthMBps() const {
    return write_makespan == 0
               ? 0.0
               : static_cast<double>(total_bytes) /
                     (static_cast<double>(write_makespan) / 1e9) / 1e6;
  }
  double ReadBandwidthMBps() const {
    return read_makespan == 0
               ? 0.0
               : static_cast<double>(total_bytes) /
                     (static_cast<double>(read_makespan) / 1e9) / 1e6;
  }
};

// Runs VPIC (all processes write all timesteps), then BD-CATS (all
// processes read everything back). Drives env.Run() twice.
VpicResult RunVpicThenBdcats(sim::Environment& env, PfsTarget& pfs,
                             const VpicConfig& config);

}  // namespace labstor::workload
