// Filebench personality models (Fig. 9's cloud workloads), with op
// mixes matching the default .f configurations:
//   * varmail    — mail server: create/append/fsync/read/delete over
//                  many small files (metadata + fsync bound);
//   * webserver  — open/read x10 of small files + a log append
//                  (read bound);
//   * webproxy   — create+write then 5 re-reads (mixed);
//   * fileserver — create/write 1MB, read 1MB, delete (large-I/O
//                  bound — the paper's exception where LabFS ties).
#pragma once

#include <string_view>

#include "common/histogram.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "workload/target.h"

namespace labstor::workload {

enum class FilebenchKind : uint8_t {
  kVarmail,
  kWebserver,
  kWebproxy,
  kFileserver,
};

std::string_view FilebenchKindName(FilebenchKind kind);

struct FilebenchResult {
  uint64_t ops = 0;  // completed whole iterations ("flowops" bundles)
  sim::Time makespan = 0;  // through the last client-visible completion
  sim::Time last_completion = 0;
  Histogram iteration_latency;

  double OpsPerSec() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(ops) /
                               (static_cast<double>(makespan) / 1e9);
  }
};

FilebenchResult RunFilebench(sim::Environment& env, FsTarget& target,
                             FilebenchKind kind, uint32_t threads,
                             uint64_t iterations_per_thread,
                             uint64_t seed = 1);

}  // namespace labstor::workload
