#include "workload/filebench.h"

#include <algorithm>

namespace labstor::workload {

std::string_view FilebenchKindName(FilebenchKind kind) {
  switch (kind) {
    case FilebenchKind::kVarmail: return "varmail";
    case FilebenchKind::kWebserver: return "webserver";
    case FilebenchKind::kWebproxy: return "webproxy";
    case FilebenchKind::kFileserver: return "fileserver";
  }
  return "?";
}

namespace {

constexpr uint64_t kSmallIo = 16 * 1024;   // varmail/webserver mean size
constexpr uint64_t kLargeIo = 128 * 1024;  // fileserver chunk
constexpr uint64_t kLargeFile = 1 << 20;   // fileserver file size

sim::Task<void> VarmailIteration(FsTarget& fs, uint32_t t, Rng& rng) {
  // deletefile, createfile+append+fsync, openfile+read+append+fsync,
  // openfile+read — the classic 16-flowop loop condensed.
  co_await fs.Unlink(t);
  co_await fs.Create(t);
  co_await fs.Write(t, 0, kSmallIo);
  co_await fs.Fsync(t);
  co_await fs.Close(t);
  co_await fs.Open(t);
  co_await fs.Read(t, 0, kSmallIo);
  co_await fs.Write(t, kSmallIo, kSmallIo);
  co_await fs.Fsync(t);
  co_await fs.Close(t);
  co_await fs.Open(t);
  co_await fs.Read(t, 0, rng.Range(4096, kSmallIo));
  co_await fs.Close(t);
}

sim::Task<void> WebserverIteration(FsTarget& fs, uint32_t t, Rng& rng) {
  for (int i = 0; i < 10; ++i) {
    co_await fs.Open(t);
    co_await fs.Read(t, 0, rng.Range(4096, kSmallIo));
    co_await fs.Close(t);
  }
  // Append to the shared web log.
  co_await fs.Write(t, 0, 8192);
}

sim::Task<void> WebproxyIteration(FsTarget& fs, uint32_t t, Rng& rng) {
  co_await fs.Unlink(t);
  co_await fs.Create(t);
  co_await fs.Write(t, 0, kSmallIo);
  co_await fs.Close(t);
  for (int i = 0; i < 5; ++i) {
    co_await fs.Open(t);
    co_await fs.Read(t, 0, rng.Range(4096, kSmallIo));
    co_await fs.Close(t);
  }
}

sim::Task<void> FileserverIteration(FsTarget& fs, uint32_t t, Rng& rng) {
  co_await fs.Create(t);
  for (uint64_t off = 0; off < kLargeFile; off += kLargeIo) {
    co_await fs.Write(t, off, kLargeIo);
  }
  co_await fs.Close(t);
  co_await fs.Open(t);
  for (uint64_t off = 0; off < kLargeFile; off += kLargeIo) {
    co_await fs.Read(t, off, kLargeIo);
  }
  co_await fs.Close(t);
  co_await fs.Unlink(t);
  (void)rng;
}

sim::Task<void> WorkerLoop(sim::Environment& env, FsTarget& fs,
                           FilebenchKind kind, uint32_t thread,
                           uint64_t iterations, uint64_t seed,
                           FilebenchResult* result) {
  Rng rng(seed * 977 + thread);
  for (uint64_t i = 0; i < iterations; ++i) {
    const sim::Time t0 = env.now();
    switch (kind) {
      case FilebenchKind::kVarmail:
        co_await VarmailIteration(fs, thread, rng);
        break;
      case FilebenchKind::kWebserver:
        co_await WebserverIteration(fs, thread, rng);
        break;
      case FilebenchKind::kWebproxy:
        co_await WebproxyIteration(fs, thread, rng);
        break;
      case FilebenchKind::kFileserver:
        co_await FileserverIteration(fs, thread, rng);
        break;
    }
    result->iteration_latency.Record(env.now() - t0);
    ++result->ops;
    result->last_completion = std::max(result->last_completion, env.now());
  }
}

}  // namespace

FilebenchResult RunFilebench(sim::Environment& env, FsTarget& target,
                             FilebenchKind kind, uint32_t threads,
                             uint64_t iterations_per_thread, uint64_t seed) {
  FilebenchResult result;
  for (uint32_t t = 0; t < threads; ++t) {
    env.Spawn(WorkerLoop(env, target, kind, t, iterations_per_thread, seed,
                         &result));
  }
  const sim::Time begin = env.now();
  env.Run();
  result.makespan = result.ops == 0 ? 0 : result.last_completion - begin;
  return result;
}

}  // namespace labstor::workload
