// Arrival generator: the one load driver every bench shares.
//
// Before this existed, each bench hand-rolled a closed-loop coroutine
// (spawn N threads, each issues ops back-to-back). That shape cannot
// measure tail latency under load — a closed loop self-throttles, so
// p99 collapses toward the service time. The generator adds open-loop
// arrivals (Poisson and fixed-rate), where issue times are independent
// of completions: queueing delay shows up in the recorded latency,
// which is what per-tenant p99/p999 SLO tracking needs.
//
// The operation is a coroutine factory `op(stream, index)`; streams
// map to whatever concurrency unit the bench has (worker threads in
// closed mode, tenants in open mode). All latency is virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "sim/task.h"

namespace labstor::workload {

enum class ArrivalMode {
  kClosed,         // next op issues when the previous completes
  kOpenPoisson,    // exponential inter-arrival at rate_per_stream
  kOpenFixedRate,  // constant inter-arrival at rate_per_stream
};

// Optional time-varying inter-arrival hook (open modes only): called
// once per issue with the stream id, current virtual time, and the
// stream's seeded RNG; returns the gap to the next arrival in ns. Lets
// calibrated workloads (workload/calibrated.h) modulate the base rate —
// burst states, diurnal envelopes — without forking the issue loop.
// The generator still clamps the returned gap to >= 1ns.
using GapFn =
    std::function<double(uint32_t stream, sim::Time now, Rng& rng)>;

struct ArrivalOptions {
  ArrivalMode mode = ArrivalMode::kClosed;
  uint32_t streams = 1;
  // Closed mode: ops each stream issues. Open modes: cap on issued ops
  // per stream (0 = bounded by duration alone).
  uint64_t ops_per_stream = 0;
  // Open modes: mean arrival rate per stream, ops per virtual second.
  double rate_per_stream = 0.0;
  // Open modes: stop issuing after this much virtual time (0 = rely on
  // ops_per_stream). The deadline is inclusive: an arrival landing
  // exactly on it is NOT issued.
  sim::Time duration = 0;
  // Seeds the per-stream inter-arrival draws (Poisson / gap_fn).
  uint64_t seed = 1;
  // Open modes: overrides the rate_per_stream draw when set (the
  // rate_per_stream > 0 sanity gate still applies; pass the base rate).
  GapFn gap_fn;
};

using ArrivalOp =
    std::function<sim::Task<void>(uint32_t stream, uint64_t index)>;

struct ArrivalStats {
  uint64_t issued = 0;
  uint64_t completed = 0;
  sim::Time begin = 0;
  sim::Time last_completion = 0;
  Histogram latency;                  // all streams merged
  std::vector<Histogram> per_stream;  // indexed by stream id

  sim::Time Makespan() const {
    return last_completion > begin ? last_completion - begin : 0;
  }
  double OpsPerSec() const {
    const sim::Time span = Makespan();
    return span == 0 ? 0.0
                     : static_cast<double>(completed) /
                           (static_cast<double>(span) / 1e9);
  }
};

// Spawns one generator per stream and drives env.Run() to completion.
// Open-loop issues do not wait for completions: every op is spawned as
// its own process and its latency recorded when it finishes.
ArrivalStats RunArrivals(sim::Environment& env, const ArrivalOptions& opts,
                         const ArrivalOp& op);

}  // namespace labstor::workload
