// Statistically calibrated open-loop workload harness (DESIGN.md §14).
//
// The pattern-based generators (fio/fxmark/filebench/labios) replay
// fixed shapes; this harness instead draws traffic from empirical
// distributions calibrated against the IO500 submission analysis
// ("A Treasure Trove of Performance" — PAPERS.md): request sizes are a
// discrete mixture dominated by 4K-aligned small transfers with a
// multi-MB bulk tail, operations split into a metadata/data ratio (the
// mdtest-vs-ior axis), arrivals are burst-modulated by a two-state
// modulated-Poisson (on/off) process, and the base rate rides a
// diurnal envelope. Tail latency (p50/p99/p999), not mean ns/request,
// is the headline output.
//
// Layering: everything funnels through workload/arrival's open-loop
// issue machinery via its GapFn hook — the calibrated harness only
// decides WHEN the next arrival happens and WHAT it is. All randomness
// derives from CalibratedOptions::seed through per-stream Rng streams,
// so a run is seed-deterministic under the DES and byte-identical on
// replay (--dst_seed); the per-run `issue_digest` fingerprints the full
// issue sequence to make that checkable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"
#include "workload/arrival.h"

namespace labstor::workload {

// What a calibrated arrival is: data transfer or metadata op.
enum class OpClass : uint8_t { kDataRead, kDataWrite, kMetadata };
// Metadata ops split further (create/stat/remove — the mdtest trio).
enum class MetaOp : uint8_t { kCreate, kStat, kRemove };

const char* OpClassName(OpClass cls);
const char* MetaOpName(MetaOp op);

// One entry of an empirical request-size mixture.
struct SizeBin {
  uint64_t bytes = 4096;
  double weight = 1.0;
};

// All distribution parameters of one scenario. The four presets in
// ProfileFor() carry IO500-grounded numbers; custom profiles are fine
// as long as weights/fractions stay sane (Validate()).
struct CalibratedProfile {
  std::string name;

  // Request-size mixture for data ops (weights need not sum to 1).
  std::vector<SizeBin> sizes;

  // Fraction of ALL ops that are metadata (mdtest-vs-ior axis).
  double metadata_fraction = 0.2;
  // Among data ops, fraction that are reads.
  double read_fraction = 0.5;
  // Among metadata ops: create / stat fractions (remainder = remove).
  double meta_create_fraction = 0.3;
  double meta_stat_fraction = 0.5;

  // Two-state modulated Poisson (on/off) burstiness: in the ON state
  // the arrival rate is multiplied by burst_multiplier; state holding
  // times are exponential with the given means. multiplier <= 1 or a
  // zero mean disables modulation.
  double burst_multiplier = 1.0;
  sim::Time mean_burst = 0;
  sim::Time mean_quiet = 0;

  // Diurnal rate envelope: rate *= 1 + amplitude*sin(2*pi*t/period).
  // amplitude in [0,1); 0 (or period 0) disables.
  double diurnal_amplitude = 0.0;
  sim::Time diurnal_period = 0;

  // Ok() iff weights/fractions are usable.
  Status Validate() const;
};

// The four named scenarios bench_calibrated drives.
enum class Scenario : uint8_t {
  kReadHeavy,
  kWriteBurst,
  kMetadataStorm,
  kMixedDiurnal,
};

const char* ScenarioName(Scenario s);
CalibratedProfile ProfileFor(Scenario s);
const std::vector<Scenario>& AllScenarios();

// One drawn request, handed to the interface adapter.
struct CalibratedRequest {
  uint32_t stream = 0;
  uint64_t index = 0;
  OpClass cls = OpClass::kDataRead;
  MetaOp meta = MetaOp::kStat;  // meaningful when cls == kMetadata
  uint64_t size_bytes = 0;      // 0 for metadata ops
};

// Adapters return per-op status; failures are counted (failed_ops) but
// do not stop the run — an open-loop harness keeps issuing.
using CalibratedOpFn =
    std::function<sim::Task<Status>(const CalibratedRequest& req)>;

struct CalibratedOptions {
  uint32_t streams = 1;
  // Cap on issued ops per stream (0 = duration-bounded only).
  uint64_t ops_per_stream = 0;
  // Stop issuing after this much virtual time (0 = count-bounded only).
  sim::Time duration = 0;
  // Base (quiet-state, envelope-midpoint) arrival rate per stream,
  // ops per virtual second.
  double rate_per_stream = 0.0;
  // Single seed for every draw the harness makes.
  uint64_t seed = 1;
  // Optional: issue/class counters land under
  // "workload.calibrated.<profile>.*".
  telemetry::Telemetry* telemetry = nullptr;
};

struct CalibratedStats {
  ArrivalStats arrivals;  // merged + per-stream latency, issue counts

  // Per-class accounting (completions).
  uint64_t data_reads = 0;
  uint64_t data_writes = 0;
  uint64_t metadata_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t failed_ops = 0;  // non-ok statuses returned by the adapter
  Histogram read_latency;
  Histogram write_latency;
  Histogram meta_latency;

  // ON-state entries observed across all streams (burstiness proof).
  uint64_t bursts_entered = 0;

  // FNV-1a fingerprint of the complete issue sequence: per-stream
  // folds of (index, class, meta, size, issue time relative to harness
  // start), combined in stream order. Two runs with the same seed must
  // agree bit-for-bit; the sequence is independent of op service times
  // (open loop) and of whatever setup ran before RunCalibrated (times
  // are harness-relative), so a dry run against a null op — or the
  // same scenario against a different interface/deployment —
  // reproduces the digest of a loaded run.
  uint64_t issue_digest = 0;
};

// Spawns the per-stream calibrated generators and drives env.Run() to
// completion. `op` is invoked once per arrival with the drawn request.
CalibratedStats RunCalibrated(sim::Environment& env,
                              const CalibratedOptions& opts,
                              const CalibratedProfile& profile,
                              const CalibratedOpFn& op);

// --- exposed for tests and adapters ---

// Draw one size from the mixture (weight-proportional).
uint64_t SampleSize(const CalibratedProfile& profile, Rng& rng);
// Draw one request classification (class + meta kind + size).
CalibratedRequest DrawRequest(const CalibratedProfile& profile,
                              uint32_t stream, uint64_t index, Rng& rng);
// Diurnal rate factor at virtual time `now` (1.0 when disabled).
double DiurnalFactor(const CalibratedProfile& profile, sim::Time now);

}  // namespace labstor::workload
