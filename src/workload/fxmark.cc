#include "workload/fxmark.h"

#include <algorithm>

namespace labstor::workload {

namespace {
sim::Task<void> CreateLoop(sim::Environment& env, FsTarget& target,
                           uint32_t thread, uint64_t count,
                           FxmarkResult* result) {
  for (uint64_t i = 0; i < count; ++i) {
    const sim::Time t0 = env.now();
    co_await target.Create(thread);
    result->latency.Record(env.now() - t0);
    ++result->ops;
    result->last_completion = std::max(result->last_completion, env.now());
  }
}
}  // namespace

FxmarkResult RunFxmarkCreate(sim::Environment& env, FsTarget& target,
                             uint32_t threads, uint64_t files_per_thread) {
  FxmarkResult result;
  for (uint32_t t = 0; t < threads; ++t) {
    env.Spawn(CreateLoop(env, target, t, files_per_thread, &result));
  }
  const sim::Time begin = env.now();
  env.Run();
  result.makespan = result.ops == 0 ? 0 : result.last_completion - begin;
  return result;
}

}  // namespace labstor::workload
