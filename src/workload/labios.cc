#include "workload/labios.h"

#include <algorithm>

namespace labstor::workload {

namespace {
sim::Task<void> StoreLoop(sim::Environment& env, LabelTarget& target,
                          uint32_t thread, uint64_t count, uint64_t size,
                          LabiosResult* result) {
  for (uint64_t i = 0; i < count; ++i) {
    const sim::Time t0 = env.now();
    co_await target.StoreLabel(thread, i, size);
    result->latency.Record(env.now() - t0);
    ++result->labels;
    result->bytes += size;
    result->last_completion = std::max(result->last_completion, env.now());
  }
}
}  // namespace

LabiosResult RunLabiosWorker(sim::Environment& env, LabelTarget& target,
                             uint32_t threads, uint64_t labels_per_thread,
                             uint64_t label_size) {
  LabiosResult result;
  for (uint32_t t = 0; t < threads; ++t) {
    env.Spawn(
        StoreLoop(env, target, t, labels_per_thread, label_size, &result));
  }
  const sim::Time begin = env.now();
  env.Run();
  result.makespan = result.labels == 0 ? 0 : result.last_completion - begin;
  return result;
}

}  // namespace labstor::workload
