#include "workload/labios.h"

#include "workload/arrival.h"

namespace labstor::workload {

LabiosResult RunLabiosWorker(sim::Environment& env, LabelTarget& target,
                             uint32_t threads, uint64_t labels_per_thread,
                             uint64_t label_size) {
  ArrivalOptions opts;
  opts.mode = ArrivalMode::kClosed;
  opts.streams = threads;
  opts.ops_per_stream = labels_per_thread;
  const ArrivalStats stats = RunArrivals(
      env, opts, [&target, label_size](uint32_t thread, uint64_t index) {
        return target.StoreLabel(thread, index, label_size);
      });
  LabiosResult result;
  result.labels = stats.completed;
  result.bytes = stats.completed * label_size;
  result.last_completion = stats.last_completion;
  result.makespan = stats.Makespan();
  result.latency = stats.latency;
  return result;
}

}  // namespace labstor::workload
