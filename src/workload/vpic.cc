#include "workload/vpic.h"

#include <algorithm>

namespace labstor::workload {

namespace {
sim::Task<void> VpicWriter(sim::Environment& env, PfsTarget& pfs,
                           uint32_t proc, const VpicConfig config,
                           sim::Time* last_done) {
  for (uint32_t step = 0; step < config.timesteps; ++step) {
    const uint64_t offset = static_cast<uint64_t>(step) * config.bytes_per_step;
    co_await pfs.WriteFile(proc, offset, config.bytes_per_step);
  }
  *last_done = std::max(*last_done, env.now());
}

sim::Task<void> BdcatsReader(sim::Environment& env, PfsTarget& pfs,
                             uint32_t proc, const VpicConfig config,
                             sim::Time* last_done) {
  for (uint32_t step = 0; step < config.timesteps; ++step) {
    const uint64_t offset = static_cast<uint64_t>(step) * config.bytes_per_step;
    co_await pfs.ReadFile(proc, offset, config.bytes_per_step);
  }
  *last_done = std::max(*last_done, env.now());
}
}  // namespace

VpicResult RunVpicThenBdcats(sim::Environment& env, PfsTarget& pfs,
                             const VpicConfig& config) {
  VpicResult result;
  result.total_bytes = static_cast<uint64_t>(config.processes) *
                       config.timesteps * config.bytes_per_step;
  sim::Time begin = env.now();
  sim::Time last_done = begin;
  for (uint32_t p = 0; p < config.processes; ++p) {
    env.Spawn(VpicWriter(env, pfs, p, config, &last_done));
  }
  env.Run();
  result.write_makespan = last_done - begin;

  begin = env.now();
  last_done = begin;
  for (uint32_t p = 0; p < config.processes; ++p) {
    env.Spawn(BdcatsReader(env, pfs, p, config, &last_done));
  }
  env.Run();
  result.read_makespan = last_done - begin;
  return result;
}

}  // namespace labstor::workload
