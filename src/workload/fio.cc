#include "workload/fio.h"

#include <algorithm>
#include <memory>

#include "common/rng.h"

namespace labstor::workload {

namespace {

struct JobState {
  FioStats* stats;
  sim::Time start = 0;
  sim::Time deadline = 0;  // 0 = none
};

sim::Task<void> IoLoop(sim::Environment& env, BlockTarget& target,
                       const FioJob job, uint32_t thread, uint32_t lane,
                       uint64_t quota_ops, std::shared_ptr<JobState> state) {
  Rng rng(job.seed * 0x9E3779B9u + thread * 131u + lane * 31u + 7u);
  const uint64_t base = static_cast<uint64_t>(thread) * job.span_per_thread;
  const uint64_t slots = job.span_per_thread / job.request_size;
  uint64_t sequential_cursor = lane * (slots / (job.iodepth == 0 ? 1 : job.iodepth));
  for (uint64_t i = 0; quota_ops == 0 || i < quota_ops; ++i) {
    if (state->deadline != 0 && env.now() >= state->deadline) break;
    uint64_t slot;
    if (job.random) {
      slot = rng.Uniform(slots);
    } else {
      slot = sequential_cursor++ % slots;
    }
    const uint64_t offset = base + slot * job.request_size;
    const sim::Time t0 = env.now();
    co_await target.Io(job.op, thread, offset, job.request_size);
    state->stats->latency.Record(env.now() - t0);
    ++state->stats->ops;
    state->stats->bytes += job.request_size;
    state->stats->last_completion = std::max(state->stats->last_completion, env.now());
  }
}

}  // namespace

void SpawnFio(sim::Environment& env, BlockTarget& target, const FioJob& job,
              FioStats* stats) {
  auto state = std::make_shared<JobState>(JobState{stats, env.now(), 0});
  if (job.duration != 0) state->deadline = env.now() + job.duration;
  const uint32_t depth = job.iodepth == 0 ? 1 : job.iodepth;
  // Quota is split across the lanes of a thread.
  uint64_t quota_ops = 0;
  if (job.bytes_per_thread != 0) {
    quota_ops = job.bytes_per_thread / job.request_size / depth;
    if (quota_ops == 0) quota_ops = 1;
  }
  for (uint32_t t = 0; t < job.threads; ++t) {
    for (uint32_t lane = 0; lane < depth; ++lane) {
      env.Spawn(IoLoop(env, target, job, t, lane, quota_ops, state));
    }
  }
}

FioStats RunFio(sim::Environment& env, BlockTarget& target, const FioJob& job) {
  FioStats stats;
  SpawnFio(env, target, job, &stats);
  const sim::Time begin = env.now();
  env.Run();
  stats.makespan = stats.ops == 0 ? 0 : stats.last_completion - begin;
  return stats;
}

}  // namespace labstor::workload
