// FIO-style synthetic block workload generator (the paper uses FIO
// 3.28 for the storage-API, orchestrator, and scheduler evaluations).
// Closed-loop: `threads` clients, each keeping `iodepth` requests in
// flight until its quota (bytes or virtual duration) is met.
#pragma once

#include "common/histogram.h"
#include "sim/environment.h"
#include "workload/target.h"

namespace labstor::workload {

struct FioJob {
  simdev::IoOp op = simdev::IoOp::kWrite;
  bool random = true;
  uint64_t request_size = 4096;
  uint32_t iodepth = 1;
  uint32_t threads = 1;
  // Stop condition per thread: whichever of these is set (bytes first).
  uint64_t bytes_per_thread = 0;
  sim::Time duration = 0;
  // Offset space each thread works within (regions are disjoint).
  uint64_t span_per_thread = 1ull << 30;
  uint64_t seed = 1;
};

struct FioStats {
  Histogram latency;  // per-request, ns
  uint64_t ops = 0;
  uint64_t bytes = 0;
  sim::Time makespan = 0;
  // Absolute virtual time of the last client-visible completion;
  // excludes background work (async log flushes) that drains after.
  sim::Time last_completion = 0;

  double Iops() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(ops) /
                               (static_cast<double>(makespan) / 1e9);
  }
  double BandwidthMBps() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(bytes) /
                               (static_cast<double>(makespan) / 1e9) / 1e6;
  }
};

// Runs the job to completion on `env` (drives env.Run() itself; the
// environment must be otherwise idle).
FioStats RunFio(sim::Environment& env, BlockTarget& target, const FioJob& job);

// Spawn-only variant for benches that co-run several jobs in one
// environment: results land in `stats` after env.Run(). The caller
// sets stats->makespan.
void SpawnFio(sim::Environment& env, BlockTarget& target, const FioJob& job,
              FioStats* stats);

}  // namespace labstor::workload
