// LABIOS worker model (Fig. 9b): the distributed object store's
// storage workers persist "labels". The backend either translates each
// label to a UNIX file (open-seek-write-close over a kernel FS) or
// issues a single LabKVS put — the syscall-count difference the figure
// measures.
#pragma once

#include "common/histogram.h"
#include "sim/environment.h"
#include "workload/target.h"

namespace labstor::workload {

struct LabiosResult {
  uint64_t labels = 0;
  uint64_t bytes = 0;
  sim::Time makespan = 0;  // through the last client-visible completion
  sim::Time last_completion = 0;
  Histogram latency;

  double LabelsPerSec() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(labels) /
                               (static_cast<double>(makespan) / 1e9);
  }
  double BandwidthMBps() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(bytes) /
                               (static_cast<double>(makespan) / 1e9) / 1e6;
  }
};

// `threads` workers each store `labels_per_thread` labels of
// `label_size` bytes. Drives env.Run().
LabiosResult RunLabiosWorker(sim::Environment& env, LabelTarget& target,
                             uint32_t threads, uint64_t labels_per_thread,
                             uint64_t label_size);

}  // namespace labstor::workload
