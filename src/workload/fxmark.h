// FxMark-style metadata microbenchmark (the paper's Fig. 7 workload:
// per-thread private-directory file creation, "MWCM"-like).
#pragma once

#include "common/histogram.h"
#include "sim/environment.h"
#include "workload/target.h"

namespace labstor::workload {

struct FxmarkResult {
  uint64_t ops = 0;
  sim::Time makespan = 0;  // through the last client-visible completion
  sim::Time last_completion = 0;
  Histogram latency;

  double OpsPerSec() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(ops) /
                               (static_cast<double>(makespan) / 1e9);
  }
};

// `threads` clients each create `files_per_thread` files as fast as
// the target admits. Drives env.Run().
FxmarkResult RunFxmarkCreate(sim::Environment& env, FsTarget& target,
                             uint32_t threads, uint64_t files_per_thread);

}  // namespace labstor::workload
