#include "workload/calibrated.h"

#include <cmath>
#include <memory>

namespace labstor::workload {
namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

uint64_t FnvFold(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

// Per-stream harness state. The arrival generator owns the gap RNG
// (seeded from opts.seed); the request-parameter RNG is a separate
// per-stream stream so the WHAT draws never perturb the WHEN draws.
struct StreamState {
  Rng param_rng{1};
  // Pre-flipped so the first BurstFactor() advance lands every stream
  // in the QUIET state (state_until starts expired).
  bool bursty = true;
  sim::Time state_until = 0;
  uint64_t digest = kFnvOffset;
  uint64_t bursts_entered = 0;
};

struct Shared {
  CalibratedProfile profile;
  CalibratedStats* stats = nullptr;
  std::vector<StreamState> streams;
  telemetry::Counter* issued_counter = nullptr;
  telemetry::Counter* class_counters[3] = {nullptr, nullptr, nullptr};
  telemetry::Counter* failed_counter = nullptr;
};

bool BurstsEnabled(const CalibratedProfile& p) {
  return p.burst_multiplier > 1.0 && p.mean_burst > 0 && p.mean_quiet > 0;
}

// Advance the on/off state machine past `now`, then report the rate
// multiplier in effect. Holding times are exponential draws from the
// stream's gap RNG (deterministic: the issue loop is the only caller
// and runs strictly sequentially per stream).
double BurstFactor(const CalibratedProfile& p, StreamState& st, sim::Time now,
                   Rng& rng) {
  if (!BurstsEnabled(p)) return 1.0;
  while (now >= st.state_until) {
    st.bursty = !st.bursty;
    const double mean = static_cast<double>(st.bursty ? p.mean_burst
                                                      : p.mean_quiet);
    const double hold = rng.Exponential(mean);
    st.state_until += std::max<sim::Time>(1, static_cast<sim::Time>(hold));
    if (st.bursty) ++st.bursts_entered;
  }
  return st.bursty ? p.burst_multiplier : 1.0;
}

sim::Task<void> RunOne(sim::Environment& env, const CalibratedOpFn& op,
                       Shared* shared, uint32_t stream,
                       const CalibratedRequest req) {
  CalibratedStats* stats = shared->stats;
  const sim::Time t0 = env.now();
  const Status st = co_await op(req);
  const sim::Time latency = env.now() - t0;
  if (!st.ok()) {
    ++stats->failed_ops;
    if (shared->failed_counter != nullptr) shared->failed_counter->Inc();
  }
  switch (req.cls) {
    case OpClass::kDataRead:
      ++stats->data_reads;
      stats->bytes_read += req.size_bytes;
      stats->read_latency.Record(latency);
      break;
    case OpClass::kDataWrite:
      ++stats->data_writes;
      stats->bytes_written += req.size_bytes;
      stats->write_latency.Record(latency);
      break;
    case OpClass::kMetadata:
      ++stats->metadata_ops;
      stats->meta_latency.Record(latency);
      break;
  }
  (void)stream;
}

}  // namespace

const char* OpClassName(OpClass cls) {
  switch (cls) {
    case OpClass::kDataRead: return "data_read";
    case OpClass::kDataWrite: return "data_write";
    case OpClass::kMetadata: return "metadata";
  }
  return "?";
}

const char* MetaOpName(MetaOp op) {
  switch (op) {
    case MetaOp::kCreate: return "create";
    case MetaOp::kStat: return "stat";
    case MetaOp::kRemove: return "remove";
  }
  return "?";
}

Status CalibratedProfile::Validate() const {
  if (sizes.empty()) return Status::InvalidArgument("empty size mixture");
  double total = 0;
  for (const SizeBin& bin : sizes) {
    if (bin.bytes == 0) return Status::InvalidArgument("zero-byte size bin");
    if (bin.weight < 0) return Status::InvalidArgument("negative bin weight");
    total += bin.weight;
  }
  if (total <= 0) return Status::InvalidArgument("all-zero bin weights");
  if (metadata_fraction < 0 || metadata_fraction > 1 || read_fraction < 0 ||
      read_fraction > 1 || meta_create_fraction < 0 ||
      meta_stat_fraction < 0 ||
      meta_create_fraction + meta_stat_fraction > 1) {
    return Status::InvalidArgument("op-mix fraction out of range");
  }
  if (diurnal_amplitude < 0 || diurnal_amplitude >= 1) {
    return Status::InvalidArgument("diurnal amplitude must be in [0,1)");
  }
  return Status::Ok();
}

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kReadHeavy: return "read-heavy";
    case Scenario::kWriteBurst: return "write-burst";
    case Scenario::kMetadataStorm: return "metadata-storm";
    case Scenario::kMixedDiurnal: return "mixed-diurnal";
  }
  return "?";
}

// Preset parameters, grounded in the IO500 submission analysis
// ("A Treasure Trove of Performance", PAPERS.md): small 4K-aligned
// transfers dominate op counts across submissions while a thin tail of
// multi-MB bulk transfers carries most of the bytes (ior-easy vs
// ior-hard axis); metadata ops (mdtest create/stat/remove) are a large
// share of total requests on real systems; and measured arrival
// processes are bursty, not Poisson — hence the on/off modulation.
// Periods are scaled to DES milliseconds (a "day" compressed to tens
// of ms) so benches finish; ratios, not absolute times, carry the
// calibration.
CalibratedProfile ProfileFor(Scenario s) {
  CalibratedProfile p;
  p.name = ScenarioName(s);
  switch (s) {
    case Scenario::kReadHeavy:
      // ior-easy-read-like with background metadata: 4K-heavy mixture,
      // thin 1M/16M tail; mild bursts.
      p.sizes = {{4096, 0.55},    {16384, 0.18},    {65536, 0.12},
                 {262144, 0.08},  {1 << 20, 0.05},  {16 << 20, 0.02}};
      p.metadata_fraction = 0.15;
      p.read_fraction = 0.90;
      p.burst_multiplier = 2.0;
      p.mean_burst = 2 * sim::kMs;
      p.mean_quiet = 8 * sim::kMs;
      break;
    case Scenario::kWriteBurst:
      // Checkpoint-style: bulk-heavy sizes, strongly bursty arrivals
      // (short ON states at 8x rate), writes dominate.
      p.sizes = {{4096, 0.25},    {65536, 0.15},   {262144, 0.20},
                 {1 << 20, 0.30}, {16 << 20, 0.10}};
      p.metadata_fraction = 0.08;
      p.read_fraction = 0.10;
      p.burst_multiplier = 8.0;
      p.mean_burst = 1 * sim::kMs;
      p.mean_quiet = 6 * sim::kMs;
      break;
    case Scenario::kMetadataStorm:
      // mdtest-hard-like: ops are mostly create/stat/remove; the rare
      // data op is small.
      p.sizes = {{4096, 0.90}, {16384, 0.10}};
      p.metadata_fraction = 0.80;
      p.read_fraction = 0.50;
      p.meta_create_fraction = 0.45;
      p.meta_stat_fraction = 0.35;
      p.burst_multiplier = 4.0;
      p.mean_burst = 1 * sim::kMs;
      p.mean_quiet = 4 * sim::kMs;
      break;
    case Scenario::kMixedDiurnal:
      // Balanced mix riding a strong diurnal envelope (the IO500-site
      // day/night load swing, compressed to a 20ms period).
      p.sizes = {{4096, 0.50},   {65536, 0.20},   {262144, 0.15},
                 {1 << 20, 0.10}, {16 << 20, 0.05}};
      p.metadata_fraction = 0.30;
      p.read_fraction = 0.60;
      p.burst_multiplier = 2.0;
      p.mean_burst = 2 * sim::kMs;
      p.mean_quiet = 6 * sim::kMs;
      p.diurnal_amplitude = 0.8;
      p.diurnal_period = 20 * sim::kMs;
      break;
  }
  return p;
}

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario> kAll = {
      Scenario::kReadHeavy, Scenario::kWriteBurst, Scenario::kMetadataStorm,
      Scenario::kMixedDiurnal};
  return kAll;
}

uint64_t SampleSize(const CalibratedProfile& profile, Rng& rng) {
  double total = 0;
  for (const SizeBin& bin : profile.sizes) total += bin.weight;
  double u = rng.NextDouble() * total;
  for (const SizeBin& bin : profile.sizes) {
    u -= bin.weight;
    if (u < 0) return bin.bytes;
  }
  return profile.sizes.back().bytes;
}

CalibratedRequest DrawRequest(const CalibratedProfile& profile,
                              uint32_t stream, uint64_t index, Rng& rng) {
  CalibratedRequest req;
  req.stream = stream;
  req.index = index;
  if (rng.NextDouble() < profile.metadata_fraction) {
    req.cls = OpClass::kMetadata;
    const double u = rng.NextDouble();
    req.meta = u < profile.meta_create_fraction ? MetaOp::kCreate
               : u < profile.meta_create_fraction + profile.meta_stat_fraction
                   ? MetaOp::kStat
                   : MetaOp::kRemove;
    req.size_bytes = 0;
  } else {
    req.cls = rng.NextDouble() < profile.read_fraction ? OpClass::kDataRead
                                                       : OpClass::kDataWrite;
    req.size_bytes = SampleSize(profile, rng);
  }
  return req;
}

double DiurnalFactor(const CalibratedProfile& profile, sim::Time now) {
  if (profile.diurnal_amplitude <= 0 || profile.diurnal_period == 0) {
    return 1.0;
  }
  const double phase = 2.0 * M_PI * static_cast<double>(now) /
                       static_cast<double>(profile.diurnal_period);
  return 1.0 + profile.diurnal_amplitude * std::sin(phase);
}

CalibratedStats RunCalibrated(sim::Environment& env,
                              const CalibratedOptions& opts,
                              const CalibratedProfile& profile,
                              const CalibratedOpFn& op) {
  CalibratedStats stats;
  if (!profile.Validate().ok() || opts.streams == 0) return stats;

  auto shared = std::make_shared<Shared>();
  shared->profile = profile;
  shared->stats = &stats;
  shared->streams.resize(opts.streams);
  for (uint32_t s = 0; s < opts.streams; ++s) {
    // Distinct per-stream parameter streams, independent of the
    // arrival-gap streams arrival.cc derives from the same seed.
    shared->streams[s].param_rng.Seed(opts.seed ^
                                      (0xD1B54A32D192ED03ULL * (s + 1)));
  }
  if (opts.telemetry != nullptr) {
    auto& m = opts.telemetry->metrics();
    const std::string prefix = "workload.calibrated." + profile.name;
    shared->issued_counter = m.GetCounter(prefix + ".issued");
    shared->class_counters[0] = m.GetCounter(prefix + ".data_read");
    shared->class_counters[1] = m.GetCounter(prefix + ".data_write");
    shared->class_counters[2] = m.GetCounter(prefix + ".metadata");
    shared->failed_counter = m.GetCounter(prefix + ".failed");
  }

  // Everything time-dependent (burst state machine, diurnal phase,
  // digest timestamps) runs on harness-relative time, so a setup phase
  // that advanced the DES clock (prepopulation, cluster bring-up)
  // cannot shift the issue sequence: the same seed yields the same
  // digest no matter what ran before.
  const sim::Time t0 = env.now();

  ArrivalOptions aopts;
  aopts.mode = ArrivalMode::kOpenPoisson;
  aopts.streams = opts.streams;
  aopts.ops_per_stream = opts.ops_per_stream;
  aopts.duration = opts.duration;
  aopts.rate_per_stream = opts.rate_per_stream;
  aopts.seed = opts.seed;
  // WHEN: exponential gap at the modulated rate in effect now. The
  // rate is held over one gap (standard MMPP discretization); the
  // state machine catches up before each draw.
  aopts.gap_fn = [shared, t0, base = opts.rate_per_stream](
                     uint32_t stream, sim::Time now, Rng& rng) -> double {
    StreamState& st = shared->streams[stream];
    const sim::Time rel = now - t0;
    const double factor = BurstFactor(shared->profile, st, rel, rng) *
                          DiurnalFactor(shared->profile, rel);
    const double rate = base * std::max(factor, 1e-9);
    return rng.Exponential(1e9 / rate);
  };

  // WHAT: draw the request from the stream's parameter RNG at issue,
  // fingerprint it, and hand it to the adapter. The fold is per-stream
  // (combined below), so cross-stream DES interleaving cannot affect
  // the digest.
  const ArrivalOp arrival_op = [&env, &op, shared, t0](
                                   uint32_t stream,
                                   uint64_t index) -> sim::Task<void> {
    StreamState& st = shared->streams[stream];
    const CalibratedRequest req =
        DrawRequest(shared->profile, stream, index, st.param_rng);
    uint64_t h = st.digest;
    h = FnvFold(h, req.index);
    h = FnvFold(h, static_cast<uint64_t>(req.cls));
    h = FnvFold(h, static_cast<uint64_t>(req.meta));
    h = FnvFold(h, req.size_bytes);
    h = FnvFold(h, env.now() - t0);
    st.digest = h;
    if (shared->issued_counter != nullptr) {
      shared->issued_counter->Inc();
      shared->class_counters[static_cast<size_t>(req.cls)]->Inc();
    }
    return RunOne(env, op, shared.get(), stream, req);
  };

  stats.arrivals = RunArrivals(env, aopts, arrival_op);

  uint64_t digest = kFnvOffset;
  for (const StreamState& st : shared->streams) {
    digest = FnvFold(digest, st.digest);
    stats.bursts_entered += st.bursts_entered;
  }
  stats.issue_digest = digest;
  return stats;
}

}  // namespace labstor::workload
