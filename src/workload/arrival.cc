#include "workload/arrival.h"

#include <algorithm>

#include "common/rng.h"

namespace labstor::workload {
namespace {

void RecordCompletion(sim::Environment& env, ArrivalStats* stats,
                      uint32_t stream, sim::Time t0) {
  const sim::Time now = env.now();
  stats->latency.Record(now - t0);
  stats->per_stream[stream].Record(now - t0);
  ++stats->completed;
  stats->last_completion = std::max(stats->last_completion, now);
}

sim::Task<void> ClosedLoop(sim::Environment& env, const ArrivalOp& op,
                           uint32_t stream, uint64_t count,
                           ArrivalStats* stats) {
  for (uint64_t i = 0; i < count; ++i) {
    const sim::Time t0 = env.now();
    ++stats->issued;
    co_await op(stream, i);
    RecordCompletion(env, stats, stream, t0);
  }
}

// One spawned process per open-loop arrival: latency includes whatever
// queueing the op experiences behind earlier, still-running arrivals.
sim::Task<void> TimedOp(sim::Environment& env, const ArrivalOp& op,
                        uint32_t stream, uint64_t index,
                        ArrivalStats* stats) {
  const sim::Time t0 = env.now();
  co_await op(stream, index);
  RecordCompletion(env, stats, stream, t0);
}

sim::Task<void> OpenLoop(sim::Environment& env, const ArrivalOp& op,
                         uint32_t stream, const ArrivalOptions opts,
                         ArrivalStats* stats) {
  const sim::Time deadline =
      opts.duration == 0 ? ~sim::Time{0} : env.now() + opts.duration;
  const double mean_gap_ns = 1e9 / opts.rate_per_stream;
  Rng rng(opts.seed + 0x9E3779B97F4A7C15ULL * (stream + 1));
  for (uint64_t i = 0; opts.ops_per_stream == 0 || i < opts.ops_per_stream;
       ++i) {
    const double gap =
        opts.gap_fn ? opts.gap_fn(stream, env.now(), rng)
        : opts.mode == ArrivalMode::kOpenPoisson ? rng.Exponential(mean_gap_ns)
                                                 : mean_gap_ns;
    // A sub-ns exponential draw truncates to 0, which would re-run this
    // loop at the same virtual instant forever under a duration bound:
    // the DES never advances past the deadline. Clamp to 1ns.
    co_await env.Delay(std::max<sim::Time>(1, static_cast<sim::Time>(gap)));
    // Inclusive deadline: an arrival landing exactly on it is late.
    if (env.now() >= deadline) break;
    ++stats->issued;
    env.Spawn(TimedOp(env, op, stream, i, stats));
  }
}

}  // namespace

ArrivalStats RunArrivals(sim::Environment& env, const ArrivalOptions& opts,
                         const ArrivalOp& op) {
  ArrivalStats stats;
  stats.per_stream.resize(opts.streams);
  stats.begin = env.now();
  const bool open = opts.mode != ArrivalMode::kClosed;
  if (open && (opts.rate_per_stream <= 0.0 ||
               (opts.ops_per_stream == 0 && opts.duration == 0))) {
    return stats;  // unbounded or rate-less open loop: nothing to issue
  }
  for (uint32_t s = 0; s < opts.streams; ++s) {
    if (open) {
      env.Spawn(OpenLoop(env, op, s, opts, &stats));
    } else {
      env.Spawn(ClosedLoop(env, op, s, opts.ops_per_stream, &stats));
    }
  }
  env.Run();
  return stats;
}

}  // namespace labstor::workload
