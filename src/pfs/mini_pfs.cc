#include "pfs/mini_pfs.h"

namespace labstor::pfs {

std::string_view LocalStackKindName(LocalStackKind kind) {
  switch (kind) {
    case LocalStackKind::kExt4: return "ext4";
    case LocalStackKind::kLabFsAll: return "labfs_all";
    case LocalStackKind::kLabFsMin: return "labfs_min";
  }
  return "?";
}

MiniPfs::MiniPfs(sim::Environment& env, PfsConfig config,
                 const sim::SoftwareCosts& costs)
    : env_(env), config_(std::move(config)), costs_(costs) {
  const auto make_node = [&](const simdev::DeviceParams& params,
                             uint32_t cores) {
    auto node = std::make_unique<Node>();
    node->device = std::make_unique<simdev::SimDevice>(&env_, params);
    node->cpu = std::make_unique<sim::Resource>(env_, cores);
    node->nic = std::make_unique<sim::Resource>(env_, 1);
    if (config_.local_stack == LocalStackKind::kExt4) {
      node->kfs = std::make_unique<kernelsim::KernelFs>(
          env_, *node->device, kernelsim::KfsKind::kExt4, costs_);
    }
    return node;
  };
  auto meta = make_node(config_.meta_device, config_.meta_server_cores);
  meta_ = std::move(*meta);
  for (uint32_t i = 0; i < config_.num_data_servers; ++i) {
    simdev::DeviceParams p = config_.data_device;
    p.name = "pfs_data" + std::to_string(i);
    data_.push_back(make_node(p, 4));
  }
  std::vector<uint32_t> server_ids(config_.num_data_servers);
  for (uint32_t i = 0; i < config_.num_data_servers; ++i) server_ids[i] = i;
  placement_ = cluster::ShardMap::Build(/*generation=*/1, server_ids,
                                        config_.placement_vnodes);
}

uint32_t MiniPfs::ServerFor(uint32_t client, uint64_t stripe_index) const {
  const std::string key =
      "f" + std::to_string(client) + "/s" + std::to_string(stripe_index);
  return placement_->OwnerOfLabel(key);
}

void MiniPfs::RecordTenantLatency(uint32_t client, sim::Time t0) {
  if (config_.telemetry == nullptr) return;
  if (tenant_hists_.size() <= client) tenant_hists_.resize(client + 1);
  if (tenant_hists_[client] == nullptr) {
    tenant_hists_[client] = config_.telemetry->metrics().GetHistogram(
        "pfs.tenant" + std::to_string(client) + ".latency_ns");
  }
  tenant_hists_[client]->Record(env_.now() - t0, client);
}

sim::Time MiniPfs::LabMetaCost() const {
  // LabStor async metadata path on the metadata server: shared-memory
  // round trip + LabFS hashmap op (+ permissions for Lab-All).
  sim::Time t = costs_.shm_submit + costs_.worker_poll + costs_.fs_metadata +
                costs_.shm_complete;
  if (config_.local_stack == LocalStackKind::kLabFsAll) {
    t += costs_.permission_check;
  }
  return t;
}

sim::Time MiniPfs::LabDataSwCost(uint64_t length) const {
  sim::Time t = costs_.shm_submit + costs_.worker_poll + costs_.fs_metadata +
                costs_.sched_noop + costs_.request_alloc +
                costs_.driver_submit + costs_.shm_complete;
  if (config_.local_stack == LocalStackKind::kLabFsAll) {
    t += costs_.permission_check;
  }
  (void)length;  // zero-copy via shared memory: no per-byte charge
  return t;
}

sim::Task<void> MiniPfs::MetaOp() {
  // An OrangeFS stripe access triggers several metadata sub-ops on the
  // metadata server (dentry walk, dfile/stripe-map lookup, attribute
  // update — the paper counts ~100M metadata ops for ~2.7M stripes).
  constexpr int kSubOps = 3;
  metadata_ops_ += kSubOps;
  // Client <-> metadata server message.
  co_await env_.Delay(config_.net_latency);
  co_await meta_.cpu->Acquire();
  if (config_.local_stack == LocalStackKind::kExt4) {
    for (int i = 0; i < kSubOps; ++i) {
      co_await meta_.kfs->Open();  // kernel path, journal/dentry locked
    }
  } else {
    // One IPC round trip covers the batch; each sub-op is a hashmap
    // operation in LabFS.
    co_await env_.Delay(LabMetaCost() +
                        (kSubOps - 1) * costs_.fs_metadata);
    // Stripe-map mutation logs asynchronously on the metadata NVMe.
    env_.Spawn(meta_.device->WriteTimed(1, 0, 256));
  }
  meta_.cpu->Release();
  co_await env_.Delay(config_.net_latency);
}

sim::Task<void> MiniPfs::NetTransfer(Node& node, uint64_t bytes) {
  co_await env_.Delay(config_.net_latency);
  co_await node.nic->Acquire();
  co_await env_.Delay(
      static_cast<sim::Time>(config_.net_ns_per_byte *
                             static_cast<double>(bytes)));
  node.nic->Release();
}

sim::Task<void> MiniPfs::LocalIo(Node& node, simdev::IoOp op, uint64_t offset,
                                 uint64_t length) {
  if (config_.local_stack == LocalStackKind::kExt4) {
    if (op == simdev::IoOp::kWrite) {
      co_await node.kfs->Write(static_cast<uint32_t>(offset / 4096),
                               offset, length);
    } else {
      co_await node.kfs->Read(static_cast<uint32_t>(offset / 4096), offset,
                              length);
    }
    co_return;
  }
  co_await node.cpu->Acquire();
  co_await env_.Delay(LabDataSwCost(length));
  node.cpu->Release();
  const uint32_t channel =
      static_cast<uint32_t>(offset / config_.stripe_size);
  if (op == simdev::IoOp::kWrite) {
    co_await node.device->WriteTimed(channel, offset, length);
  } else {
    co_await node.device->ReadTimed(channel, offset, length);
  }
}

sim::Task<void> MiniPfs::WriteFile(uint32_t client, uint64_t offset,
                                   uint64_t length) {
  // Each stripe: consult the metadata server, ship bytes to the owning
  // data server, write through its local stack. A client's stripes are
  // issued sequentially (MPI-IO style collective phases provide the
  // cross-client parallelism).
  const sim::Time t0 = env_.now();
  uint64_t remaining = length;
  uint64_t cursor = offset;
  while (remaining > 0) {
    const uint64_t in_stripe = config_.stripe_size - (cursor % config_.stripe_size);
    const uint64_t chunk = std::min(remaining, in_stripe);
    const uint64_t stripe_index = cursor / config_.stripe_size;
    Node& server = *data_[ServerFor(client, stripe_index)];
    co_await MetaOp();
    co_await NetTransfer(server, chunk);
    // Append-allocated placement on the data server.
    const uint64_t local_offset =
        (server.next_block++ % (server.device->params().capacity_bytes /
                                config_.stripe_size)) *
        config_.stripe_size;
    co_await LocalIo(server, simdev::IoOp::kWrite, local_offset, chunk);
    cursor += chunk;
    remaining -= chunk;
  }
  RecordTenantLatency(client, t0);
}

sim::Task<void> MiniPfs::ReadFile(uint32_t client, uint64_t offset,
                                  uint64_t length) {
  const sim::Time t0 = env_.now();
  uint64_t remaining = length;
  uint64_t cursor = offset;
  while (remaining > 0) {
    const uint64_t in_stripe = config_.stripe_size - (cursor % config_.stripe_size);
    const uint64_t chunk = std::min(remaining, in_stripe);
    const uint64_t stripe_index = cursor / config_.stripe_size;
    Node& server = *data_[ServerFor(client, stripe_index)];
    co_await MetaOp();
    const uint64_t local_offset =
        (stripe_index % (server.device->params().capacity_bytes /
                         config_.stripe_size)) *
        config_.stripe_size;
    co_await LocalIo(server, simdev::IoOp::kRead, local_offset, chunk);
    co_await NetTransfer(server, chunk);
    cursor += chunk;
    remaining -= chunk;
  }
  RecordTenantLatency(client, t0);
}

}  // namespace labstor::pfs
