// MiniPfs: an OrangeFS-like striped parallel filesystem over simulated
// storage nodes (Fig. 9a's subject).
//
// Topology from the paper: one metadata server (NVMe-backed) managing
// stripe locations, N data servers holding 64KB stripes. Every stripe
// access consults the metadata server (the ~100M metadata ops the
// paper attributes 4-6 seconds to); data moves over a per-server NIC
// and lands through the node's *local I/O stack* — which is exactly
// what LabStor customizes. Three local-stack flavors:
//   * kExt4      — the kernel path (KernelFs model);
//   * kLabFsAll  — LabStor async stack with permissions;
//   * kLabFsMin  — LabStor async stack without permissions.
#pragma once

#include <memory>
#include <vector>

#include "cluster/shard_map.h"
#include "kernelsim/kernel_fs.h"
#include "sim/cost_model.h"
#include "sim/environment.h"
#include "simdev/sim_device.h"
#include "telemetry/telemetry.h"
#include "workload/target.h"

namespace labstor::pfs {

enum class LocalStackKind : uint8_t { kExt4, kLabFsAll, kLabFsMin };

std::string_view LocalStackKindName(LocalStackKind kind);

struct PfsConfig {
  uint32_t num_data_servers = 4;
  uint64_t stripe_size = 64 * 1024;
  // Interconnect: per-message latency plus serialized per-server NIC
  // bandwidth (~0.1 ns/B = 10 GbE-class per node).
  sim::Time net_latency = 20 * sim::kUs;
  double net_ns_per_byte = 0.1;
  uint32_t meta_server_cores = 8;
  simdev::DeviceParams meta_device = simdev::DeviceParams::NvmeP3700();
  simdev::DeviceParams data_device = simdev::DeviceParams::SasHdd();
  LocalStackKind local_stack = LocalStackKind::kExt4;
  // Stripe placement rides the cluster ShardMap (consistent hashing
  // over "f<client>/s<stripe>" keys) instead of round-robin modulo, so
  // a PFS deployment and a LabStor cluster agree on what "placement"
  // means — and adding a data server moves only ~1/N of the stripes.
  uint32_t placement_vnodes = cluster::ShardMap::kDefaultVirtualNodes;
  // Optional: per-tenant (= client rank) whole-op latency histograms
  // "pfs.tenant<t>.latency_ns" for SLO tracking.
  telemetry::Telemetry* telemetry = nullptr;
};

class MiniPfs final : public workload::PfsTarget {
 public:
  MiniPfs(sim::Environment& env, PfsConfig config,
          const sim::SoftwareCosts& costs = sim::DefaultCosts());

  sim::Task<void> WriteFile(uint32_t client, uint64_t offset,
                            uint64_t length) override;
  sim::Task<void> ReadFile(uint32_t client, uint64_t offset,
                           uint64_t length) override;

  uint64_t metadata_ops() const { return metadata_ops_; }
  const cluster::ShardMap& placement() const { return *placement_; }
  // Data-server index a given client/stripe pair lands on.
  uint32_t ServerFor(uint32_t client, uint64_t stripe_index) const;

 private:
  struct Node {
    std::unique_ptr<simdev::SimDevice> device;
    std::unique_ptr<sim::Resource> cpu;
    std::unique_ptr<sim::Resource> nic;
    std::unique_ptr<kernelsim::KernelFs> kfs;  // kExt4 local stacks
    uint64_t next_block = 0;                   // simple append allocator
  };

  // One stripe-map lookup/insert on the metadata server.
  sim::Task<void> MetaOp();
  // Network hop to/from a node.
  sim::Task<void> NetTransfer(Node& node, uint64_t bytes);
  // Stripe I/O through the node's local stack.
  sim::Task<void> LocalIo(Node& node, simdev::IoOp op, uint64_t offset,
                          uint64_t length);
  sim::Time LabMetaCost() const;
  sim::Time LabDataSwCost(uint64_t length) const;
  void RecordTenantLatency(uint32_t client, sim::Time t0);

  sim::Environment& env_;
  PfsConfig config_;
  const sim::SoftwareCosts& costs_;
  Node meta_;
  std::vector<std::unique_ptr<Node>> data_;
  std::shared_ptr<const cluster::ShardMap> placement_;
  std::vector<telemetry::LatencyHistogram*> tenant_hists_;
  uint64_t metadata_ops_ = 0;
};

}  // namespace labstor::pfs
