// LabMod instance identifiers. The paper uses "human-readable UUIDs" —
// unique instance names chosen by stack authors — plus machine ids for
// registry bookkeeping. Uuid is the 128-bit machine id; instance names
// are plain strings layered on top by the Module Registry.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace labstor {

struct Uuid {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Uuid&) const = default;
  bool IsNil() const { return hi == 0 && lo == 0; }

  // Canonical 8-4-4-4-12 lowercase hex form.
  std::string ToString() const;
  static Result<Uuid> Parse(std::string_view text);

  // Random (version 4) UUID from the given RNG words.
  static Uuid FromRandom(uint64_t a, uint64_t b);

  // Deterministic UUID derived from a name (FNV-1a based; version 5
  // style). Stable across runs so stacks referencing mods by name
  // resolve identically.
  static Uuid FromName(std::string_view name);
};

struct UuidHash {
  size_t operator()(const Uuid& id) const {
    return std::hash<uint64_t>()(id.hi) ^ (std::hash<uint64_t>()(id.lo) * 0x9E3779B97F4A7C15ULL);
  }
};

}  // namespace labstor
