// Bounded lock-free rings used as the transport inside Queue Pairs.
//
// SpscRing: single-producer/single-consumer, the fast path for
// "ordered" queues which the paper requires to be drained by exactly
// one worker.
//
// MpmcRing: bounded multi-producer/multi-consumer ring (Vyukov-style
// sequence counters), used for "unordered" queues that any worker may
// drain and for the client-side submission of independent requests.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <vector>

namespace labstor {

// Fixed 64 rather than std::hardware_destructive_interference_size:
// the latter is ABI-unstable across compiler versions/tuning flags.
inline constexpr size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity_pow2) : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {
    assert(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0 &&
           "capacity must be a power of two");
  }

  bool TryPush(T value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_cache_;
    if (head - tail > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> TryPop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  // Pop up to `max` values into `out`; returns how many were taken.
  // One tail publish for the whole batch amortizes the release store
  // and the head refresh across every value drained.
  size_t TryPopBatch(T* out, size_t max) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t available = head_cache_ - tail;
    if (available < max) {
      // Refresh whenever the cached head can't fill the whole batch:
      // same acquire-load count as refreshing only on empty, but a
      // drain never returns a short batch while values are sitting
      // published in the ring.
      head_cache_ = head_.load(std::memory_order_acquire);
      available = head_cache_ - tail;
      if (available == 0) return 0;
    }
    const size_t n = available < max ? available : max;
    for (size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  size_t SizeApprox() const {
    // Load tail before head: head only grows, so a later head load can
    // never be behind the earlier tail load. The reverse order let a
    // concurrent pop land between the loads and underflow the unsigned
    // subtraction into a near-SIZE_MAX "size". Clamp as a backstop.
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }
  bool EmptyApprox() const { return SizeApprox() == 0; }
  size_t capacity() const { return mask_ + 1; }

 private:
  const size_t mask_;
  std::vector<T> slots_;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  size_t tail_cache_ = 0;  // producer-local view of tail
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  size_t head_cache_ = 0;  // consumer-local view of head
};

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(size_t capacity_pow2) : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {
    assert(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0 &&
           "capacity must be a power of two");
    for (size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(T value) {
    size_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const size_t seq = slot.sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  std::optional<T> TryPop() {
    size_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Slot& slot = slots_[pos & mask_];
      const size_t seq = slot.sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          T value = std::move(slot.value);
          slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return value;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Pop up to `max` values into `out`; returns how many were taken.
  // A consumer claims the whole run of ready slots with ONE tail CAS:
  // slots it claims cannot be touched by producers (a filled slot's
  // sequence only advances when its consumer releases it), so the
  // values stay valid between the readiness scan and the copy-out.
  size_t TryPopBatch(T* out, size_t max) {
    if (max == 0) return 0;
    while (true) {
      size_t pos = tail_.load(std::memory_order_relaxed);
      size_t n = 0;
      while (n < max) {
        const Slot& slot = slots_[(pos + n) & mask_];
        const size_t seq = slot.sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) -
                static_cast<intptr_t>(pos + n + 1) != 0) {
          break;  // not (yet) filled for this position — run ends here
        }
        ++n;
      }
      if (n == 0) {
        const Slot& slot = slots_[pos & mask_];
        const size_t seq = slot.sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
          return 0;  // empty
        }
        continue;  // lost the race to another consumer; re-read tail
      }
      if (tail_.compare_exchange_weak(pos, pos + n,
                                      std::memory_order_relaxed)) {
        for (size_t i = 0; i < n; ++i) {
          Slot& slot = slots_[(pos + i) & mask_];
          out[i] = std::move(slot.value);
          slot.sequence.store(pos + i + mask_ + 1, std::memory_order_release);
        }
        return n;
      }
    }
  }

  // Push up to `n` values from `in`; returns how many were accepted
  // (0 when full). Mirrors TryPopBatch: one head CAS claims the run of
  // free slots, then each slot is filled and released individually.
  size_t TryPushBatch(T* in, size_t n) {
    if (n == 0) return 0;
    while (true) {
      size_t pos = head_.load(std::memory_order_relaxed);
      size_t k = 0;
      while (k < n) {
        const Slot& slot = slots_[(pos + k) & mask_];
        const size_t seq = slot.sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + k) != 0) {
          break;  // slot still owned by a lagging consumer — run ends
        }
        ++k;
      }
      if (k == 0) {
        const Slot& slot = slots_[pos & mask_];
        const size_t seq = slot.sequence.load(std::memory_order_acquire);
        if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos) < 0) {
          return 0;  // full
        }
        continue;  // lost the race to another producer; re-read head
      }
      if (head_.compare_exchange_weak(pos, pos + k,
                                      std::memory_order_relaxed)) {
        for (size_t i = 0; i < k; ++i) {
          Slot& slot = slots_[(pos + i) & mask_];
          slot.value = std::move(in[i]);
          slot.sequence.store(pos + i + 1, std::memory_order_release);
        }
        return k;
      }
    }
  }

  size_t SizeApprox() const {
    // Tail first for the same reason as SpscRing::SizeApprox: head
    // never moves backwards, so this order cannot observe tail > head.
    const size_t tail = tail_.load(std::memory_order_acquire);
    const size_t head = head_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }
  bool EmptyApprox() const { return SizeApprox() == 0; }
  size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  const size_t mask_;
  std::vector<Slot> slots_;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
};

}  // namespace labstor
