// Dynamic bitmap used by block allocators. Optimized for the patterns
// allocators need: find-first-zero scans, range set/clear, popcount.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace labstor {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) { Resize(bits); }

  void Resize(size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  size_t size() const { return bits_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void SetRange(size_t begin, size_t count) {
    for (size_t i = begin; i < begin + count; ++i) Set(i);
  }
  void ClearRange(size_t begin, size_t count) {
    for (size_t i = begin; i < begin + count; ++i) Clear(i);
  }

  // Index of the first zero bit at or after `from`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindFirstZero(size_t from = 0) const {
    if (from >= bits_) return npos;
    size_t word_idx = from >> 6;
    // Mask off bits below `from` in the first word.
    uint64_t w = ~words_[word_idx] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        const size_t bit = word_idx * 64 +
                           static_cast<size_t>(__builtin_ctzll(w));
        return bit < bits_ ? bit : npos;
      }
      if (++word_idx >= words_.size()) return npos;
      w = ~words_[word_idx];
    }
  }

  // First run of `count` consecutive zero bits at or after `from`.
  size_t FindZeroRun(size_t count, size_t from = 0) const {
    size_t start = FindFirstZero(from);
    while (start != npos && start + count <= bits_) {
      size_t run = 1;
      while (run < count && !Test(start + run)) ++run;
      if (run == count) return start;
      start = FindFirstZero(start + run);
    }
    return npos;
  }

  size_t CountSet() const {
    size_t n = 0;
    for (const uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }
  size_t CountZero() const { return bits_ - CountSet(); }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace labstor
