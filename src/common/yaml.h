// YAML-subset parser for LabStack specifications and the Runtime
// configuration file. The paper distributes both as YAML; this repo has
// no external dependencies, so we implement the subset those files
// need:
//
//   - block mappings and block sequences nested by indentation
//   - "- " list items, including inline "key: value" after the dash
//   - flow sequences: [a, b, c]
//   - scalars: strings (bare / 'single' / "double"), integers, floats,
//     booleans (true/false/yes/no/on/off), null (~ / null / empty)
//   - '#' comments and blank lines
//
// Anchors, aliases, multi-document streams, and block scalars are out
// of scope and rejected with a parse error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace labstor::yaml {

class Node;
using NodePtr = std::shared_ptr<Node>;

enum class NodeType { kNull, kScalar, kSequence, kMapping };

class Node {
 public:
  Node() : type_(NodeType::kNull) {}
  explicit Node(std::string scalar)
      : type_(NodeType::kScalar), scalar_(std::move(scalar)) {}

  static NodePtr MakeNull() { return std::make_shared<Node>(); }
  static NodePtr MakeScalar(std::string s) {
    return std::make_shared<Node>(std::move(s));
  }
  static NodePtr MakeSequence() {
    auto n = std::make_shared<Node>();
    n->type_ = NodeType::kSequence;
    return n;
  }
  static NodePtr MakeMapping() {
    auto n = std::make_shared<Node>();
    n->type_ = NodeType::kMapping;
    return n;
  }

  NodeType type() const { return type_; }
  bool IsNull() const { return type_ == NodeType::kNull; }
  bool IsScalar() const { return type_ == NodeType::kScalar; }
  bool IsSequence() const { return type_ == NodeType::kSequence; }
  bool IsMapping() const { return type_ == NodeType::kMapping; }

  // --- scalar accessors ---
  const std::string& scalar() const { return scalar_; }
  Result<std::string> AsString() const;
  Result<int64_t> AsInt() const;
  Result<uint64_t> AsUint() const;
  Result<double> AsDouble() const;
  Result<bool> AsBool() const;

  // --- sequence accessors ---
  const std::vector<NodePtr>& items() const { return items_; }
  size_t size() const {
    return type_ == NodeType::kSequence ? items_.size() : entries_.size();
  }
  void Append(NodePtr child) { items_.push_back(std::move(child)); }

  // --- mapping accessors ---
  // Insertion order is preserved (LabStack DAG vertices are ordered).
  const std::vector<std::pair<std::string, NodePtr>>& entries() const {
    return entries_;
  }
  bool Has(const std::string& key) const;
  // nullptr when absent.
  NodePtr Get(const std::string& key) const;
  void Put(std::string key, NodePtr value);

  // Convenience typed lookups with defaults, for config plumbing.
  std::string GetString(const std::string& key, std::string fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  uint64_t GetUint(const std::string& key, uint64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  std::string Dump(int indent = 0) const;  // re-serialize (for tests)

 private:
  NodeType type_;
  std::string scalar_;
  std::vector<NodePtr> items_;
  std::vector<std::pair<std::string, NodePtr>> entries_;
};

// Parses a document into its root node. Errors carry 1-based line
// numbers in the message.
Result<NodePtr> Parse(std::string_view text);
Result<NodePtr> ParseFile(const std::string& path);

}  // namespace labstor::yaml
