#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

namespace labstor {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

size_t Histogram::BucketFor(uint64_t value) {
  if (value < kExactBuckets) return static_cast<size_t>(value);
  // Value lies in octave [2^msb, 2^(msb+1)); the 4 bits below the
  // leading bit select one of 16 linear sub-buckets.
  const int msb = 63 - __builtin_clzll(value);
  const int shift = msb - 4;
  const auto sub = static_cast<size_t>(value >> shift) & 0xF;
  const auto octave = static_cast<size_t>(msb - 5);
  return kExactBuckets + octave * kSubBucketsPerOctave + sub;
}

uint64_t Histogram::BucketMidpoint(size_t index) {
  if (index < kExactBuckets) return index;
  const size_t rest = index - kExactBuckets;
  const size_t octave = rest / kSubBucketsPerOctave;
  const uint64_t sub = rest % kSubBucketsPerOctave;
  const int msb = static_cast<int>(octave) + 5;
  const int shift = msb - 4;
  const uint64_t lower = (16 + sub) << shift;
  const uint64_t width = 1ULL << shift;
  return lower + width / 2;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t n) {
  if (n == 0) return;
  buckets_[BucketFor(value)] += n;
  count_ += n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const double target_rank = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target_rank) {
      // Clamp the bucket estimate to the recorded extremes so small
      // samples do not report midpoints outside [min, max].
      return std::clamp(BucketMidpoint(i), Min(), Max());
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f min=%llu p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Min()),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace labstor
