// Deterministic, fast PRNG (xoshiro256**) used by workload generators
// and simulations. Benchmarks must be reproducible run-to-run, so all
// randomness flows through explicitly seeded instances of this class.
#pragma once

#include <cmath>
#include <cstdint>

namespace labstor {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to expand the seed into the full state.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponentially distributed with the given mean (for inter-arrival
  // times in open-loop workloads).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  // Bounded Zipf-like selector used to model skewed file popularity in
  // the webserver/webproxy Filebench mixes. Uses the rejection-free
  // approximation of Gray et al. ("Quickly generating billion-record
  // synthetic databases"); theta in (0, 1).
  uint64_t Zipf(uint64_t n, double theta) {
    if (n <= 1) return 0;
    const double zetan = ZetaApprox(n, theta);
    const double alpha = 1.0 / (1.0 - theta);
    const double eta = (1.0 - std::pow(2.0 / static_cast<double>(n),
                                       1.0 - theta)) /
                       (1.0 - ZetaApprox(2, theta) / zetan);
    const double u = NextDouble();
    const double uz = u * zetan;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta)) return 1;
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
    return rank >= n ? n - 1 : rank;
  }

 private:
  static double ZetaApprox(uint64_t n, double theta) {
    // Sample the harmonic sum; exact for small n, approximated by the
    // integral for large n. Popularity skew does not need digit-exact
    // zeta values.
    if (n <= 1024) {
      double sum = 0.0;
      for (uint64_t i = 1; i <= n; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta);
      return sum;
    }
    double sum = 0.0;
    for (uint64_t i = 1; i <= 1024; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta);
    // Integral tail from 1024 to n of x^-theta dx.
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(1024.0, 1.0 - theta)) /
           (1.0 - theta);
    return sum;
  }

  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace labstor
