#include "common/uuid.h"

#include <cstdio>

namespace labstor {

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string Uuid::ToString() const {
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xFFFF),
                static_cast<unsigned>(hi & 0xFFFF),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xFFFFFFFFFFFFULL));
  return buf;
}

Result<Uuid> Uuid::Parse(std::string_view text) {
  if (text.size() != 36) {
    return Status::InvalidArgument("UUID must be 36 characters");
  }
  Uuid id;
  uint64_t* word = &id.hi;
  int nibbles = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (text[i] != '-') {
        return Status::InvalidArgument("UUID missing separator");
      }
      continue;
    }
    const int v = HexValue(text[i]);
    if (v < 0) return Status::InvalidArgument("UUID has non-hex digit");
    *word = (*word << 4) | static_cast<uint64_t>(v);
    if (++nibbles == 16) word = &id.lo;
  }
  return id;
}

Uuid Uuid::FromRandom(uint64_t a, uint64_t b) {
  Uuid id;
  id.hi = (a & ~0xF000ULL) | 0x4000ULL;              // version 4
  id.lo = (b & ~(0x3ULL << 62)) | (0x2ULL << 62);    // RFC 4122 variant
  return id;
}

Uuid Uuid::FromName(std::string_view name) {
  // Two independent FNV-1a passes (different offset bases) give 128
  // well-mixed bits; version bits marked 5 to distinguish from random.
  uint64_t h1 = 0xCBF29CE484222325ULL;
  uint64_t h2 = 0x84222325CBF29CE4ULL;
  for (const char c : name) {
    h1 = (h1 ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
    h2 = (h2 ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
    h2 = (h2 << 13) | (h2 >> 51);
  }
  Uuid id;
  id.hi = (h1 & ~0xF000ULL) | 0x5000ULL;
  id.lo = (h2 & ~(0x3ULL << 62)) | (0x2ULL << 62);
  return id;
}

}  // namespace labstor
