#include "common/logging.h"

#include <cstdio>
#include <cstring>
#include <mutex>

namespace labstor {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::mutex g_log_mutex;
}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel msg_level, const char* file, int line,
                   const std::string& msg) {
  if (static_cast<int>(msg_level) < static_cast<int>(level())) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(msg_level), Basename(file),
               line, msg.c_str());
}

}  // namespace labstor
