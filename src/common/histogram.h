// Log-bucketed latency histogram (HdrHistogram-style) for the bench
// harness: records nanosecond values, reports mean/percentiles. Fixed
// memory, O(1) record, mergeable across workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace labstor {

class Histogram {
 public:
  // Covers the full uint64_t range with ~3% relative bucket error:
  // exact buckets below 32, then 16 linear sub-buckets per octave.
  Histogram();

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double Mean() const;
  uint64_t Min() const { return count_ == 0 ? 0 : min_; }
  uint64_t Max() const { return max_; }
  // p in [0, 100].
  uint64_t Percentile(double p) const;

  std::string Summary() const;  // "n=... mean=... p50=... p99=..."

 private:
  static constexpr size_t kExactBuckets = 32;          // values 0..31, exact
  static constexpr size_t kSubBucketsPerOctave = 16;   // octaves for msb 5..63
  static constexpr size_t kBuckets =
      kExactBuckets + 59 * kSubBucketsPerOctave;

  static size_t BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace labstor
