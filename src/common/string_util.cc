#include "common/string_util.h"

#include <cstdio>

namespace labstor {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && (s[begin] == ' ' || s[begin] == '\t' ||
                              s[begin] == '\r' || s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r' || s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= s.size()) {
    const size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(begin));
      break;
    }
    parts.emplace_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
  return parts;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string NormalizePath(std::string_view path) {
  std::vector<std::string> stack;
  for (const std::string& part : SplitString(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(part);
  }
  std::string out = "/";
  for (size_t i = 0; i < stack.size(); ++i) {
    out += stack[i];
    if (i + 1 < stack.size()) out += '/';
  }
  return out;
}

std::string ParentPath(std::string_view path) {
  const std::string norm = NormalizePath(path);
  if (norm == "/") return "/";
  const size_t pos = norm.rfind('/');
  return pos == 0 ? "/" : norm.substr(0, pos);
}

std::string PathBasename(std::string_view path) {
  const std::string norm = NormalizePath(path);
  if (norm == "/") return "/";
  return norm.substr(norm.rfind('/') + 1);
}

std::vector<std::string> PathComponents(std::string_view path) {
  std::vector<std::string> out;
  for (const std::string& part : SplitString(NormalizePath(path), '/')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

std::string FormatBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace labstor
