#include "common/yaml.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace labstor::yaml {

namespace {

struct Line {
  int indent = 0;
  std::string content;  // trimmed, comment-free
  int number = 0;       // 1-based source line
};

Status ParseError(int line, const std::string& what) {
  return Status::InvalidArgument("yaml line " + std::to_string(line) + ": " +
                                 what);
}

// Strips a '#' comment unless it is inside quotes.
std::string StripComment(std::string_view s) {
  char quote = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
    } else if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return std::string(s.substr(0, i));
    }
  }
  return std::string(s);
}

// Position of the key/value separator ':' outside quotes and flow
// brackets; npos if the line is not a mapping entry.
size_t FindMappingColon(std::string_view s) {
  char quote = 0;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      continue;
    }
    switch (c) {
      case '\'':
      case '"':
        quote = c;
        break;
      case '[':
      case '{':
        ++depth;
        break;
      case ']':
      case '}':
        --depth;
        break;
      case ':':
        if (depth == 0 &&
            (i + 1 == s.size() || s[i + 1] == ' ' || s[i + 1] == '\t')) {
          return i;
        }
        break;
      default:
        break;
    }
  }
  return std::string_view::npos;
}

std::string Unquote(std::string_view s) {
  if (s.size() >= 2 && ((s.front() == '\'' && s.back() == '\'') ||
                        (s.front() == '"' && s.back() == '"'))) {
    std::string out;
    const char q = s.front();
    for (size_t i = 1; i + 1 < s.size(); ++i) {
      if (q == '"' && s[i] == '\\' && i + 2 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += s[i]; break;
        }
      } else {
        out += s[i];
      }
    }
    return out;
  }
  return std::string(s);
}

bool IsNullScalar(std::string_view s) {
  return s.empty() || s == "~" || s == "null" || s == "Null" || s == "NULL";
}

Result<NodePtr> ParseFlowOrScalar(std::string_view text, int line_no);

// Flow sequence "[a, b, [c]]". `text` includes the brackets.
Result<NodePtr> ParseFlowSequence(std::string_view text, int line_no) {
  NodePtr seq = Node::MakeSequence();
  std::string_view inner = text.substr(1, text.size() - 2);
  // Split on commas at depth 0 outside quotes.
  size_t start = 0;
  char quote = 0;
  int depth = 0;
  auto flush = [&](size_t end) -> Status {
    const std::string_view piece = TrimWhitespace(inner.substr(start, end - start));
    if (piece.empty()) return Status::Ok();
    auto child = ParseFlowOrScalar(piece, line_no);
    if (!child.ok()) return child.status();
    seq->Append(*child);
    return Status::Ok();
  };
  for (size_t i = 0; i < inner.size(); ++i) {
    const char c = inner[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
    } else if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
    } else if (c == ',' && depth == 0) {
      LABSTOR_RETURN_IF_ERROR(flush(i));
      start = i + 1;
    }
  }
  LABSTOR_RETURN_IF_ERROR(flush(inner.size()));
  return seq;
}

Result<NodePtr> ParseFlowOrScalar(std::string_view text, int line_no) {
  const std::string_view t = TrimWhitespace(text);
  if (t.size() >= 2 && t.front() == '[' && t.back() == ']') {
    return ParseFlowSequence(t, line_no);
  }
  if (!t.empty() && (t.front() == '{' || t.front() == '&' || t.front() == '*')) {
    return ParseError(line_no, "flow mappings / anchors are not supported");
  }
  if (IsNullScalar(t)) return Node::MakeNull();
  return Node::MakeScalar(Unquote(t));
}

class Parser {
 public:
  explicit Parser(std::string_view text) {
    int number = 0;
    size_t begin = 0;
    while (begin <= text.size()) {
      const size_t end = text.find('\n', begin);
      std::string_view raw = end == std::string_view::npos
                                 ? text.substr(begin)
                                 : text.substr(begin, end - begin);
      ++number;
      std::string stripped = StripComment(raw);
      const std::string_view trimmed = TrimWhitespace(stripped);
      if (!trimmed.empty() && trimmed != "---") {
        int indent = 0;
        while (indent < static_cast<int>(stripped.size()) &&
               stripped[static_cast<size_t>(indent)] == ' ') {
          ++indent;
        }
        lines_.push_back(Line{indent, std::string(trimmed), number});
      }
      if (end == std::string_view::npos) break;
      begin = end + 1;
    }
  }

  Result<NodePtr> ParseDocument() {
    if (lines_.empty()) return Node::MakeNull();
    auto root = ParseBlock(lines_[0].indent);
    if (!root.ok()) return root;
    if (pos_ < lines_.size()) {
      return ParseError(lines_[pos_].number, "unexpected trailing content");
    }
    return root;
  }

 private:
  // Parses the block whose items sit at exactly `indent`.
  Result<NodePtr> ParseBlock(int indent) {
    const Line& first = lines_[pos_];
    if (first.content[0] == '-' &&
        (first.content.size() == 1 || first.content[1] == ' ')) {
      return ParseSequence(indent);
    }
    if (FindMappingColon(first.content) != std::string::npos) {
      return ParseMapping(indent);
    }
    // Single scalar document/value.
    ++pos_;
    return ParseFlowOrScalar(first.content, first.number);
  }

  Result<NodePtr> ParseSequence(int indent) {
    NodePtr seq = Node::MakeSequence();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           lines_[pos_].content[0] == '-' &&
           (lines_[pos_].content.size() == 1 || lines_[pos_].content[1] == ' ')) {
      const Line line = lines_[pos_];
      const std::string_view rest =
          TrimWhitespace(std::string_view(line.content).substr(1));
      if (rest.empty()) {
        // "-" alone: the value is the nested block below.
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          auto child = ParseBlock(lines_[pos_].indent);
          if (!child.ok()) return child;
          seq->Append(*child);
        } else {
          seq->Append(Node::MakeNull());
        }
        continue;
      }
      if (FindMappingColon(rest) != std::string_view::npos) {
        // "- key: value" starts an inline mapping whose further keys
        // are indented to the position after the dash.
        const int item_indent = indent + 2;
        // Rewrite the current line as the first mapping entry and
        // reparse it at item_indent.
        lines_[pos_] = Line{item_indent, std::string(rest), line.number};
        auto child = ParseMapping(item_indent);
        if (!child.ok()) return child;
        seq->Append(*child);
        continue;
      }
      ++pos_;
      auto child = ParseFlowOrScalar(rest, line.number);
      if (!child.ok()) return child;
      seq->Append(*child);
    }
    return seq;
  }

  Result<NodePtr> ParseMapping(int indent) {
    NodePtr map = Node::MakeMapping();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
      const Line line = lines_[pos_];
      if (line.content[0] == '-') break;  // sequence at same indent: parent's
      const size_t colon = FindMappingColon(line.content);
      if (colon == std::string::npos) {
        return ParseError(line.number, "expected 'key: value'");
      }
      const std::string key =
          Unquote(TrimWhitespace(std::string_view(line.content).substr(0, colon)));
      if (key.empty()) return ParseError(line.number, "empty mapping key");
      if (map->Has(key)) {
        return ParseError(line.number, "duplicate key '" + key + "'");
      }
      const std::string_view value_text =
          TrimWhitespace(std::string_view(line.content).substr(colon + 1));
      ++pos_;
      if (!value_text.empty()) {
        auto value = ParseFlowOrScalar(value_text, line.number);
        if (!value.ok()) return value;
        map->Put(key, *value);
        continue;
      }
      // Value is a nested block (possibly a sequence at the same
      // indent, which YAML permits for "key:\n- a\n- b").
      if (pos_ < lines_.size() &&
          (lines_[pos_].indent > indent ||
           (lines_[pos_].indent == indent && lines_[pos_].content[0] == '-' &&
            (lines_[pos_].content.size() == 1 || lines_[pos_].content[1] == ' ')))) {
        auto value = ParseBlock(lines_[pos_].indent);
        if (!value.ok()) return value;
        map->Put(key, *value);
      } else {
        map->Put(key, Node::MakeNull());
      }
    }
    return map;
  }

  std::vector<Line> lines_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> Node::AsString() const {
  if (type_ != NodeType::kScalar) {
    return Status::InvalidArgument("node is not a scalar");
  }
  return scalar_;
}

Result<int64_t> Node::AsInt() const {
  if (type_ != NodeType::kScalar) {
    return Status::InvalidArgument("node is not a scalar");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(scalar_.c_str(), &end, 0);
  if (errno != 0 || end == scalar_.c_str() || *end != '\0') {
    return Status::InvalidArgument("'" + scalar_ + "' is not an integer");
  }
  return static_cast<int64_t>(v);
}

Result<uint64_t> Node::AsUint() const {
  auto v = AsInt();
  if (!v.ok()) {
    // Retry as unsigned for values above INT64_MAX.
    errno = 0;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(scalar_.c_str(), &end, 0);
    if (type_ != NodeType::kScalar || errno != 0 || end == scalar_.c_str() ||
        *end != '\0') {
      return Status::InvalidArgument("'" + scalar_ + "' is not an unsigned integer");
    }
    return static_cast<uint64_t>(u);
  }
  if (*v < 0) {
    return Status::InvalidArgument("'" + scalar_ + "' is negative");
  }
  return static_cast<uint64_t>(*v);
}

Result<double> Node::AsDouble() const {
  if (type_ != NodeType::kScalar) {
    return Status::InvalidArgument("node is not a scalar");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(scalar_.c_str(), &end);
  if (errno != 0 || end == scalar_.c_str() || *end != '\0') {
    return Status::InvalidArgument("'" + scalar_ + "' is not a number");
  }
  return v;
}

Result<bool> Node::AsBool() const {
  if (type_ != NodeType::kScalar) {
    return Status::InvalidArgument("node is not a scalar");
  }
  if (scalar_ == "true" || scalar_ == "True" || scalar_ == "yes" ||
      scalar_ == "on" || scalar_ == "1") {
    return true;
  }
  if (scalar_ == "false" || scalar_ == "False" || scalar_ == "no" ||
      scalar_ == "off" || scalar_ == "0") {
    return false;
  }
  return Status::InvalidArgument("'" + scalar_ + "' is not a boolean");
}

bool Node::Has(const std::string& key) const { return Get(key) != nullptr; }

NodePtr Node::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return nullptr;
}

void Node::Put(std::string key, NodePtr value) {
  entries_.emplace_back(std::move(key), std::move(value));
}

std::string Node::GetString(const std::string& key, std::string fallback) const {
  const NodePtr n = Get(key);
  if (n == nullptr || !n->IsScalar()) return fallback;
  return n->scalar();
}

int64_t Node::GetInt(const std::string& key, int64_t fallback) const {
  const NodePtr n = Get(key);
  if (n == nullptr) return fallback;
  auto v = n->AsInt();
  return v.ok() ? *v : fallback;
}

uint64_t Node::GetUint(const std::string& key, uint64_t fallback) const {
  const NodePtr n = Get(key);
  if (n == nullptr) return fallback;
  auto v = n->AsUint();
  return v.ok() ? *v : fallback;
}

double Node::GetDouble(const std::string& key, double fallback) const {
  const NodePtr n = Get(key);
  if (n == nullptr) return fallback;
  auto v = n->AsDouble();
  return v.ok() ? *v : fallback;
}

bool Node::GetBool(const std::string& key, bool fallback) const {
  const NodePtr n = Get(key);
  if (n == nullptr) return fallback;
  auto v = n->AsBool();
  return v.ok() ? *v : fallback;
}

std::string Node::Dump(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::ostringstream out;
  switch (type_) {
    case NodeType::kNull:
      out << pad << "~\n";
      break;
    case NodeType::kScalar:
      out << pad << scalar_ << "\n";
      break;
    case NodeType::kSequence:
      for (const NodePtr& item : items_) {
        out << pad << "-\n" << item->Dump(indent + 2);
      }
      break;
    case NodeType::kMapping:
      for (const auto& [k, v] : entries_) {
        if (v->IsScalar()) {
          out << pad << k << ": " << v->scalar() << "\n";
        } else if (v->IsNull()) {
          out << pad << k << ": ~\n";
        } else {
          out << pad << k << ":\n" << v->Dump(indent + 2);
        }
      }
      break;
  }
  return out.str();
}

Result<NodePtr> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

Result<NodePtr> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

}  // namespace labstor::yaml
