// Lightweight error-handling primitives: Status and Result<T>.
//
// LabStor modules communicate failures through values rather than
// exceptions so that request-processing loops in workers stay
// allocation-free and predictable.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace labstor {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,     // e.g. runtime offline; retry may succeed
  kCorruption,      // on-"disk" state failed validation
  kUnimplemented,
  kInternal,
  kTimeout,
};

std::string_view StatusCodeName(StatusCode code);

// Terminal-status classification for client retry policies: transient
// transport conditions (runtime offline, wait deadline expired) may
// clear on their own; everything else is a verdict and retrying would
// at best repeat it, at worst double-apply the operation.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout;
}

// A status word plus an optional human-readable message. Cheap to copy
// in the OK case (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status PermissionDenied(std::string m) {
    return {StatusCode::kPermissionDenied, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status Corruption(std::string m) {
    return {StatusCode::kCorruption, std::move(m)};
  }
  static Status Unimplemented(std::string m) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status Timeout(std::string m) {
    return {StatusCode::kTimeout, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s(StatusCodeName(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kTimeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

// Result<T>: either a value or a non-OK Status. A minimal stand-in for
// std::expected (C++23) restricted to what the codebase needs.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "OK status requires a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

#define LABSTOR_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::labstor::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

// Coroutine-body variant: a plain `return` is ill-formed inside a
// coroutine, so Task<Status> code propagates errors with co_return.
#define LABSTOR_CO_RETURN_IF_ERROR(expr)             \
  do {                                               \
    ::labstor::Status _st = (expr);                  \
    if (!_st.ok()) co_return _st;                    \
  } while (0)

#define LABSTOR_ASSIGN_OR_RETURN(lhs, expr)          \
  auto lhs##_result = (expr);                        \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto& lhs = *lhs##_result

}  // namespace labstor
