// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over a byte
// range. Used to checksum on-device structures — e.g. metadata log
// records — so that torn or partial writes are detected at replay
// time instead of being replayed as garbage.
//
// A 16-entry nibble table keeps the lookup state tiny (64 bytes, one
// cache line) at the cost of two table lookups per byte; metadata
// records are small, so this is nowhere near a hot path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace labstor {

inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  static constexpr uint32_t kNibbleTable[16] = {
      0x00000000, 0x1DB71064, 0x3B6E20C8, 0x26D930AC,
      0x76DC4190, 0x6B6B51F4, 0x4DB26158, 0x5005713C,
      0xEDB88320, 0xF00F9344, 0xD6D6A3E8, 0xCB61B38C,
      0x9B64C2B0, 0x86D3D2D4, 0xA00AE278, 0xBDBDF21C,
  };
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc ^= bytes[i];
    crc = (crc >> 4) ^ kNibbleTable[crc & 0x0F];
    crc = (crc >> 4) ^ kNibbleTable[crc & 0x0F];
  }
  return ~crc;
}

}  // namespace labstor
