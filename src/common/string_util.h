// Small string helpers shared by the YAML parser and path handling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace labstor {

std::string_view TrimWhitespace(std::string_view s);
std::vector<std::string> SplitString(std::string_view s, char sep);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Filesystem-style path helpers used by GenericFS / the LabStack
// namespace. Paths are normalized to "/a/b/c" with no trailing slash
// (the root stays "/").
std::string NormalizePath(std::string_view path);
std::string ParentPath(std::string_view path);
std::string PathBasename(std::string_view path);
// Split "/a/b/c" into {"a", "b", "c"}.
std::vector<std::string> PathComponents(std::string_view path);

// Human-friendly byte formatting for bench output ("4.0 KiB", "1.2 GiB").
std::string FormatBytes(double bytes);

}  // namespace labstor
