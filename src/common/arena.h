// Bump-pointer arena with chunked growth. Backs the simulated shared
// memory segments: allocations never move, so "cross-process" pointers
// into a segment stay valid for the segment's lifetime.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace labstor {

class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    // Alignment must be applied to the actual address, not the offset:
    // chunk bases are only max_align_t-aligned.
    if (!chunks_.empty()) AlignOffset(align);
    if (chunks_.empty() || offset_ + bytes > chunks_.back().size) {
      const size_t want = bytes + align;
      const size_t size = want > chunk_bytes_ ? want : chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<uint8_t[]>(size), size});
      offset_ = 0;
      AlignOffset(align);
    }
    void* p = chunks_.back().data.get() + offset_;
    offset_ += bytes;
    allocated_ += bytes;
    return p;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Bytes handed out (not capacity). Reset() releases everything at
  // once; objects with destructors must not be placed in the arena
  // unless the owner runs those destructors itself.
  size_t allocated_bytes() const { return allocated_; }

  void Reset() {
    chunks_.clear();
    offset_ = 0;
    allocated_ = 0;
  }

  // Byte-level checkpoint of the arena (the DST harness snapshots the
  // simulated shared-memory segments with this). Captures every
  // chunk's contents plus the allocation cursor.
  struct Snapshot {
    std::vector<std::vector<uint8_t>> chunks;
    size_t offset = 0;
    size_t allocated = 0;
  };

  Snapshot TakeSnapshot() const {
    Snapshot snap;
    snap.chunks.reserve(chunks_.size());
    for (const Chunk& chunk : chunks_) {
      snap.chunks.emplace_back(chunk.data.get(), chunk.data.get() + chunk.size);
    }
    snap.offset = offset_;
    snap.allocated = allocated_;
    return snap;
  }

  // Rolls the arena back to `snap`: chunk contents are restored and
  // chunks grown since the snapshot are discarded, so pointers handed
  // out after the snapshot become invalid — this is a crash rollback,
  // not a copy. Fails (returns false, arena untouched) when the
  // snapshot does not describe a prefix of this arena's chunk layout.
  bool RestoreSnapshot(const Snapshot& snap) {
    if (snap.chunks.size() > chunks_.size()) return false;
    for (size_t i = 0; i < snap.chunks.size(); ++i) {
      if (snap.chunks[i].size() != chunks_[i].size) return false;
    }
    chunks_.resize(snap.chunks.size());
    for (size_t i = 0; i < snap.chunks.size(); ++i) {
      std::copy(snap.chunks[i].begin(), snap.chunks[i].end(),
                chunks_[i].data.get());
    }
    offset_ = snap.offset;
    allocated_ = snap.allocated;
    return true;
  }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void AlignOffset(size_t align) {
    const auto base = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
    const uintptr_t aligned =
        (base + offset_ + align - 1) & ~static_cast<uintptr_t>(align - 1);
    offset_ = static_cast<size_t>(aligned - base);
  }

  const size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t offset_ = 0;
  size_t allocated_ = 0;
};

}  // namespace labstor
