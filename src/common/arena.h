// Bump-pointer arena with chunked growth. Backs the simulated shared
// memory segments: allocations never move, so "cross-process" pointers
// into a segment stay valid for the segment's lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace labstor {

class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 1 << 20) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    // Alignment must be applied to the actual address, not the offset:
    // chunk bases are only max_align_t-aligned.
    if (!chunks_.empty()) AlignOffset(align);
    if (chunks_.empty() || offset_ + bytes > current_size_) {
      const size_t want = bytes + align;
      const size_t size = want > chunk_bytes_ ? want : chunk_bytes_;
      chunks_.push_back(std::make_unique<uint8_t[]>(size));
      current_size_ = size;
      offset_ = 0;
      AlignOffset(align);
    }
    void* p = chunks_.back().get() + offset_;
    offset_ += bytes;
    allocated_ += bytes;
    return p;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  // Bytes handed out (not capacity). Reset() releases everything at
  // once; objects with destructors must not be placed in the arena
  // unless the owner runs those destructors itself.
  size_t allocated_bytes() const { return allocated_; }

  void Reset() {
    chunks_.clear();
    offset_ = 0;
    current_size_ = 0;
    allocated_ = 0;
  }

 private:
  void AlignOffset(size_t align) {
    const auto base = reinterpret_cast<uintptr_t>(chunks_.back().get());
    const uintptr_t aligned =
        (base + offset_ + align - 1) & ~static_cast<uintptr_t>(align - 1);
    offset_ = static_cast<size_t>(aligned - base);
  }

  const size_t chunk_bytes_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  size_t offset_ = 0;
  size_t current_size_ = 0;
  size_t allocated_ = 0;
};

}  // namespace labstor
