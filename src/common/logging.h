// Minimal leveled logger. Thread-safe; writes to stderr. Benchmarks set
// the level to kWarn so hot paths stay quiet.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace labstor {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void Write(LogLevel level, const char* file, int line, const std::string& msg);

 private:
  std::atomic<LogLevel> level_{LogLevel::kInfo};
};

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Get().Write(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define LABSTOR_LOG(lvl)                                              \
  if (static_cast<int>(::labstor::Logger::Get().level()) <=           \
      static_cast<int>(::labstor::LogLevel::lvl))                     \
  ::labstor::internal::LogMessage(::labstor::LogLevel::lvl, __FILE__, \
                                  __LINE__)                           \
      .stream()

#define LOG_DEBUG LABSTOR_LOG(kDebug)
#define LOG_INFO LABSTOR_LOG(kInfo)
#define LOG_WARN LABSTOR_LOG(kWarn)
#define LOG_ERROR LABSTOR_LOG(kError)

}  // namespace labstor
