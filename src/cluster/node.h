// ClusterNode: one simulated LabStor runtime node in the cluster.
//
// Every node is a full single-node LabStor instance under the shared
// DES: its own DeviceRegistry + NVMe device, its own SimRuntime (the
// real StackNamespace / ModuleRegistry / StackExec machinery), and an
// async LabKVS stack mounted at the cluster-wide mount point
// `kvs::/shard`. Label puts/gets execute the *real* LabKVS mod code —
// block allocation, metadata-log appends, the works — so node crash /
// rejoin recovery rides the same StateRepair log replay the DST
// harness verifies for single nodes.
//
// Routing state: each node holds an RCU snapshot of the ShardMap (and
// the previous one). Snapshots may be stale; the cluster routing layer
// (cluster.cc) turns staleness into forwarded hops, and the previous
// map powers the read-fallback during migrations ("ask the new owner,
// fall back to the old").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "core/sim_runtime.h"
#include "ipc/chain.h"
#include "labmods/labkvs.h"
#include "labmods/pushdown.h"
#include "sim/environment.h"
#include "simdev/registry.h"

namespace labstor::cluster {

class ClusterNode {
 public:
  // Cluster-wide mount point: keys are identical strings on every
  // node, so migration moves a label without rewriting its key.
  static constexpr const char* kMount = "kvs::/shard";

  struct Options {
    size_t workers = 2;
    uint64_t device_bytes = 32ull << 20;
    uint32_t version = 1;  // software version (rolling upgrades bump it)
    uint64_t log_records_per_worker = 8192;
  };

  ClusterNode(sim::Environment& env, uint32_t id, Options options);
  ClusterNode(sim::Environment& env, uint32_t id);  // default Options
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  Status init_status() const { return init_status_; }
  uint32_t id() const { return id_; }
  bool up() const { return up_; }
  uint32_t version() const { return version_; }
  bool draining() const { return draining_; }
  uint64_t in_flight() const { return in_flight_; }
  uint64_t executed() const { return executed_; }
  core::SimRuntime& rt() { return *rt_; }

  // --- shard-map snapshot (RCU adoption) ---
  void AdoptMap(std::shared_ptr<const ShardMap> map);
  std::shared_ptr<const ShardMap> map() const { return map_; }
  std::shared_ptr<const ShardMap> prev_map() const { return prev_map_; }
  uint64_t map_generation() const {
    return map_ == nullptr ? 0 : map_->generation();
  }

  // --- lifecycle ---
  // Abrupt offline: subsequent ops fail Unavailable. Durable state
  // (device contents, metadata log) is retained for Restart.
  void Crash();
  // Back online after a crash: replays the metadata log through the
  // real StateRepair path before serving.
  Status Restart();
  // Per-node quiesce for rolling upgrades: hold new admissions, wait
  // for in-flight requests to drain.
  sim::Task<Status> Quiesce();
  // Release held requests, running the new software version.
  void Resume(uint32_t new_version);

  // --- label operations (local execution through the real stack) ---
  sim::Task<Status> Put(uint32_t qid, const std::string& label, uint64_t size);
  sim::Task<Status> Get(uint32_t qid, const std::string& label,
                        uint64_t* size_out = nullptr);
  sim::Task<Status> Delete(uint32_t qid, const std::string& label);
  // Put with real value bytes: pointer-chase chains dereference stored
  // content, so it must survive the trip through the device store.
  sim::Task<Status> PutBytes(uint32_t qid, const std::string& label,
                             std::vector<uint8_t> bytes);

  // --- pushdown chains (DESIGN.md §12) ---
  // Admin-plane registration, same epoch rules as the IPC path; the
  // epoch is read from this node's own namespace.
  Status RegisterChain(const ipc::ChainProgram& program);
  // Run a registered chain starting at `label`, entirely on this node.
  // `steps_out` reports how many chain steps executed.
  sim::Task<Status> ExecChain(uint32_t qid, uint32_t chain_id,
                              const std::string& label,
                              uint64_t* size_out = nullptr,
                              uint32_t* steps_out = nullptr);
  labmods::PushdownMod* pushdown() { return pushdown_; }

  // --- store introspection (invariants / rebalancer planning) ---
  bool Has(const std::string& label) const;
  Result<uint64_t> ValueSize(const std::string& label) const;
  // Labels held by this node's store (mount prefix stripped), sorted.
  std::vector<std::string> Labels() const;
  size_t label_count() const;

  // --- versioned record metadata (migration conflict resolution) ---
  // Every client-acked mutation carries a cluster-issued version, and a
  // delete leaves a versioned tombstone instead of plain absence.
  // Migration compares versions, so a stale copy stranded on a down
  // node can neither overwrite a newer value nor resurrect a deleted
  // one when the node rejoins. Durable alongside the store itself.
  void SetRecordVersion(const std::string& label, uint64_t version);
  void SetTombstone(const std::string& label, uint64_t version);
  void ClearTombstone(const std::string& label);
  void ForgetRecord(const std::string& label);
  uint64_t RecordVersion(const std::string& label) const;     // 0 = none
  uint64_t TombstoneVersion(const std::string& label) const;  // 0 = none
  uint64_t MaxVersion(const std::string& label) const;
  const std::map<std::string, uint64_t>& tombstones() const {
    return tombstones_;
  }
  size_t tombstone_count() const { return tombstones_.size(); }

  // --- migration commit coordination ---
  // A rebalancer write or delete against a label must not interleave
  // with a client mutation of the same label: the loser's bytes would
  // silently vanish. The rebalancer brackets its store access with
  // LockLabel/UnlockLabel and drains MutationsInFlight first; client
  // mutations (any qid but kInternalQid) park until the lock clears.
  static constexpr uint32_t kInternalQid = 900000;
  void LockLabel(const std::string& label) { locked_labels_.insert(label); }
  void UnlockLabel(const std::string& label) { locked_labels_.erase(label); }
  bool LabelLocked(const std::string& label) const {
    return locked_labels_.count(label) != 0;
  }
  uint32_t MutationsInFlight(const std::string& label) const {
    const auto it = mutating_.find(label);
    return it == mutating_.end() ? 0 : it->second;
  }

  static std::string KeyFor(const std::string& label) {
    return std::string(kMount) + "/" + label;
  }

 private:
  sim::Task<Status> Execute(uint32_t qid, ipc::OpCode op,
                            const std::string& label, uint64_t size,
                            uint64_t* size_out);
  // Shared admission path: quiesce gate, migration lock, in-flight
  // accounting around one request through the node's stack.
  sim::Task<Status> Submit(uint32_t qid, ipc::Request& req,
                           const std::string& label, bool client_mutation);
  void EnsureQueue(uint32_t qid);

  sim::Environment& env_;
  uint32_t id_;
  Options options_;
  Status init_status_;

  simdev::DeviceRegistry devices_;
  std::unique_ptr<core::SimRuntime> rt_;
  core::Stack* stack_ = nullptr;
  labmods::LabKvsMod* kvs_ = nullptr;
  labmods::PushdownMod* pushdown_ = nullptr;
  std::set<uint32_t> registered_queues_;

  bool up_ = true;
  bool draining_ = false;
  uint32_t version_;
  uint64_t in_flight_ = 0;
  uint64_t executed_ = 0;
  sim::Event resume_event_;

  std::shared_ptr<const ShardMap> map_;
  std::shared_ptr<const ShardMap> prev_map_;

  // label -> version of the held value / of the acked delete. At most
  // one of the two has an entry per label.
  std::map<std::string, uint64_t> record_versions_;
  std::map<std::string, uint64_t> tombstones_;

  // Migration commit coordination (see LockLabel above).
  std::set<std::string> locked_labels_;
  std::map<std::string, uint32_t> mutating_;
};

}  // namespace labstor::cluster
