#include "cluster/rebalancer.h"

#include <algorithm>

namespace labstor::cluster {
namespace {

ClusterNode* FindNode(const std::vector<ClusterNode*>& nodes, uint32_t id) {
  for (ClusterNode* node : nodes) {
    if (node != nullptr && node->id() == id) return node;
  }
  return nullptr;
}

}  // namespace

std::vector<MigrationStep> Rebalancer::Plan(
    const std::vector<ClusterNode*>& nodes, const ShardMap& target) {
  std::vector<ClusterNode*> ordered = nodes;
  std::sort(ordered.begin(), ordered.end(),
            [](const ClusterNode* a, const ClusterNode* b) {
              return a->id() < b->id();
            });
  std::vector<MigrationStep> plan;
  for (ClusterNode* node : ordered) {
    if (node == nullptr || !node->up()) continue;
    for (const std::string& label : node->Labels()) {
      const uint32_t owner = target.OwnerOfLabel(label);
      if (owner == node->id() || owner == ShardMap::kNoOwner) continue;
      // A down destination cannot receive the copy; leave the label on
      // its current holder and let a post-rejoin round move it.
      ClusterNode* dest = FindNode(nodes, owner);
      if (dest == nullptr || !dest->up()) continue;
      const auto size = node->ValueSize(label);
      plan.push_back(MigrationStep{label, node->id(), owner,
                                   size.ok() ? *size : 0,
                                   node->RecordVersion(label), false});
    }
    // Tombstones migrate like values: an acked delete must reach the
    // label's owner, or a stale copy rejoining later could resurrect it.
    for (const auto& [label, version] : node->tombstones()) {
      const uint32_t owner = target.OwnerOfLabel(label);
      if (owner == node->id() || owner == ShardMap::kNoOwner) continue;
      ClusterNode* dest = FindNode(nodes, owner);
      if (dest == nullptr || !dest->up()) continue;
      plan.push_back(
          MigrationStep{label, node->id(), owner, 0, version, true});
    }
  }
  return plan;
}

sim::Task<Status> Rebalancer::Execute(const std::vector<MigrationStep>& plan,
                                      const std::vector<ClusterNode*>& nodes) {
  for (const MigrationStep& step : plan) {
    ClusterNode* src = FindNode(nodes, step.from);
    ClusterNode* dst = FindNode(nodes, step.to);
    if (src == nullptr || dst == nullptr) {
      co_return Status::InvalidArgument("migration step names unknown node");
    }
    if (hook_) hook_(step, MigrationPhase::kBeforeCopy);

    if (!src->up()) {
      ++skipped_;
      continue;
    }

    if (step.tombstone) {
      // --- tombstone step: propagate an acked delete to the owner ---
      const uint64_t version = src->TombstoneVersion(step.label);
      if (version == 0) {  // cleared since planning
        ++skipped_;
        continue;
      }
      if (dst->MaxVersion(step.label) < version) {
        const Status sent = co_await net_.Send(step.from, step.to, 0);
        if (!sent.ok()) {
          ++failed_;
          continue;
        }
        // Exclusive per-label window: a client put racing the adoption
        // would otherwise be eaten by the superseding delete.
        dst->LockLabel(step.label);
        while (dst->up() && dst->MutationsInFlight(step.label) > 0) {
          co_await env_.Delay(sim::kUs);
        }
        bool adopted = false;
        if (dst->up() && dst->MaxVersion(step.label) < version) {
          Status del = Status::Ok();
          if (dst->Has(step.label)) {
            del = co_await dst->Delete(kRebalanceQid, step.label);
          }
          if (del.ok()) {
            dst->SetTombstone(step.label, version);
            adopted = true;
          }
        }
        dst->UnlockLabel(step.label);
        if (!adopted) {
          ++failed_;
          continue;
        }
      }
      if (hook_) hook_(step, MigrationPhase::kAfterCopy);
      if (!src->up() || !dst->up() ||
          dst->MaxVersion(step.label) < version) {
        ++failed_;
        continue;
      }
      src->ClearTombstone(step.label);
      ++migrated_;
      if (hook_) hook_(step, MigrationPhase::kAfterCommit);
      continue;
    }

    // --- value step ---
    // Re-validate: the hook (or concurrent client traffic) may have
    // crashed a node or removed the label since planning.
    if (!src->Has(step.label)) {
      ++skipped_;
      continue;
    }
    const uint64_t version = src->RecordVersion(step.label);
    const auto fresh = src->ValueSize(step.label);
    const uint64_t size = fresh.ok() ? *fresh : step.size;

    // Copy only when the source's record is strictly newer than any
    // state — value or tombstone — the destination already holds; an
    // unversioned legacy pair falls back to "destination wins".
    const uint64_t dst_version = dst->MaxVersion(step.label);
    const bool dst_empty = !dst->Has(step.label) && dst_version == 0;
    if (version > dst_version || (version == 0 && dst_empty)) {
      // Ship the value over the wire, then write it through the
      // destination's real stack so its metadata log records the label.
      const Status sent = co_await net_.Send(step.from, step.to, size);
      if (!sent.ok()) {
        ++failed_;
        continue;  // label intact on source; next round retries
      }
      // Exclusive per-label window: a client put landing between the
      // version gate and this Put must not be overwritten by the
      // (older) copy, so re-check the gate with mutations drained.
      dst->LockLabel(step.label);
      while (dst->up() && dst->MutationsInFlight(step.label) > 0) {
        co_await env_.Delay(sim::kUs);
      }
      bool landed = false;
      if (dst->up()) {
        const uint64_t dv = dst->MaxVersion(step.label);
        const bool still_copyable =
            version > dv ||
            (version == 0 && !dst->Has(step.label) && dv == 0);
        if (still_copyable) {
          const Status put =
              co_await dst->Put(kRebalanceQid, step.label, size);
          if (put.ok()) {
            dst->SetRecordVersion(step.label, version);
            bytes_moved_ += size;
            landed = true;
          }
        } else {
          landed = true;  // superseded by newer client state: commit
        }
      }
      dst->UnlockLabel(step.label);
      if (!landed) {
        ++failed_;
        continue;
      }
    }
    // else: the destination already holds state at least as new (a
    // client wrote or deleted through the new map, or a prior crashed
    // round copied it); fall through to commit the source away.

    if (hook_) hook_(step, MigrationPhase::kAfterCopy);

    // Commit: drop the source copy only while the destination provably
    // holds state at least as new as the source's *current* record — a
    // client put can land on the source while the copy was in flight,
    // and deleting it here would destroy an acked write. The lock keeps
    // further client mutations out for the delete's duration. A crash
    // before this point leaves both copies; a stale copy is dropped.
    src->LockLabel(step.label);
    while (src->up() && src->MutationsInFlight(step.label) > 0) {
      co_await env_.Delay(sim::kUs);
    }
    const uint64_t src_now = src->RecordVersion(step.label);
    const bool dst_holds_newer =
        dst->MaxVersion(step.label) >= std::max(version, src_now) &&
        (dst->Has(step.label) || dst->TombstoneVersion(step.label) > 0);
    if (!src->up() || !dst->up() || !dst_holds_newer) {
      src->UnlockLabel(step.label);
      ++failed_;
      continue;
    }
    const Status del = co_await src->Delete(kRebalanceQid, step.label);
    src->UnlockLabel(step.label);
    if (!del.ok()) {
      ++failed_;
      continue;
    }
    src->ForgetRecord(step.label);
    ++migrated_;
    if (hook_) hook_(step, MigrationPhase::kAfterCommit);
  }
  co_return Status::Ok();
}

}  // namespace labstor::cluster
