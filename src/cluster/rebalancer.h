// Rebalancer: shard-ownership migration on cluster membership change.
//
// Plans are computed from the *actual* node stores, not a shadow model:
// for every live node, any label (value or tombstone) whose owner under
// the target map is a different node becomes a MigrationStep. Each step
// executes in two sub-steps — copy (Put to the destination through its
// real stack, or tombstone adoption), then commit (Delete from the
// source) — so a crash at any sub-step boundary leaves the record on
// the source, on both, or on the destination, never nowhere. Acked
// writes therefore survive migration.
//
// Conflicts are resolved by record versions (cluster-issued, monotone
// per acked mutation): a copy only lands when the source's version is
// newer than whatever the destination holds — value or tombstone — and
// a commit only drops the source once the destination provably holds
// state at least that new. A stale value stranded on a crashed node can
// therefore neither overwrite a newer write nor resurrect an acked
// delete when the node rejoins.
//
// The MigrationHook fires at every sub-step boundary and is the DST
// harness's crash-point enumeration surface: the hook may crash or
// restart nodes mid-migration, and the step machinery tolerates the
// resulting Unavailable failures by leaving the record where it was.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/shard_map.h"
#include "cluster/transport.h"
#include "sim/environment.h"
#include "sim/task.h"

namespace labstor::cluster {

struct MigrationStep {
  std::string label;
  uint32_t from = 0;
  uint32_t to = 0;
  uint64_t size = 0;
  // Version of the record at planning time (re-read at execution).
  uint64_t version = 0;
  // True when the record being migrated is an acked-delete tombstone.
  bool tombstone = false;
};

enum class MigrationPhase {
  kBeforeCopy,   // step selected, nothing transferred yet
  kAfterCopy,    // destination holds the label; source still does too
  kAfterCommit,  // source copy deleted; step complete
};

// Fired at every sub-step boundary. May mutate cluster state (crash /
// restart nodes); the rebalancer re-validates after every call.
using MigrationHook =
    std::function<void(const MigrationStep&, MigrationPhase)>;

class Rebalancer {
 public:
  // Queue id reserved for migration traffic on every node, far above
  // any client qid the benches or tests hand out. Ops on this qid are
  // exempt from the per-label migration lock they themselves hold.
  static constexpr uint32_t kRebalanceQid = ClusterNode::kInternalQid;

  Rebalancer(sim::Environment& env, NetTransport& net)
      : env_(env), net_(net) {}
  Rebalancer(const Rebalancer&) = delete;
  Rebalancer& operator=(const Rebalancer&) = delete;

  void SetHook(MigrationHook hook) { hook_ = std::move(hook); }

  // Steps needed to make every live node's store agree with `target`.
  // Labels held by down nodes are unreachable and not planned; they are
  // re-planned after the node restarts. Deterministic order: by node
  // id, then by label (Labels() is sorted).
  static std::vector<MigrationStep> Plan(
      const std::vector<ClusterNode*>& nodes, const ShardMap& target);

  // Execute one plan. Individual step failures from nodes crashing
  // mid-migration are tolerated (the label stays where it was and is
  // picked up by the next round); only malformed plans return non-ok.
  sim::Task<Status> Execute(const std::vector<MigrationStep>& plan,
                            const std::vector<ClusterNode*>& nodes);

  uint64_t migrated() const { return migrated_; }
  uint64_t skipped() const { return skipped_; }
  uint64_t failed() const { return failed_; }
  uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  sim::Environment& env_;
  NetTransport& net_;
  MigrationHook hook_;
  uint64_t migrated_ = 0;
  uint64_t skipped_ = 0;
  uint64_t failed_ = 0;
  uint64_t bytes_moved_ = 0;
};

}  // namespace labstor::cluster
