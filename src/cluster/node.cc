#include "cluster/node.h"

#include <algorithm>

namespace labstor::cluster {
namespace {

constexpr const char* kDeviceName = "cl_nvme";

std::string NodeStackYaml(uint32_t id, uint64_t log_records) {
  const std::string tag = "n" + std::to_string(id);
  return std::string("mount: ") + ClusterNode::kMount +
         "\n"
         "rules:\n"
         "  exec_mode: async\n"
         "dag:\n"
         "  - mod: pushdown\n"
         "    uuid: pd_" + tag +
         "\n"
         "    outputs: [kvs_" + tag +
         "]\n"
         "  - mod: labkvs\n"
         "    uuid: kvs_" + tag +
         "\n"
         "    params:\n"
         "      device: " + kDeviceName +
         "\n"
         "      log_records_per_worker: " + std::to_string(log_records) +
         "\n"
         "    outputs: [sched_" + tag +
         "]\n"
         "  - mod: noop_sched\n"
         "    uuid: sched_" + tag +
         "\n"
         "    outputs: [drv_" + tag +
         "]\n"
         "  - mod: kernel_driver\n"
         "    uuid: drv_" + tag +
         "\n"
         "    params:\n"
         "      device: " + std::string(kDeviceName) + "\n";
}

}  // namespace

ClusterNode::ClusterNode(sim::Environment& env, uint32_t id)
    : ClusterNode(env, id, Options{}) {}

ClusterNode::ClusterNode(sim::Environment& env, uint32_t id, Options options)
    : env_(env),
      id_(id),
      options_(options),
      devices_(&env),
      version_(options.version),
      resume_event_(env) {
  simdev::DeviceParams params =
      simdev::DeviceParams::NvmeP3700(options_.device_bytes);
  params.name = kDeviceName;
  if (const auto dev = devices_.Create(params); !dev.ok()) {
    init_status_ = dev.status();
    return;
  }
  rt_ = std::make_unique<core::SimRuntime>(env_, devices_, options_.workers);
  auto stack =
      rt_->MountYaml(NodeStackYaml(id_, options_.log_records_per_worker));
  if (!stack.ok()) {
    init_status_ = stack.status();
    return;
  }
  stack_ = *stack;
  auto mod = rt_->registry().Find("kvs_n" + std::to_string(id_));
  if (!mod.ok()) {
    init_status_ = mod.status();
    return;
  }
  kvs_ = dynamic_cast<labmods::LabKvsMod*>(*mod);
  if (kvs_ == nullptr) {
    init_status_ = Status::Internal("cluster node kvs mod has wrong type");
    return;
  }
  auto pd = rt_->registry().Find("pd_n" + std::to_string(id_));
  if (!pd.ok()) {
    init_status_ = pd.status();
    return;
  }
  pushdown_ = dynamic_cast<labmods::PushdownMod*>(*pd);
  if (pushdown_ == nullptr) {
    init_status_ = Status::Internal("cluster node pushdown mod has wrong type");
    return;
  }
  init_status_ = Status::Ok();
}

void ClusterNode::AdoptMap(std::shared_ptr<const ShardMap> map) {
  if (map == nullptr) return;
  if (map_ != nullptr && map->generation() <= map_->generation()) return;
  prev_map_ = std::move(map_);
  map_ = std::move(map);
}

void ClusterNode::Crash() {
  up_ = false;
  // A crashed node forgets any quiesce it was holding; restart admits.
  draining_ = false;
  resume_event_.Trigger();
}

Status ClusterNode::Restart() {
  if (up_) return Status::FailedPrecondition("node is already up");
  // Volatile state is gone; the real recovery path rebuilds the KVS
  // index from the on-device metadata log.
  LABSTOR_RETURN_IF_ERROR(rt_->registry().RepairAll());
  up_ = true;
  return Status::Ok();
}

sim::Task<Status> ClusterNode::Quiesce() {
  if (!up_) co_return Status::Unavailable("node is down");
  draining_ = true;
  // Admissions are held at the door (Execute blocks on resume_event_);
  // wait for the in-flight window to drain.
  while (in_flight_ > 0) co_await env_.Delay(sim::kUs);
  co_return Status::Ok();
}

void ClusterNode::Resume(uint32_t new_version) {
  version_ = new_version;
  draining_ = false;
  resume_event_.Trigger();
}

void ClusterNode::EnsureQueue(uint32_t qid) {
  if (registered_queues_.insert(qid).second) {
    rt_->RegisterQueue(qid, 3 * sim::kUs);
  }
}

sim::Task<Status> ClusterNode::Submit(uint32_t qid, ipc::Request& req,
                                      const std::string& label,
                                      bool client_mutation) {
  // Held at the door during a quiesce; released by Resume (or Crash).
  while (draining_) co_await resume_event_.Wait();
  if (!up_) {
    co_return Status::Unavailable("node " + std::to_string(id_) + " is down");
  }
  // Client mutations park while a migration commit holds the label; a
  // concurrent interleave could silently destroy whichever applied
  // first. Rebalancer traffic (kInternalQid) is the lock holder itself.
  if (client_mutation) {
    while (up_ && locked_labels_.count(label) != 0) {
      co_await env_.Delay(sim::kUs);
    }
    if (!up_) {
      co_return Status::Unavailable("node " + std::to_string(id_) +
                                    " is down");
    }
    ++mutating_[label];
  }
  EnsureQueue(qid);
  ++in_flight_;
  const Status st = co_await rt_->Execute(qid, *stack_, req);
  --in_flight_;
  ++executed_;
  if (client_mutation) {
    if (const auto it = mutating_.find(label); it != mutating_.end()) {
      if (--it->second == 0) mutating_.erase(it);
    }
  }
  co_return st;
}

sim::Task<Status> ClusterNode::Execute(uint32_t qid, ipc::OpCode op,
                                       const std::string& label, uint64_t size,
                                       uint64_t* size_out) {
  const bool client_mutation =
      qid != kInternalQid &&
      (op == ipc::OpCode::kPut || op == ipc::OpCode::kDelete);
  ipc::Request req;
  req.op = op;
  req.client_pid = qid;
  req.length = size;
  req.SetPath(KeyFor(label));
  const Status st = co_await Submit(qid, req, label, client_mutation);
  if (size_out != nullptr) *size_out = req.result_u64;
  co_return st;
}

sim::Task<Status> ClusterNode::PutBytes(uint32_t qid, const std::string& label,
                                        std::vector<uint8_t> bytes) {
  // Pointer-chase chains dereference stored content, so the value
  // bytes must actually reach the device store (plain Put carries only
  // a size and the driver skips the copy for a null payload).
  ipc::Request req;
  req.op = ipc::OpCode::kPut;
  req.client_pid = qid;
  req.length = bytes.size();
  req.data = bytes.data();
  req.SetPath(KeyFor(label));
  co_return co_await Submit(qid, req, label, qid != kInternalQid);
}

Status ClusterNode::RegisterChain(const ipc::ChainProgram& program) {
  if (pushdown_ == nullptr) return Status::Internal("node not initialized");
  if (!up_) return Status::Unavailable("node is down");
  return pushdown_->Register(
      program, rt_->ns().epoch_ref().load(std::memory_order_acquire));
}

sim::Task<Status> ClusterNode::ExecChain(uint32_t qid, uint32_t chain_id,
                                         const std::string& label,
                                         uint64_t* size_out,
                                         uint32_t* steps_out) {
  // A mutating chain rewrites its start label; take the same
  // migration-lock path as a direct Put on it.
  bool mutates = false;
  if (pushdown_ != nullptr) {
    for (const auto& info : pushdown_->ListChains()) {
      if (info.id == chain_id) {
        mutates = info.mutates;
        break;
      }
    }
  }
  // Local receive buffer: the chain's final scratch contents land
  // here, so size_out reports how many bytes the last hop produced
  // (and the response hop is billed for shipping them back).
  std::vector<uint8_t> recv(4096);
  ipc::Request req;
  req.op = ipc::OpCode::kChainExec;
  req.client_pid = qid;
  req.chain_id = chain_id;
  req.length = recv.size();
  req.data = recv.data();
  req.SetPath(KeyFor(label));
  const Status st =
      co_await Submit(qid, req, label, mutates && qid != kInternalQid);
  if (size_out != nullptr) *size_out = req.result_u64;
  if (steps_out != nullptr) *steps_out = req.chain_step;
  co_return st;
}

sim::Task<Status> ClusterNode::Put(uint32_t qid, const std::string& label,
                                   uint64_t size) {
  return Execute(qid, ipc::OpCode::kPut, label, size, nullptr);
}

sim::Task<Status> ClusterNode::Get(uint32_t qid, const std::string& label,
                                   uint64_t* size_out) {
  // Clients read with an always-sufficient buffer: LabKvs rejects gets
  // whose req.length is smaller than the stored value, and the actual
  // value size comes back via result_u64 regardless.
  return Execute(qid, ipc::OpCode::kGet, label, ~uint64_t{0}, size_out);
}

sim::Task<Status> ClusterNode::Delete(uint32_t qid, const std::string& label) {
  return Execute(qid, ipc::OpCode::kDelete, label, 0, nullptr);
}

void ClusterNode::SetRecordVersion(const std::string& label,
                                   uint64_t version) {
  record_versions_[label] = version;
  tombstones_.erase(label);
}

void ClusterNode::SetTombstone(const std::string& label, uint64_t version) {
  tombstones_[label] = version;
  record_versions_.erase(label);
}

void ClusterNode::ClearTombstone(const std::string& label) {
  tombstones_.erase(label);
}

void ClusterNode::ForgetRecord(const std::string& label) {
  record_versions_.erase(label);
}

uint64_t ClusterNode::RecordVersion(const std::string& label) const {
  const auto it = record_versions_.find(label);
  return it == record_versions_.end() ? 0 : it->second;
}

uint64_t ClusterNode::TombstoneVersion(const std::string& label) const {
  const auto it = tombstones_.find(label);
  return it == tombstones_.end() ? 0 : it->second;
}

uint64_t ClusterNode::MaxVersion(const std::string& label) const {
  return std::max(RecordVersion(label), TombstoneVersion(label));
}

bool ClusterNode::Has(const std::string& label) const {
  return kvs_ != nullptr && kvs_->ValueSize(KeyFor(label)).ok();
}

Result<uint64_t> ClusterNode::ValueSize(const std::string& label) const {
  if (kvs_ == nullptr) return Status::Internal("node not initialized");
  return kvs_->ValueSize(KeyFor(label));
}

std::vector<std::string> ClusterNode::Labels() const {
  std::vector<std::string> labels;
  if (kvs_ == nullptr) return labels;
  const std::string prefix = std::string(kMount) + "/";
  for (std::string& key : kvs_->ListKeys()) {
    if (key.rfind(prefix, 0) == 0) {
      labels.push_back(key.substr(prefix.size()));
    }
  }
  return labels;  // ListKeys is sorted; the prefix strip preserves it
}

size_t ClusterNode::label_count() const {
  return kvs_ == nullptr ? 0 : kvs_->key_count();
}

}  // namespace labstor::cluster
