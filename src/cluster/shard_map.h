// ShardMap: consistent hashing over labels/inodes for the multi-node
// cluster (DESIGN.md §10).
//
// The map is an immutable ring: every member node contributes
// `virtual_nodes` points (hashes of (node, vnode)), and a label's
// owner is the node whose point follows the label's hash clockwise.
// Virtual nodes keep per-node key load balanced within a small factor
// of the mean, and consistent hashing guarantees *minimal movement*:
// adding a node only steals keys for that node; removing one only
// redistributes the removed node's keys.
//
// Publication is RCU-style, exactly the AssignmentTable shape from the
// hot-path overhaul (DESIGN.md §7): a rebalance builds a fresh
// immutable ShardMap at generation+1 and swaps it into the publisher;
// readers (cluster nodes, gateways) hold shared_ptr snapshots and poll
// the atomic generation counter, so routing never takes the publisher
// lock on the hot path and a stale snapshot is always a *valid* map —
// just one that may cost a forwarded hop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace labstor::cluster {

// Stable 64-bit label hash (FNV-1a). All routing decisions flow
// through this, so the mapping is identical across nodes and runs.
uint64_t HashLabel(std::string_view label);

class ShardMap {
 public:
  static constexpr uint32_t kDefaultVirtualNodes = 64;

  // Builds the ring for `nodes` (deduplicated, order-insensitive:
  // the ring depends only on the member set). Empty `nodes` yields a
  // map that owns nothing (OwnerOf returns kNoOwner).
  static std::shared_ptr<const ShardMap> Build(
      uint64_t generation, const std::vector<uint32_t>& nodes,
      uint32_t virtual_nodes = kDefaultVirtualNodes);

  static constexpr uint32_t kNoOwner = ~0u;

  uint32_t OwnerOf(uint64_t key_hash) const;
  uint32_t OwnerOfLabel(std::string_view label) const {
    return OwnerOf(HashLabel(label));
  }

  uint64_t generation() const { return generation_; }
  const std::vector<uint32_t>& nodes() const { return nodes_; }
  bool Contains(uint32_t node) const;
  uint32_t virtual_nodes() const { return virtual_nodes_; }
  size_t ring_points() const { return ring_.size(); }

 private:
  ShardMap() = default;

  struct Point {
    uint64_t hash;
    uint32_t node;
  };

  uint64_t generation_ = 0;
  uint32_t virtual_nodes_ = kDefaultVirtualNodes;
  std::vector<Point> ring_;     // sorted by (hash, node)
  std::vector<uint32_t> nodes_;  // sorted member set
};

// RCU-style publication point (the cluster's single source of truth
// for the *latest* map; nodes route from adopted snapshots).
class ShardMapPublisher {
 public:
  ShardMapPublisher() = default;
  ShardMapPublisher(const ShardMapPublisher&) = delete;
  ShardMapPublisher& operator=(const ShardMapPublisher&) = delete;

  // Installs `map`; its generation must be strictly greater than the
  // current one (the monotonicity forwarding-loop freedom rests on).
  // Returns false (and installs nothing) otherwise.
  bool Publish(std::shared_ptr<const ShardMap> map);

  // Lock-free fast-path signal: readers poll this and only refetch
  // the shared_ptr when it changed (AssignmentTable protocol).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  std::shared_ptr<const ShardMap> Load() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ShardMap> map_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace labstor::cluster
