// Cluster: N simulated LabStor nodes under one DES, glued together by
// the ShardMap (label -> owner), the NetTransport (inter-node queues
// with a latency/bandwidth cost model), and the Rebalancer (ownership
// migration on membership change).
//
// Routing: a client submits to any *gateway* node. The gateway routes
// by its own (possibly stale) RCU shard-map snapshot; if it is not the
// owner, the request is forwarded over the transport. A node adopts
// the latest published map whenever a message reaches it, so a
// forwarded request is re-routed with fresh information at every hop —
// generations only move forward, which keeps forwarding loop-free and
// bounds the hop count (the `forward_loops` counter must stay 0; the
// DST invariants check it). Reads that miss at the new owner during a
// migration take one non-recursive fallback hop to the previous map's
// owner ("ask the new, fall back to the old").
//
// The cluster keeps an `acked` ledger — label -> size for every write
// *applied at its owner* (including applied-but-unacked writes whose
// response hop to the gateway died) — used ONLY by CheckInvariants()
// as the ground-truth model: applied writes must survive crashes,
// rejoins, rolling upgrades, and shard migration. Planning and routing
// never read it; they operate on the real node stores and shard map.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/rebalancer.h"
#include "cluster/shard_map.h"
#include "cluster/transport.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace labstor::cluster {

struct ClusterConfig {
  uint32_t initial_nodes = 4;
  uint32_t virtual_nodes = ShardMap::kDefaultVirtualNodes;
  size_t workers_per_node = 2;
  uint64_t node_device_bytes = 32ull << 20;
  uint64_t log_records_per_worker = 8192;
  // A forwarded request gives up after this many hops (invariant: with
  // monotone map adoption, two hops always suffice).
  uint32_t max_forward_hops = 3;
  uint32_t initial_version = 1;
  sim::NetworkCosts net_costs = sim::DefaultNetworkCosts();
  // How many plan/execute rounds Rebalance() runs before declaring the
  // cluster unable to converge.
  uint32_t max_rebalance_rounds = 8;
};

struct NodeInfo {
  uint32_t id = 0;
  bool up = false;
  bool draining = false;
  uint32_t version = 0;
  uint64_t map_generation = 0;
  uint64_t labels = 0;
  uint64_t executed = 0;
  size_t net_queue_depth = 0;
};

struct Topology {
  uint64_t map_generation = 0;
  uint32_t virtual_nodes = 0;
  std::vector<NodeInfo> nodes;
  uint64_t acked_labels = 0;
  uint64_t forwarded = 0;
  uint64_t fallback_reads = 0;
  uint64_t forward_loops = 0;
  uint64_t migrated = 0;
  uint64_t migration_bytes = 0;
  uint64_t net_messages = 0;
  uint64_t net_bytes = 0;
  uint64_t chains_registered = 0;
  uint64_t chain_execs = 0;
  uint64_t chain_steps = 0;
};

class Cluster {
 public:
  static constexpr uint32_t kClientQidBase = 100;

  Cluster(sim::Environment& env, ClusterConfig config,
          telemetry::Telemetry* tel = nullptr);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Status init_status() const { return init_status_; }

  // --- client operations (submit at any live gateway node) ---
  sim::Task<Status> Put(uint32_t gateway, uint32_t tenant,
                        const std::string& label, uint64_t size);
  // Put carrying real value bytes (pointer-chase chains dereference
  // stored content, so it must reach the owner's device store).
  sim::Task<Status> PutBytes(uint32_t gateway, uint32_t tenant,
                             const std::string& label,
                             std::vector<uint8_t> bytes);
  sim::Task<Status> Get(uint32_t gateway, uint32_t tenant,
                        const std::string& label,
                        uint64_t* size_out = nullptr);
  sim::Task<Status> Delete(uint32_t gateway, uint32_t tenant,
                           const std::string& label);

  // --- pushdown chains (DESIGN.md §12) ---
  // Registers the program on every live member; later joiners and
  // rejoiners pick it up automatically, so a migrated label's owner
  // can always execute it. Cluster chains must confine mutation to
  // the start label (the routing key): that is what the acked ledger
  // tracks.
  Status RegisterChain(const ipc::ChainProgram& program);
  // Route a chain execution to the owner of `start_label` and run the
  // WHOLE chain there: one forwarded hop (at most) instead of one
  // round trip per dependent step. `steps_out` reports steps run.
  sim::Task<Status> ExecChain(uint32_t gateway, uint32_t tenant,
                              uint32_t chain_id,
                              const std::string& start_label,
                              uint64_t* size_out = nullptr,
                              uint32_t* steps_out = nullptr);

  // --- membership / lifecycle ---
  // Adds a fresh node, publishes the widened map, migrates shards onto
  // it. Returns the new node id via `id_out`.
  sim::Task<Status> AddNode(uint32_t* id_out = nullptr);
  // Graceful leave: publishes the narrowed map, migrates shards off,
  // then retires the node.
  sim::Task<Status> RemoveNode(uint32_t id);
  // Abrupt failure: node goes dark, membership unchanged — its shards
  // are unavailable until RejoinNode replays the metadata log.
  Status CrashNode(uint32_t id);
  // Restart after a crash (real StateRepair log replay), then a
  // rebalance round to shed any labels whose ownership moved while the
  // node was down.
  sim::Task<Status> RejoinNode(uint32_t id);
  // Per-node quiesce -> version bump -> resume, in node-id order; the
  // shard map keeps every other node serving while one drains.
  sim::Task<Status> RollingUpgrade(uint32_t new_version);
  // Plan/execute migration rounds against the latest published map
  // until no step remains (or the round budget is exhausted).
  sim::Task<Status> Rebalance();

  // --- introspection / invariants ---
  ClusterNode* node(uint32_t id);
  const ClusterNode* node(uint32_t id) const;
  std::vector<uint32_t> NodeIds() const;  // members, ascending
  std::vector<uint32_t> LiveNodeIds() const;
  std::shared_ptr<const ShardMap> map() const { return publisher_.Load(); }
  NetTransport& net() { return net_; }
  Rebalancer& rebalancer() { return rebalancer_; }
  const std::map<std::string, uint64_t>& acked() const { return acked_; }
  uint64_t forwarded() const { return forwarded_; }
  uint64_t fallback_reads() const { return fallback_reads_; }
  uint64_t forward_loops() const { return forward_loops_; }
  Topology GetTopology() const;

  // Always-on cluster invariants, checked at quiescent points:
  //  * cluster.single_owner      — the published map maps every label to
  //    exactly one member node (and only member nodes);
  //  * cluster.no_lost_acked_writes — every acked write is held, at its
  //    acked size, by at least one node (a down node's store counts: it
  //    is durable and comes back via log replay);
  //  * cluster.loop_free_forwarding — forward_loops() is still 0;
  //  * cluster.monotone_generations — publisher and per-node map
  //    generations never move backwards.
  // `strict` adds the post-convergence placement check (all nodes up,
  // rebalance converged): every acked label has exactly one holder and
  // it is the map owner, and no node holds a label it does not own.
  Status CheckInvariants(bool strict = false);

 private:
  sim::Task<Status> Route(uint32_t gateway, uint32_t tenant, ipc::OpCode op,
                          const std::string& label, uint64_t size,
                          uint64_t* size_out,
                          const std::vector<uint8_t>* payload = nullptr,
                          uint32_t chain_id = 0, uint32_t* steps_out = nullptr);
  Status PublishMembers(const std::vector<uint32_t>& members);
  std::vector<ClusterNode*> AllNodes() const;
  Status AddNodeInternal(uint32_t* id_out);
  telemetry::LatencyHistogram* TenantHistogram(uint32_t tenant);

  sim::Environment& env_;
  ClusterConfig config_;
  Status init_status_;
  telemetry::Telemetry* tel_;

  NetTransport net_;
  Rebalancer rebalancer_;
  ShardMapPublisher publisher_;
  // The map published before the current one — read-fallback source for
  // nodes (fresh joiners) that have no previous map of their own.
  std::shared_ptr<const ShardMap> prev_published_;
  std::map<uint32_t, std::unique_ptr<ClusterNode>> nodes_;
  // Gracefully removed nodes park here instead of being destroyed:
  // client coroutines suspended inside a node's runtime may still hold
  // references, and the invariant checker scans these stores too.
  std::vector<std::unique_ptr<ClusterNode>> retired_;
  uint32_t next_node_id_ = 0;
  uint64_t next_generation_ = 1;

  // Invariant model: label -> applied size (tenant is telemetry-only).
  std::map<std::string, uint64_t> acked_;
  uint64_t last_checked_generation_ = 0;
  // Cluster-issued version for every acked mutation: the total order
  // migration uses to resolve value-vs-value and value-vs-tombstone
  // conflicts from copies stranded on down nodes.
  uint64_t mutation_clock_ = 0;

  uint64_t forwarded_ = 0;
  uint64_t fallback_reads_ = 0;
  uint64_t forward_loops_ = 0;

  // Registered chain programs, re-broadcast to joiners/rejoiners.
  std::map<uint32_t, ipc::ChainProgram> chain_programs_;
  uint64_t chain_execs_ = 0;
  uint64_t chain_steps_ = 0;

  telemetry::Counter* ops_counter_ = nullptr;
  telemetry::Counter* forwarded_counter_ = nullptr;
  telemetry::Counter* fallback_counter_ = nullptr;
  telemetry::LatencyHistogram* hops_hist_ = nullptr;
  std::map<uint32_t, telemetry::LatencyHistogram*> tenant_hists_;
};

}  // namespace labstor::cluster
