#include "cluster/transport.h"

namespace labstor::cluster {

void NetTransport::RegisterNode(uint32_t id) {
  Link& link = links_[id];
  if (link.nic == nullptr) {
    link.nic = std::make_unique<sim::Resource>(env_, 1);
  }
  link.up = true;
}

void NetTransport::SetNodeUp(uint32_t id, bool up) {
  const auto it = links_.find(id);
  if (it != links_.end()) it->second.up = up;
}

bool NetTransport::NodeUp(uint32_t id) const {
  const auto it = links_.find(id);
  return it != links_.end() && it->second.up;
}

size_t NetTransport::QueueDepth(uint32_t id) const {
  const auto it = links_.find(id);
  if (it == links_.end() || it->second.nic == nullptr) return 0;
  return it->second.nic->queue_length() +
         (it->second.nic->busy() ? 1 : 0);
}

void NetTransport::AttachTelemetry(telemetry::Telemetry* tel) {
  tel_ = tel;
  if (tel_ == nullptr) return;
  msg_counter_ = tel_->metrics().GetCounter("net.messages");
  bytes_counter_ = tel_->metrics().GetCounter("net.bytes");
  dropped_counter_ = tel_->metrics().GetCounter("net.dropped");
  wire_ns_ = tel_->metrics().GetHistogram("net.wire_ns");
}

sim::Task<Status> NetTransport::Send(uint32_t from, uint32_t to,
                                     uint64_t payload_bytes) {
  const auto it = links_.find(to);
  if (it == links_.end()) {
    co_return Status::NotFound("net: unknown node " + std::to_string(to));
  }
  if (!it->second.up) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
    co_return Status::Unavailable("net: node " + std::to_string(to) +
                                  " is down");
  }
  const sim::Time t0 = env_.now();
  // Sender-side RPC software (serialize + dispatch).
  co_await env_.Delay(costs_.rpc_overhead);
  co_await it->second.nic->Acquire();
  co_await env_.Delay(costs_.WireCost(payload_bytes));
  it->second.nic->Release();
  // Receiver may have crashed while the message was on the wire.
  if (!it->second.up) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->Inc();
    co_return Status::Unavailable("net: node " + std::to_string(to) +
                                  " went down in flight");
  }
  ++messages_;
  bytes_ += costs_.header_bytes + payload_bytes;
  if (tel_ != nullptr && tel_->enabled()) {
    msg_counter_->Inc(from);
    bytes_counter_->Add(costs_.header_bytes + payload_bytes, from);
    wire_ns_->Record(env_.now() - t0, from);
  }
  co_return Status::Ok();
}

}  // namespace labstor::cluster
