// NetTransport: simulated inter-node message queues for the cluster.
//
// Each registered node owns one inbound link modeled as a sim::Resource
// (FIFO admission = NIC serialization): a message pays the sender's RPC
// software overhead, then queues on the receiver's link and occupies it
// for propagation latency plus per-byte serialization time
// (sim::NetworkCosts). Messages to a down node fail with Unavailable —
// delivery is checked again after the link is acquired, so a node that
// crashes while a message is in flight still drops it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace labstor::cluster {

class NetTransport {
 public:
  NetTransport(sim::Environment& env,
               const sim::NetworkCosts& costs = sim::DefaultNetworkCosts())
      : env_(env), costs_(costs) {}
  NetTransport(const NetTransport&) = delete;
  NetTransport& operator=(const NetTransport&) = delete;

  void RegisterNode(uint32_t id);
  void SetNodeUp(uint32_t id, bool up);
  bool NodeUp(uint32_t id) const;

  // One message of `payload_bytes` from -> to. Completes when the
  // receiver has fully deserialized it.
  sim::Task<Status> Send(uint32_t from, uint32_t to, uint64_t payload_bytes);

  // Messages queued or in service on the node's inbound link.
  size_t QueueDepth(uint32_t id) const;

  uint64_t messages() const { return messages_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t dropped() const { return dropped_; }
  const sim::NetworkCosts& costs() const { return costs_; }

  // Optional metrics sink (not owned): net.messages / net.bytes /
  // net.dropped counters and a net.wire_ns latency histogram.
  void AttachTelemetry(telemetry::Telemetry* tel);

 private:
  struct Link {
    std::unique_ptr<sim::Resource> nic;
    bool up = true;
  };

  sim::Environment& env_;
  const sim::NetworkCosts& costs_;
  // Ordered map: deterministic iteration for dumps.
  std::map<uint32_t, Link> links_;
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
  uint64_t dropped_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Counter* msg_counter_ = nullptr;
  telemetry::Counter* bytes_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::LatencyHistogram* wire_ns_ = nullptr;
};

}  // namespace labstor::cluster
