#include "cluster/shard_map.h"

#include <algorithm>
#include <cassert>

namespace labstor::cluster {
namespace {

// SplitMix64 finalizer: spreads the (node, vnode) pairs uniformly
// around the ring regardless of how dense the node-id space is.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashLabel(std::string_view label) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
  for (const char c : label) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  // FNV mixes low bits weakly for short keys; finalize so ring lookups
  // see uniform high bits too.
  return Mix64(h);
}

std::shared_ptr<const ShardMap> ShardMap::Build(
    uint64_t generation, const std::vector<uint32_t>& nodes,
    uint32_t virtual_nodes) {
  auto map = std::shared_ptr<ShardMap>(new ShardMap());
  map->generation_ = generation;
  map->virtual_nodes_ = virtual_nodes == 0 ? 1 : virtual_nodes;
  map->nodes_ = nodes;
  std::sort(map->nodes_.begin(), map->nodes_.end());
  map->nodes_.erase(std::unique(map->nodes_.begin(), map->nodes_.end()),
                    map->nodes_.end());
  map->ring_.reserve(map->nodes_.size() * map->virtual_nodes_);
  for (const uint32_t node : map->nodes_) {
    for (uint32_t v = 0; v < map->virtual_nodes_; ++v) {
      const uint64_t point =
          Mix64((static_cast<uint64_t>(node) << 32) | v);
      map->ring_.push_back(Point{point, node});
    }
  }
  // Tie-break by node id so the ring is a pure function of the member
  // set (hash collisions across nodes are astronomically unlikely but
  // must not make ownership build-order dependent).
  std::sort(map->ring_.begin(), map->ring_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.node < b.node;
            });
  return map;
}

uint32_t ShardMap::OwnerOf(uint64_t key_hash) const {
  if (ring_.empty()) return kNoOwner;
  // First ring point at or after the key, wrapping to the start.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const Point& p, uint64_t h) { return p.hash < h; });
  return it == ring_.end() ? ring_.front().node : it->node;
}

bool ShardMap::Contains(uint32_t node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

bool ShardMapPublisher::Publish(std::shared_ptr<const ShardMap> map) {
  if (map == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (map_ != nullptr && map->generation() <= map_->generation()) return false;
  map_ = std::move(map);
  // Store after the swap (release): a reader woken by the counter is
  // guaranteed to refetch a map at least this new.
  generation_.store(map_->generation(), std::memory_order_release);
  return true;
}

std::shared_ptr<const ShardMap> ShardMapPublisher::Load() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

}  // namespace labstor::cluster
