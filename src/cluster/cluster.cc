#include "cluster/cluster.h"

#include <set>

namespace labstor::cluster {

Cluster::Cluster(sim::Environment& env, ClusterConfig config,
                 telemetry::Telemetry* tel)
    : env_(env),
      config_(config),
      tel_(tel),
      net_(env, config_.net_costs),
      rebalancer_(env, net_) {
  if (config_.initial_nodes == 0) {
    init_status_ = Status::InvalidArgument("cluster needs at least one node");
    return;
  }
  for (uint32_t i = 0; i < config_.initial_nodes; ++i) {
    if (const Status st = AddNodeInternal(nullptr); !st.ok()) {
      init_status_ = st;
      return;
    }
  }
  if (const Status st = PublishMembers(NodeIds()); !st.ok()) {
    init_status_ = st;
    return;
  }
  if (tel_ != nullptr) {
    net_.AttachTelemetry(tel_);
    ops_counter_ = tel_->metrics().GetCounter("cluster.ops");
    forwarded_counter_ = tel_->metrics().GetCounter("cluster.forwarded");
    fallback_counter_ = tel_->metrics().GetCounter("cluster.fallback_reads");
    hops_hist_ = tel_->metrics().GetHistogram("cluster.forward_hops");
  }
  init_status_ = Status::Ok();
}

Status Cluster::AddNodeInternal(uint32_t* id_out) {
  const uint32_t id = next_node_id_++;
  ClusterNode::Options opts;
  opts.workers = config_.workers_per_node;
  opts.device_bytes = config_.node_device_bytes;
  opts.version = config_.initial_version;
  opts.log_records_per_worker = config_.log_records_per_worker;
  auto node = std::make_unique<ClusterNode>(env_, id, opts);
  LABSTOR_RETURN_IF_ERROR(node->init_status());
  // Chains follow the data: a joiner may become owner of a label whose
  // chains were registered before it existed.
  for (const auto& [cid, program] : chain_programs_) {
    LABSTOR_RETURN_IF_ERROR(node->RegisterChain(program));
  }
  net_.RegisterNode(id);
  nodes_[id] = std::move(node);
  if (id_out != nullptr) *id_out = id;
  return Status::Ok();
}

Status Cluster::PublishMembers(const std::vector<uint32_t>& members) {
  auto map = ShardMap::Build(next_generation_++, members,
                             config_.virtual_nodes);
  prev_published_ = publisher_.Load();
  if (!publisher_.Publish(map)) {
    return Status::Internal("shard map publish regressed generation");
  }
  // Live nodes adopt eagerly; crashed nodes stay stale until rejoin
  // (forwarding + the previous-map read fallback cover the gap).
  for (auto& [id, node] : nodes_) {
    if (node->up()) node->AdoptMap(map);
  }
  return Status::Ok();
}

std::vector<ClusterNode*> Cluster::AllNodes() const {
  std::vector<ClusterNode*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(node.get());
  return out;
}

ClusterNode* Cluster::node(uint32_t id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const ClusterNode* Cluster::node(uint32_t id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<uint32_t> Cluster::NodeIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

std::vector<uint32_t> Cluster::LiveNodeIds() const {
  std::vector<uint32_t> ids;
  for (const auto& [id, node] : nodes_) {
    if (node->up()) ids.push_back(id);
  }
  return ids;
}

telemetry::LatencyHistogram* Cluster::TenantHistogram(uint32_t tenant) {
  if (tel_ == nullptr) return nullptr;
  auto it = tenant_hists_.find(tenant);
  if (it != tenant_hists_.end()) return it->second;
  telemetry::LatencyHistogram* hist = tel_->metrics().GetHistogram(
      "cluster.tenant" + std::to_string(tenant) + ".latency_ns");
  tenant_hists_[tenant] = hist;
  return hist;
}

sim::Task<Status> Cluster::Route(uint32_t gateway, uint32_t tenant,
                                 ipc::OpCode op, const std::string& label,
                                 uint64_t size, uint64_t* size_out,
                                 const std::vector<uint8_t>* payload,
                                 uint32_t chain_id, uint32_t* steps_out) {
  const sim::Time t0 = env_.now();
  ClusterNode* current = node(gateway);
  if (current == nullptr) {
    // The gateway retired (graceful leave) between the client choosing
    // it and the request starting: a connection-level failure.
    co_return Status::Unavailable("gateway node " + std::to_string(gateway) +
                                  " is no longer a member");
  }
  const uint32_t qid = kClientQidBase + tenant;
  uint32_t hops = 0;
  std::set<uint32_t> visited = {gateway};
  for (;;) {
    if (!current->up()) {
      co_return Status::Unavailable("node " + std::to_string(current->id()) +
                                    " is down");
    }
    auto map = current->map();
    if (map == nullptr) {
      co_return Status::Internal("node has no shard map");
    }
    const uint32_t owner = map->OwnerOfLabel(label);
    if (owner == ShardMap::kNoOwner) {
      co_return Status::FailedPrecondition("shard map has no nodes");
    }
    if (owner == current->id()) break;  // this node serves the label
    // Forward toward the owner this node believes in.
    if (hops >= config_.max_forward_hops || visited.count(owner) != 0) {
      ++forward_loops_;
      co_return Status::Internal("forwarding loop for label " + label);
    }
    ClusterNode* next = node(owner);
    if (next == nullptr) {
      // An in-flight request can hold a map snapshot from before a
      // graceful leave; its owner has since retired.
      co_return Status::Unavailable("owner node " + std::to_string(owner) +
                                    " retired under a stale shard map");
    }
    LABSTOR_CO_RETURN_IF_ERROR(co_await net_.Send(
        current->id(), owner, op == ipc::OpCode::kPut ? size : 0));
    // Gossip-on-message: arriving traffic refreshes the receiver.
    next->AdoptMap(publisher_.Load());
    visited.insert(owner);
    ++hops;
    ++forwarded_;
    if (forwarded_counter_ != nullptr) forwarded_counter_->Inc(gateway);
    current = next;
  }

  Status st;
  uint32_t steps = 0;
  if (op == ipc::OpCode::kChainExec) {
    // The whole chain executes at the owner: dependent hops resubmit
    // inside its pushdown mod instead of coming back over the wire.
    st = co_await current->ExecChain(qid, chain_id, label, size_out, &steps);
  } else if (op == ipc::OpCode::kPut && payload != nullptr) {
    st = co_await current->PutBytes(qid, label, *payload);
  } else if (op == ipc::OpCode::kPut) {
    st = co_await current->Put(qid, label, size);
  } else if (op == ipc::OpCode::kDelete) {
    st = co_await current->Delete(qid, label);
  } else {
    st = co_await current->Get(qid, label, size_out);
  }

  // Model bookkeeping keys off *execution* at the owner, not the
  // client-visible status: a mutation whose response hop dies later is
  // applied-but-unacked — it exists durably and the omniscient ledger
  // must say so, or the placement check would flag it as a stray copy.
  if (st.ok()) {
    if (op == ipc::OpCode::kPut) {
      acked_[label] = size;
      current->SetRecordVersion(label, ++mutation_clock_);
    } else if (op == ipc::OpCode::kDelete) {
      acked_.erase(label);
      current->SetTombstone(label, ++mutation_clock_);
    } else if (op == ipc::OpCode::kChainExec) {
      ++chain_execs_;
      chain_steps_ += steps;
      // A mutating chain rewrites its start label at the owner; keep
      // the omniscient ledger in step with what was applied.
      const auto it = chain_programs_.find(chain_id);
      if (it != chain_programs_.end() && it->second.Mutates()) {
        if (const auto sz = current->ValueSize(label); sz.ok()) {
          acked_[label] = *sz;
          current->SetRecordVersion(label, ++mutation_clock_);
        }
      }
    }
  }

  // Migration window: the new owner may not hold the label yet. One
  // non-recursive fallback hop asks the previous map's owner. A
  // tombstone at the owner makes the NotFound authoritative (the
  // delete was acked here); falling back would read a stale copy.
  if (op == ipc::OpCode::kGet && st.code() == StatusCode::kNotFound &&
      current->TombstoneVersion(label) == 0) {
    auto prev = current->prev_map();
    // A freshly joined node has no previous map of its own — the first
    // map it ever adopted already names it owner. Fall back to the map
    // the cluster published before the current one.
    if (prev == nullptr) prev = prev_published_;
    const uint32_t prev_owner =
        prev == nullptr ? ShardMap::kNoOwner : prev->OwnerOfLabel(label);
    if (prev_owner != ShardMap::kNoOwner && prev_owner != current->id()) {
      ClusterNode* old_node = node(prev_owner);
      if (old_node != nullptr && old_node->up()) {
        const Status sent =
            co_await net_.Send(current->id(), prev_owner, 0);
        if (sent.ok()) {
          const Status fb = co_await old_node->Get(qid, label, size_out);
          if (fb.ok()) {
            st = fb;
            ++fallback_reads_;
            if (fallback_counter_ != nullptr) fallback_counter_->Inc(gateway);
            current = old_node;  // response hop departs from here
          }
        }
      }
    }
  }

  // Response back to the gateway the client is connected to.
  if (st.ok() && current->id() != gateway) {
    const uint64_t resp_bytes =
        ((op == ipc::OpCode::kGet || op == ipc::OpCode::kChainExec) &&
         size_out != nullptr)
            ? *size_out
            : 0;
    const Status resp =
        co_await net_.Send(current->id(), gateway, resp_bytes);
    if (!resp.ok()) {
      co_return Status::Unavailable("gateway " + std::to_string(gateway) +
                                    " lost before response");
    }
  }

  // A NotFound while a member is dark is not authoritative: the label
  // may be stranded on the down node (migration skips down sources).
  // Absence is certified by a fully live membership or by a tombstone
  // at the owner (the acked delete travels with ownership).
  if (op == ipc::OpCode::kGet && st.code() == StatusCode::kNotFound &&
      current->TombstoneVersion(label) == 0 &&
      LiveNodeIds().size() != nodes_.size()) {
    st = Status::Unavailable("cannot certify absence of '" + label +
                             "': a member node is down");
  }

  if (ops_counter_ != nullptr) ops_counter_->Inc(gateway);
  if (hops_hist_ != nullptr) hops_hist_->Record(hops, gateway);
  if (auto* hist = TenantHistogram(tenant); hist != nullptr) {
    hist->Record(env_.now() - t0, gateway);
  }
  if (steps_out != nullptr) *steps_out = steps;
  co_return st;
}

sim::Task<Status> Cluster::Put(uint32_t gateway, uint32_t tenant,
                               const std::string& label, uint64_t size) {
  return Route(gateway, tenant, ipc::OpCode::kPut, label, size, nullptr);
}

sim::Task<Status> Cluster::PutBytes(uint32_t gateway, uint32_t tenant,
                                    const std::string& label,
                                    std::vector<uint8_t> bytes) {
  // `bytes` lives in this frame until Route completes.
  co_return co_await Route(gateway, tenant, ipc::OpCode::kPut, label,
                           bytes.size(), nullptr, &bytes);
}

Status Cluster::RegisterChain(const ipc::ChainProgram& program) {
  LABSTOR_RETURN_IF_ERROR(program.Validate());
  for (const auto& [id, n] : nodes_) {
    if (n->up()) LABSTOR_RETURN_IF_ERROR(n->RegisterChain(program));
  }
  chain_programs_[program.id] = program;
  return Status::Ok();
}

sim::Task<Status> Cluster::ExecChain(uint32_t gateway, uint32_t tenant,
                                     uint32_t chain_id,
                                     const std::string& start_label,
                                     uint64_t* size_out, uint32_t* steps_out) {
  return Route(gateway, tenant, ipc::OpCode::kChainExec, start_label, 0,
               size_out, nullptr, chain_id, steps_out);
}

sim::Task<Status> Cluster::Get(uint32_t gateway, uint32_t tenant,
                               const std::string& label, uint64_t* size_out) {
  return Route(gateway, tenant, ipc::OpCode::kGet, label, 0, size_out);
}

sim::Task<Status> Cluster::Delete(uint32_t gateway, uint32_t tenant,
                                  const std::string& label) {
  return Route(gateway, tenant, ipc::OpCode::kDelete, label, 0, nullptr);
}

sim::Task<Status> Cluster::AddNode(uint32_t* id_out) {
  uint32_t id = 0;
  LABSTOR_CO_RETURN_IF_ERROR(AddNodeInternal(&id));
  LABSTOR_CO_RETURN_IF_ERROR(PublishMembers(NodeIds()));
  if (id_out != nullptr) *id_out = id;
  co_return co_await Rebalance();
}

sim::Task<Status> Cluster::RemoveNode(uint32_t id) {
  ClusterNode* leaving = node(id);
  if (leaving == nullptr) {
    co_return Status::NotFound("node " + std::to_string(id) +
                               " is not a member");
  }
  if (!leaving->up()) {
    co_return Status::FailedPrecondition(
        "crashed node cannot leave gracefully; rejoin it first");
  }
  if (nodes_.size() == 1) {
    co_return Status::FailedPrecondition("cannot remove the last node");
  }
  // The leaver's shards drain onto their new owners; any of those may
  // be any member, so a graceful leave needs a fully live membership —
  // refused up front, before any state changes.
  if (LiveNodeIds().size() != nodes_.size()) {
    co_return Status::FailedPrecondition(
        "graceful leave requires all members up: shards cannot drain to a "
        "down owner");
  }
  std::vector<uint32_t> members;
  for (const uint32_t m : NodeIds()) {
    if (m != id) members.push_back(m);
  }
  // Narrow the map first so new writes route elsewhere, then drain the
  // leaver's shards onto their new owners.
  LABSTOR_CO_RETURN_IF_ERROR(PublishMembers(members));
  leaving->AdoptMap(publisher_.Load());
  LABSTOR_CO_RETURN_IF_ERROR(co_await Rebalance());
  if (leaving->label_count() != 0) {
    co_return Status::Internal("leaving node still holds labels");
  }
  if (leaving->tombstone_count() != 0) {
    co_return Status::Internal("leaving node still holds tombstones");
  }
  LABSTOR_CO_RETURN_IF_ERROR(co_await leaving->Quiesce());
  // Release any arrivals held during the drain as Unavailable, then
  // park the object: suspended coroutines may still reference it.
  leaving->Crash();
  net_.SetNodeUp(id, false);
  auto it = nodes_.find(id);
  retired_.push_back(std::move(it->second));
  nodes_.erase(it);
  co_return Status::Ok();
}

Status Cluster::CrashNode(uint32_t id) {
  ClusterNode* victim = node(id);
  if (victim == nullptr) {
    return Status::NotFound("node " + std::to_string(id) + " is not a member");
  }
  if (!victim->up()) {
    return Status::FailedPrecondition("node is already down");
  }
  victim->Crash();
  net_.SetNodeUp(id, false);
  return Status::Ok();
}

sim::Task<Status> Cluster::RejoinNode(uint32_t id) {
  ClusterNode* joining = node(id);
  if (joining == nullptr) {
    co_return Status::NotFound("node " + std::to_string(id) +
                               " is not a member");
  }
  LABSTOR_CO_RETURN_IF_ERROR(joining->Restart());
  net_.SetNodeUp(id, true);
  joining->AdoptMap(publisher_.Load());
  // Re-broadcast registered chains (idempotent for ones it still has).
  for (const auto& [cid, program] : chain_programs_) {
    LABSTOR_CO_RETURN_IF_ERROR(joining->RegisterChain(program));
  }
  // Membership may have changed while the node was dark: shed labels
  // whose ownership moved, and dedupe copies re-created elsewhere.
  co_return co_await Rebalance();
}

sim::Task<Status> Cluster::RollingUpgrade(uint32_t new_version) {
  for (const uint32_t id : NodeIds()) {
    ClusterNode* n = node(id);
    if (n == nullptr || !n->up()) continue;  // crashed: upgrades on rejoin
    LABSTOR_CO_RETURN_IF_ERROR(co_await n->Quiesce());
    // Software swap window: the node is admission-held but the shard
    // map keeps every other node serving.
    co_await env_.Delay(50 * sim::kUs);
    n->Resume(new_version);
  }
  co_return Status::Ok();
}

sim::Task<Status> Cluster::Rebalance() {
  for (uint32_t round = 0; round < config_.max_rebalance_rounds; ++round) {
    auto target = publisher_.Load();
    if (target == nullptr) {
      co_return Status::Internal("no published shard map");
    }
    const std::vector<ClusterNode*> all = AllNodes();
    for (ClusterNode* n : all) {
      if (n->up()) n->AdoptMap(target);
    }
    const std::vector<MigrationStep> plan = Rebalancer::Plan(all, *target);
    if (plan.empty()) co_return Status::Ok();
    LABSTOR_CO_RETURN_IF_ERROR(co_await rebalancer_.Execute(plan, all));
  }
  co_return Status::Internal("rebalance did not converge");
}

Topology Cluster::GetTopology() const {
  Topology topo;
  auto map = publisher_.Load();
  topo.map_generation = map == nullptr ? 0 : map->generation();
  topo.virtual_nodes = config_.virtual_nodes;
  for (const auto& [id, n] : nodes_) {
    NodeInfo info;
    info.id = id;
    info.up = n->up();
    info.draining = n->draining();
    info.version = n->version();
    info.map_generation = n->map_generation();
    info.labels = n->label_count();
    info.executed = n->executed();
    info.net_queue_depth = net_.QueueDepth(id);
    topo.nodes.push_back(info);
  }
  topo.acked_labels = acked_.size();
  topo.forwarded = forwarded_;
  topo.fallback_reads = fallback_reads_;
  topo.forward_loops = forward_loops_;
  topo.migrated = rebalancer_.migrated();
  topo.migration_bytes = rebalancer_.bytes_moved();
  topo.net_messages = net_.messages();
  topo.net_bytes = net_.bytes();
  topo.chains_registered = chain_programs_.size();
  topo.chain_execs = chain_execs_;
  topo.chain_steps = chain_steps_;
  return topo;
}

Status Cluster::CheckInvariants(bool strict) {
  // cluster.monotone_generations
  auto map = publisher_.Load();
  if (map == nullptr) {
    return Status::Internal("cluster.single_owner: no published shard map");
  }
  if (map->generation() < last_checked_generation_) {
    return Status::Internal(
        "cluster.monotone_generations: publisher went backwards");
  }
  last_checked_generation_ = map->generation();
  for (const auto& [id, n] : nodes_) {
    if (n->map_generation() > map->generation()) {
      return Status::Internal(
          "cluster.monotone_generations: node " + std::to_string(id) +
          " is ahead of the publisher");
    }
  }

  // cluster.single_owner: the map is a function onto member nodes.
  if (map->nodes().empty()) {
    return Status::Internal("cluster.single_owner: published map is empty");
  }
  for (const uint32_t id : map->nodes()) {
    if (nodes_.find(id) == nodes_.end()) {
      return Status::Internal("cluster.single_owner: map names non-member " +
                              std::to_string(id));
    }
  }

  // cluster.loop_free_forwarding
  if (forward_loops_ != 0) {
    return Status::Internal(
        "cluster.loop_free_forwarding: a request looped or exceeded the "
        "hop bound");
  }

  // cluster.no_lost_acked_writes: every acked label is held somewhere
  // at its acked size. A down node's store counts — it is durable and
  // comes back through metadata-log replay on rejoin.
  for (const auto& [label, size] : acked_) {
    bool held = false;
    for (const auto& [id, n] : nodes_) {
      const auto sz = n->ValueSize(label);
      if (sz.ok() && *sz == size) {
        held = true;
        break;
      }
    }
    if (!held) {
      for (const auto& n : retired_) {
        const auto sz = n->ValueSize(label);
        if (sz.ok() && *sz == size) {
          held = true;
          break;
        }
      }
    }
    if (!held) {
      return Status::Internal("cluster.no_lost_acked_writes: label '" +
                              label + "' lost");
    }
  }

  if (!strict) return Status::Ok();

  // Post-convergence placement: exactly one live holder per acked
  // label, and it is the map owner; no node holds a label it does not
  // own. Callers assert this only after Rebalance() converged with all
  // members up.
  for (const auto& [label, size] : acked_) {
    const uint32_t owner = map->OwnerOfLabel(label);
    uint32_t holders = 0;
    bool owner_holds = false;
    for (const auto& [id, n] : nodes_) {
      if (!n->up() || !n->Has(label)) continue;
      ++holders;
      if (id == owner) owner_holds = true;
    }
    if (holders != 1 || !owner_holds) {
      return Status::Internal(
          "cluster.placement: label '" + label + "' has " +
          std::to_string(holders) + " live holders (owner " +
          std::to_string(owner) + (owner_holds ? " holds)" : " missing)"));
    }
  }
  for (const auto& [id, n] : nodes_) {
    if (!n->up()) continue;
    for (const std::string& label : n->Labels()) {
      if (acked_.find(label) == acked_.end()) {
        return Status::Internal("cluster.placement: node " +
                                std::to_string(id) +
                                " holds unacked label '" + label + "'");
      }
      if (map->OwnerOfLabel(label) != id) {
        return Status::Internal("cluster.placement: node " +
                                std::to_string(id) +
                                " holds label '" + label +
                                "' it does not own");
      }
    }
  }
  return Status::Ok();
}

}  // namespace labstor::cluster
