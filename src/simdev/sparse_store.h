// Sparse in-memory byte store backing the simulated devices. Pages are
// allocated on first write; unwritten ranges read as zeros, matching a
// freshly-trimmed SSD / zero-filled block device. Thread-safe (sharded
// locks) so real-mode workers can hit one device concurrently.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "common/status.h"

namespace labstor::simdev {

class SparseStore {
 public:
  explicit SparseStore(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  Status Write(uint64_t offset, std::span<const uint8_t> data);
  Status Read(uint64_t offset, std::span<uint8_t> out) const;

  uint64_t capacity() const { return capacity_; }
  // Pages actually materialized (for tests / memory accounting).
  size_t resident_pages() const;

 private:
  static constexpr uint64_t kPageSize = 4096;
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages;
  };

  Shard& ShardFor(uint64_t page_index) const {
    return shards_[page_index % kShards];
  }

  uint64_t capacity_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace labstor::simdev
