// Device registry: name -> SimDevice. Driver LabMods resolve their
// target device here (the simulated analogue of opening /dev/nvme0n1).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "simdev/sim_device.h"

namespace labstor::simdev {

class DeviceRegistry {
 public:
  explicit DeviceRegistry(sim::Environment* env = nullptr) : env_(env) {}

  // Creates and registers a device; fails on duplicate names.
  Result<SimDevice*> Create(const DeviceParams& params);
  Result<SimDevice*> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  sim::Environment* env_;
  std::unordered_map<std::string, std::unique_ptr<SimDevice>> devices_;
};

}  // namespace labstor::simdev
