// Parameter sets describing the storage devices of the paper's testbed
// (Chameleon "storage hierarchy" node). Absolute values are class-
// representative, taken from public spec sheets; the evaluation only
// depends on the *ratios* between software path cost and device time.
#pragma once

#include <cstdint>
#include <string>

#include "sim/environment.h"

namespace labstor::simdev {

enum class DeviceKind { kHdd, kSataSsd, kNvme, kPmem };

std::string_view DeviceKindName(DeviceKind kind);

// How a completion reaches the host (DESIGN.md §13):
//   * kPolling — the submitter (or a dedicated worker) busy-polls the
//     completion queue; zero delivery latency, burns a core while
//     waiting. Only meaningful on devices with supports_polling.
//   * kInterrupt — the device raises a simulated interrupt after the
//     op finishes: the waiter pays interrupt_latency (controller IRQ
//     coalescing + line/MSI delivery) plus the software IRQ path cost
//     (SoftwareCosts::irq_completion) before it observes the CQE, but
//     spins zero cycles in between.
enum class CompletionMode : uint8_t { kPolling, kInterrupt };

std::string_view CompletionModeName(CompletionMode mode);

struct DeviceParams {
  std::string name;
  DeviceKind kind = DeviceKind::kNvme;
  uint64_t capacity_bytes = 0;
  uint32_t block_size = 4096;

  // Fixed per-op device-internal latency (controller, NAND program,
  // media access) excluding data transfer.
  sim::Time read_latency = 0;
  sim::Time write_latency = 0;

  // Data transfer: inverse bandwidth.
  double read_ns_per_byte = 0.0;
  double write_ns_per_byte = 0.0;

  // Parallelism. NVMe exposes independent hardware submission queues;
  // SATA has one dispatch port with limited internal overlap (NCQ);
  // HDD is a single actuator; PMEM allows many concurrent lanes.
  // Channels serialize per-queue ordering (head-of-line blocking);
  // device_parallelism bounds concurrently-serviced ops device-wide
  // (what caps random IOPS); the transfer phase shares one bandwidth
  // pipe (what caps sequential MB/s).
  uint32_t num_hw_queues = 1;
  uint32_t per_queue_parallelism = 1;
  uint32_t device_parallelism = 1;

  // HDD mechanics: charged when an op is not sequential with the
  // previous op on the same channel.
  sim::Time avg_seek = 0;
  sim::Time rotational_delay = 0;

  bool byte_addressable = false;   // PMEM: CPU load/store via DAX
  bool supports_polling = false;   // NVMe/PMEM completion polling

  // Default completion delivery for this device. Drivers may override
  // at attach time (`completion: polling|interrupt`), gated on
  // supports_polling — see labmods::ResolveCompletionMode.
  CompletionMode completion_mode = CompletionMode::kInterrupt;
  // Device-side interrupt delivery latency (coalescing + MSI-X fire)
  // charged per interrupt-mode completion, on top of the software IRQ
  // path cost (SoftwareCosts::irq_completion).
  sim::Time interrupt_latency = 2 * sim::kUs;

  // Zone-management op costs (ZNS driver LabMods). A reset invalidates
  // the zone's mapping table and erases metadata; a finish pads the
  // remainder and seals the zone. Both are latency-only (no transfer).
  sim::Time zone_reset_latency = 2 * sim::kUs;
  sim::Time zone_finish_latency = 1 * sim::kUs;

  // --- testbed presets ---

  // Intel P3700-class NVMe (2TB): ~4KB latency in the tens of µs,
  // multi-GB/s, 31 usable hardware queue pairs.
  static DeviceParams NvmeP3700(uint64_t capacity = 64ull << 20);
  // Intel SSDSC2BX-class SATA SSD (1.6TB): AHCI single dispatch queue,
  // NCQ depth gives limited internal overlap.
  static DeviceParams SataSsd(uint64_t capacity = 64ull << 20);
  // Seagate ST600MP0005-class 15K RPM SAS HDD (600GB).
  static DeviceParams SasHdd(uint64_t capacity = 64ull << 20);
  // Emulated PMEM (DRAM-backed, as the paper's bootloader trick).
  static DeviceParams PmemEmulated(uint64_t capacity = 64ull << 20);
};

inline std::string_view DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kHdd: return "hdd";
    case DeviceKind::kSataSsd: return "sata_ssd";
    case DeviceKind::kNvme: return "nvme";
    case DeviceKind::kPmem: return "pmem";
  }
  return "?";
}

inline std::string_view CompletionModeName(CompletionMode mode) {
  switch (mode) {
    case CompletionMode::kPolling: return "polling";
    case CompletionMode::kInterrupt: return "interrupt";
  }
  return "?";
}

inline DeviceParams DeviceParams::NvmeP3700(uint64_t capacity) {
  DeviceParams p;
  p.name = "nvme0";
  p.kind = DeviceKind::kNvme;
  p.capacity_bytes = capacity;
  p.read_latency = 10 * sim::kUs;
  p.write_latency = 12 * sim::kUs;
  p.read_ns_per_byte = 0.385;   // ~2.6 GB/s
  p.write_ns_per_byte = 0.909;  // ~1.1 GB/s
  p.num_hw_queues = 31;
  p.per_queue_parallelism = 1;
  p.device_parallelism = 4;  // internal NAND-channel overlap
  p.supports_polling = true;
  p.completion_mode = CompletionMode::kPolling;
  p.interrupt_latency = 2 * sim::kUs;  // MSI-X, minimal coalescing
  return p;
}

inline DeviceParams DeviceParams::SataSsd(uint64_t capacity) {
  DeviceParams p;
  p.name = "ssd0";
  p.kind = DeviceKind::kSataSsd;
  p.capacity_bytes = capacity;
  p.read_latency = 55 * sim::kUs;
  p.write_latency = 60 * sim::kUs;
  p.read_ns_per_byte = 2.0;   // ~500 MB/s
  p.write_ns_per_byte = 2.2;  // ~450 MB/s
  p.num_hw_queues = 1;
  p.per_queue_parallelism = 4;  // NCQ admits several in-flight ops
  p.device_parallelism = 2;
  // AHCI has no polled completion path: legacy line interrupt with
  // aggressive coalescing.
  p.interrupt_latency = 6 * sim::kUs;
  return p;
}

inline DeviceParams DeviceParams::SasHdd(uint64_t capacity) {
  DeviceParams p;
  p.name = "hdd0";
  p.kind = DeviceKind::kHdd;
  p.capacity_bytes = capacity;
  p.read_latency = 100 * sim::kUs;   // controller + cache management
  p.write_latency = 100 * sim::kUs;
  p.read_ns_per_byte = 4.3;   // ~230 MB/s media rate
  p.write_ns_per_byte = 4.3;
  p.num_hw_queues = 1;
  p.per_queue_parallelism = 1;  // one actuator
  p.device_parallelism = 1;
  p.avg_seek = 2'500 * sim::kUs;         // 15K RPM class
  p.rotational_delay = 2'000 * sim::kUs; // half revolution at 15K RPM
  // Interrupt latency is noise next to the mechanics; keep the default.
  return p;
}

inline DeviceParams DeviceParams::PmemEmulated(uint64_t capacity) {
  DeviceParams p;
  p.name = "pmem0";
  p.kind = DeviceKind::kPmem;
  p.capacity_bytes = capacity;
  p.block_size = 64;  // cacheline granularity
  p.read_latency = 300;
  p.write_latency = 500;
  p.read_ns_per_byte = 0.10;  // ~10 GB/s
  p.write_ns_per_byte = 0.30; // ~3.3 GB/s
  p.num_hw_queues = 8;        // concurrent load/store lanes
  p.per_queue_parallelism = 1;
  p.device_parallelism = 8;
  p.byte_addressable = true;
  p.supports_polling = true;
  // Load/store completion is inherently synchronous — polling is the
  // only mode that makes physical sense for DAX access.
  p.completion_mode = CompletionMode::kPolling;
  p.interrupt_latency = 1 * sim::kUs;
  return p;
}

}  // namespace labstor::simdev
