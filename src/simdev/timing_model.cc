#include "simdev/timing_model.h"

namespace labstor::simdev {

TimingModel::TimingModel(const DeviceParams& params)
    : params_(params), head_pos_(params.num_hw_queues, 0) {}

bool TimingModel::WouldSeek(uint64_t offset, uint32_t channel) const {
  if (params_.kind != DeviceKind::kHdd) return false;
  return offset != head_pos_[channel % head_pos_.size()];
}

sim::Time TimingModel::LatencyPart(IoOp op, uint64_t offset, uint64_t length,
                                   uint32_t channel) {
  // Zone-management commands hit the controller's mapping tables, not
  // the media: fixed latency, no head movement, no transfer.
  if (op == IoOp::kZoneReset) return params_.zone_reset_latency;
  if (op == IoOp::kZoneFinish) return params_.zone_finish_latency;
  sim::Time t =
      op == IoOp::kRead ? params_.read_latency : params_.write_latency;
  if (params_.kind == DeviceKind::kHdd) {
    uint64_t& head = head_pos_[channel % head_pos_.size()];
    if (offset != head) {
      // Non-sequential: pay seek plus average rotational delay.
      t += params_.avg_seek + params_.rotational_delay;
    }
    head = offset + length;
  }
  return t;
}

sim::Time TimingModel::TransferPart(IoOp op, uint64_t length) const {
  if (op == IoOp::kZoneReset || op == IoOp::kZoneFinish) return 0;
  const double per_byte = op == IoOp::kRead ? params_.read_ns_per_byte
                                            : params_.write_ns_per_byte;
  return static_cast<sim::Time>(per_byte * static_cast<double>(length));
}

sim::Time TimingModel::ServiceTime(IoOp op, uint64_t offset, uint64_t length,
                                   uint32_t channel) {
  return LatencyPart(op, offset, length, channel) + TransferPart(op, length);
}

}  // namespace labstor::simdev
