// Per-device service-time model. Stateless except for HDD head
// position tracking (per channel), so it can be unit-tested apart from
// the DES actor that applies the times.
#pragma once

#include <cstdint>
#include <vector>

#include "simdev/device_params.h"

namespace labstor::simdev {

// kZoneReset / kZoneFinish are zone-management commands (ZNS driver
// LabMods): latency-only, no data transfer, priced from the device's
// zone_reset_latency / zone_finish_latency.
enum class IoOp { kRead, kWrite, kZoneReset, kZoneFinish };

class TimingModel {
 public:
  explicit TimingModel(const DeviceParams& params);

  // Service time for one op on `channel` (queueing excluded — the
  // caller serializes channels). Updates HDD head state. Equals
  // LatencyPart + TransferPart.
  sim::Time ServiceTime(IoOp op, uint64_t offset, uint64_t length,
                        uint32_t channel);

  // The access-latency phase (controller + media access + any seek);
  // overlaps across ops up to device_parallelism. Updates HDD head
  // state.
  sim::Time LatencyPart(IoOp op, uint64_t offset, uint64_t length,
                        uint32_t channel);
  // The data-movement phase; serialized on the shared bandwidth pipe.
  sim::Time TransferPart(IoOp op, uint64_t length) const;

  // Inspection helper for tests: would this op seek?
  bool WouldSeek(uint64_t offset, uint32_t channel) const;

 private:
  DeviceParams params_;
  // Next sequential offset per channel (HDD head model).
  std::vector<uint64_t> head_pos_;
};

}  // namespace labstor::simdev
