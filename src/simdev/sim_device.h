// SimDevice: the simulated storage device, usable from two worlds.
//
//   * Real mode (tests, examples): ReadNow/WriteNow move bytes through
//     the SparseStore immediately; no virtual time involved.
//   * Simulated mode (benches): Read/Write are DES coroutines that
//     queue on the addressed hardware channel, charge the timing
//     model's service time, then perform the functional I/O.
//
// Channels model NVMe hardware queue pairs (the entities the paper's
// Kernel Driver LabMod exposes via submit_io_to_hctx). Each channel
// admits `per_queue_parallelism` concurrent ops to model device-
// internal overlap; ops beyond that queue FIFO.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "simdev/device_params.h"
#include "simdev/sparse_store.h"
#include "simdev/timing_model.h"

namespace labstor::simdev {

struct DeviceStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  // Completion-delivery accounting (DESIGN.md §13): every timed op
  // rings the submission doorbell once; interrupt-mode devices also
  // raise one completion interrupt per op, polled devices none.
  std::atomic<uint64_t> doorbells{0};
  std::atomic<uint64_t> interrupts_raised{0};
  std::atomic<uint64_t> zone_mgmt_ops{0};
};

class SimDevice {
 public:
  // `env` may be null for real-mode-only devices.
  SimDevice(sim::Environment* env, DeviceParams params);

  const DeviceParams& params() const { return params_; }
  const DeviceStats& stats() const { return stats_; }
  uint32_t num_channels() const { return params_.num_hw_queues; }

  // Completion delivery for this device instance. Drivers reconfigure
  // it at attach time (no I/O in flight) after the supports_polling
  // gate — see labmods::ResolveCompletionMode.
  CompletionMode completion_mode() const {
    return completion_mode_.load(std::memory_order_acquire);
  }
  void set_completion_mode(CompletionMode mode) {
    completion_mode_.store(mode, std::memory_order_release);
  }

  // --- real mode (immediate) ---
  Status ReadNow(uint64_t offset, std::span<uint8_t> out);
  Status WriteNow(uint64_t offset, std::span<const uint8_t> data);
  // Zone management (reset/finish) moves no bytes, so real mode has no
  // Now transfer to hang the stats on; drivers call this instead. In
  // simulated mode it is a no-op — TimedOp counts the replayed op.
  void NoteZoneMgmt() {
    if (env_ == nullptr) {
      stats_.zone_mgmt_ops.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // --- simulated mode (virtual time) ---
  // Functional + timed.
  sim::Task<Status> Read(uint32_t channel, uint64_t offset,
                         std::span<uint8_t> out);
  sim::Task<Status> Write(uint32_t channel, uint64_t offset,
                          std::span<const uint8_t> data);
  // Timing-only: benches that sweep terabytes don't materialize data.
  sim::Task<void> ReadTimed(uint32_t channel, uint64_t offset, uint64_t len);
  sim::Task<void> WriteTimed(uint32_t channel, uint64_t offset, uint64_t len);

  // Occupy the device in virtual time WITHOUT functional I/O or stats
  // (the SimRuntime replays ExecTrace device ops whose bytes already
  // moved via the functional path).
  sim::Task<void> OccupyTimed(IoOp op, uint32_t channel, uint64_t offset,
                              uint64_t len) {
    return TimedOp(op, channel, offset, len);
  }

  // Current queue depth on a channel (for load-aware schedulers like
  // blk-switch).
  size_t ChannelQueueDepth(uint32_t channel) const;

  // Persistence-boundary observer: invoked after every functional
  // write with the byte range that actually reached the store — an
  // injected torn write reports only its surviving prefix. The DST
  // harness journals these calls so it can reconstruct the device
  // as of any write boundary. Swap only while no I/O is in flight.
  using WriteObserver =
      std::function<void(uint64_t offset, std::span<const uint8_t> data)>;
  void SetWriteObserver(WriteObserver observer) {
    write_observer_ = std::move(observer);
  }

 private:
  sim::Task<void> TimedOp(IoOp op, uint32_t channel, uint64_t offset,
                          uint64_t len);

  sim::Environment* env_;
  DeviceParams params_;
  std::atomic<CompletionMode> completion_mode_;
  SparseStore store_;
  TimingModel timing_;
  std::vector<std::unique_ptr<sim::Resource>> channels_;
  // Device-wide service slots (caps random IOPS) and the shared
  // transfer pipe (caps sequential bandwidth).
  std::unique_ptr<sim::Resource> service_slots_;
  std::unique_ptr<sim::Resource> bandwidth_pipe_;
  DeviceStats stats_;
  WriteObserver write_observer_;
};

}  // namespace labstor::simdev
