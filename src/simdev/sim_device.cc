#include "simdev/sim_device.h"

#include <algorithm>
#include <cassert>

#include "faultinject/faultinject.h"

namespace labstor::simdev {

SimDevice::SimDevice(sim::Environment* env, DeviceParams params)
    : env_(env),
      params_(std::move(params)),
      completion_mode_(params_.completion_mode),
      store_(params_.capacity_bytes),
      timing_(params_) {
  if (env_ != nullptr) {
    channels_.reserve(params_.num_hw_queues);
    for (uint32_t i = 0; i < params_.num_hw_queues; ++i) {
      channels_.push_back(std::make_unique<sim::Resource>(
          *env_, params_.per_queue_parallelism));
    }
    service_slots_ = std::make_unique<sim::Resource>(
        *env_, std::max<uint32_t>(params_.device_parallelism, 1));
    bandwidth_pipe_ = std::make_unique<sim::Resource>(*env_, 1);
  }
}

Status SimDevice::ReadNow(uint64_t offset, std::span<uint8_t> out) {
  LABSTOR_FAULTPOINT("simdev.read.eio");
  const Status st = store_.Read(offset, out);
  if (st.ok()) {
    stats_.reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(out.size(), std::memory_order_relaxed);
  }
  return st;
}

Status SimDevice::WriteNow(uint64_t offset, std::span<const uint8_t> data) {
  if (faultinject::FaultInjector* fi = faultinject::Active(); fi != nullptr) {
    LABSTOR_RETURN_IF_ERROR(fi->InjectStatus("simdev.write.eio"));
    // Device-full: surfaced before any bytes move, as a controller
    // rejecting the command would.
    LABSTOR_RETURN_IF_ERROR(fi->InjectStatus("simdev.write.full"));
    // Torn write: persist only the first `arg` bytes (default: half),
    // then fail — the on-"disk" prefix survives for replay to find.
    if (auto torn = fi->Evaluate("simdev.write.torn")) {
      const uint64_t keep = std::min<uint64_t>(
          torn->arg != 0 ? torn->arg : data.size() / 2, data.size());
      (void)store_.Write(offset, data.first(keep));
      if (write_observer_) write_observer_(offset, data.first(keep));
      return Status(torn->code, torn->message.empty()
                                    ? "injected torn write"
                                    : torn->message);
    }
  }
  const Status st = store_.Write(offset, data);
  if (st.ok()) {
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
    if (write_observer_) write_observer_(offset, data);
  }
  return st;
}

sim::Task<void> SimDevice::TimedOp(IoOp op, uint32_t channel, uint64_t offset,
                                   uint64_t len) {
  assert(env_ != nullptr && "device constructed without an environment");
  // Submission doorbell + completion-delivery accounting. The doorbell
  // write is part of the driver's charged software cost; the interrupt
  // (when this device delivers completions that way) is priced by the
  // waiter (SimRuntime::TimedDevOp) so TimedOp durations stay
  // identical across modes — the byte-identity property S2 tests.
  stats_.doorbells.fetch_add(1, std::memory_order_relaxed);
  if (completion_mode() == CompletionMode::kInterrupt) {
    stats_.interrupts_raised.fetch_add(1, std::memory_order_relaxed);
  }
  if (op == IoOp::kZoneReset || op == IoOp::kZoneFinish) {
    stats_.zone_mgmt_ops.fetch_add(1, std::memory_order_relaxed);
  }
  // Channel order -> device service slot -> latency phase -> shared
  // transfer pipe. Lock order is fixed, so no cycles.
  sim::Resource& ch = *channels_[channel % channels_.size()];
  // Latency spike: an armed (optionally sim-time-windowed) policy adds
  // `arg` virtual ns (default 100us) before the op even queues,
  // modeling GC pauses / thermal throttling.
  if (faultinject::FaultInjector* fi = faultinject::Active(); fi != nullptr) {
    if (auto spike = fi->Evaluate("simdev.latency.spike")) {
      co_await env_->Delay(spike->arg != 0 ? spike->arg : 100 * sim::kUs);
    }
  }
  co_await ch.Acquire();
  co_await service_slots_->Acquire();
  co_await env_->Delay(timing_.LatencyPart(op, offset, len, channel));
  // The shared transfer pipe serves in chunks, interleaving concurrent
  // transfers the way a real controller time-slices its internal
  // bandwidth — a small 4KB op must not wait behind whole 64KB (or
  // 32MB) transfers. Chunks grow for huge requests to bound event
  // counts.
  if (len > 0) {
    const uint64_t chunk_size = len <= (1 << 20) ? 16 * 1024 : 256 * 1024;
    uint64_t remaining = len;
    while (remaining > 0) {
      const uint64_t chunk = std::min(remaining, chunk_size);
      const sim::Time transfer = timing_.TransferPart(op, chunk);
      if (transfer > 0) {
        co_await bandwidth_pipe_->Acquire();
        co_await env_->Delay(transfer);
        bandwidth_pipe_->Release();
      }
      remaining -= chunk;
    }
  }
  service_slots_->Release();
  ch.Release();
}

sim::Task<Status> SimDevice::Read(uint32_t channel, uint64_t offset,
                                  std::span<uint8_t> out) {
  co_await TimedOp(IoOp::kRead, channel, offset, out.size());
  co_return ReadNow(offset, out);
}

sim::Task<Status> SimDevice::Write(uint32_t channel, uint64_t offset,
                                   std::span<const uint8_t> data) {
  co_await TimedOp(IoOp::kWrite, channel, offset, data.size());
  co_return WriteNow(offset, data);
}

sim::Task<void> SimDevice::ReadTimed(uint32_t channel, uint64_t offset,
                                     uint64_t len) {
  co_await TimedOp(IoOp::kRead, channel, offset, len);
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
}

sim::Task<void> SimDevice::WriteTimed(uint32_t channel, uint64_t offset,
                                      uint64_t len) {
  co_await TimedOp(IoOp::kWrite, channel, offset, len);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(len, std::memory_order_relaxed);
}

size_t SimDevice::ChannelQueueDepth(uint32_t channel) const {
  if (channels_.empty()) return 0;
  const sim::Resource& ch = *channels_[channel % channels_.size()];
  return ch.queue_length() + (ch.capacity() - ch.free());
}

}  // namespace labstor::simdev
