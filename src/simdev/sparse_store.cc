#include "simdev/sparse_store.h"

#include <cstring>

namespace labstor::simdev {

Status SparseStore::Write(uint64_t offset, std::span<const uint8_t> data) {
  if (offset + data.size() > capacity_) {
    return Status::InvalidArgument("write beyond device capacity");
  }
  uint64_t pos = 0;
  while (pos < data.size()) {
    const uint64_t abs = offset + pos;
    const uint64_t page_index = abs / kPageSize;
    const uint64_t page_off = abs % kPageSize;
    const uint64_t chunk =
        std::min<uint64_t>(kPageSize - page_off, data.size() - pos);
    Shard& shard = ShardFor(page_index);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& page = shard.pages[page_index];
    if (page == nullptr) {
      page = std::make_unique<uint8_t[]>(kPageSize);
      std::memset(page.get(), 0, kPageSize);
    }
    std::memcpy(page.get() + page_off, data.data() + pos, chunk);
    pos += chunk;
  }
  return Status::Ok();
}

Status SparseStore::Read(uint64_t offset, std::span<uint8_t> out) const {
  if (offset + out.size() > capacity_) {
    return Status::InvalidArgument("read beyond device capacity");
  }
  uint64_t pos = 0;
  while (pos < out.size()) {
    const uint64_t abs = offset + pos;
    const uint64_t page_index = abs / kPageSize;
    const uint64_t page_off = abs % kPageSize;
    const uint64_t chunk =
        std::min<uint64_t>(kPageSize - page_off, out.size() - pos);
    const Shard& shard = ShardFor(page_index);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.pages.find(page_index);
    if (it == shard.pages.end()) {
      std::memset(out.data() + pos, 0, chunk);
    } else {
      std::memcpy(out.data() + pos, it->second.get() + page_off, chunk);
    }
    pos += chunk;
  }
  return Status::Ok();
}

size_t SparseStore::resident_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.pages.size();
  }
  return total;
}

}  // namespace labstor::simdev
