#include "simdev/registry.h"

namespace labstor::simdev {

Result<SimDevice*> DeviceRegistry::Create(const DeviceParams& params) {
  if (devices_.contains(params.name)) {
    return Status::AlreadyExists("device '" + params.name + "' exists");
  }
  auto device = std::make_unique<SimDevice>(env_, params);
  SimDevice* raw = device.get();
  devices_.emplace(params.name, std::move(device));
  return raw;
}

Result<SimDevice*> DeviceRegistry::Find(const std::string& name) const {
  const auto it = devices_.find(name);
  if (it == devices_.end()) {
    return Status::NotFound("no device named '" + name + "'");
  }
  return it->second.get();
}

std::vector<std::string> DeviceRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, _] : devices_) names.push_back(name);
  return names;
}

}  // namespace labstor::simdev
