// DAOS-style array interface (DESIGN.md §14), after "Exploring DAOS
// Interfaces and Performance" (PAPERS.md): a flat array of fixed-size
// cells, physically laid out as fixed-stride chunks round-robined
// across a set of backing targets — the daos_array chunked layout.
// Like DaosObjStore it is a thin interface mod: the layout math lives
// here, bytes move through a FileEndpoint (single-node GenericFS-style
// stack below; a MiniPfs-backed endpoint lives with the benches, which
// link labstor_pfs, so array extents can also place via the cluster
// shard map).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sim_runtime.h"
#include "core/stack.h"
#include "ipc/request.h"
#include "sim/task.h"

namespace labstor::labmods {

// Where array chunks land. `path` names a backing file (one per
// target per array object); offsets are file-relative.
class FileEndpoint {
 public:
  virtual ~FileEndpoint() = default;
  virtual sim::Task<Status> Create(uint32_t stream, std::string path) = 0;
  virtual sim::Task<Status> WriteAt(uint32_t stream, std::string path,
                                    uint64_t offset, uint64_t length) = 0;
  virtual sim::Task<Status> ReadAt(uint32_t stream, std::string path,
                                   uint64_t offset, uint64_t length) = 0;
  virtual sim::Task<Status> Stat(uint32_t stream, std::string path) = 0;
  virtual sim::Task<Status> Remove(uint32_t stream, std::string path) = 0;
};

// Single-node endpoint: GenericFS-style requests through
// SimRuntime::Execute against a LabFS stack mounted at `mount`.
class StackFileEndpoint final : public FileEndpoint {
 public:
  StackFileEndpoint(core::SimRuntime& rt, core::Stack& stack,
                    std::string mount, uint32_t qid_base = 1)
      : rt_(rt), stack_(stack), mount_(std::move(mount)), qid_base_(qid_base) {}

  sim::Task<Status> Create(uint32_t stream, std::string path) override;
  sim::Task<Status> WriteAt(uint32_t stream, std::string path,
                            uint64_t offset, uint64_t length) override;
  sim::Task<Status> ReadAt(uint32_t stream, std::string path, uint64_t offset,
                           uint64_t length) override;
  sim::Task<Status> Stat(uint32_t stream, std::string path) override;
  sim::Task<Status> Remove(uint32_t stream, std::string path) override;

 private:
  sim::Task<Status> Submit(uint32_t stream, ipc::OpCode op, std::string path,
                           uint64_t offset, uint64_t length, uint16_t flags);

  core::SimRuntime& rt_;
  core::Stack& stack_;
  std::string mount_;
  uint32_t qid_base_;
};

// daos_array layout parameters.
struct ArraySpec {
  uint64_t cell_size = 1;        // bytes per cell
  uint64_t chunk_size = 1 << 20; // bytes per contiguous chunk
  uint32_t targets = 4;          // fixed-stride round-robin width
};

// One physical access an array op decomposes into.
struct ArrayExtent {
  uint32_t target = 0;
  std::string path;     // backing file for (oid, target)
  uint64_t offset = 0;  // within that file
  uint64_t length = 0;
};

class DaosArray {
 public:
  DaosArray(FileEndpoint& endpoint, std::string root, ArraySpec spec)
      : endpoint_(endpoint), root_(std::move(root)), spec_(spec) {}

  // Layout: the byte range of cells [index, index+count) is split at
  // chunk boundaries; chunk c of an object lives on target
  // (c % targets), at file offset (c / targets) * chunk_size plus the
  // intra-chunk offset — DAOS's fixed-stride striping.
  std::vector<ArrayExtent> Extents(uint64_t oid, uint64_t index,
                                   uint64_t count) const;
  std::string PathFor(uint64_t oid, uint32_t target) const;

  // Array I/O: one endpoint access per extent, issued sequentially
  // from the caller's stream; first error wins.
  sim::Task<Status> Write(uint32_t stream, uint64_t oid, uint64_t index,
                          uint64_t count);
  sim::Task<Status> Read(uint32_t stream, uint64_t oid, uint64_t index,
                         uint64_t count);
  // Metadata surface: create/stat/remove the object's target files.
  sim::Task<Status> CreateObject(uint32_t stream, uint64_t oid);
  sim::Task<Status> StatObject(uint32_t stream, uint64_t oid);
  sim::Task<Status> RemoveObject(uint32_t stream, uint64_t oid);

  const ArraySpec& spec() const { return spec_; }
  uint64_t extent_ios() const { return extent_ios_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  sim::Task<Status> Io(uint32_t stream, uint64_t oid, uint64_t index,
                       uint64_t count, bool write);

  FileEndpoint& endpoint_;
  std::string root_;
  ArraySpec spec_;
  uint64_t extent_ios_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
};

}  // namespace labstor::labmods
