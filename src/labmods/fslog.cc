#include "labmods/fslog.h"

#include <algorithm>
#include <cstddef>

#include "common/crc32.h"

namespace labstor::labmods {

MetadataLog::MetadataLog(simdev::SimDevice* device, uint64_t region_offset,
                         uint32_t workers, uint64_t per_worker_records)
    : device_(device),
      region_offset_(region_offset),
      workers_(workers),
      per_worker_(per_worker_records),
      cursors_(workers, 0) {
  worker_mu_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    worker_mu_.push_back(std::make_unique<std::mutex>());
  }
}

Result<uint64_t> MetadataLog::Append(uint32_t worker, LogRecord record) {
  const uint32_t w = worker % workers_;
  std::lock_guard<std::mutex> lock(*worker_mu_[w]);
  if (cursors_[w] >= per_worker_) {
    return Status::ResourceExhausted("worker " + std::to_string(w) +
                                     " log region full");
  }
  record.magic = LogRecord::kMagic;
  record.seq = next_seq_.fetch_add(1, std::memory_order_acq_rel);
  record.crc = Crc32(&record, offsetof(LogRecord, crc));
  const uint64_t offset = region_offset_ +
                          (static_cast<uint64_t>(w) * per_worker_ +
                           cursors_[w]) * kSlot;
  const auto* bytes = reinterpret_cast<const uint8_t*>(&record);
  LABSTOR_RETURN_IF_ERROR(
      device_->WriteNow(offset, std::span(bytes, sizeof(LogRecord))));
  ++cursors_[w];
  return record.seq;
}

Status MetadataLog::Replay(
    const std::function<Status(const LogRecord&)>& fn) const {
  last_replay_torn_.store(0, std::memory_order_relaxed);
  std::vector<LogRecord> records;
  for (uint32_t w = 0; w < workers_; ++w) {
    std::lock_guard<std::mutex> lock(*worker_mu_[w]);
    for (uint64_t slot = 0; slot < per_worker_; ++slot) {
      LogRecord record;
      auto* bytes = reinterpret_cast<uint8_t*>(&record);
      const uint64_t offset =
          region_offset_ + (static_cast<uint64_t>(w) * per_worker_ + slot) * kSlot;
      LABSTOR_RETURN_IF_ERROR(
          device_->ReadNow(offset, std::span(bytes, sizeof(LogRecord))));
      if (record.magic != LogRecord::kMagic) break;  // end of this region
      if (record.crc != Crc32(&record, offsetof(LogRecord, crc))) {
        // Torn write: the slot was only partially persisted before a
        // crash. Everything after it in this region is younger, so
        // treat it as the end of the region's durable tail.
        torn_dropped_.fetch_add(1, std::memory_order_relaxed);
        last_replay_torn_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      records.push_back(record);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  for (const LogRecord& record : records) {
    LABSTOR_RETURN_IF_ERROR(fn(record));
  }
  return Status::Ok();
}

}  // namespace labstor::labmods
