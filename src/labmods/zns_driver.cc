#include "labmods/zns_driver.h"

#include "core/module_registry.h"

namespace labstor::labmods {

Status ZnsDriverMod::Init(const yaml::NodePtr& params,
                          core::ModContext& ctx) {
  if (ctx.devices == nullptr) {
    return Status::FailedPrecondition("no device registry in context");
  }
  const std::string device_name =
      params != nullptr ? params->GetString("device", "nvme0") : "nvme0";
  LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
  device_ = device;
  if (params != nullptr) {
    zone_size_ = params->GetUint("zone_size_mb", 4) << 20;
  }
  if (zone_size_ == 0 || device_->params().capacity_bytes < zone_size_) {
    return Status::InvalidArgument("zone size must fit the device");
  }
  const uint64_t count = device_->params().capacity_bytes / zone_size_;
  zones_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    zones_[i].start = i * zone_size_;
    zones_[i].size = zone_size_;
    zones_[i].write_pointer = zones_[i].start;
  }
  return Status::Ok();
}

Result<size_t> ZnsDriverMod::ZoneIndexFor(uint64_t offset) const {
  const size_t index = offset / zone_size_;
  if (index >= zones_.size()) {
    return Status::InvalidArgument("offset beyond the zoned namespace");
  }
  return index;
}

Status ZnsDriverMod::DoWrite(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (zone.state == ZoneState::kFull) {
    return Status::FailedPrecondition("zone is FULL; reset before writing");
  }
  if (req.offset != zone.write_pointer) {
    return Status::InvalidArgument(
        "ZNS writes must be sequential: offset " + std::to_string(req.offset) +
        " != write pointer " + std::to_string(zone.write_pointer));
  }
  if (req.offset + req.length > zone.start + zone.size) {
    return Status::InvalidArgument("write crosses the zone boundary");
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  exec.trace().Device(device_, simdev::IoOp::kWrite, req.channel, req.offset,
                      req.length);
  if (req.data != nullptr) {
    LABSTOR_RETURN_IF_ERROR(device_->WriteNow(req.offset, req.Payload()));
  }
  zone.write_pointer += req.length;
  zone.state = zone.write_pointer == zone.start + zone.size ? ZoneState::kFull
                                                            : ZoneState::kOpen;
  req.result_u64 = req.length;
  return Status::Ok();
}

Status ZnsDriverMod::DoAppend(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (zone.state == ZoneState::kFull ||
      zone.write_pointer + req.length > zone.start + zone.size) {
    return Status::ResourceExhausted("zone cannot fit the append");
  }
  const uint64_t assigned = zone.write_pointer;
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  exec.trace().Device(device_, simdev::IoOp::kWrite, req.channel, assigned,
                      req.length);
  if (req.data != nullptr) {
    LABSTOR_RETURN_IF_ERROR(device_->WriteNow(assigned, req.Payload()));
  }
  zone.write_pointer += req.length;
  zone.state = zone.write_pointer == zone.start + zone.size ? ZoneState::kFull
                                                            : ZoneState::kOpen;
  // The ZNS contract: the device tells the host where the data landed.
  req.result_u64 = assigned;
  return Status::Ok();
}

Status ZnsDriverMod::DoReset(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  zone.write_pointer = zone.start;
  zone.state = ZoneState::kEmpty;
  return Status::Ok();
}

Status ZnsDriverMod::DoRead(ipc::Request& req, core::StackExec& exec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
    const ZoneInfo& zone = zones_[index];
    if (req.offset + req.length > zone.write_pointer) {
      return Status::InvalidArgument("read beyond the zone's write pointer");
    }
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  exec.trace().Device(device_, simdev::IoOp::kRead, req.channel, req.offset,
                      req.length);
  if (req.data != nullptr) {
    LABSTOR_RETURN_IF_ERROR(device_->ReadNow(req.offset, req.Payload()));
  }
  req.result_u64 = req.length;
  return Status::Ok();
}

Status ZnsDriverMod::Process(ipc::Request& req, core::StackExec& exec) {
  switch (req.op) {
    case ipc::OpCode::kBlkWrite:
      return DoWrite(req, exec);
    case ipc::OpCode::kZoneAppend:
      return DoAppend(req, exec);
    case ipc::OpCode::kZoneReset:
      return DoReset(req, exec);
    case ipc::OpCode::kBlkRead:
      return DoRead(req, exec);
    case ipc::OpCode::kBlkFlush:
      exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
      return Status::Ok();
    default:
      return Status::InvalidArgument(
          std::string("zns driver cannot handle op ") +
          std::string(ipc::OpCodeName(req.op)));
  }
}

Status ZnsDriverMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<ZnsDriverMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  device_ = prev->device_;
  zone_size_ = prev->zone_size_;
  zones_ = prev->zones_;
  return Status::Ok();
}

size_t ZnsDriverMod::num_zones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return zones_.size();
}

Result<ZoneInfo> ZnsDriverMod::Zone(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= zones_.size()) return Status::InvalidArgument("no such zone");
  return zones_[index];
}

LABSTOR_REGISTER_LABMOD("zns_driver", 1, ZnsDriverMod);

}  // namespace labstor::labmods
