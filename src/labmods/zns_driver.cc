#include "labmods/zns_driver.h"

#include <algorithm>

#include "core/module_registry.h"
#include "labmods/drivers.h"

namespace labstor::labmods {

std::string_view ZoneStateName(ZoneState state) {
  switch (state) {
    case ZoneState::kEmpty: return "empty";
    case ZoneState::kOpen: return "open";
    case ZoneState::kClosed: return "closed";
    case ZoneState::kFull: return "full";
  }
  return "?";
}

Status ZnsDriverMod::Init(const yaml::NodePtr& params,
                          core::ModContext& ctx) {
  if (ctx.devices == nullptr) {
    return Status::FailedPrecondition("no device registry in context");
  }
  const std::string device_name =
      params != nullptr ? params->GetString("device", "nvme0") : "nvme0";
  LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
  device_ = device;
  LABSTOR_RETURN_IF_ERROR(ResolveCompletionMode(params, *device_));
  if (params != nullptr) {
    zone_size_ = params->GetUint("zone_size_mb", 4) << 20;
    max_open_zones_ =
        static_cast<uint32_t>(params->GetUint("max_open_zones", 0));
    conventional_zones_ =
        static_cast<uint32_t>(params->GetUint("conventional_zones", 0));
  }
  if (zone_size_ == 0 || device_->params().capacity_bytes < zone_size_) {
    return Status::InvalidArgument("zone size must fit the device");
  }
  const uint64_t count = device_->params().capacity_bytes / zone_size_;
  if (conventional_zones_ >= count) {
    return Status::InvalidArgument(
        "conventional_zones must leave at least one sequential zone");
  }
  zones_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    zones_[i].start = i * zone_size_;
    zones_[i].size = zone_size_;
    zones_[i].write_pointer = zones_[i].start;
    zones_[i].conventional = i < conventional_zones_;
  }
  open_count_ = 0;
  return Status::Ok();
}

Result<size_t> ZnsDriverMod::ZoneIndexFor(uint64_t offset) const {
  const size_t index = offset / zone_size_;
  if (index >= zones_.size()) {
    return Status::InvalidArgument("offset beyond the zoned namespace");
  }
  return index;
}

Status ZnsDriverMod::OpenZoneLocked(ZoneInfo& zone) {
  if (zone.state == ZoneState::kOpen) return Status::Ok();
  if (max_open_zones_ != 0 && open_count_ >= max_open_zones_) {
    return Status::ResourceExhausted(
        "open zone limit (" + std::to_string(max_open_zones_) +
        ") reached; close, finish, or reset a zone first");
  }
  zone.state = ZoneState::kOpen;
  ++open_count_;
  return Status::Ok();
}

void ZnsDriverMod::ReleaseOpenSlotLocked(ZoneInfo& zone) {
  if (zone.state == ZoneState::kOpen && open_count_ > 0) --open_count_;
}

Status ZnsDriverMod::DoWrite(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (req.offset + req.length > zone.start + zone.size) {
    return Status::InvalidArgument("write crosses the zone boundary");
  }
  if (!zone.conventional) {
    if (zone.state == ZoneState::kFull) {
      return Status::FailedPrecondition("zone is FULL; reset before writing");
    }
    if (req.offset != zone.write_pointer) {
      return Status::InvalidArgument(
          "ZNS writes must be sequential: offset " +
          std::to_string(req.offset) + " != write pointer " +
          std::to_string(zone.write_pointer));
    }
    // First write into an EMPTY/CLOSED zone implicitly opens it.
    LABSTOR_RETURN_IF_ERROR(OpenZoneLocked(zone));
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  exec.trace().Device(device_, simdev::IoOp::kWrite, req.channel, req.offset,
                      req.length);
  if (req.data != nullptr) {
    LABSTOR_RETURN_IF_ERROR(device_->WriteNow(req.offset, req.Payload()));
  }
  if (zone.conventional) {
    // Conventional zones have no state machine; the write pointer
    // tracks the high-water mark so reads stay meaningful.
    zone.write_pointer =
        std::max(zone.write_pointer, req.offset + req.length);
  } else {
    zone.write_pointer += req.length;
    if (zone.write_pointer == zone.start + zone.size) {
      ReleaseOpenSlotLocked(zone);
      zone.state = ZoneState::kFull;
    }
  }
  req.result_u64 = req.length;
  return Status::Ok();
}

Status ZnsDriverMod::DoAppend(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (zone.conventional) {
    return Status::InvalidArgument("zone append requires a sequential zone");
  }
  if (zone.state == ZoneState::kFull ||
      zone.write_pointer + req.length > zone.start + zone.size) {
    return Status::ResourceExhausted("zone cannot fit the append");
  }
  LABSTOR_RETURN_IF_ERROR(OpenZoneLocked(zone));
  const uint64_t assigned = zone.write_pointer;
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  exec.trace().Device(device_, simdev::IoOp::kWrite, req.channel, assigned,
                      req.length);
  if (req.data != nullptr) {
    LABSTOR_RETURN_IF_ERROR(device_->WriteNow(assigned, req.Payload()));
  }
  zone.write_pointer += req.length;
  if (zone.write_pointer == zone.start + zone.size) {
    ReleaseOpenSlotLocked(zone);
    zone.state = ZoneState::kFull;
  }
  // The ZNS contract: the device tells the host where the data landed.
  req.result_u64 = assigned;
  return Status::Ok();
}

Status ZnsDriverMod::DoReset(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  // The mapping-table invalidation occupies the device (priced from
  // zone_reset_latency); no data moves.
  exec.trace().Device(device_, simdev::IoOp::kZoneReset, req.channel,
                      zone.start, 0);
  device_->NoteZoneMgmt();
  ReleaseOpenSlotLocked(zone);
  zone.write_pointer = zone.start;
  if (!zone.conventional) zone.state = ZoneState::kEmpty;
  return Status::Ok();
}

Status ZnsDriverMod::DoOpen(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (zone.conventional) {
    return Status::InvalidArgument("conventional zones have no state machine");
  }
  if (zone.state == ZoneState::kFull) {
    return Status::FailedPrecondition("cannot open a FULL zone");
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  return OpenZoneLocked(zone);
}

Status ZnsDriverMod::DoClose(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (zone.conventional) {
    return Status::InvalidArgument("conventional zones have no state machine");
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  if (zone.state == ZoneState::kClosed) return Status::Ok();
  if (zone.state != ZoneState::kOpen) {
    return Status::FailedPrecondition(
        std::string("cannot close a zone in state ") +
        std::string(ZoneStateName(zone.state)));
  }
  ReleaseOpenSlotLocked(zone);
  zone.state = ZoneState::kClosed;
  return Status::Ok();
}

Status ZnsDriverMod::DoFinish(ipc::Request& req, core::StackExec& exec) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
  ZoneInfo& zone = zones_[index];
  if (zone.conventional) {
    return Status::InvalidArgument("conventional zones have no state machine");
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  if (zone.state == ZoneState::kFull) return Status::Ok();  // idempotent
  // Sealing pads the remainder; the controller charges the fixed
  // finish latency, no host data transfer.
  exec.trace().Device(device_, simdev::IoOp::kZoneFinish, req.channel,
                      zone.start, 0);
  device_->NoteZoneMgmt();
  ReleaseOpenSlotLocked(zone);
  zone.write_pointer = zone.start + zone.size;
  zone.state = ZoneState::kFull;
  return Status::Ok();
}

Status ZnsDriverMod::DoRead(ipc::Request& req, core::StackExec& exec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    LABSTOR_ASSIGN_OR_RETURN(index, ZoneIndexFor(req.offset));
    const ZoneInfo& zone = zones_[index];
    if (req.offset + req.length > zone.start + zone.size) {
      return Status::InvalidArgument("read crosses the zone boundary");
    }
    if (!zone.conventional &&
        req.offset + req.length > zone.write_pointer) {
      return Status::InvalidArgument("read beyond the zone's write pointer");
    }
  }
  exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
  exec.trace().Device(device_, simdev::IoOp::kRead, req.channel, req.offset,
                      req.length);
  if (req.data != nullptr) {
    LABSTOR_RETURN_IF_ERROR(device_->ReadNow(req.offset, req.Payload()));
  }
  req.result_u64 = req.length;
  return Status::Ok();
}

Status ZnsDriverMod::Process(ipc::Request& req, core::StackExec& exec) {
  switch (req.op) {
    case ipc::OpCode::kBlkWrite:
      return DoWrite(req, exec);
    case ipc::OpCode::kZoneAppend:
      return DoAppend(req, exec);
    case ipc::OpCode::kZoneReset:
      return DoReset(req, exec);
    case ipc::OpCode::kZoneOpen:
      return DoOpen(req, exec);
    case ipc::OpCode::kZoneClose:
      return DoClose(req, exec);
    case ipc::OpCode::kZoneFinish:
      return DoFinish(req, exec);
    case ipc::OpCode::kBlkRead:
      return DoRead(req, exec);
    case ipc::OpCode::kBlkFlush:
      exec.trace().Charge("zns_driver", exec.ctx().costs->spdk_submit);
      return Status::Ok();
    default:
      return Status::InvalidArgument(
          std::string("zns driver cannot handle op ") +
          std::string(ipc::OpCodeName(req.op)));
  }
}

Status ZnsDriverMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<ZnsDriverMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  device_ = prev->device_;
  zone_size_ = prev->zone_size_;
  max_open_zones_ = prev->max_open_zones_;
  conventional_zones_ = prev->conventional_zones_;
  zones_ = prev->zones_;
  open_count_ = prev->open_count_;
  return Status::Ok();
}

size_t ZnsDriverMod::num_zones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return zones_.size();
}

size_t ZnsDriverMod::open_zones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_count_;
}

Result<ZoneInfo> ZnsDriverMod::Zone(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= zones_.size()) return Status::InvalidArgument("no such zone");
  return zones_[index];
}

LABSTOR_REGISTER_LABMOD("zns_driver", 1, ZnsDriverMod);

}  // namespace labstor::labmods
