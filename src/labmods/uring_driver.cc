#include "labmods/uring_driver.h"

#include "core/module_registry.h"

namespace labstor::labmods {

LABSTOR_REGISTER_LABMOD("uring_driver", 1, UringDriverMod);

}  // namespace labstor::labmods
