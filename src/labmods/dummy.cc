#include "labmods/dummy.h"

#include "core/module_registry.h"

namespace labstor::labmods {

LABSTOR_REGISTER_LABMOD("dummy", 1, DummyMod);
LABSTOR_REGISTER_LABMOD("dummy", 2, DummyModV2);
LABSTOR_REGISTER_LABMOD("dummy", 3, DummyModV3);

}  // namespace labstor::labmods
