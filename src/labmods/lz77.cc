#include "labmods/lz77.h"

#include <array>
#include <cstring>

namespace labstor::labmods {

namespace {
constexpr size_t kWindow = 4096;       // 12-bit distances
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;       // 4-bit length field + kMinMatch
constexpr size_t kHashSize = 1 << 13;

size_t HashAt(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - 13);
}
}  // namespace

std::vector<uint8_t> Lz77Compress(std::span<const uint8_t> input) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + 16);
  // Most recent position for each 3-byte hash (single-entry chains:
  // fast and good enough for the workloads we model).
  std::array<size_t, kHashSize> head;
  head.fill(SIZE_MAX);

  size_t pos = 0;
  while (pos < input.size()) {
    const size_t flag_index = out.size();
    out.push_back(0);
    uint8_t flags = 0;
    for (int item = 0; item < 8 && pos < input.size(); ++item) {
      size_t match_len = 0;
      size_t match_dist = 0;
      if (pos + kMinMatch <= input.size()) {
        const size_t h = HashAt(&input[pos]);
        const size_t candidate = head[h];
        if (candidate != SIZE_MAX && candidate < pos &&
            pos - candidate < kWindow) {
          const size_t limit =
              std::min(kMaxMatch, input.size() - pos);
          size_t len = 0;
          while (len < limit && input[candidate + len] == input[pos + len]) {
            ++len;
          }
          if (len >= kMinMatch) {
            match_len = len;
            match_dist = pos - candidate;
          }
        }
        head[h] = pos;
      }
      if (match_len >= kMinMatch) {
        flags |= static_cast<uint8_t>(1u << item);
        const uint16_t token = static_cast<uint16_t>(
            ((match_dist & 0xFFF) << 4) | ((match_len - kMinMatch) & 0xF));
        out.push_back(static_cast<uint8_t>(token & 0xFF));
        out.push_back(static_cast<uint8_t>(token >> 8));
        // Insert hashes for the skipped positions to keep the window
        // warm (cheap: one per position).
        for (size_t i = 1; i < match_len && pos + i + kMinMatch <= input.size();
             ++i) {
          head[HashAt(&input[pos + i])] = pos + i;
        }
        pos += match_len;
      } else {
        out.push_back(input[pos]);
        ++pos;
      }
    }
    out[flag_index] = flags;
  }
  return out;
}

Result<std::vector<uint8_t>> Lz77Decompress(std::span<const uint8_t> input,
                                            size_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  size_t pos = 0;
  while (pos < input.size() && out.size() < expected_size) {
    const uint8_t flags = input[pos++];
    for (int item = 0; item < 8 && out.size() < expected_size; ++item) {
      if (flags & (1u << item)) {
        if (pos + 2 > input.size()) {
          return Status::Corruption("truncated match token");
        }
        const uint16_t token = static_cast<uint16_t>(
            input[pos] | (static_cast<uint16_t>(input[pos + 1]) << 8));
        pos += 2;
        const size_t dist = token >> 4;
        const size_t len = (token & 0xF) + kMinMatch;
        if (dist == 0 || dist > out.size()) {
          return Status::Corruption("match distance out of range");
        }
        const size_t start = out.size() - dist;
        for (size_t i = 0; i < len; ++i) out.push_back(out[start + i]);
      } else {
        if (pos >= input.size()) {
          return Status::Corruption("truncated literal");
        }
        out.push_back(input[pos++]);
      }
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("decompressed size mismatch: got " +
                              std::to_string(out.size()) + " want " +
                              std::to_string(expected_size));
  }
  return out;
}

}  // namespace labstor::labmods
