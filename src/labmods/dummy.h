// Dummy LabMod: the message sink used by the live-upgrade evaluation
// (Table I). Counts messages; v2 exists so upgrades have somewhere to
// go and proves StateUpdate carries the counter across versions.
#pragma once

#include <atomic>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

class DummyMod : public core::LabMod {
 public:
  explicit DummyMod(uint32_t version = 1)
      : core::LabMod("dummy", core::ModType::kDummy, version) {}

  Status Process(ipc::Request& req, core::StackExec& exec) override {
    (void)exec;
    messages_.fetch_add(1, std::memory_order_relaxed);
    req.result_u64 = messages_.load(std::memory_order_relaxed);
    return Status::Ok();
  }

  Status StateUpdate(core::LabMod& old) override {
    auto* prev = dynamic_cast<DummyMod*>(&old);
    if (prev == nullptr) {
      return Status::InvalidArgument("StateUpdate from incompatible mod");
    }
    messages_.store(prev->messages_.load());
    return Status::Ok();
  }

  sim::Time EstProcessingTime() const override { return 100; }

  uint64_t messages() const { return messages_.load(); }

 private:
  std::atomic<uint64_t> messages_{0};
};

class DummyModV2 final : public DummyMod {
 public:
  DummyModV2() : DummyMod(2) {}
};

class DummyModV3 final : public DummyMod {
 public:
  DummyModV3() : DummyMod(3) {}
};

}  // namespace labstor::labmods
