#include "labmods/daos_array.h"

#include <algorithm>

namespace labstor::labmods {

sim::Task<Status> StackFileEndpoint::Submit(uint32_t stream, ipc::OpCode op,
                                            std::string path, uint64_t offset,
                                            uint64_t length, uint16_t flags) {
  ipc::Request req;
  req.op = op;
  req.client_pid = stream;
  req.flags = flags;
  req.offset = offset;
  req.length = length;
  req.SetPath(mount_ + "/" + path);
  co_return co_await rt_.Execute(qid_base_ + stream, stack_, req);
}

sim::Task<Status> StackFileEndpoint::Create(uint32_t stream, std::string path) {
  return Submit(stream, ipc::OpCode::kCreate, std::move(path), 0, 0,
                ipc::kOpenCreate);
}

sim::Task<Status> StackFileEndpoint::WriteAt(uint32_t stream, std::string path,
                                             uint64_t offset,
                                             uint64_t length) {
  return Submit(stream, ipc::OpCode::kWrite, std::move(path), offset, length,
                0);
}

sim::Task<Status> StackFileEndpoint::ReadAt(uint32_t stream, std::string path,
                                            uint64_t offset, uint64_t length) {
  return Submit(stream, ipc::OpCode::kRead, std::move(path), offset, length,
                0);
}

sim::Task<Status> StackFileEndpoint::Stat(uint32_t stream, std::string path) {
  return Submit(stream, ipc::OpCode::kStat, std::move(path), 0, 0, 0);
}

sim::Task<Status> StackFileEndpoint::Remove(uint32_t stream, std::string path) {
  return Submit(stream, ipc::OpCode::kUnlink, std::move(path), 0, 0, 0);
}

std::string DaosArray::PathFor(uint64_t oid, uint32_t target) const {
  return root_ + "/oid" + std::to_string(oid) + ".t" + std::to_string(target);
}

std::vector<ArrayExtent> DaosArray::Extents(uint64_t oid, uint64_t index,
                                            uint64_t count) const {
  std::vector<ArrayExtent> out;
  uint64_t pos = index * spec_.cell_size;        // byte offset in the array
  uint64_t remaining = count * spec_.cell_size;  // bytes left to map
  const uint32_t targets = spec_.targets == 0 ? 1 : spec_.targets;
  while (remaining > 0) {
    const uint64_t chunk = pos / spec_.chunk_size;
    const uint64_t intra = pos % spec_.chunk_size;
    const uint64_t run = std::min(remaining, spec_.chunk_size - intra);
    ArrayExtent ext;
    ext.target = static_cast<uint32_t>(chunk % targets);
    ext.path = PathFor(oid, ext.target);
    ext.offset = (chunk / targets) * spec_.chunk_size + intra;
    ext.length = run;
    out.push_back(std::move(ext));
    pos += run;
    remaining -= run;
  }
  return out;
}

sim::Task<Status> DaosArray::Io(uint32_t stream, uint64_t oid, uint64_t index,
                                uint64_t count, bool write) {
  const std::vector<ArrayExtent> extents = Extents(oid, index, count);
  for (const ArrayExtent& ext : extents) {
    ++extent_ios_;
    if (write) {
      bytes_written_ += ext.length;
      const Status st =
          co_await endpoint_.WriteAt(stream, ext.path, ext.offset, ext.length);
      if (!st.ok()) co_return st;
    } else {
      bytes_read_ += ext.length;
      const Status st =
          co_await endpoint_.ReadAt(stream, ext.path, ext.offset, ext.length);
      if (!st.ok()) co_return st;
    }
  }
  co_return Status::Ok();
}

sim::Task<Status> DaosArray::Write(uint32_t stream, uint64_t oid,
                                   uint64_t index, uint64_t count) {
  return Io(stream, oid, index, count, /*write=*/true);
}

sim::Task<Status> DaosArray::Read(uint32_t stream, uint64_t oid,
                                  uint64_t index, uint64_t count) {
  return Io(stream, oid, index, count, /*write=*/false);
}

sim::Task<Status> DaosArray::CreateObject(uint32_t stream, uint64_t oid) {
  const uint32_t targets = spec_.targets == 0 ? 1 : spec_.targets;
  for (uint32_t t = 0; t < targets; ++t) {
    const Status st = co_await endpoint_.Create(stream, PathFor(oid, t));
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

sim::Task<Status> DaosArray::StatObject(uint32_t stream, uint64_t oid) {
  // DAOS gets array size from target 0's metadata; one stat suffices.
  co_return co_await endpoint_.Stat(stream, PathFor(oid, 0));
}

sim::Task<Status> DaosArray::RemoveObject(uint32_t stream, uint64_t oid) {
  const uint32_t targets = spec_.targets == 0 ? 1 : spec_.targets;
  for (uint32_t t = 0; t < targets; ++t) {
    const Status st = co_await endpoint_.Remove(stream, PathFor(oid, t));
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

}  // namespace labstor::labmods
