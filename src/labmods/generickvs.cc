#include "labmods/generickvs.h"

#include <algorithm>
#include <cstring>

namespace labstor::labmods {

Result<ipc::Request*> GenericKvs::AcquireRequest(uint64_t payload_bytes) {
  if (slot_ == nullptr || slot_capacity_ < payload_bytes) {
    const uint64_t capacity = std::max<uint64_t>(payload_bytes, 4096);
    LABSTOR_ASSIGN_OR_RETURN(req, client_.NewRequest(capacity));
    slot_ = req;
    slot_capacity_ = capacity;
  }
  uint8_t* const data = slot_->data;
  slot_->Reuse();
  slot_->data = data;
  slot_->client_uid = client_.creds().uid;
  return slot_;
}

Status GenericKvs::Put(const std::string& key,
                       std::span<const uint8_t> value) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(key));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(value.size()));
  req->op = ipc::OpCode::kPut;
  req->SetPath(key);
  req->length = value.size();
  std::memcpy(req->data, value.data(), value.size());
  LABSTOR_RETURN_IF_ERROR(client_.Execute(*req, *stack));
  return req->ToStatus();
}

Result<uint64_t> GenericKvs::Get(const std::string& key,
                                 std::span<uint8_t> out) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(key));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(out.size()));
  req->op = ipc::OpCode::kGet;
  req->SetPath(key);
  req->length = out.size();
  LABSTOR_RETURN_IF_ERROR(client_.Execute(*req, *stack));
  LABSTOR_RETURN_IF_ERROR(req->ToStatus());
  std::memcpy(out.data(), req->data, req->result_u64);
  return req->result_u64;
}

Status GenericKvs::Delete(const std::string& key) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(key));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kDelete;
  req->SetPath(key);
  LABSTOR_RETURN_IF_ERROR(client_.Execute(*req, *stack));
  return req->ToStatus();
}

Status GenericKvs::RegisterChain(const std::string& scope,
                                 const ipc::ChainProgram& program) {
  LABSTOR_RETURN_IF_ERROR(program.Validate());
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(scope));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(ipc::EncodedChainBytes()));
  req->op = ipc::OpCode::kChainRegister;
  req->SetPath(scope);
  req->length = ipc::EncodedChainBytes();
  ipc::EncodeChainProgram(program, req->data);
  LABSTOR_RETURN_IF_ERROR(client_.Execute(*req, *stack));
  return req->ToStatus();
}

Result<uint64_t> GenericKvs::ExecChain(uint32_t chain_id,
                                       const std::string& start_key,
                                       std::span<uint8_t> out) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(start_key));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(out.size()));
  req->op = ipc::OpCode::kChainExec;
  req->chain_id = chain_id;
  req->SetPath(start_key);
  req->length = out.size();
  LABSTOR_RETURN_IF_ERROR(client_.Execute(*req, *stack));
  LABSTOR_RETURN_IF_ERROR(req->ToStatus());
  const uint64_t copied = std::min<uint64_t>(req->result_u64, out.size());
  if (copied > 0) std::memcpy(out.data(), req->data, copied);
  return copied;
}

Result<bool> GenericKvs::Exists(const std::string& key) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(key));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kExists;
  req->SetPath(key);
  LABSTOR_RETURN_IF_ERROR(client_.Execute(*req, *stack));
  LABSTOR_RETURN_IF_ERROR(req->ToStatus());
  return req->result_u64 != 0;
}

}  // namespace labstor::labmods
