// Scalable per-worker block allocator (paper §III-E):
//
//   "LabFS uses a scalable per-worker block allocator, which evenly
//    divides device blocks among the pool of workers. Workers can
//    steal from one another if more space is needed. If the number of
//    workers decreases, free blocks of the decommissioned workers are
//    assigned to running workers. If new workers are added, they will
//    steal a (configurable) number of blocks from the other workers."
//
// Pools hold coalescing free-range maps, so sequential workloads cost
// O(1) memory regardless of file size. Each pool has its own lock:
// same-worker allocations never contend, matching the paper's
// contention-minimization claim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace labstor::labmods {

struct BlockExtent {
  uint64_t start = 0;  // block index
  uint64_t count = 0;
};

class PerWorkerAllocator {
 public:
  // Blocks [first_block, first_block + total_blocks) divided evenly
  // among `num_workers` pools.
  PerWorkerAllocator(uint64_t first_block, uint64_t total_blocks,
                     uint32_t num_workers);

  // Rebuild from an explicit free set (crash recovery: the survivors
  // are whatever the replayed inode maps do not claim). Ranges are
  // distributed round-robin across pools.
  PerWorkerAllocator(const std::vector<BlockExtent>& free_ranges,
                     uint32_t num_workers);

  // Allocate up to `count` blocks for `worker`, preferring contiguous
  // runs from its own pool, stealing from the richest pool when dry.
  // Returns fewer/multiple extents as fragmentation dictates; fails
  // only when the device is truly full.
  Result<std::vector<BlockExtent>> Alloc(uint32_t worker, uint64_t count);

  // Return blocks to `worker`'s pool (coalescing).
  void Free(uint32_t worker, BlockExtent extent);

  // Worker-pool reconfiguration. Shrinking hands the leaving pools'
  // free ranges to survivors; growing makes new pools steal
  // `steal_blocks` from the richest existing pools.
  Status Resize(uint32_t new_num_workers, uint64_t steal_blocks = 1024);

  uint64_t FreeBlocks() const;
  uint64_t FreeBlocksOf(uint32_t worker) const;
  uint64_t steals() const { return steals_; }
  uint32_t num_workers() const;

 private:
  struct Pool {
    mutable std::mutex mu;
    std::map<uint64_t, uint64_t> free_ranges;  // start -> count
    uint64_t free_blocks = 0;
  };

  // Takes up to `count` blocks from `pool` (caller holds pool.mu).
  std::vector<BlockExtent> TakeLocked(Pool& pool, uint64_t count);
  void GiveLocked(Pool& pool, BlockExtent extent);

  mutable std::mutex pools_mu_;  // guards the pools_ vector shape
  std::vector<std::unique_ptr<Pool>> pools_;
  uint64_t steals_ = 0;
};

}  // namespace labstor::labmods
