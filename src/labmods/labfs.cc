#include "labmods/labfs.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/string_util.h"
#include "core/module_registry.h"

namespace labstor::labmods {

Status LabFsMod::Init(const yaml::NodePtr& params, core::ModContext& ctx) {
  if (ctx.devices == nullptr) {
    return Status::FailedPrecondition("no device registry in context");
  }
  const std::string device_name =
      params != nullptr ? params->GetString("device", "nvme0") : "nvme0";
  LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
  device_ = device;
  workers_ = ctx.num_workers > 0 ? ctx.num_workers : 1;
  const uint64_t log_records_per_worker =
      params != nullptr ? params->GetUint("log_records_per_worker", 16384)
                        : 16384;
  // Device partitioning: several I/O systems can share one device by
  // owning disjoint regions (the "multiple views over the same device"
  // deployments of §III-B). Defaults to the whole device.
  const uint64_t region_offset =
      (params != nullptr ? params->GetUint("region_offset_mb", 0) : 0) << 20;
  uint64_t region_size =
      (params != nullptr ? params->GetUint("region_size_mb", 0) : 0) << 20;
  if (region_size == 0) {
    if (region_offset >= device_->params().capacity_bytes) {
      return Status::InvalidArgument("region starts beyond the device");
    }
    region_size = device_->params().capacity_bytes - region_offset;
  }
  if (region_offset + region_size > device_->params().capacity_bytes) {
    return Status::InvalidArgument("region exceeds device capacity");
  }
  log_ = std::make_unique<MetadataLog>(device_, region_offset, workers_,
                                       log_records_per_worker);
  const uint64_t log_blocks =
      (log_->region_bytes() + kBlockSize - 1) / kBlockSize;
  const uint64_t region_blocks = region_size / kBlockSize;
  if (log_blocks + 16 > region_blocks) {
    return Status::InvalidArgument("region too small for the metadata log");
  }
  data_first_block_ = region_offset / kBlockSize + log_blocks;
  data_blocks_ = region_blocks - log_blocks;
  alloc_ = std::make_unique<PerWorkerAllocator>(data_first_block_,
                                                data_blocks_, workers_);
  // Log-structured placement for zoned devices: data blocks are
  // zone-appended instead of allocator-placed, so LabFS can sit on the
  // zns_driver's sequential zones. The metadata log keeps overwriting
  // its region in place — deployments put it in conventional zones.
  if (params != nullptr && params->GetBool("zns_placement", false)) {
    const uint64_t zone_bytes = params->GetUint("zone_size_mb", 4) << 20;
    placement_ = std::make_unique<ZnsPlacement>(
        data_first_block_ * kBlockSize,
        (data_first_block_ + data_blocks_) * kBlockSize, zone_bytes,
        kBlockSize);
    if (placement_->num_zones() == 0) {
      return Status::InvalidArgument(
          "zns_placement: data region smaller than one zone");
    }
  }
  return Status::Ok();
}

size_t LabFsMod::ShardFor(std::string_view path) const {
  return std::hash<std::string_view>()(path) % kShards;
}

LabFsMod::InodePtr LabFsMod::Lookup(const std::string& path) const {
  const Shard& shard = shards_[ShardFor(path)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.inodes.find(path);
  return it == shard.inodes.end() ? nullptr : it->second;
}

void LabFsMod::IndexById(const InodePtr& inode) {
  std::lock_guard<std::mutex> lock(by_id_mu_);
  by_id_[inode->id] = inode;
}

Result<std::pair<LabFsMod::InodePtr, bool>> LabFsMod::LookupOrCreate(
    const std::string& path, bool is_dir, const ipc::Request& req) {
  Shard& shard = shards_[ShardFor(path)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.inodes.find(path); it != shard.inodes.end()) {
    return std::make_pair(it->second, false);
  }
  auto inode = std::make_shared<Inode>();
  inode->id = next_inode_id_.fetch_add(1, std::memory_order_relaxed);
  inode->path = path;
  inode->is_dir = is_dir;
  inode->prov.creator_uid = req.client_uid;
  inode->prov.creator_pid = req.client_pid;
  shard.inodes.emplace(path, inode);
  IndexById(inode);
  return std::make_pair(inode, true);
}

Status LabFsMod::EraseByPath(const std::string& path) {
  Shard& shard = shards_[ShardFor(path)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.inodes.find(path);
  if (it == shard.inodes.end()) {
    return Status::NotFound("no file '" + path + "'");
  }
  {
    std::lock_guard<std::mutex> id_lock(by_id_mu_);
    by_id_.erase(it->second->id);
  }
  shard.inodes.erase(it);
  return Status::Ok();
}

void LabFsMod::FreeBlock(uint32_t worker, uint64_t phys) {
  if (placement_ != nullptr) {
    // Nothing to hand back: the block just goes dead in its zone, and
    // the zone becomes reclaimable once its whole contents are dead.
    placement_->Invalidate(phys * kBlockSize);
    return;
  }
  alloc_->Free(worker, BlockExtent{phys, 1});
}

void LabFsMod::LogCharge(core::StackExec& exec, uint32_t worker) {
  // Log appends are flushed asynchronously in segment-sized batches
  // (log-structured group commit): one device write absorbs
  // kLogFlushBatch records, and it never gates client completion.
  constexpr uint64_t kLogFlushBatch = 32;
  const uint64_t pending = log_charge_pending_[worker % kMaxWorkerSlots]
                               .fetch_add(1, std::memory_order_relaxed) + 1;
  if (pending % kLogFlushBatch == 0) {
    exec.trace().Device(device_, simdev::IoOp::kWrite, worker % 31, 0,
                        kLogFlushBatch * sizeof(LogRecord), /*async=*/true);
  }
}

Status LabFsMod::AppendLog(LogRecord record, uint32_t worker,
                           core::StackExec& exec) {
  LABSTOR_ASSIGN_OR_RETURN(seq, log_->Append(worker, record));
  (void)seq;
  LogCharge(exec, worker);
  return Status::Ok();
}

Status LabFsMod::Process(ipc::Request& req, core::StackExec& exec) {
  // Namespace-changing ops pay the full create path (inode init, log
  // record construction, hashmap insert); data ops pay the lighter
  // per-request metadata cost of Fig. 4(a).
  switch (req.op) {
    case ipc::OpCode::kOpen:
      exec.trace().Charge("labfs", (req.flags & ipc::kOpenCreate) != 0
                                       ? exec.ctx().costs->fs_create
                                       : exec.ctx().costs->fs_metadata);
      break;
    case ipc::OpCode::kCreate:
    case ipc::OpCode::kMkdir:
    case ipc::OpCode::kUnlink:
    case ipc::OpCode::kRename:
      exec.trace().Charge("labfs", exec.ctx().costs->fs_create);
      break;
    default:
      exec.trace().Charge("labfs", exec.ctx().costs->fs_metadata);
      break;
  }
  switch (req.op) {
    case ipc::OpCode::kOpen:
    case ipc::OpCode::kCreate:
      return DoOpen(req, exec);
    case ipc::OpCode::kWrite:
      return DoWrite(req, exec);
    case ipc::OpCode::kRead:
      return DoRead(req, exec);
    case ipc::OpCode::kStat:
      return DoStat(req, exec);
    case ipc::OpCode::kUnlink:
      return DoUnlink(req, exec);
    case ipc::OpCode::kRename:
      return DoRename(req, exec);
    case ipc::OpCode::kMkdir:
      return DoMkdir(req, exec);
    case ipc::OpCode::kReaddir:
      return DoReaddir(req, exec);
    case ipc::OpCode::kTruncate:
      return DoTruncate(req, exec);
    case ipc::OpCode::kFsync:
      return DoFsync(req, exec);
    case ipc::OpCode::kClose:
      return Status::Ok();  // fd lifecycle is GenericFS's concern
    default:
      return Status::InvalidArgument(std::string("labfs cannot handle op ") +
                                     std::string(ipc::OpCodeName(req.op)));
  }
}

Status LabFsMod::DoOpen(ipc::Request& req, core::StackExec& exec) {
  const std::string path(req.GetPath());
  if (path.empty()) return Status::InvalidArgument("open with empty path");
  const bool create =
      req.op == ipc::OpCode::kCreate || (req.flags & ipc::kOpenCreate) != 0;
  if (!create) {
    const InodePtr inode = Lookup(path);
    if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
    if (inode->is_dir) return Status::InvalidArgument("'" + path + "' is a directory");
    req.result_u64 = inode->id;
    return Status::Ok();
  }
  LABSTOR_ASSIGN_OR_RETURN(found, LookupOrCreate(path, /*is_dir=*/false, req));
  auto& [inode, created] = found;
  if (created) {
    LogRecord record;
    record.op = LogOp::kCreate;
    record.inode_id = inode->id;
    record.a = 0;
    record.SetPath(path);
    if (const Status st = AppendLog(record, req.worker, exec); !st.ok()) {
      // Roll back: an inode whose create record never made the log
      // would exist until the next crash and then silently vanish.
      (void)EraseByPath(path);
      return st;
    }
  }
  if ((req.flags & ipc::kOpenTrunc) != 0 && !created) {
    std::lock_guard<std::mutex> lock(inode->mu);
    for (uint64_t phys : inode->blocks) {
      if (phys != 0) FreeBlock(req.worker, phys);
    }
    inode->blocks.clear();
    inode->size = 0;
    LogRecord record;
    record.op = LogOp::kTruncate;
    record.inode_id = inode->id;
    record.a = 0;
    LABSTOR_RETURN_IF_ERROR(AppendLog(record, req.worker, exec));
  }
  req.result_u64 = inode->id;
  return Status::Ok();
}

Status LabFsMod::EnsureBlocks(Inode& inode, uint64_t offset, uint64_t length,
                              uint32_t worker, core::StackExec& exec) {
  const uint64_t first = offset / kBlockSize;
  const uint64_t last = (offset + length + kBlockSize - 1) / kBlockSize;
  if (inode.blocks.size() < last) inode.blocks.resize(last, 0);
  uint64_t fb = first;
  while (fb < last) {
    if (inode.blocks[fb] != 0) {
      ++fb;
      continue;
    }
    // Count the run of missing blocks and allocate it in one shot.
    uint64_t run = 0;
    while (fb + run < last && inode.blocks[fb + run] == 0) ++run;
    LABSTOR_ASSIGN_OR_RETURN(extents, alloc_->Alloc(worker, run));
    // Map every allocated extent into the inode BEFORE logging any of
    // them. If a log append fails partway (region full, injected EIO),
    // each block is then reachable through the inode and is returned by
    // unlink/truncate — interleaving assign-and-log used to strand the
    // not-yet-assigned extents outside both the inode and the
    // allocator, leaking them until remount. Crash consistency is
    // unaffected: an unlogged mapping simply doesn't survive replay,
    // and RebuildAllocatorFromInodes returns its blocks to the free
    // set.
    uint64_t assigned = fb;
    for (const BlockExtent& extent : extents) {
      for (uint64_t i = 0; i < extent.count; ++i) {
        inode.blocks[assigned + i] = extent.start + i;
      }
      assigned += extent.count;
    }
    assigned = fb;
    for (const BlockExtent& extent : extents) {
      LogRecord record;
      record.op = LogOp::kMap;
      record.inode_id = inode.id;
      record.a = assigned;
      record.b = extent.start;
      record.c = extent.count;
      LABSTOR_RETURN_IF_ERROR(AppendLog(record, worker, exec));
      assigned += extent.count;
    }
    fb += run;
  }
  return Status::Ok();
}

Status LabFsMod::ForwardData(Inode& inode, ipc::Request& req,
                             core::StackExec& exec, bool is_write) {
  const uint64_t offset = req.offset;
  const uint64_t length = req.length;
  uint8_t* const data = req.data;
  const ipc::OpCode orig_op = req.op;

  Status st;
  uint64_t consumed = 0;
  while (consumed < length && st.ok()) {
    const uint64_t abs = offset + consumed;
    const uint64_t fb = abs / kBlockSize;
    const uint64_t intra = abs % kBlockSize;
    const uint64_t phys = inode.blocks[fb];
    if (phys == 0) {
      if (is_write) {
        st = Status::Internal("hole in allocated write range");
        break;
      }
      // Sparse hole: reads return zeros without touching the device.
      const uint64_t run_bytes =
          std::min(kBlockSize - intra, length - consumed);
      if (data != nullptr) {
        std::memset(data + consumed, 0, run_bytes);
      }
      consumed += run_bytes;
      continue;
    }
    // Extend across physically-contiguous file blocks.
    uint64_t run_bytes = kBlockSize - intra;
    uint64_t next_fb = fb + 1;
    while (consumed + run_bytes < length &&
           next_fb < inode.blocks.size() &&
           inode.blocks[next_fb] == inode.blocks[next_fb - 1] + 1) {
      run_bytes += kBlockSize;
      ++next_fb;
    }
    run_bytes = std::min(run_bytes, length - consumed);
    if (placement_ != nullptr) {
      // The ZNS driver rejects I/O that crosses a zone boundary, and a
      // physically-contiguous run can end one zone exactly where the
      // next begins — split the forwarded request there.
      const uint64_t start = phys * kBlockSize + intra;
      const uint64_t zone_end =
          (start / placement_->zone_bytes() + 1) * placement_->zone_bytes();
      run_bytes = std::min(run_bytes, zone_end - start);
    }
    req.op = is_write ? ipc::OpCode::kBlkWrite : ipc::OpCode::kBlkRead;
    req.offset = phys * kBlockSize + intra;
    req.length = run_bytes;
    req.data = data == nullptr ? nullptr : data + consumed;
    st = exec.Forward(req);
    consumed += run_bytes;
  }
  req.op = orig_op;
  req.offset = offset;
  req.length = length;
  req.data = data;
  return st;
}

Status LabFsMod::WriteZns(Inode& inode, ipc::Request& req,
                          core::StackExec& exec) {
  const uint64_t offset = req.offset;
  const uint64_t length = req.length;
  uint8_t* const data = req.data;
  const ipc::OpCode orig_op = req.op;
  const uint32_t worker = req.worker;
  const uint64_t last = (offset + length + kBlockSize - 1) / kBlockSize;
  if (inode.blocks.size() < last) inode.blocks.resize(last, 0);

  alignas(8) uint8_t scratch[kBlockSize];
  Status st;
  uint64_t consumed = 0;
  while (consumed < length && st.ok()) {
    const uint64_t abs = offset + consumed;
    const uint64_t fb = abs / kBlockSize;
    const uint64_t intra = abs % kBlockSize;
    const uint64_t chunk = std::min(kBlockSize - intra, length - consumed);
    const uint64_t old_phys = inode.blocks[fb];
    const bool partial = intra != 0 || chunk != kBlockSize;

    // Sequential zones never overwrite in place: partial block writes
    // are read-modify-write into a scratch block, then appended whole.
    uint8_t* payload = data == nullptr ? nullptr : data + consumed;
    if (data != nullptr && partial) {
      if (old_phys != 0) {
        req.op = ipc::OpCode::kBlkRead;
        req.offset = old_phys * kBlockSize;
        req.length = kBlockSize;
        req.data = scratch;
        if (st = exec.Forward(req); !st.ok()) break;
      } else {
        std::memset(scratch, 0, kBlockSize);
      }
      std::memcpy(scratch + intra, data + consumed, chunk);
      payload = scratch;
    }

    // Pick the append target; a freshly-activated zone is reset first
    // so the device's write pointer agrees with the policy's cursor.
    std::unique_lock<std::mutex> io_lock(zns_write_mu_);
    const auto target = placement_->NextAppendTarget();
    if (!target.ok()) {
      st = target.status();
      break;
    }
    if (target->needs_reset) {
      req.op = ipc::OpCode::kZoneReset;
      req.offset = target->zone_start;
      req.length = 0;
      req.data = nullptr;
      if (st = exec.Forward(req); !st.ok()) break;
    }
    req.op = ipc::OpCode::kZoneAppend;
    req.offset = target->zone_start;
    req.length = kBlockSize;
    req.data = payload;
    if (st = exec.Forward(req); !st.ok()) break;
    // The device told us where the block landed; remap and log it.
    const uint64_t new_phys = req.result_u64 / kBlockSize;
    placement_->CommitAppend(req.result_u64);
    io_lock.unlock();
    inode.blocks[fb] = new_phys;
    LogRecord record;
    record.op = LogOp::kMap;
    record.inode_id = inode.id;
    record.a = fb;
    record.b = new_phys;
    record.c = 1;
    if (st = AppendLog(record, worker, exec); !st.ok()) break;
    if (old_phys != 0) placement_->Invalidate(old_phys * kBlockSize);
    consumed += chunk;
  }
  req.op = orig_op;
  req.offset = offset;
  req.length = length;
  req.data = data;
  return st;
}

Status LabFsMod::DoWrite(ipc::Request& req, core::StackExec& exec) {
  const std::string path(req.GetPath());
  InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  if (req.length == 0) {
    req.result_u64 = 0;
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(inode->mu);
  if (placement_ != nullptr) {
    LABSTOR_RETURN_IF_ERROR(WriteZns(*inode, req, exec));
  } else {
    LABSTOR_RETURN_IF_ERROR(
        EnsureBlocks(*inode, req.offset, req.length, req.worker, exec));
    LABSTOR_RETURN_IF_ERROR(
        ForwardData(*inode, req, exec, /*is_write=*/true));
  }
  const uint64_t end = req.offset + req.length;
  if (end > inode->size) {
    inode->size = end;
    LogRecord record;
    record.op = LogOp::kSize;
    record.inode_id = inode->id;
    record.a = end;
    LABSTOR_RETURN_IF_ERROR(AppendLog(record, req.worker, exec));
  }
  ++inode->prov.writes;
  req.result_u64 = req.length;
  return Status::Ok();
}

Status LabFsMod::DoRead(ipc::Request& req, core::StackExec& exec) {
  const std::string path(req.GetPath());
  InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  std::lock_guard<std::mutex> lock(inode->mu);
  if (req.offset >= inode->size) {
    req.result_u64 = 0;
    return Status::Ok();  // EOF
  }
  const uint64_t readable = std::min(req.length, inode->size - req.offset);
  const uint64_t orig_length = req.length;
  req.length = readable;
  const Status st = ForwardData(*inode, req, exec, /*is_write=*/false);
  req.length = orig_length;
  LABSTOR_RETURN_IF_ERROR(st);
  ++inode->prov.reads;
  req.result_u64 = readable;
  return Status::Ok();
}

Status LabFsMod::DoStat(ipc::Request& req, core::StackExec& exec) {
  (void)exec;
  const std::string path(req.GetPath());
  const InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  std::lock_guard<std::mutex> lock(inode->mu);
  req.result_u64 = inode->size;
  req.flags = inode->is_dir ? 1 : 0;
  return Status::Ok();
}

Status LabFsMod::DoUnlink(ipc::Request& req, core::StackExec& exec) {
  const std::string path(req.GetPath());
  const InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  {
    std::lock_guard<std::mutex> lock(inode->mu);
    for (const uint64_t phys : inode->blocks) {
      if (phys != 0) FreeBlock(req.worker, phys);
    }
    inode->blocks.clear();
  }
  LABSTOR_RETURN_IF_ERROR(EraseByPath(path));
  LogRecord record;
  record.op = LogOp::kUnlink;
  record.inode_id = inode->id;
  return AppendLog(record, req.worker, exec);
}

Status LabFsMod::DoRename(ipc::Request& req, core::StackExec& exec) {
  // Convention: req.path = old path, payload = new path (NUL-free).
  const std::string from(req.GetPath());
  if (req.data == nullptr || req.length == 0) {
    return Status::InvalidArgument("rename requires a destination payload");
  }
  const std::string to(reinterpret_cast<const char*>(req.data), req.length);
  const size_t src_shard = ShardFor(from);
  const size_t dst_shard = ShardFor(to);
  InodePtr inode;
  {
    // Lock shards in index order to avoid deadlock.
    Shard& first = shards_[std::min(src_shard, dst_shard)];
    Shard& second = shards_[std::max(src_shard, dst_shard)];
    std::unique_lock<std::mutex> lock1(first.mu);
    std::unique_lock<std::mutex> lock2;
    if (src_shard != dst_shard) {
      lock2 = std::unique_lock<std::mutex>(second.mu);
    }
    Shard& src = shards_[src_shard];
    Shard& dst = shards_[dst_shard];
    const auto it = src.inodes.find(from);
    if (it == src.inodes.end()) {
      return Status::NotFound("no file '" + from + "'");
    }
    if (dst.inodes.contains(to)) {
      return Status::AlreadyExists("'" + to + "' exists");
    }
    inode = it->second;
    src.inodes.erase(it);
    inode->path = to;
    dst.inodes.emplace(to, inode);
  }
  LogRecord record;
  record.op = LogOp::kRename;
  record.inode_id = inode->id;
  record.SetPath(to);
  LABSTOR_RETURN_IF_ERROR(AppendLog(record, req.worker, exec));

  // Directory rename carries its subtree: every inode under the old
  // prefix is re-keyed (and re-logged, so replay reproduces it).
  if (inode->is_dir) {
    const std::string old_prefix = from + "/";
    std::vector<InodePtr> children;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [path, child] : shard.inodes) {
        if (StartsWith(path, old_prefix)) children.push_back(child);
      }
    }
    for (const InodePtr& child : children) {
      const std::string new_path =
          to + "/" + child->path.substr(old_prefix.size());
      Shard& old_shard = shards_[ShardFor(child->path)];
      {
        std::lock_guard<std::mutex> lock(old_shard.mu);
        old_shard.inodes.erase(child->path);
      }
      child->path = new_path;
      Shard& new_shard = shards_[ShardFor(new_path)];
      {
        std::lock_guard<std::mutex> lock(new_shard.mu);
        new_shard.inodes[new_path] = child;
      }
      LogRecord child_record;
      child_record.op = LogOp::kRename;
      child_record.inode_id = child->id;
      child_record.SetPath(new_path);
      LABSTOR_RETURN_IF_ERROR(AppendLog(child_record, req.worker, exec));
    }
  }
  return Status::Ok();
}

Status LabFsMod::DoMkdir(ipc::Request& req, core::StackExec& exec) {
  const std::string path(req.GetPath());
  LABSTOR_ASSIGN_OR_RETURN(found, LookupOrCreate(path, /*is_dir=*/true, req));
  auto& [inode, created] = found;
  if (!created) return Status::AlreadyExists("'" + path + "' exists");
  LogRecord record;
  record.op = LogOp::kCreate;
  record.inode_id = inode->id;
  record.a = 1;
  record.SetPath(path);
  if (const Status st = AppendLog(record, req.worker, exec); !st.ok()) {
    (void)EraseByPath(path);  // same rollback as DoOpen's create path
    return st;
  }
  return Status::Ok();
}

Status LabFsMod::DoReaddir(ipc::Request& req, core::StackExec& exec) {
  (void)exec;
  const std::string dir(req.GetPath());
  const std::string prefix = dir == "/" ? "/" : dir + "/";
  uint64_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [path, inode] : shard.inodes) {
      if (StartsWith(path, prefix) &&
          path.find('/', prefix.size()) == std::string::npos) {
        ++count;
      }
    }
  }
  req.result_u64 = count;
  return Status::Ok();
}

Status LabFsMod::DoTruncate(ipc::Request& req, core::StackExec& exec) {
  const std::string path(req.GetPath());
  const InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  const uint64_t new_size = req.offset;
  {
    std::lock_guard<std::mutex> lock(inode->mu);
    const uint64_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
    for (uint64_t fb = keep_blocks; fb < inode->blocks.size(); ++fb) {
      if (inode->blocks[fb] != 0) FreeBlock(req.worker, inode->blocks[fb]);
    }
    if (inode->blocks.size() > keep_blocks) inode->blocks.resize(keep_blocks);
    inode->size = new_size;
  }
  LogRecord record;
  record.op = LogOp::kTruncate;
  record.inode_id = inode->id;
  record.a = new_size;
  return AppendLog(record, req.worker, exec);
}

Status LabFsMod::DoFsync(ipc::Request& req, core::StackExec& exec) {
  const ipc::OpCode orig = req.op;
  req.op = ipc::OpCode::kBlkFlush;
  const Status st = exec.HasDownstream() ? exec.Forward(req) : Status::Ok();
  req.op = orig;
  return st;
}

Status LabFsMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<LabFsMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  device_ = prev->device_;
  data_first_block_ = prev->data_first_block_;
  data_blocks_ = prev->data_blocks_;
  alloc_ = std::move(prev->alloc_);
  log_ = std::move(prev->log_);
  placement_ = std::move(prev->placement_);
  workers_ = prev->workers_;
  for (size_t i = 0; i < kShards; ++i) {
    std::scoped_lock lock(shards_[i].mu, prev->shards_[i].mu);
    shards_[i].inodes = std::move(prev->shards_[i].inodes);
  }
  {
    std::scoped_lock lock(by_id_mu_, prev->by_id_mu_);
    by_id_ = std::move(prev->by_id_);
  }
  next_inode_id_.store(prev->next_inode_id_.load());
  return Status::Ok();
}

Status LabFsMod::StateRepair() {
  if (log_ == nullptr) return Status::Ok();  // never initialized
  // Drop all in-memory inodes and reconstruct them from the on-device
  // log — the paper's crash-consistency story, executed for real.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inodes.clear();
  }
  {
    std::lock_guard<std::mutex> lock(by_id_mu_);
    by_id_.clear();
  }
  uint64_t max_id = 0;
  std::unordered_map<uint64_t, InodePtr> by_id;
  const Status replay = log_->Replay([&](const LogRecord& record) -> Status {
    switch (record.op) {
      case LogOp::kCreate: {
        auto inode = std::make_shared<Inode>();
        inode->id = record.inode_id;
        inode->path = std::string(record.GetPath());
        inode->is_dir = record.a != 0;
        by_id[inode->id] = inode;
        max_id = std::max(max_id, inode->id);
        return Status::Ok();
      }
      case LogOp::kUnlink:
        by_id.erase(record.inode_id);
        return Status::Ok();
      case LogOp::kRename: {
        const auto it = by_id.find(record.inode_id);
        if (it == by_id.end()) {
          return Status::Corruption("rename of unknown inode in log");
        }
        it->second->path = std::string(record.GetPath());
        return Status::Ok();
      }
      case LogOp::kTruncate: {
        const auto it = by_id.find(record.inode_id);
        if (it == by_id.end()) return Status::Ok();
        Inode& inode = *it->second;
        inode.size = record.a;
        const uint64_t keep = (record.a + kBlockSize - 1) / kBlockSize;
        if (inode.blocks.size() > keep) inode.blocks.resize(keep);
        return Status::Ok();
      }
      case LogOp::kMap: {
        const auto it = by_id.find(record.inode_id);
        if (it == by_id.end()) return Status::Ok();
        Inode& inode = *it->second;
        const uint64_t last = record.a + record.c;
        if (inode.blocks.size() < last) inode.blocks.resize(last, 0);
        for (uint64_t i = 0; i < record.c; ++i) {
          inode.blocks[record.a + i] = record.b + i;
        }
        return Status::Ok();
      }
      case LogOp::kSize: {
        const auto it = by_id.find(record.inode_id);
        if (it == by_id.end()) return Status::Ok();
        it->second->size = record.a;
        return Status::Ok();
      }
      case LogOp::kTxnBegin:
      case LogOp::kTxnCommit:
        // Pushdown chain markers: LabFS has no chain-mutable state, so
        // its replay treats the bracket as a no-op.
        return Status::Ok();
      case LogOp::kInvalid:
        return Status::Corruption("invalid record in log");
    }
    return Status::Ok();
  });
  LABSTOR_RETURN_IF_ERROR(replay);
  for (const auto& [id, inode] : by_id) {
    Shard& shard = shards_[ShardFor(inode->path)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inodes[inode->path] = inode;
  }
  {
    std::lock_guard<std::mutex> lock(by_id_mu_);
    by_id_ = std::move(by_id);
  }
  next_inode_id_.store(max_id + 1);
  if (placement_ != nullptr) {
    RebuildPlacementFromInodes();
  } else {
    RebuildAllocatorFromInodes();
  }
  return Status::Ok();
}

void LabFsMod::RebuildPlacementFromInodes() {
  // Valid counts = one per live (inode, file-block) mapping. The
  // active zone stays unset: the first post-recovery append activates
  // and RESETS a fully-dead zone, so the device's residual write
  // pointers never have to be trusted.
  placement_->Reset();
  std::lock_guard<std::mutex> lock(by_id_mu_);
  for (const auto& [id, inode] : by_id_) {
    for (const uint64_t phys : inode->blocks) {
      if (phys != 0) placement_->MarkLive(phys * kBlockSize);
    }
  }
}

void LabFsMod::RebuildAllocatorFromInodes() {
  // Free set = data region minus every block claimed by an inode.
  std::vector<uint64_t> used;
  {
    std::lock_guard<std::mutex> lock(by_id_mu_);
    for (const auto& [id, inode] : by_id_) {
      for (const uint64_t phys : inode->blocks) {
        if (phys != 0) used.push_back(phys);
      }
    }
  }
  std::sort(used.begin(), used.end());
  std::vector<BlockExtent> free_ranges;
  uint64_t cursor = data_first_block_;
  const uint64_t end = data_first_block_ + data_blocks_;
  for (const uint64_t block : used) {
    if (block > cursor) {
      free_ranges.push_back(BlockExtent{cursor, block - cursor});
    }
    cursor = std::max(cursor, block + 1);
  }
  if (cursor < end) free_ranges.push_back(BlockExtent{cursor, end - cursor});
  alloc_ = std::make_unique<PerWorkerAllocator>(free_ranges, workers_);
}

Result<uint64_t> LabFsMod::FileSize(const std::string& path) const {
  const InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  std::lock_guard<std::mutex> lock(inode->mu);
  return inode->size;
}

Result<Provenance> LabFsMod::GetProvenance(const std::string& path) const {
  const InodePtr inode = Lookup(path);
  if (inode == nullptr) return Status::NotFound("no file '" + path + "'");
  std::lock_guard<std::mutex> lock(inode->mu);
  return inode->prov;
}

bool LabFsMod::Exists(const std::string& path) const {
  return Lookup(path) != nullptr;
}

size_t LabFsMod::file_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    count += shard.inodes.size();
  }
  return count;
}

std::vector<std::string> LabFsMod::ListPaths() const {
  std::vector<std::string> paths;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [path, inode] : shard.inodes) paths.push_back(path);
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

LabFsMod::BlockAudit LabFsMod::AuditBlocks() const {
  BlockAudit audit;
  audit.data_blocks = data_blocks_;
  audit.free_blocks = alloc_ != nullptr ? alloc_->FreeBlocks() : 0;
  std::vector<uint64_t> mapped;
  {
    std::lock_guard<std::mutex> lock(by_id_mu_);
    for (const auto& [id, inode] : by_id_) {
      std::lock_guard<std::mutex> inode_lock(inode->mu);
      for (const uint64_t phys : inode->blocks) {
        if (phys != 0) mapped.push_back(phys);
      }
    }
  }
  std::sort(mapped.begin(), mapped.end());
  for (size_t i = 0; i < mapped.size(); ++i) {
    if (i > 0 && mapped[i] == mapped[i - 1]) {
      ++audit.duplicate_mappings;
      continue;
    }
    if (mapped[i] < data_first_block_ ||
        mapped[i] >= data_first_block_ + data_blocks_) {
      ++audit.out_of_region;
    }
    ++audit.mapped_blocks;
  }
  return audit;
}

LABSTOR_REGISTER_LABMOD("labfs", 1, LabFsMod);
LABSTOR_REGISTER_LABMOD("labfs", 2, LabFsModV2);

}  // namespace labstor::labmods
