// GenericKVS: the client-side interface LabMod for key-value access.
// Resolves each key's namespace path against the LabStack Namespace
// and routes put/get/delete — one request per operation (no fd
// lifecycle at all, the point of Fig. 9(b)).
#pragma once

#include <mutex>
#include <span>
#include <string>

#include "core/client.h"
#include "ipc/chain.h"

namespace labstor::labmods {

class GenericKvs {
 public:
  explicit GenericKvs(core::Client& client) : client_(client) {}

  // Keys are namespaced paths, e.g. "kvs::/store/user42".
  Status Put(const std::string& key, std::span<const uint8_t> value);
  Result<uint64_t> Get(const std::string& key, std::span<uint8_t> out);
  Status Delete(const std::string& key);
  Result<bool> Exists(const std::string& key);

  // --- pushdown chains (DESIGN.md §12) ---
  // Register `program` with the pushdown mod on the stack `scope`
  // resolves to (any path under the stack's mount works).
  Status RegisterChain(const std::string& scope,
                       const ipc::ChainProgram& program);
  // Run registered chain `chain_id` starting from `start_key`: one
  // submission executes every hop at the device-queue layer. The final
  // scratch contents are copied into `out`; returns bytes copied.
  Result<uint64_t> ExecChain(uint32_t chain_id, const std::string& start_key,
                             std::span<uint8_t> out);

 private:
  Result<ipc::Request*> AcquireRequest(uint64_t payload_bytes);

  core::Client& client_;
  std::mutex mu_;
  ipc::Request* slot_ = nullptr;
  uint64_t slot_capacity_ = 0;
};

}  // namespace labstor::labmods
