#include "labmods/permissions.h"

#include "common/string_util.h"
#include "core/module_registry.h"

namespace labstor::labmods {

Status PermissionsMod::Init(const yaml::NodePtr& params,
                            core::ModContext& ctx) {
  (void)ctx;
  if (params == nullptr) return Status::Ok();
  default_allow_ = params->GetString("default", "allow") != "deny";
  const auto load_rules = [&](const char* key, std::vector<Rule>* out) -> Status {
    const yaml::NodePtr rules = params->Get(key);
    if (rules == nullptr) return Status::Ok();
    if (!rules->IsSequence()) {
      return Status::InvalidArgument(std::string(key) + " must be a list");
    }
    for (const yaml::NodePtr& entry : rules->items()) {
      if (!entry->IsMapping()) {
        return Status::InvalidArgument("ACL rule must be a mapping");
      }
      Rule rule;
      rule.prefix = entry->GetString("prefix", "");
      if (rule.prefix.empty()) {
        return Status::InvalidArgument("ACL rule requires a prefix");
      }
      if (const yaml::NodePtr uids = entry->Get("uids");
          uids != nullptr && uids->IsSequence()) {
        for (const yaml::NodePtr& uid : uids->items()) {
          auto value = uid->AsUint();
          if (!value.ok()) return value.status();
          rule.uids.insert(static_cast<ipc::UserId>(*value));
        }
      }
      out->push_back(std::move(rule));
    }
    return Status::Ok();
  };
  LABSTOR_RETURN_IF_ERROR(load_rules("allow", &allow_rules_));
  LABSTOR_RETURN_IF_ERROR(load_rules("deny", &deny_rules_));
  return Status::Ok();
}

bool PermissionsMod::Allowed(std::string_view path, ipc::UserId uid) const {
  if (uid == 0) return true;  // root
  // Deny rules dominate; then allow rules; then the default.
  for (const Rule& rule : deny_rules_) {
    if (StartsWith(path, rule.prefix) && rule.uids.contains(uid)) return false;
  }
  for (const Rule& rule : allow_rules_) {
    if (StartsWith(path, rule.prefix) && rule.uids.contains(uid)) return true;
  }
  return default_allow_;
}

Status PermissionsMod::Process(ipc::Request& req, core::StackExec& exec) {
  exec.trace().Charge("permissions", exec.ctx().costs->permission_check);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++checks_;
    if (!Allowed(req.GetPath(), req.client_uid)) {
      return Status::PermissionDenied(
          "uid " + std::to_string(req.client_uid) + " denied on '" +
          std::string(req.GetPath()) + "'");
    }
  }
  return exec.Forward(req);
}

Status PermissionsMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<PermissionsMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  default_allow_ = prev->default_allow_;
  allow_rules_ = prev->allow_rules_;
  deny_rules_ = prev->deny_rules_;
  checks_ = prev->checks_;
  return Status::Ok();
}

void PermissionsMod::AllowPrefix(const std::string& prefix, ipc::UserId uid) {
  std::lock_guard<std::mutex> lock(mu_);
  allow_rules_.push_back(Rule{prefix, {uid}});
}

void PermissionsMod::DenyPrefix(const std::string& prefix, ipc::UserId uid) {
  std::lock_guard<std::mutex> lock(mu_);
  deny_rules_.push_back(Rule{prefix, {uid}});
}

LABSTOR_REGISTER_LABMOD("permissions", 1, PermissionsMod);

}  // namespace labstor::labmods
