// Compression LabMod (the paper's "Active Storage" example): block
// writes are compressed before they continue downstream; block reads
// are decompressed after the device returns them. The mapping
// offset -> (stored length, original length) is mod state, migrated on
// upgrade and revalidated on crash repair.
#pragma once

#include <mutex>
#include <unordered_map>

#include "core/labmod.h"
#include "core/stack_exec.h"
#include "labmods/lz77.h"

namespace labstor::labmods {

class CompressMod final : public core::LabMod {
 public:
  CompressMod() : core::LabMod("compress", core::ModType::kTransform, 1) {}

  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  // Compression is the canonical computational (CQ) workload: ~20ms
  // for the 32MB requests of Fig. 5(b).
  sim::Time EstProcessingTime() const override { return 20 * sim::kMs; }
  sim::Time EstTotalTime(const ipc::Request& req) const override {
    return sim::DefaultCosts().CompressCost(req.length);
  }

  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }
  double ratio() const {
    return bytes_in_ == 0 ? 1.0
                          : static_cast<double>(bytes_out_) /
                                static_cast<double>(bytes_in_);
  }

 private:
  struct Extent {
    uint64_t stored_length = 0;
    uint64_t original_length = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Extent> extents_;  // by device offset
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
};

}  // namespace labstor::labmods
