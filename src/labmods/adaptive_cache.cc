#include "labmods/adaptive_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/module_registry.h"

namespace labstor::labmods {

Status AdaptiveCacheMod::Init(const yaml::NodePtr& params,
                              core::ModContext& ctx) {
  if (ctx.telemetry != nullptr) {
    hits_metric_ =
        ctx.telemetry->metrics().GetCounter("cache.adaptive_cache.hits");
    misses_metric_ =
        ctx.telemetry->metrics().GetCounter("cache.adaptive_cache.misses");
  }
  if (params != nullptr) {
    capacity_pages_ = params->GetUint("capacity_pages", 4096);
    decay_ = params->GetDouble("decay", 0.999);
  }
  if (capacity_pages_ == 0) {
    return Status::InvalidArgument("cache capacity must be > 0 pages");
  }
  if (decay_ <= 0.0 || decay_ > 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1]");
  }
  return Status::Ok();
}

void AdaptiveCacheMod::Heat(Page& page) {
  // Lazy exponential decay since the page's last access, then bump.
  const uint64_t elapsed = tick_ - page.last_tick;
  if (elapsed > 0 && decay_ < 1.0) {
    page.heat *= std::pow(decay_, static_cast<double>(std::min<uint64_t>(elapsed, 512)));
  }
  page.heat += 1.0;
  page.last_tick = tick_;
}

AdaptiveCacheMod::Page& AdaptiveCacheMod::GetOrCreate(uint64_t key) {
  ++tick_;
  const auto it = pages_.find(key);
  if (it != pages_.end()) {
    Heat(it->second);
    return it->second;
  }
  if (pages_.size() >= capacity_pages_) {
    // Evict the coldest page (decayed to now).
    auto coldest = pages_.begin();
    double coldest_heat = 1e300;
    for (auto scan = pages_.begin(); scan != pages_.end(); ++scan) {
      const uint64_t idle = tick_ - scan->second.last_tick;
      const double heat =
          scan->second.heat *
          std::pow(decay_, static_cast<double>(std::min<uint64_t>(idle, 512)));
      if (heat < coldest_heat) {
        coldest_heat = heat;
        coldest = scan;
      }
    }
    pages_.erase(coldest);
  }
  Page& page = pages_[key];
  page.data = std::make_unique<uint8_t[]>(kPageSize);
  page.heat = 1.0;
  page.last_tick = tick_;
  return page;
}

Status AdaptiveCacheMod::Process(ipc::Request& req, core::StackExec& exec) {
  const sim::SoftwareCosts& costs = *exec.ctx().costs;
  switch (req.op) {
    case ipc::OpCode::kBlkWrite: {
      exec.trace().Charge("cache", costs.lru_cache_fixed +
                                       costs.CopyCost(req.length));
      if (req.data != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t pos = 0;
        while (pos < req.length) {
          const uint64_t abs = req.offset + pos;
          const uint64_t key = abs / kPageSize;
          const uint64_t page_off = abs % kPageSize;
          const uint64_t chunk =
              std::min<uint64_t>(kPageSize - page_off, req.length - pos);
          Page& page = GetOrCreate(key);
          std::memcpy(page.data.get() + page_off, req.data + pos, chunk);
          pos += chunk;
        }
      }
      return exec.Forward(req);
    }
    case ipc::OpCode::kBlkRead: {
      bool all_hit = req.data != nullptr;
      if (req.data != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t pos = 0;
        while (pos < req.length) {
          const uint64_t abs = req.offset + pos;
          if (!pages_.contains(abs / kPageSize)) {
            all_hit = false;
            break;
          }
          pos += kPageSize - (abs % kPageSize);
        }
        if (all_hit) {
          pos = 0;
          while (pos < req.length) {
            const uint64_t abs = req.offset + pos;
            const uint64_t key = abs / kPageSize;
            const uint64_t page_off = abs % kPageSize;
            const uint64_t chunk =
                std::min<uint64_t>(kPageSize - page_off, req.length - pos);
            Page& page = GetOrCreate(key);  // also heats it
            std::memcpy(req.data + pos, page.data.get() + page_off, chunk);
            pos += chunk;
          }
        }
      }
      exec.trace().Charge("cache", costs.lru_cache_fixed +
                                       costs.CopyCost(req.length));
      if (all_hit) {
        ++hits_;
        if (hits_metric_ != nullptr) hits_metric_->Inc(req.worker);
        req.result_u64 = req.length;
        return Status::Ok();
      }
      ++misses_;
      if (misses_metric_ != nullptr) misses_metric_->Inc(req.worker);
      LABSTOR_RETURN_IF_ERROR(exec.Forward(req));
      if (req.data != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t pos = 0;
        while (pos < req.length) {
          const uint64_t abs = req.offset + pos;
          const uint64_t key = abs / kPageSize;
          const uint64_t page_off = abs % kPageSize;
          const uint64_t chunk =
              std::min<uint64_t>(kPageSize - page_off, req.length - pos);
          Page& page = GetOrCreate(key);
          std::memcpy(page.data.get() + page_off, req.data + pos, chunk);
          pos += chunk;
        }
      }
      return Status::Ok();
    }
    default:
      return exec.Forward(req);
  }
}

Status AdaptiveCacheMod::StateUpdate(core::LabMod& old) {
  // Accept state from a previous AdaptiveCacheMod, or warm-start from
  // a retiring LruCacheMod being hot-swapped out (cross-mod upgrades
  // are the paper's "swapping one LabMod I/O scheduler for another").
  if (auto* prev = dynamic_cast<AdaptiveCacheMod*>(&old); prev != nullptr) {
    std::scoped_lock lock(mu_, prev->mu_);
    pages_ = std::move(prev->pages_);
    tick_ = prev->tick_;
    hits_ = prev->hits_;
    misses_ = prev->misses_;
    capacity_pages_ = prev->capacity_pages_;
    decay_ = prev->decay_;
    return Status::Ok();
  }
  return Status::InvalidArgument("StateUpdate from incompatible mod");
}

size_t AdaptiveCacheMod::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

LABSTOR_REGISTER_LABMOD("adaptive_cache", 1, AdaptiveCacheMod);

}  // namespace labstor::labmods
