// DAOS-style object interface (DESIGN.md §14), after "Exploring DAOS
// Interfaces and Performance" (PAPERS.md): an object is addressed by a
// 128-bit object id and stores values under (dkey, akey) pairs, with
// multi-akey update/fetch as the unit of I/O. Here it is a thin
// *interface LabMod*: object addressing maps onto the LabKVS key space
// ("<root>/o<hi>.<lo>/<dkey>/<akey>") and every operation reuses the
// existing stack plumbing through a KvEndpoint — one per deployment
// shape (single-node SimRuntime stack below; the cluster shard-map
// endpoint lives with the benches, which link labstor_cluster).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sim_runtime.h"
#include "core/stack.h"
#include "ipc/request.h"
#include "sim/task.h"

namespace labstor::labmods {

// Where object keys land: a LabKVS stack, a cluster, a mock.
// `stream` identifies the issuing client (queue / tenant / gateway
// selector, endpoint-defined). Keys are endpoint-relative (no mount).
class KvEndpoint {
 public:
  virtual ~KvEndpoint() = default;
  virtual sim::Task<Status> Put(uint32_t stream, std::string key,
                                uint64_t size) = 0;
  virtual sim::Task<Status> Get(uint32_t stream, std::string key) = 0;
  virtual sim::Task<Status> Delete(uint32_t stream, std::string key) = 0;
};

// Single-node endpoint: one request per op through SimRuntime::Execute
// against a LabKVS stack mounted at `mount` (e.g. "kvs::/bench").
// Queue ids are stream-indexed off `qid_base`; the bench registers
// them (SimRuntime::RegisterQueue) before traffic.
class StackKvEndpoint final : public KvEndpoint {
 public:
  StackKvEndpoint(core::SimRuntime& rt, core::Stack& stack, std::string mount,
                  uint32_t qid_base = 1)
      : rt_(rt), stack_(stack), mount_(std::move(mount)), qid_base_(qid_base) {}

  sim::Task<Status> Put(uint32_t stream, std::string key,
                        uint64_t size) override;
  sim::Task<Status> Get(uint32_t stream, std::string key) override;
  sim::Task<Status> Delete(uint32_t stream, std::string key) override;

 private:
  sim::Task<Status> Submit(uint32_t stream, ipc::OpCode op, std::string key,
                           uint64_t size);

  core::SimRuntime& rt_;
  core::Stack& stack_;
  std::string mount_;
  uint32_t qid_base_;
};

// DAOS object id: 128 bits, rendered "o<hi>.<lo>".
struct ObjectId {
  uint64_t hi = 0;
  uint64_t lo = 0;
};

// One akey extent of a multi-key update.
struct AkeyUpdate {
  std::string akey;
  uint64_t size = 0;
};

// The object store proper: multi-key put/get over the endpoint.
class DaosObjStore {
 public:
  explicit DaosObjStore(KvEndpoint& endpoint, std::string root = "obj")
      : endpoint_(endpoint), root_(std::move(root)) {}

  // dkey+akey addressing, DAOS daos_obj_update/fetch/punch shapes.
  // Multi-key forms issue one KVS op per akey, sequentially from the
  // caller's stream (a DAOS client serializes one RPC's extents), and
  // fail on the first error.
  sim::Task<Status> Update(uint32_t stream, ObjectId oid, std::string dkey,
                           AkeyUpdate update);
  sim::Task<Status> UpdateMulti(uint32_t stream, ObjectId oid,
                                std::string dkey,
                                std::vector<AkeyUpdate> updates);
  sim::Task<Status> Fetch(uint32_t stream, ObjectId oid, std::string dkey,
                          std::string akey);
  sim::Task<Status> FetchMulti(uint32_t stream, ObjectId oid,
                               std::string dkey,
                               std::vector<std::string> akeys);
  // Punch = delete the named akeys under the dkey.
  sim::Task<Status> Punch(uint32_t stream, ObjectId oid, std::string dkey,
                          std::vector<std::string> akeys);

  // Key-space mapping (exposed for tests and for cluster adapters that
  // need the label an op routes by).
  std::string KeyFor(const ObjectId& oid, const std::string& dkey,
                     const std::string& akey) const;

  uint64_t updates() const { return updates_; }
  uint64_t fetches() const { return fetches_; }
  uint64_t punches() const { return punches_; }
  uint64_t keys_touched() const { return keys_touched_; }

 private:
  KvEndpoint& endpoint_;
  std::string root_;
  uint64_t updates_ = 0;
  uint64_t fetches_ = 0;
  uint64_t punches_ = 0;
  uint64_t keys_touched_ = 0;
};

}  // namespace labstor::labmods
