#include "labmods/schedulers.h"

#include "core/module_registry.h"

namespace labstor::labmods {

Status NoOpSchedMod::Init(const yaml::NodePtr& params,
                          core::ModContext& ctx) {
  (void)ctx;
  if (params != nullptr) {
    num_queues_ = static_cast<uint32_t>(params->GetUint("num_queues", 31));
  }
  if (num_queues_ == 0) return Status::InvalidArgument("num_queues must be > 0");
  return Status::Ok();
}

Status NoOpSchedMod::Process(ipc::Request& req, core::StackExec& exec) {
  exec.trace().Charge("sched", exec.ctx().costs->sched_noop);
  // "Maps I/O requests to device queues based on the CPU core the
  // request originated" — the client pid stands in for the core id.
  req.channel = req.client_pid % num_queues_;
  return exec.Forward(req);
}

Status BlkSwitchSchedMod::Init(const yaml::NodePtr& params,
                               core::ModContext& ctx) {
  if (params != nullptr) {
    num_queues_ = static_cast<uint32_t>(params->GetUint("num_queues", 31));
    lat_size_threshold_ = params->GetUint("lat_size_threshold", 16 * 1024);
    const std::string device_name = params->GetString("device", "");
    if (!device_name.empty()) {
      LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
      device_ = device;
    }
  }
  if (num_queues_ < 2) {
    return Status::InvalidArgument("blk-switch needs >= 2 queues");
  }
  return Status::Ok();
}

Status BlkSwitchSchedMod::Process(ipc::Request& req, core::StackExec& exec) {
  exec.trace().Charge("sched", exec.ctx().costs->sched_blkswitch);
  const bool throughput_bound = req.length > lat_size_threshold_;
  // Latency requests use the lower half of the queue space; throughput
  // requests the upper half. Within each class, pick the least-loaded
  // queue so no single hardware queue head-of-line blocks.
  const uint32_t begin = throughput_bound ? num_queues_ / 2 : 0;
  const uint32_t end = throughput_bound ? num_queues_ : num_queues_ / 2;
  uint32_t best = begin;
  size_t best_depth = SIZE_MAX;
  for (uint32_t ch = begin; ch < end; ++ch) {
    const size_t depth =
        device_ != nullptr ? device_->ChannelQueueDepth(ch) : 0;
    if (depth < best_depth) {
      best_depth = depth;
      best = ch;
    }
  }
  req.channel = best;
  return exec.Forward(req);
}

LABSTOR_REGISTER_LABMOD("noop_sched", 1, NoOpSchedMod);
LABSTOR_REGISTER_LABMOD("blk_switch_sched", 1, BlkSwitchSchedMod);

}  // namespace labstor::labmods
