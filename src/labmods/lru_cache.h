// LRU page cache LabMod.
//
// A real write-through page cache over 4KB pages: writes are absorbed
// into the cache (data copy — the 17% of Fig. 4a) and forwarded; reads
// are served from cache on hit and forwarded + filled on miss.
// Capacity-bounded with least-recently-used eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

class LruCacheMod final : public core::LabMod {
 public:
  // `version` lets tests register higher versions of the same code
  // object (live-upgrade regression coverage); the shipped registration
  // stays v1.
  explicit LruCacheMod(uint32_t version = 1)
      : core::LabMod("lru_cache", core::ModType::kCache, version) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;

  Status StateUpdate(core::LabMod& old) override;
  sim::Time EstProcessingTime() const override { return 5 * sim::kUs; }

  // Introspection for tests/benches.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t resident_pages() const;
  size_t capacity_pages() const { return capacity_pages_; }

 private:
  static constexpr uint64_t kPageSize = 4096;

  struct Page {
    uint64_t key;  // offset / kPageSize
    std::unique_ptr<uint8_t[]> data;
  };
  using LruList = std::list<Page>;

  // Returns the page for `key`, creating (and possibly evicting) if
  // absent. Marks it most-recently-used. Caller holds mu_.
  Page& TouchOrCreate(uint64_t key, bool* created);

  size_t capacity_pages_ = 4096;  // 16 MiB default
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<uint64_t, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Telemetry mirrors of hits_/misses_ (cache.lru_cache.{hits,misses});
  // null when the runtime has no telemetry attached.
  telemetry::Counter* hits_metric_ = nullptr;
  telemetry::Counter* misses_metric_ = nullptr;
};

}  // namespace labstor::labmods
