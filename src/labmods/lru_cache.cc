#include "labmods/lru_cache.h"

#include <cstring>

#include "core/module_registry.h"

namespace labstor::labmods {

Status LruCacheMod::Init(const yaml::NodePtr& params, core::ModContext& ctx) {
  if (ctx.telemetry != nullptr) {
    hits_metric_ = ctx.telemetry->metrics().GetCounter("cache.lru_cache.hits");
    misses_metric_ =
        ctx.telemetry->metrics().GetCounter("cache.lru_cache.misses");
  }
  if (params != nullptr) {
    capacity_pages_ = params->GetUint("capacity_pages", 4096);
  }
  if (capacity_pages_ == 0) {
    return Status::InvalidArgument("cache capacity must be > 0 pages");
  }
  return Status::Ok();
}

LruCacheMod::Page& LruCacheMod::TouchOrCreate(uint64_t key, bool* created) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    *created = false;
    return *it->second;
  }
  if (lru_.size() >= capacity_pages_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Page{key, std::make_unique<uint8_t[]>(kPageSize)});
  index_[key] = lru_.begin();
  *created = true;
  return lru_.front();
}

Status LruCacheMod::Process(ipc::Request& req, core::StackExec& exec) {
  const sim::SoftwareCosts& costs = *exec.ctx().costs;
  switch (req.op) {
    case ipc::OpCode::kBlkWrite: {
      // Write-through: absorb into the cache (one copy), forward.
      exec.trace().Charge("cache", costs.lru_cache_fixed +
                                       costs.CopyCost(req.length));
      if (req.data != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t pos = 0;
        while (pos < req.length) {
          const uint64_t abs = req.offset + pos;
          const uint64_t key = abs / kPageSize;
          const uint64_t page_off = abs % kPageSize;
          const uint64_t chunk =
              std::min<uint64_t>(kPageSize - page_off, req.length - pos);
          bool created = false;
          Page& page = TouchOrCreate(key, &created);
          std::memcpy(page.data.get() + page_off, req.data + pos, chunk);
          pos += chunk;
        }
      }
      return exec.Forward(req);
    }
    case ipc::OpCode::kBlkRead: {
      // Serve fully-cached reads without touching the device.
      bool all_hit = req.data != nullptr;
      if (req.data != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t pos = 0;
        while (pos < req.length) {
          const uint64_t abs = req.offset + pos;
          const uint64_t key = abs / kPageSize;
          if (!index_.contains(key)) {
            all_hit = false;
            break;
          }
          pos += kPageSize - (abs % kPageSize);
        }
        if (all_hit) {
          pos = 0;
          while (pos < req.length) {
            const uint64_t abs = req.offset + pos;
            const uint64_t key = abs / kPageSize;
            const uint64_t page_off = abs % kPageSize;
            const uint64_t chunk =
                std::min<uint64_t>(kPageSize - page_off, req.length - pos);
            const auto it = index_.find(key);
            lru_.splice(lru_.begin(), lru_, it->second);
            std::memcpy(req.data + pos, it->second->data.get() + page_off,
                        chunk);
            pos += chunk;
          }
        }
      }
      if (all_hit) {
        ++hits_;
        if (hits_metric_ != nullptr) hits_metric_->Inc(req.worker);
        exec.trace().Charge("cache", costs.lru_cache_fixed +
                                         costs.CopyCost(req.length));
        req.result_u64 = req.length;
        return Status::Ok();
      }
      ++misses_;
      if (misses_metric_ != nullptr) misses_metric_->Inc(req.worker);
      exec.trace().Charge("cache", costs.lru_cache_fixed +
                                       costs.CopyCost(req.length));
      LABSTOR_RETURN_IF_ERROR(exec.Forward(req));
      // Fill the cache from the device data.
      if (req.data != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t pos = 0;
        while (pos < req.length) {
          const uint64_t abs = req.offset + pos;
          const uint64_t key = abs / kPageSize;
          const uint64_t page_off = abs % kPageSize;
          const uint64_t chunk =
              std::min<uint64_t>(kPageSize - page_off, req.length - pos);
          bool created = false;
          Page& page = TouchOrCreate(key, &created);
          std::memcpy(page.data.get() + page_off, req.data + pos, chunk);
          pos += chunk;
        }
      }
      return Status::Ok();
    }
    default:
      // Metadata/flush ops pass through untouched.
      return exec.Forward(req);
  }
}

Status LruCacheMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<LruCacheMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  lru_ = std::move(prev->lru_);
  index_.clear();
  for (auto it = lru_.begin(); it != lru_.end(); ++it) index_[it->key] = it;
  hits_ = prev->hits_;
  misses_ = prev->misses_;
  // Configuration (capacity_pages_) is deliberately NOT copied here:
  // it flows from Init with the stored creation params, same as on
  // first instantiation. StateUpdate migrates only mutable state.
  return Status::Ok();
}

size_t LruCacheMod::resident_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

LABSTOR_REGISTER_LABMOD("lru_cache", 1, LruCacheMod);

}  // namespace labstor::labmods
