// Adaptive cache LabMod — the paper's "new and exotic ideas, such as
// ... ML-driven cache eviction algorithms" slot.
//
// A frequency-aware eviction policy in the spirit of ARC/TinyLFU:
// pages carry an exponentially-decayed access counter ("learned"
// popularity); eviction removes the coldest page rather than the
// least-recently-used one, which protects hot pages against scans —
// the failure mode the paper's time-series-analysis example targets.
// Plug-compatible with LruCacheMod (same ModType, same params), so a
// LabStack can hot-swap one for the other via modify_stack.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

class AdaptiveCacheMod final : public core::LabMod {
 public:
  AdaptiveCacheMod()
      : core::LabMod("adaptive_cache", core::ModType::kCache, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  sim::Time EstProcessingTime() const override { return 6 * sim::kUs; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t resident_pages() const;

 private:
  static constexpr uint64_t kPageSize = 4096;

  struct Page {
    std::unique_ptr<uint8_t[]> data;
    double heat = 1.0;      // decayed access frequency
    uint64_t last_tick = 0; // for lazy decay
  };

  // Touch (and lazily decay) a page's heat. Caller holds mu_.
  void Heat(Page& page);
  // Insert-or-get with coldest-page eviction. Caller holds mu_.
  Page& GetOrCreate(uint64_t key);

  size_t capacity_pages_ = 4096;
  double decay_ = 0.999;  // per-tick multiplicative cooling
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Page> pages_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  // Telemetry mirrors (cache.adaptive_cache.{hits,misses}); null when
  // the runtime has no telemetry attached.
  telemetry::Counter* hits_metric_ = nullptr;
  telemetry::Counter* misses_metric_ = nullptr;
};

}  // namespace labstor::labmods
