#include "labmods/compress.h"

#include <cstring>

#include "core/module_registry.h"

namespace labstor::labmods {

Status CompressMod::Process(ipc::Request& req, core::StackExec& exec) {
  const sim::SoftwareCosts& costs = *exec.ctx().costs;
  switch (req.op) {
    case ipc::OpCode::kBlkWrite: {
      exec.trace().Charge("compress", costs.CompressCost(req.length));
      if (req.data == nullptr) {
        // Timing-only request: model a 2:1 ratio and forward the
        // compressed size so downstream device occupancy matches.
        {
          std::lock_guard<std::mutex> lock(mu_);
          bytes_in_ += req.length;
          bytes_out_ += req.length / 2;
          extents_[req.offset] = Extent{req.length / 2, req.length};
        }
        const uint64_t orig_length = req.length;
        req.length = orig_length / 2;
        const Status st = exec.Forward(req);
        req.length = orig_length;
        req.result_u64 = orig_length;
        return st;
      }
      std::vector<uint8_t> compressed = Lz77Compress(req.Payload());
      {
        std::lock_guard<std::mutex> lock(mu_);
        bytes_in_ += req.length;
        bytes_out_ += compressed.size();
        extents_[req.offset] = Extent{compressed.size(), req.length};
      }
      // Swap the payload for the compressed bytes while the request
      // travels downstream, then restore the caller's view.
      uint8_t* const orig_data = req.data;
      const uint64_t orig_length = req.length;
      req.data = compressed.data();
      req.length = compressed.size();
      const Status st = exec.Forward(req);
      req.data = orig_data;
      req.length = orig_length;
      req.result_u64 = orig_length;
      return st;
    }
    case ipc::OpCode::kBlkRead: {
      Extent extent;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = extents_.find(req.offset);
        if (it == extents_.end()) {
          // Never compressed: plain passthrough.
          return exec.Forward(req);
        }
        extent = it->second;
      }
      if (extent.original_length != req.length) {
        return Status::InvalidArgument(
            "compressed extent must be read at its original size");
      }
      exec.trace().Charge("compress", costs.CompressCost(extent.stored_length));
      if (req.data == nullptr) {
        req.length = extent.stored_length;
        const Status st = exec.Forward(req);
        req.length = extent.original_length;
        return st;
      }
      std::vector<uint8_t> stored(extent.stored_length);
      uint8_t* const orig_data = req.data;
      const uint64_t orig_length = req.length;
      req.data = stored.data();
      req.length = stored.size();
      const Status st = exec.Forward(req);
      req.data = orig_data;
      req.length = orig_length;
      LABSTOR_RETURN_IF_ERROR(st);
      LABSTOR_ASSIGN_OR_RETURN(
          plain, Lz77Decompress(stored, extent.original_length));
      std::memcpy(req.data, plain.data(), plain.size());
      req.result_u64 = plain.size();
      return Status::Ok();
    }
    default:
      return exec.Forward(req);
  }
}

Status CompressMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<CompressMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  extents_ = prev->extents_;
  bytes_in_ = prev->bytes_in_;
  bytes_out_ = prev->bytes_out_;
  return Status::Ok();
}

LABSTOR_REGISTER_LABMOD("compress", 1, CompressMod);

}  // namespace labstor::labmods
