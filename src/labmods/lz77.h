// LZSS-style compressor (from scratch; the repo has no zlib).
//
// Format: groups of up to 8 items preceded by a flag byte; bit i set
// means item i is a (offset, length) match into a 4KB sliding window
// encoded in 2 bytes (12-bit distance, 4-bit length-3), clear means a
// literal byte. Matches of length 3..18 at distance 1..4095.
//
// This is the functional engine behind the Compression LabMod; the
// *timing* charged in benches uses the zlib-class cost model
// (SoftwareCosts::CompressCost), matching the paper's ZLIB choice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace labstor::labmods {

std::vector<uint8_t> Lz77Compress(std::span<const uint8_t> input);

// `expected_size` is the original length (stored by the caller; the
// format itself is not self-terminating beyond the input bytes).
Result<std::vector<uint8_t>> Lz77Decompress(std::span<const uint8_t> input,
                                            size_t expected_size);

}  // namespace labstor::labmods
