// Log-structured placement over a zoned namespace (DESIGN.md §13).
//
// When LabFS sits on the ZNS driver it cannot overwrite blocks in
// place — sequential zones only accept writes at the write pointer. So
// data placement becomes log-structured: every file-block write is a
// zone APPEND into the currently-active zone; the device returns where
// the data landed, the inode's mapping is updated, and the previous
// physical block (if any) becomes dead weight in its zone. A zone
// whose valid count drops to zero is reclaimable: the next time the
// policy needs an active zone it resets such a victim and appends from
// its start.
//
// The policy deliberately resets EVERY zone before activating it, even
// a never-used one. That makes placement recovery-safe without
// tracking write pointers: after a remount the policy knows only the
// live mapping (rebuilt from the metadata log), never trusts a zone's
// residual state, and the reset it issues on activation brings the
// device's pointer and its own cursor into agreement.
//
// Because writes are whole-block (LabFS read-modify-writes partial
// blocks before appending), a zone is either all-live or has dead
// blocks that no one references — so "GC" degenerates to reclaiming
// fully-dead zones. Compaction of partially-live zones is future work;
// a full filesystem under this policy reports ResourceExhausted once
// no zone is fully dead.
//
// All state is sized at construction; steady-state calls allocate
// nothing.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace labstor::labmods {

class ZnsPlacement {
 public:
  // Zones are device-absolute: the usable range is the zone-aligned
  // portion of [data_begin, data_end) so every append targets a zone
  // that lies entirely inside LabFS's data region. `block_size` is the
  // filesystem block (append granularity).
  ZnsPlacement(uint64_t data_begin, uint64_t data_end, uint64_t zone_bytes,
               uint64_t block_size);

  struct Target {
    uint64_t zone_start = 0;  // absolute device byte offset of the zone
    bool needs_reset = false;  // caller must forward a kZoneReset first
  };
  // The zone the next append should target. Activates (and asks the
  // caller to reset) a fully-dead victim zone when the active one is
  // full or absent.
  Result<Target> NextAppendTarget();
  // Record that an append landed at absolute byte offset `phys` (the
  // device-assigned offset from result_u64).
  void CommitAppend(uint64_t phys);
  // The block at `phys` is no longer referenced (overwritten, truncated
  // away, or unlinked).
  void Invalidate(uint64_t phys);

  // Recovery: forget everything, then re-mark each live block. The
  // active zone is left unset — the next append activates (and resets)
  // a fully-dead zone, so stale device state can never be appended to.
  void Reset();
  void MarkLive(uint64_t phys);

  // --- introspection ---
  uint64_t num_zones() const { return zones_; }
  uint64_t zone_bytes() const { return zone_bytes_; }
  uint64_t first_zone_offset() const { return first_zone_; }
  uint64_t live_blocks() const;
  // Zones with zero live blocks (the reclaim pool).
  uint64_t dead_zones() const;
  // Activations that recycled a previously-written zone.
  uint64_t zones_reclaimed() const { return zones_reclaimed_; }

 private:
  int64_t ZoneOf(uint64_t phys) const;

  const uint64_t zone_bytes_;
  const uint64_t block_size_;
  const uint64_t blocks_per_zone_;
  uint64_t first_zone_ = 0;  // absolute offset of the first usable zone
  uint64_t zones_ = 0;

  mutable std::mutex mu_;
  std::vector<uint32_t> valid_;  // live blocks per zone
  std::vector<bool> used_;       // ever appended to since last reset
  int64_t active_ = -1;          // index of the open append zone
  uint64_t active_appends_ = 0;  // blocks appended into active_
  uint64_t zones_reclaimed_ = 0;
};

}  // namespace labstor::labmods
