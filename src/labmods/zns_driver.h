// ZNS driver LabMod — the paper's note that userspace driver LabMods
// "may provide APIs other than block (e.g., zoned namespace and
// queues)" made concrete.
//
// The device is carved into fixed-size zones, each with a write
// pointer and a state machine (EMPTY → OPEN → FULL → back to EMPTY on
// reset). Semantics enforced, as the NVMe ZNS spec requires:
//   * kBlkWrite must land exactly at the target zone's write pointer
//     (sequential-only) and may not cross the zone boundary;
//   * kZoneAppend writes at the owning zone's write pointer wherever
//     that is; the assigned device offset is returned in result_u64;
//   * kZoneReset rewinds the zone containing req.offset;
//   * kBlkRead may only read below the write pointer.
#pragma once

#include <mutex>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

enum class ZoneState : uint8_t { kEmpty, kOpen, kFull };

struct ZoneInfo {
  uint64_t start = 0;
  uint64_t size = 0;
  uint64_t write_pointer = 0;  // absolute device offset
  ZoneState state = ZoneState::kEmpty;
};

class ZnsDriverMod final : public core::LabMod {
 public:
  ZnsDriverMod() : core::LabMod("zns_driver", core::ModType::kDriver, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  sim::Time EstProcessingTime() const override { return 400; }

  // --- introspection ---
  size_t num_zones() const;
  Result<ZoneInfo> Zone(size_t index) const;
  uint64_t zone_size() const { return zone_size_; }

 private:
  Status DoWrite(ipc::Request& req, core::StackExec& exec);
  Status DoAppend(ipc::Request& req, core::StackExec& exec);
  Status DoReset(ipc::Request& req, core::StackExec& exec);
  Status DoRead(ipc::Request& req, core::StackExec& exec);
  Result<size_t> ZoneIndexFor(uint64_t offset) const;

  simdev::SimDevice* device_ = nullptr;
  uint64_t zone_size_ = 4 << 20;
  mutable std::mutex mu_;
  std::vector<ZoneInfo> zones_;
};

}  // namespace labstor::labmods
