// ZNS driver LabMod — the paper's note that userspace driver LabMods
// "may provide APIs other than block (e.g., zoned namespace and
// queues)" made concrete.
//
// The device is carved into fixed-size zones, each with a write
// pointer and the NVMe ZNS state machine:
//
//     EMPTY --write/append/open--> OPEN --close--> CLOSED
//       ^                            |    <-write--   |
//       |                          finish           finish
//       +------------reset----------FULL <------------+
//
// Semantics enforced, as the NVMe ZNS spec requires:
//   * kBlkWrite must land exactly at the target zone's write pointer
//     (sequential-only) and may not cross the zone boundary;
//   * kZoneAppend writes at the owning zone's write pointer wherever
//     that is; the assigned device offset is returned in result_u64;
//   * kZoneOpen / kZoneClose explicitly claim / release one of the
//     device's bounded open-zone resources (`max_open_zones`);
//     implicit opens (first write into an EMPTY/CLOSED zone) draw from
//     the same pool, and exhaustion surfaces as ResourceExhausted;
//   * kZoneFinish seals a zone (wp jumps to the end, state FULL) and
//     pays the device's zone_finish_latency;
//   * kZoneReset rewinds the zone containing req.offset to EMPTY and
//     pays zone_reset_latency;
//   * kBlkRead may only read below the write pointer.
//
// The first `conventional_zones` zones are conventional (non-zoned)
// regions: random writes and reads anywhere inside them, no state
// machine, no open-zone accounting — the place a filesystem puts its
// randomly-rewritten metadata log when the rest of the namespace is
// append-only.
#pragma once

#include <mutex>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

enum class ZoneState : uint8_t { kEmpty, kOpen, kClosed, kFull };

std::string_view ZoneStateName(ZoneState state);

struct ZoneInfo {
  uint64_t start = 0;
  uint64_t size = 0;
  uint64_t write_pointer = 0;  // absolute device offset
  ZoneState state = ZoneState::kEmpty;
  bool conventional = false;
};

class ZnsDriverMod final : public core::LabMod {
 public:
  ZnsDriverMod() : core::LabMod("zns_driver", core::ModType::kDriver, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  sim::Time EstProcessingTime() const override { return 400; }

  // --- introspection ---
  size_t num_zones() const;
  Result<ZoneInfo> Zone(size_t index) const;
  uint64_t zone_size() const { return zone_size_; }
  // Zones currently OPEN (0 when nothing is open). max_open_zones() of
  // 0 means the device imposes no open-resource limit.
  size_t open_zones() const;
  uint32_t max_open_zones() const { return max_open_zones_; }
  uint32_t conventional_zones() const { return conventional_zones_; }

 private:
  Status DoWrite(ipc::Request& req, core::StackExec& exec);
  Status DoAppend(ipc::Request& req, core::StackExec& exec);
  Status DoReset(ipc::Request& req, core::StackExec& exec);
  Status DoOpen(ipc::Request& req, core::StackExec& exec);
  Status DoClose(ipc::Request& req, core::StackExec& exec);
  Status DoFinish(ipc::Request& req, core::StackExec& exec);
  Status DoRead(ipc::Request& req, core::StackExec& exec);
  Result<size_t> ZoneIndexFor(uint64_t offset) const;
  // Move `zone` to OPEN, drawing an open-resource slot. Fails with
  // ResourceExhausted when the limit is reached. Caller holds mu_.
  Status OpenZoneLocked(ZoneInfo& zone);
  // Leave OPEN (close/finish/reset/fill), returning the slot.
  void ReleaseOpenSlotLocked(ZoneInfo& zone);

  simdev::SimDevice* device_ = nullptr;
  uint64_t zone_size_ = 4 << 20;
  uint32_t max_open_zones_ = 0;      // 0 = unlimited
  uint32_t conventional_zones_ = 0;  // leading conventional zones
  mutable std::mutex mu_;
  std::vector<ZoneInfo> zones_;
  size_t open_count_ = 0;
};

}  // namespace labstor::labmods
