// LabKVS (paper §III-E): a key-value store LabMod "similarly designed
// to LabFS" but exposing put/get/remove — one operation per request
// instead of POSIX's open-modify-close, which is exactly the syscall
// reduction Fig. 9(b) measures.
//
// Values are stored in device blocks from the same per-worker
// allocator design; key metadata is logged so the store survives
// crashes via StateRepair.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"
#include "labmods/block_allocator.h"
#include "labmods/fslog.h"

namespace labstor::labmods {

class LabKvsMod final : public core::LabMod {
 public:
  static constexpr uint64_t kBlockSize = 4096;

  LabKvsMod() : core::LabMod("labkvs", core::ModType::kKvs, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  Status StateRepair() override;
  sim::Time EstProcessingTime() const override { return 2 * sim::kUs; }

  size_t key_count() const;
  uint64_t allocator_free_blocks() const { return alloc_->FreeBlocks(); }

  // --- DST invariant surface (src/dst) ---
  const MetadataLog* log() const { return log_.get(); }
  // Size of the stored value, or NotFound. Keys are full request paths
  // ("kvs::/store/user42"), same as Put/Get see them.
  Result<uint64_t> ValueSize(const std::string& key) const;
  // Every key currently in the store, sorted (deterministic).
  std::vector<std::string> ListKeys() const;

 private:
  struct Value {
    uint64_t id = 0;
    uint64_t size = 0;
    std::vector<BlockExtent> extents;
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Value> values;
  };
  size_t ShardFor(std::string_view key) const {
    return std::hash<std::string_view>()(key) % kShards;
  }

  Status DoPut(ipc::Request& req, core::StackExec& exec);
  Status DoGet(ipc::Request& req, core::StackExec& exec);
  Status DoDelete(ipc::Request& req, core::StackExec& exec);
  Status ForwardValueIo(const Value& value, ipc::Request& req,
                        core::StackExec& exec, bool is_write);
  void LogCharge(core::StackExec& exec, uint32_t worker);
  void RebuildAllocator();

  simdev::SimDevice* device_ = nullptr;
  uint64_t data_first_block_ = 0;
  uint64_t data_blocks_ = 0;
  std::unique_ptr<PerWorkerAllocator> alloc_;
  std::unique_ptr<MetadataLog> log_;
  uint32_t workers_ = 1;
  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> next_id_{1};
  // Per-worker pending log records awaiting a batched flush charge.
  static constexpr size_t kMaxWorkerSlots = 64;
  std::array<std::atomic<uint64_t>, kMaxWorkerSlots> log_charge_pending_{};
};

}  // namespace labstor::labmods
