// I/O scheduler LabMods (paper §IV-B "Developing & Customizing I/O
// Policies").
//
//   * NoOpSchedMod — maps each request to a hardware queue derived
//     from the CPU core (here: client pid) it originated on. Cheap; no
//     load awareness, so colocated tenants can head-of-line block.
//   * BlkSwitchSchedMod — blk-switch-style: steers requests to the
//     least-loaded hardware queue, separating latency-critical from
//     throughput traffic.
//
// Schedulers only *choose* req.channel and forward; queueing happens
// at the simulated device's channels.
#pragma once

#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

class NoOpSchedMod final : public core::LabMod {
 public:
  NoOpSchedMod() : core::LabMod("noop_sched", core::ModType::kScheduler, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  sim::Time EstProcessingTime() const override { return 1500; }

 private:
  uint32_t num_queues_ = 31;
};

class BlkSwitchSchedMod final : public core::LabMod {
 public:
  BlkSwitchSchedMod()
      : core::LabMod("blk_switch_sched", core::ModType::kScheduler, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  sim::Time EstProcessingTime() const override { return 1800; }

 private:
  // Device consulted for per-queue depth (load signal).
  simdev::SimDevice* device_ = nullptr;
  uint32_t num_queues_ = 31;
  // Requests larger than this are classified as throughput-bound and
  // confined to the upper half of the queues, keeping the lower half
  // shallow for latency-critical I/O (blk-switch's core idea).
  uint64_t lat_size_threshold_ = 16 * 1024;
};

}  // namespace labstor::labmods
