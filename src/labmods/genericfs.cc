#include "labmods/genericfs.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace labstor::labmods {

Result<ipc::Request*> GenericFs::AcquireRequest(uint64_t payload_bytes) {
  if (slot_ == nullptr || slot_capacity_ < payload_bytes) {
    const uint64_t capacity = std::max<uint64_t>(payload_bytes, 4096);
    LABSTOR_ASSIGN_OR_RETURN(req, client_.NewRequest(capacity));
    slot_ = req;
    slot_capacity_ = capacity;
  }
  uint8_t* const data = slot_->data;
  slot_->Reuse();
  slot_->data = data;
  slot_->client_uid = client_.creds().uid;
  return slot_;
}

Status GenericFs::RoundTrip(ipc::Request& req, core::Stack& stack) {
  LABSTOR_RETURN_IF_ERROR(client_.Execute(req, stack));
  return req.ToStatus();
}

Status GenericFs::RegisterChain(const std::string& scope,
                                const ipc::ChainProgram& program) {
  LABSTOR_RETURN_IF_ERROR(program.Validate());
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(scope));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(ipc::EncodedChainBytes()));
  req->op = ipc::OpCode::kChainRegister;
  req->SetPath(scope);
  req->length = ipc::EncodedChainBytes();
  ipc::EncodeChainProgram(program, req->data);
  return RoundTrip(*req, *stack);
}

Result<uint64_t> GenericFs::ExecChain(uint32_t chain_id,
                                      const std::string& scope,
                                      uint64_t start_offset,
                                      std::span<uint8_t> out) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(scope));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(out.size()));
  req->op = ipc::OpCode::kChainExec;
  req->chain_id = chain_id;
  req->SetPath(scope);
  req->offset = start_offset;
  req->length = out.size();
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *stack));
  const uint64_t copied = std::min<uint64_t>(req->result_u64, out.size());
  if (copied > 0) std::memcpy(out.data(), req->data, copied);
  return copied;
}

Result<int> GenericFs::Open(const std::string& path, uint16_t flags) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kOpen;
  req->flags = flags;
  req->SetPath(path);
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *stack));
  const int fd = next_fd_++;
  fds_.emplace(fd, OpenFile{path, stack});
  return fd;
}

Status GenericFs::Close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::NotFound("bad fd");
  fds_.erase(it);
  return Status::Ok();
}

Result<GenericFs::OpenFile> GenericFs::LookupFd(int fd) const {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::NotFound("bad fd");
  return it->second;
}

Result<uint64_t> GenericFs::Write(int fd, std::span<const uint8_t> data,
                                  uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(file, LookupFd(fd));
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(data.size()));
  req->op = ipc::OpCode::kWrite;
  req->SetPath(file.path);
  req->offset = offset;
  req->length = data.size();
  // Into shared memory: this is the one client-side copy of the async
  // path (the paper's zero-copy claim is between Runtime mods).
  std::memcpy(req->data, data.data(), data.size());
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *file.stack));
  return req->result_u64;
}

Result<uint64_t> GenericFs::Read(int fd, std::span<uint8_t> out,
                                 uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(file, LookupFd(fd));
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(out.size()));
  req->op = ipc::OpCode::kRead;
  req->SetPath(file.path);
  req->offset = offset;
  req->length = out.size();
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *file.stack));
  std::memcpy(out.data(), req->data, req->result_u64);
  return req->result_u64;
}

Status GenericFs::Fsync(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(file, LookupFd(fd));
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kFsync;
  req->SetPath(file.path);
  return RoundTrip(*req, *file.stack);
}

Result<uint64_t> GenericFs::StatSize(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kStat;
  req->SetPath(path);
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *stack));
  return req->result_u64;
}

Result<GenericFs::FileStat> GenericFs::Stat(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kStat;
  req->SetPath(path);
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *stack));
  FileStat st;
  st.size = req->result_u64;
  st.is_dir = (req->flags & 1) != 0;
  return st;
}

Status GenericFs::Unlink(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kUnlink;
  req->SetPath(path);
  return RoundTrip(*req, *stack);
}

Status GenericFs::Rename(const std::string& from, const std::string& to) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(from));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(to.size()));
  req->op = ipc::OpCode::kRename;
  req->SetPath(from);
  req->length = to.size();
  std::memcpy(req->data, to.data(), to.size());
  return RoundTrip(*req, *stack);
}

Status GenericFs::Mkdir(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kMkdir;
  req->SetPath(path);
  return RoundTrip(*req, *stack);
}

Result<uint64_t> GenericFs::ReaddirCount(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(stack, client_.ResolvePath(path));
  std::lock_guard<std::mutex> lock(mu_);
  LABSTOR_ASSIGN_OR_RETURN(req, AcquireRequest(0));
  req->op = ipc::OpCode::kReaddir;
  req->SetPath(path);
  LABSTOR_RETURN_IF_ERROR(RoundTrip(*req, *stack));
  return req->result_u64;
}

Status GenericFs::SaveStateForExecve() {
  std::string blob;
  {
    std::lock_guard<std::mutex> lock(mu_);
    blob += std::to_string(next_fd_) + "\n";
    for (const auto& [fd, file] : fds_) {
      blob += std::to_string(fd) + "\t" + file.path + "\n";
    }
    fds_.clear();
  }
  return client_.runtime().SaveFdState(client_.creds().pid, std::move(blob));
}

Status GenericFs::RestoreStateAfterExecve() {
  LABSTOR_ASSIGN_OR_RETURN(blob,
                           client_.runtime().TakeFdState(client_.creds().pid));
  // The "new address space" re-establishes its queues (paper: the IPC
  // Manager disconnects and reconnects around execve).
  LABSTOR_RETURN_IF_ERROR(client_.Reconnect());
  std::lock_guard<std::mutex> lock(mu_);
  fds_.clear();
  bool first = true;
  for (const std::string& line : SplitString(blob, '\n')) {
    if (line.empty()) continue;
    if (first) {
      next_fd_ = std::stoi(line);
      first = false;
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::Corruption("malformed fd-state blob");
    }
    const int fd = std::stoi(line.substr(0, tab));
    const std::string path = line.substr(tab + 1);
    auto stack = client_.ResolvePath(path);
    if (!stack.ok()) return stack.status();
    fds_.emplace(fd, OpenFile{path, *stack});
  }
  return Status::Ok();
}

Status GenericFs::CloneFdTableFrom(const GenericFs& parent) {
  std::scoped_lock lock(mu_, parent.mu_);
  fds_ = parent.fds_;
  next_fd_ = parent.next_fd_;
  return Status::Ok();
}

size_t GenericFs::open_files() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fds_.size();
}

}  // namespace labstor::labmods
