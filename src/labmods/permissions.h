// Permissions LabMod: the tunable access-control gate.
//
// The paper's point is that access control is a *choice*: Lab-All
// stacks include this mod (paying ~3% per op), Lab-Min stacks drop it.
// Policy: per-path-prefix ACLs of allowed uids, with an allow/deny
// default. "Islands of data viewable by different actors" = several
// stacks over the same device, each with a different ACL instance.
#pragma once

#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

class PermissionsMod final : public core::LabMod {
 public:
  PermissionsMod()
      : core::LabMod("permissions", core::ModType::kPermissions, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  sim::Time EstProcessingTime() const override { return 900; }

  // Dynamic policy edits (the "changes if the operator chooses"
  // property): root-only in deployments; unrestricted here for tests.
  void AllowPrefix(const std::string& prefix, ipc::UserId uid);
  void DenyPrefix(const std::string& prefix, ipc::UserId uid);

  uint64_t checks_performed() const { return checks_; }

 private:
  bool Allowed(std::string_view path, ipc::UserId uid) const;

  struct Rule {
    std::string prefix;
    std::unordered_set<ipc::UserId> uids;
  };

  bool default_allow_ = true;
  mutable std::mutex mu_;
  std::vector<Rule> allow_rules_;  // longest matching prefix wins
  std::vector<Rule> deny_rules_;
  uint64_t checks_ = 0;
};

}  // namespace labstor::labmods
