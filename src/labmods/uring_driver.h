// io_uring-backed driver LabMod (paper §III-G "Re-implementation
// Overhead"): for deployments that prefer the kernel's well-tested
// policies, a LabMod can submit through kernel APIs instead of the
// bypass path — inheriting kernel functionality at kernel cost.
//
// Functionally identical to KernelDriverMod; the software charge is
// the io_uring route (one syscall + the kernel block spine) instead of
// a direct hardware-queue submit.
#pragma once

#include "kernelsim/paths.h"
#include "labmods/drivers.h"

namespace labstor::labmods {

class UringDriverMod final : public DriverModBase {
 public:
  UringDriverMod() : DriverModBase("uring_driver", 1) {}
  sim::Time EstProcessingTime() const override { return 8 * sim::kUs; }
  // Submissions park on an io_uring completion the kernel reaps at its
  // leisure — a fused inline chain would block the client thread on
  // it, so this driver opts the stack out of fusion.
  bool SyncCapable() const override { return false; }

 protected:
  sim::Time SubmitCost(const sim::SoftwareCosts& costs,
                       const ipc::Request& req) const override {
    (void)req;
    return kernelsim::ApiOverhead(kernelsim::ApiKind::kIoUring, costs);
  }
  std::string_view trace_tag() const override { return "uring_driver"; }
};

}  // namespace labstor::labmods
