// Driver LabMods (paper §III-A "Driver LabMods" / §III-F):
//
//   * KernelDriverMod — the Kernel Driver LabMod: submits I/O straight
//     to a storage driver's multi-queue hardware dispatch queue
//     (submit_io_to_hctx), bypassing the kernel block layer, paying a
//     small request-structure allocation.
//   * SpdkDriverMod — SPDK-style userspace NVMe driver: BAR-mapped
//     submission queues, no kernel structures at all.
//   * DaxDriverMod — DAX-style byte-addressable PMEM access via CPU
//     load/store.
//
// All three are terminal vertices: they consume kBlk* requests, charge
// their (small) software cost, record the device op on the trace, and
// move the actual bytes through the simulated device.
#pragma once

#include <string>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

// Resolve the effective completion-delivery mode for a device attach
// from the driver's `completion:` param:
//   * "device" (default) — keep the device's configured mode;
//   * "interrupt" — switch the device to simulated-interrupt delivery;
//   * "polling" — switch to busy-polled completions; rejected with
//     FailedPrecondition when the device's supports_polling is false
//     (an AHCI-era controller has no polled completion queues to spin
//     on, so the attach must fail loudly rather than silently poll a
//     queue that never fills).
Status ResolveCompletionMode(const yaml::NodePtr& params,
                             simdev::SimDevice& device);

class DriverModBase : public core::LabMod {
 public:
  DriverModBase(std::string name, uint32_t version)
      : core::LabMod(std::move(name), core::ModType::kDriver, version) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;

  simdev::SimDevice* device() const { return device_; }

 protected:
  // Software cost charged per submission, by driver flavor.
  virtual sim::Time SubmitCost(const sim::SoftwareCosts& costs,
                               const ipc::Request& req) const = 0;
  virtual std::string_view trace_tag() const = 0;

 private:
  simdev::SimDevice* device_ = nullptr;
};

class KernelDriverMod final : public DriverModBase {
 public:
  KernelDriverMod() : DriverModBase("kernel_driver", 1) {}
  sim::Time EstProcessingTime() const override { return 500; }

 protected:
  sim::Time SubmitCost(const sim::SoftwareCosts& costs,
                       const ipc::Request& req) const override {
    (void)req;
    return costs.request_alloc + costs.driver_submit;
  }
  std::string_view trace_tag() const override { return "kernel_driver"; }
};

class SpdkDriverMod final : public DriverModBase {
 public:
  SpdkDriverMod() : DriverModBase("spdk", 1) {}
  sim::Time EstProcessingTime() const override { return 300; }

 protected:
  sim::Time SubmitCost(const sim::SoftwareCosts& costs,
                       const ipc::Request& req) const override {
    (void)req;
    return costs.spdk_submit;
  }
  std::string_view trace_tag() const override { return "spdk"; }
};

class DaxDriverMod final : public DriverModBase {
 public:
  DaxDriverMod() : DriverModBase("dax", 1) {}
  sim::Time EstProcessingTime() const override { return 200; }

 protected:
  sim::Time SubmitCost(const sim::SoftwareCosts& costs,
                       const ipc::Request& req) const override {
    (void)req;
    return costs.dax_store_setup;
  }
  std::string_view trace_tag() const override { return "dax"; }
};

}  // namespace labstor::labmods
