#include "labmods/consistency.h"

#include <cstring>

#include "core/module_registry.h"

namespace labstor::labmods {

Status ConsistencyMod::Init(const yaml::NodePtr& params,
                            core::ModContext& ctx) {
  (void)ctx;
  if (params == nullptr) return Status::Ok();
  const std::string policy = params->GetString("policy", "write_through");
  if (policy == "write_through") {
    policy_ = ConsistencyPolicy::kWriteThrough;
  } else if (policy == "write_back") {
    policy_ = ConsistencyPolicy::kWriteBack;
  } else if (policy == "relaxed") {
    policy_ = ConsistencyPolicy::kRelaxed;
  } else {
    return Status::InvalidArgument("unknown consistency policy '" + policy +
                                   "'");
  }
  watermark_extents_ = params->GetUint("watermark_extents", 64);
  return Status::Ok();
}

Status ConsistencyMod::FlushLocked(ipc::Request& proto,
                                   core::StackExec& exec) {
  // Replay buffered writes downstream using the caller's request as a
  // template, then restore it.
  const ipc::OpCode orig_op = proto.op;
  uint8_t* const orig_data = proto.data;
  const uint64_t orig_offset = proto.offset;
  const uint64_t orig_length = proto.length;
  Status st;
  for (auto& [offset, dirty] : dirty_) {
    proto.op = ipc::OpCode::kBlkWrite;
    proto.offset = offset;
    proto.data = dirty.data.data();
    proto.length = dirty.data.size();
    st = exec.Forward(proto);
    if (!st.ok()) break;
  }
  proto.op = orig_op;
  proto.data = orig_data;
  proto.offset = orig_offset;
  proto.length = orig_length;
  if (st.ok()) dirty_.clear();
  return st;
}

Status ConsistencyMod::Process(ipc::Request& req, core::StackExec& exec) {
  exec.trace().Charge("consistency", exec.ctx().costs->request_alloc);
  switch (req.op) {
    case ipc::OpCode::kBlkWrite: {
      if (policy_ == ConsistencyPolicy::kWriteThrough) {
        return exec.Forward(req);
      }
      std::lock_guard<std::mutex> lock(mu_);
      Dirty dirty;
      if (req.data != nullptr) {
        dirty.data.assign(req.data, req.data + req.length);
      } else {
        dirty.data.resize(req.length);
      }
      dirty_[req.offset] = std::move(dirty);
      req.result_u64 = req.length;
      if (dirty_.size() >= watermark_extents_) {
        return FlushLocked(req, exec);
      }
      return Status::Ok();  // absorbed
    }
    case ipc::OpCode::kBlkRead: {
      // Serve from the dirty buffer when it covers the read exactly;
      // otherwise flush overlapping extents first for correctness.
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = dirty_.find(req.offset);
      if (it != dirty_.end() && it->second.data.size() >= req.length) {
        if (req.data != nullptr) {
          std::memcpy(req.data, it->second.data.data(), req.length);
        }
        req.result_u64 = req.length;
        return Status::Ok();
      }
      if (!dirty_.empty()) {
        LABSTOR_RETURN_IF_ERROR(FlushLocked(req, exec));
      }
      return exec.Forward(req);
    }
    case ipc::OpCode::kBlkFlush: {
      if (policy_ == ConsistencyPolicy::kRelaxed) {
        return Status::Ok();  // fsync is free (and meaningless)
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (!dirty_.empty()) {
        LABSTOR_RETURN_IF_ERROR(FlushLocked(req, exec));
      }
      return exec.Forward(req);
    }
    default:
      return exec.Forward(req);
  }
}

Status ConsistencyMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<ConsistencyMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  policy_ = prev->policy_;
  watermark_extents_ = prev->watermark_extents_;
  dirty_ = std::move(prev->dirty_);
  return Status::Ok();
}

Status ConsistencyMod::StateRepair() {
  std::lock_guard<std::mutex> lock(mu_);
  dirty_.clear();  // unflushed writes are lost on crash, by contract
  return Status::Ok();
}

size_t ConsistencyMod::dirty_extents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_.size();
}

LABSTOR_REGISTER_LABMOD("consistency", 1, ConsistencyMod);

}  // namespace labstor::labmods
