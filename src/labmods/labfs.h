// LabFS (paper §III-E): a log-structured, crash-consistent POSIX
// filesystem LabMod with NVMe/PMEM-oriented optimizations and
// provenance tracking.
//
// Design properties carried over from the paper:
//   * per-worker block allocator with stealing (PerWorkerAllocator);
//   * per-worker metadata log on the device; inodes are NOT stored
//     on-disk — they are reconstructed in memory by traversing the log
//     (StateRepair does exactly this after a crash);
//   * all inodes live in a sharded hashmap for low-contention insert/
//     rename/delete;
//   * provenance: creator and write/read counts recorded per inode.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"
#include "labmods/block_allocator.h"
#include "labmods/fslog.h"
#include "labmods/zns_placement.h"

namespace labstor::labmods {

struct Provenance {
  uint32_t creator_uid = 0;
  uint32_t creator_pid = 0;
  uint64_t writes = 0;
  uint64_t reads = 0;
};

class LabFsMod : public core::LabMod {
 public:
  static constexpr uint64_t kBlockSize = 4096;

  LabFsMod() : LabFsMod(1) {}
  explicit LabFsMod(uint32_t version)
      : core::LabMod("labfs", core::ModType::kFilesystem, version) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  Status StateRepair() override;
  sim::Time EstProcessingTime() const override { return 3 * sim::kUs; }

  // --- introspection (tests, provenance queries, stats) ---
  Result<uint64_t> FileSize(const std::string& path) const;
  Result<Provenance> GetProvenance(const std::string& path) const;
  bool Exists(const std::string& path) const;
  size_t file_count() const;
  uint64_t allocator_free_blocks() const { return alloc_->FreeBlocks(); }
  uint64_t allocator_steals() const { return alloc_->steals(); }
  uint64_t log_records() const { return log_->records_appended(); }
  uint64_t log_torn_dropped() const { return log_->torn_records_dropped(); }
  // Log-structured placement over a zoned namespace (zns_placement
  // param; requires a zns_driver downstream). Null in allocator mode.
  bool zns_placement_enabled() const { return placement_ != nullptr; }
  const ZnsPlacement* placement() const { return placement_.get(); }

  // --- DST invariant surface (src/dst) ---
  const MetadataLog* log() const { return log_.get(); }
  // Every path currently in the namespace, sorted (deterministic).
  std::vector<std::string> ListPaths() const;
  // Block accounting for the no-orphaned-blocks invariant: after
  // recovery every data-region block must be either free in the
  // allocator or mapped by exactly one (inode, file-block) slot.
  struct BlockAudit {
    uint64_t data_blocks = 0;
    uint64_t free_blocks = 0;
    uint64_t mapped_blocks = 0;       // distinct phys blocks mapped
    uint64_t duplicate_mappings = 0;  // phys blocks mapped more than once
    uint64_t out_of_region = 0;       // mappings outside the data region
    bool Consistent() const {
      return duplicate_mappings == 0 && out_of_region == 0 &&
             free_blocks + mapped_blocks == data_blocks;
    }
  };
  BlockAudit AuditBlocks() const;

 private:
  struct Inode {
    uint64_t id = 0;
    std::string path;
    bool is_dir = false;
    uint64_t size = 0;
    std::vector<uint64_t> blocks;  // file block -> phys block (0 = hole)
    Provenance prov;
    std::mutex mu;  // guards size/blocks during data ops
  };
  using InodePtr = std::shared_ptr<Inode>;

  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, InodePtr> inodes;
  };

  size_t ShardFor(std::string_view path) const;
  InodePtr Lookup(const std::string& path) const;
  // Creates the inode if absent; returns (inode, created).
  Result<std::pair<InodePtr, bool>> LookupOrCreate(const std::string& path,
                                                   bool is_dir,
                                                   const ipc::Request& req);
  Status EraseByPath(const std::string& path);
  void IndexById(const InodePtr& inode);

  Status DoOpen(ipc::Request& req, core::StackExec& exec);
  Status DoWrite(ipc::Request& req, core::StackExec& exec);
  Status DoRead(ipc::Request& req, core::StackExec& exec);
  Status DoStat(ipc::Request& req, core::StackExec& exec);
  Status DoUnlink(ipc::Request& req, core::StackExec& exec);
  Status DoRename(ipc::Request& req, core::StackExec& exec);
  Status DoMkdir(ipc::Request& req, core::StackExec& exec);
  Status DoReaddir(ipc::Request& req, core::StackExec& exec);
  Status DoTruncate(ipc::Request& req, core::StackExec& exec);
  Status DoFsync(ipc::Request& req, core::StackExec& exec);

  // Ensure blocks for file range, logging new mappings. Caller holds
  // inode->mu.
  Status EnsureBlocks(Inode& inode, uint64_t offset, uint64_t length,
                      uint32_t worker, core::StackExec& exec);
  // Forward kBlkRead/kBlkWrite requests covering [offset, offset+len)
  // along physical runs. Caller holds inode->mu.
  Status ForwardData(Inode& inode, ipc::Request& req, core::StackExec& exec,
                     bool is_write);
  // ZNS write path: every touched file block is RMW-merged if partial
  // and appended to the active zone; the inode remaps to wherever the
  // device says the append landed. Caller holds inode->mu.
  Status WriteZns(Inode& inode, ipc::Request& req, core::StackExec& exec);
  // Return a physical block: to the allocator, or (placement mode) by
  // decrementing its zone's valid count.
  void FreeBlock(uint32_t worker, uint64_t phys);
  void LogCharge(core::StackExec& exec, uint32_t worker);
  Status AppendLog(LogRecord record, uint32_t worker, core::StackExec& exec);
  void RebuildAllocatorFromInodes();
  void RebuildPlacementFromInodes();

  // --- configuration/state ---
  simdev::SimDevice* device_ = nullptr;
  uint64_t data_first_block_ = 0;
  uint64_t data_blocks_ = 0;
  std::unique_ptr<PerWorkerAllocator> alloc_;
  std::unique_ptr<MetadataLog> log_;
  std::unique_ptr<ZnsPlacement> placement_;
  // Serializes pick-target → (reset) → append → commit in WriteZns:
  // without it a worker could append into a zone between another
  // worker's activation and its reset, and lose the block.
  std::mutex zns_write_mu_;
  uint32_t workers_ = 1;

  std::array<Shard, kShards> shards_;
  mutable std::mutex by_id_mu_;
  std::unordered_map<uint64_t, InodePtr> by_id_;
  std::atomic<uint64_t> next_inode_id_{1};
  // Per-worker pending log records awaiting a batched flush charge.
  static constexpr size_t kMaxWorkerSlots = 64;
  std::array<std::atomic<uint64_t>, kMaxWorkerSlots> log_charge_pending_{};
};

class LabFsModV2 final : public LabFsMod {
 public:
  LabFsModV2() : LabFsMod(2) {}
};

}  // namespace labstor::labmods
