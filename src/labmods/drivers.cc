#include "labmods/drivers.h"

namespace labstor::labmods {

Status ResolveCompletionMode(const yaml::NodePtr& params,
                             simdev::SimDevice& device) {
  const std::string mode =
      params != nullptr ? params->GetString("completion", "device") : "device";
  if (mode == "device") {
    // Keep the device default — unless a hand-rolled DeviceParams set
    // polling on a device that cannot be polled, in which case fall
    // back to interrupts instead of spinning on queues that never
    // fill.
    if (device.completion_mode() == simdev::CompletionMode::kPolling &&
        !device.params().supports_polling) {
      device.set_completion_mode(simdev::CompletionMode::kInterrupt);
    }
    return Status::Ok();
  }
  if (mode == "polling") {
    if (!device.params().supports_polling) {
      return Status::FailedPrecondition(
          "device '" + device.params().name +
          "' does not support polled completions; attach with "
          "`completion: interrupt` (or `device`)");
    }
    device.set_completion_mode(simdev::CompletionMode::kPolling);
    return Status::Ok();
  }
  if (mode == "interrupt") {
    device.set_completion_mode(simdev::CompletionMode::kInterrupt);
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown completion mode: '" + mode +
                                 "' (expected device|polling|interrupt)");
}

Status DriverModBase::Init(const yaml::NodePtr& params,
                           core::ModContext& ctx) {
  if (ctx.devices == nullptr) {
    return Status::FailedPrecondition("no device registry in context");
  }
  const std::string device_name =
      params != nullptr ? params->GetString("device", "nvme0") : "nvme0";
  LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
  device_ = device;
  return ResolveCompletionMode(params, *device_);
}

Status DriverModBase::Process(ipc::Request& req, core::StackExec& exec) {
  const sim::SoftwareCosts& costs = *exec.ctx().costs;
  switch (req.op) {
    case ipc::OpCode::kBlkWrite: {
      exec.trace().Charge(trace_tag(), SubmitCost(costs, req));
      exec.trace().Device(device_, simdev::IoOp::kWrite, req.channel,
                          req.offset, req.length);
      if (req.data != nullptr) {
        LABSTOR_RETURN_IF_ERROR(
            device_->WriteNow(req.offset, req.Payload()));
      }
      req.result_u64 = req.length;
      return Status::Ok();
    }
    case ipc::OpCode::kBlkRead: {
      exec.trace().Charge(trace_tag(), SubmitCost(costs, req));
      exec.trace().Device(device_, simdev::IoOp::kRead, req.channel,
                          req.offset, req.length);
      if (req.data != nullptr) {
        LABSTOR_RETURN_IF_ERROR(device_->ReadNow(req.offset, req.Payload()));
      }
      req.result_u64 = req.length;
      return Status::Ok();
    }
    case ipc::OpCode::kBlkFlush:
      // Simulated devices persist writes immediately; a flush costs
      // one doorbell.
      exec.trace().Charge(trace_tag(), SubmitCost(costs, req));
      return Status::Ok();
    default:
      return Status::InvalidArgument(
          std::string("driver cannot handle op ") +
          std::string(ipc::OpCodeName(req.op)));
  }
}

LABSTOR_REGISTER_LABMOD("kernel_driver", 1, KernelDriverMod);
LABSTOR_REGISTER_LABMOD("spdk", 1, SpdkDriverMod);
LABSTOR_REGISTER_LABMOD("dax", 1, DaxDriverMod);

}  // namespace labstor::labmods
