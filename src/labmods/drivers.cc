#include "labmods/drivers.h"

namespace labstor::labmods {

Status DriverModBase::Init(const yaml::NodePtr& params,
                           core::ModContext& ctx) {
  if (ctx.devices == nullptr) {
    return Status::FailedPrecondition("no device registry in context");
  }
  const std::string device_name =
      params != nullptr ? params->GetString("device", "nvme0") : "nvme0";
  LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
  device_ = device;
  return Status::Ok();
}

Status DriverModBase::Process(ipc::Request& req, core::StackExec& exec) {
  const sim::SoftwareCosts& costs = *exec.ctx().costs;
  switch (req.op) {
    case ipc::OpCode::kBlkWrite: {
      exec.trace().Charge(trace_tag(), SubmitCost(costs, req));
      exec.trace().Device(device_, simdev::IoOp::kWrite, req.channel,
                          req.offset, req.length);
      if (req.data != nullptr) {
        LABSTOR_RETURN_IF_ERROR(
            device_->WriteNow(req.offset, req.Payload()));
      }
      req.result_u64 = req.length;
      return Status::Ok();
    }
    case ipc::OpCode::kBlkRead: {
      exec.trace().Charge(trace_tag(), SubmitCost(costs, req));
      exec.trace().Device(device_, simdev::IoOp::kRead, req.channel,
                          req.offset, req.length);
      if (req.data != nullptr) {
        LABSTOR_RETURN_IF_ERROR(device_->ReadNow(req.offset, req.Payload()));
      }
      req.result_u64 = req.length;
      return Status::Ok();
    }
    case ipc::OpCode::kBlkFlush:
      // Simulated devices persist writes immediately; a flush costs
      // one doorbell.
      exec.trace().Charge(trace_tag(), SubmitCost(costs, req));
      return Status::Ok();
    default:
      return Status::InvalidArgument(
          std::string("driver cannot handle op ") +
          std::string(ipc::OpCodeName(req.op)));
  }
}

LABSTOR_REGISTER_LABMOD("kernel_driver", 1, KernelDriverMod);
LABSTOR_REGISTER_LABMOD("spdk", 1, SpdkDriverMod);
LABSTOR_REGISTER_LABMOD("dax", 1, DaxDriverMod);

}  // namespace labstor::labmods
