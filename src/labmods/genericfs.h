// GenericFS: the client-side interface LabMod for POSIX-style file
// access (paper §III-A "Management LabMods").
//
// In a real deployment this object is LD_PRELOADed into legacy
// applications to intercept libc calls; here applications link it
// directly. It owns the file-descriptor table, resolves paths against
// the LabStack Namespace (longest prefix), builds requests via its
// connector, and routes them through the Client (sync or async per the
// stack's rules) — the VFS-like multiplexing the paper describes.
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "core/client.h"
#include "core/stack.h"
#include "ipc/chain.h"

namespace labstor::labmods {

class GenericFs {
 public:
  explicit GenericFs(core::Client& client) : client_(client) {}

  // --- POSIX-flavored surface ---
  Result<int> Open(const std::string& path, uint16_t flags);
  Result<int> Create(const std::string& path) {
    return Open(path, ipc::kOpenCreate | ipc::kOpenTrunc);
  }
  Status Close(int fd);
  Result<uint64_t> Write(int fd, std::span<const uint8_t> data,
                         uint64_t offset);
  Result<uint64_t> Read(int fd, std::span<uint8_t> out, uint64_t offset);
  Status Fsync(int fd);
  Result<uint64_t> StatSize(const std::string& path);
  struct FileStat {
    uint64_t size = 0;
    bool is_dir = false;
  };
  Result<FileStat> Stat(const std::string& path);
  Status Unlink(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Status Mkdir(const std::string& path);
  Result<uint64_t> ReaddirCount(const std::string& path);

  // fork(): the child process inherits the parent's open descriptors.
  // Paper: the IPC Manager re-connects and asks the Runtime to copy fd
  // state into the new process.
  Status CloneFdTableFrom(const GenericFs& parent);

  // execve(): park the fd table in the Runtime before the address
  // space is replaced, reclaim it afterwards (paper §III-F). The blob
  // format is an internal line protocol: "fd<TAB>path".
  Status SaveStateForExecve();
  Status RestoreStateAfterExecve();

  // --- pushdown chains (DESIGN.md §12) ---
  // Register / run a sandboxed op chain on the stack `scope` resolves
  // to (the stack root must be the pushdown mod). Block-oriented
  // chains (kReadAt/kDerefOffset/kWriteAt) run against the raw device
  // layers beneath it; `start_offset` seeds the chain's cursor and
  // `out` receives the final scratch contents.
  Status RegisterChain(const std::string& scope,
                       const ipc::ChainProgram& program);
  Result<uint64_t> ExecChain(uint32_t chain_id, const std::string& scope,
                             uint64_t start_offset, std::span<uint8_t> out);

  size_t open_files() const;

 private:
  struct OpenFile {
    std::string path;
    core::Stack* stack = nullptr;
  };

  // One recycled request slot (+ payload buffer) per connector: calls
  // are synchronous, so the slot is free again by the time we return.
  Result<ipc::Request*> AcquireRequest(uint64_t payload_bytes);
  Result<OpenFile> LookupFd(int fd) const;
  Status RoundTrip(ipc::Request& req, core::Stack& stack);

  core::Client& client_;
  mutable std::mutex mu_;
  std::unordered_map<int, OpenFile> fds_;
  int next_fd_ = 3;
  ipc::Request* slot_ = nullptr;
  uint64_t slot_capacity_ = 0;
};

}  // namespace labstor::labmods
