#include "labmods/block_allocator.h"

#include <algorithm>
#include <cassert>

namespace labstor::labmods {

PerWorkerAllocator::PerWorkerAllocator(uint64_t first_block,
                                       uint64_t total_blocks,
                                       uint32_t num_workers) {
  assert(num_workers > 0);
  pools_.reserve(num_workers);
  const uint64_t per_worker = total_blocks / num_workers;
  uint64_t cursor = first_block;
  for (uint32_t w = 0; w < num_workers; ++w) {
    auto pool = std::make_unique<Pool>();
    const uint64_t count =
        w + 1 == num_workers ? first_block + total_blocks - cursor : per_worker;
    if (count > 0) {
      pool->free_ranges.emplace(cursor, count);
      pool->free_blocks = count;
    }
    cursor += count;
    pools_.push_back(std::move(pool));
  }
}

PerWorkerAllocator::PerWorkerAllocator(
    const std::vector<BlockExtent>& free_ranges, uint32_t num_workers) {
  assert(num_workers > 0);
  pools_.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    pools_.push_back(std::make_unique<Pool>());
  }
  uint32_t target = 0;
  for (const BlockExtent& extent : free_ranges) {
    Pool& pool = *pools_[target % num_workers];
    GiveLocked(pool, extent);
    ++target;
  }
}

std::vector<BlockExtent> PerWorkerAllocator::TakeLocked(Pool& pool,
                                                        uint64_t count) {
  std::vector<BlockExtent> taken;
  while (count > 0 && !pool.free_ranges.empty()) {
    // Prefer the first range large enough; otherwise consume the
    // largest range and continue.
    auto it = pool.free_ranges.begin();
    for (auto scan = pool.free_ranges.begin(); scan != pool.free_ranges.end();
         ++scan) {
      if (scan->second >= count) {
        it = scan;
        break;
      }
      if (scan->second > it->second) it = scan;
    }
    const uint64_t start = it->first;
    const uint64_t available = it->second;
    const uint64_t take = std::min(count, available);
    pool.free_ranges.erase(it);
    if (take < available) {
      pool.free_ranges.emplace(start + take, available - take);
    }
    pool.free_blocks -= take;
    taken.push_back(BlockExtent{start, take});
    count -= take;
  }
  return taken;
}

void PerWorkerAllocator::GiveLocked(Pool& pool, BlockExtent extent) {
  if (extent.count == 0) return;
  uint64_t start = extent.start;
  uint64_t count = extent.count;
  // Coalesce with the predecessor and successor ranges.
  auto next = pool.free_ranges.lower_bound(start);
  if (next != pool.free_ranges.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      count += prev->second;
      pool.free_ranges.erase(prev);
    }
  }
  if (next != pool.free_ranges.end() && start + count == next->first) {
    count += next->second;
    pool.free_ranges.erase(next);
  }
  pool.free_ranges.emplace(start, count);
  pool.free_blocks += extent.count;
}

Result<std::vector<BlockExtent>> PerWorkerAllocator::Alloc(uint32_t worker,
                                                           uint64_t count) {
  if (count == 0) return std::vector<BlockExtent>{};
  std::vector<BlockExtent> result;
  {
    std::lock_guard<std::mutex> shape(pools_mu_);
    Pool& own = *pools_[worker % pools_.size()];
    std::lock_guard<std::mutex> lock(own.mu);
    result = TakeLocked(own, count);
  }
  uint64_t got = 0;
  for (const BlockExtent& e : result) got += e.count;
  while (got < count) {
    // Steal from the richest pool.
    std::lock_guard<std::mutex> shape(pools_mu_);
    Pool* richest = nullptr;
    uint64_t richest_free = 0;
    for (const auto& pool : pools_) {
      std::lock_guard<std::mutex> lock(pool->mu);
      if (pool->free_blocks > richest_free) {
        richest_free = pool->free_blocks;
        richest = pool.get();
      }
    }
    if (richest == nullptr || richest_free == 0) {
      // Roll back what we took so failed allocations do not leak.
      Pool& own = *pools_[worker % pools_.size()];
      std::lock_guard<std::mutex> lock(own.mu);
      for (const BlockExtent& e : result) GiveLocked(own, e);
      return Status::ResourceExhausted("device out of blocks");
    }
    std::lock_guard<std::mutex> lock(richest->mu);
    const std::vector<BlockExtent> stolen =
        TakeLocked(*richest, count - got);
    for (const BlockExtent& e : stolen) {
      got += e.count;
      result.push_back(e);
    }
    ++steals_;
  }
  return result;
}

void PerWorkerAllocator::Free(uint32_t worker, BlockExtent extent) {
  std::lock_guard<std::mutex> shape(pools_mu_);
  Pool& pool = *pools_[worker % pools_.size()];
  std::lock_guard<std::mutex> lock(pool.mu);
  GiveLocked(pool, extent);
}

Status PerWorkerAllocator::Resize(uint32_t new_num_workers,
                                  uint64_t steal_blocks) {
  if (new_num_workers == 0) {
    return Status::InvalidArgument("need at least one worker pool");
  }
  std::lock_guard<std::mutex> shape(pools_mu_);
  const uint32_t old = static_cast<uint32_t>(pools_.size());
  if (new_num_workers < old) {
    // Decommissioned pools donate all free ranges round-robin to the
    // survivors.
    for (uint32_t w = new_num_workers; w < old; ++w) {
      Pool& leaving = *pools_[w];
      std::lock_guard<std::mutex> lock(leaving.mu);
      uint32_t target = 0;
      for (const auto& [start, count] : leaving.free_ranges) {
        Pool& survivor = *pools_[target % new_num_workers];
        std::lock_guard<std::mutex> slock(survivor.mu);
        GiveLocked(survivor, BlockExtent{start, count});
        ++target;
      }
    }
    pools_.resize(new_num_workers);
    return Status::Ok();
  }
  for (uint32_t w = old; w < new_num_workers; ++w) {
    auto pool = std::make_unique<Pool>();
    // New workers steal a configurable number of blocks from the
    // richest existing pools.
    uint64_t need = steal_blocks;
    while (need > 0) {
      Pool* richest = nullptr;
      uint64_t richest_free = 0;
      for (const auto& existing : pools_) {
        std::lock_guard<std::mutex> lock(existing->mu);
        if (existing->free_blocks > richest_free) {
          richest_free = existing->free_blocks;
          richest = existing.get();
        }
      }
      if (richest == nullptr || richest_free == 0) break;
      std::lock_guard<std::mutex> lock(richest->mu);
      for (const BlockExtent& e : TakeLocked(*richest, need)) {
        GiveLocked(*pool, e);
        need -= e.count;
      }
      ++steals_;
    }
    pools_.push_back(std::move(pool));
  }
  return Status::Ok();
}

uint64_t PerWorkerAllocator::FreeBlocks() const {
  std::lock_guard<std::mutex> shape(pools_mu_);
  uint64_t total = 0;
  for (const auto& pool : pools_) {
    std::lock_guard<std::mutex> lock(pool->mu);
    total += pool->free_blocks;
  }
  return total;
}

uint64_t PerWorkerAllocator::FreeBlocksOf(uint32_t worker) const {
  std::lock_guard<std::mutex> shape(pools_mu_);
  const Pool& pool = *pools_[worker % pools_.size()];
  std::lock_guard<std::mutex> lock(pool.mu);
  return pool.free_blocks;
}

uint32_t PerWorkerAllocator::num_workers() const {
  std::lock_guard<std::mutex> shape(pools_mu_);
  return static_cast<uint32_t>(pools_.size());
}

}  // namespace labstor::labmods
