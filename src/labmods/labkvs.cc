#include "labmods/labkvs.h"

#include <algorithm>

#include "core/module_registry.h"

namespace labstor::labmods {

Status LabKvsMod::Init(const yaml::NodePtr& params, core::ModContext& ctx) {
  if (ctx.devices == nullptr) {
    return Status::FailedPrecondition("no device registry in context");
  }
  const std::string device_name =
      params != nullptr ? params->GetString("device", "nvme0") : "nvme0";
  LABSTOR_ASSIGN_OR_RETURN(device, ctx.devices->Find(device_name));
  device_ = device;
  workers_ = ctx.num_workers > 0 ? ctx.num_workers : 1;
  const uint64_t log_records_per_worker =
      params != nullptr ? params->GetUint("log_records_per_worker", 16384)
                        : 16384;
  // Device partitioning, as in LabFS: disjoint regions let several
  // I/O systems share one device.
  const uint64_t region_offset =
      (params != nullptr ? params->GetUint("region_offset_mb", 0) : 0) << 20;
  uint64_t region_size =
      (params != nullptr ? params->GetUint("region_size_mb", 0) : 0) << 20;
  if (region_size == 0) {
    if (region_offset >= device_->params().capacity_bytes) {
      return Status::InvalidArgument("region starts beyond the device");
    }
    region_size = device_->params().capacity_bytes - region_offset;
  }
  if (region_offset + region_size > device_->params().capacity_bytes) {
    return Status::InvalidArgument("region exceeds device capacity");
  }
  log_ = std::make_unique<MetadataLog>(device_, region_offset, workers_,
                                       log_records_per_worker);
  const uint64_t log_blocks =
      (log_->region_bytes() + kBlockSize - 1) / kBlockSize;
  const uint64_t region_blocks = region_size / kBlockSize;
  if (log_blocks + 16 > region_blocks) {
    return Status::InvalidArgument("region too small for the metadata log");
  }
  data_first_block_ = region_offset / kBlockSize + log_blocks;
  data_blocks_ = region_blocks - log_blocks;
  alloc_ = std::make_unique<PerWorkerAllocator>(data_first_block_,
                                                data_blocks_, workers_);
  return Status::Ok();
}

Status LabKvsMod::ForwardValueIo(const Value& value, ipc::Request& req,
                                 core::StackExec& exec, bool is_write) {
  const ipc::OpCode orig_op = req.op;
  const uint64_t orig_offset = req.offset;
  const uint64_t orig_length = req.length;
  uint8_t* const orig_data = req.data;

  Status st;
  uint64_t consumed = 0;
  for (const BlockExtent& extent : value.extents) {
    if (consumed >= value.size || !st.ok()) break;
    const uint64_t extent_bytes =
        std::min(extent.count * kBlockSize, value.size - consumed);
    req.op = is_write ? ipc::OpCode::kBlkWrite : ipc::OpCode::kBlkRead;
    req.offset = extent.start * kBlockSize;
    req.length = extent_bytes;
    req.data = orig_data == nullptr ? nullptr : orig_data + consumed;
    st = exec.Forward(req);
    consumed += extent_bytes;
  }
  req.op = orig_op;
  req.offset = orig_offset;
  req.length = orig_length;
  req.data = orig_data;
  return st;
}

void LabKvsMod::LogCharge(core::StackExec& exec, uint32_t worker) {
  // Same segment-batched async log flush model as LabFS.
  constexpr uint64_t kLogFlushBatch = 32;
  const uint64_t pending = log_charge_pending_[worker % kMaxWorkerSlots]
                               .fetch_add(1, std::memory_order_relaxed) + 1;
  if (pending % kLogFlushBatch == 0) {
    exec.trace().Device(device_, simdev::IoOp::kWrite, worker % 31, 0,
                        kLogFlushBatch * sizeof(LogRecord), /*async=*/true);
  }
}

Status LabKvsMod::DoPut(ipc::Request& req, core::StackExec& exec) {
  const std::string key(req.GetPath());
  if (key.empty()) return Status::InvalidArgument("put with empty key");
  const uint64_t blocks_needed =
      (req.length + kBlockSize - 1) / kBlockSize;

  Shard& shard = shards_[ShardFor(key)];
  Value value;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.values.find(key);
    if (it != shard.values.end()) {
      // Overwrite: release old blocks, allocate fresh (log-structured
      // stores never update in place).
      for (const BlockExtent& extent : it->second.extents) {
        alloc_->Free(req.worker, extent);
      }
      value.id = it->second.id;
    } else {
      value.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      created = true;
    }
    value.size = req.length;
    if (blocks_needed > 0) {
      LABSTOR_ASSIGN_OR_RETURN(extents, alloc_->Alloc(req.worker, blocks_needed));
      value.extents = std::move(extents);
    }
    shard.values[key] = value;
  }
  if (created) {
    LogRecord record;
    record.op = LogOp::kCreate;
    record.inode_id = value.id;
    record.SetPath(key);
    LABSTOR_RETURN_IF_ERROR(log_->Append(req.worker, record).status());
    LogCharge(exec, req.worker);
  }
  {
    LogRecord record;
    record.op = LogOp::kSize;
    record.inode_id = value.id;
    record.a = value.size;
    uint64_t fb = 0;
    LABSTOR_RETURN_IF_ERROR(log_->Append(req.worker, record).status());
    for (const BlockExtent& extent : value.extents) {
      LogRecord map;
      map.op = LogOp::kMap;
      map.inode_id = value.id;
      map.a = fb;
      map.b = extent.start;
      map.c = extent.count;
      LABSTOR_RETURN_IF_ERROR(log_->Append(req.worker, map).status());
      fb += extent.count;
    }
    LogCharge(exec, req.worker);
  }
  LABSTOR_RETURN_IF_ERROR(ForwardValueIo(value, req, exec, /*is_write=*/true));
  req.result_u64 = req.length;
  return Status::Ok();
}

Status LabKvsMod::DoGet(ipc::Request& req, core::StackExec& exec) {
  const std::string key(req.GetPath());
  Value value;
  {
    Shard& shard = shards_[ShardFor(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.values.find(key);
    if (it == shard.values.end()) {
      return Status::NotFound("no key '" + key + "'");
    }
    value = it->second;
  }
  if (req.length < value.size) {
    return Status::InvalidArgument("get buffer smaller than value");
  }
  const uint64_t orig_length = req.length;
  req.length = value.size;
  const Status st = ForwardValueIo(value, req, exec, /*is_write=*/false);
  req.length = orig_length;
  LABSTOR_RETURN_IF_ERROR(st);
  req.result_u64 = value.size;
  return Status::Ok();
}

Status LabKvsMod::DoDelete(ipc::Request& req, core::StackExec& exec) {
  const std::string key(req.GetPath());
  Shard& shard = shards_[ShardFor(key)];
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.values.find(key);
    if (it == shard.values.end()) {
      return Status::NotFound("no key '" + key + "'");
    }
    for (const BlockExtent& extent : it->second.extents) {
      alloc_->Free(req.worker, extent);
    }
    id = it->second.id;
    shard.values.erase(it);
  }
  LogRecord record;
  record.op = LogOp::kUnlink;
  record.inode_id = id;
  LABSTOR_RETURN_IF_ERROR(log_->Append(req.worker, record).status());
  LogCharge(exec, req.worker);
  return Status::Ok();
}

Status LabKvsMod::Process(ipc::Request& req, core::StackExec& exec) {
  exec.trace().Charge("labkvs", exec.ctx().costs->kvs_op);
  switch (req.op) {
    case ipc::OpCode::kPut:
      return DoPut(req, exec);
    case ipc::OpCode::kGet:
      return DoGet(req, exec);
    case ipc::OpCode::kDelete:
      return DoDelete(req, exec);
    case ipc::OpCode::kExists: {
      const std::string key(req.GetPath());
      const Shard& shard = shards_[ShardFor(key)];
      std::lock_guard<std::mutex> lock(shard.mu);
      req.result_u64 = shard.values.contains(key) ? 1 : 0;
      return Status::Ok();
    }
    case ipc::OpCode::kTxnBegin:
    case ipc::OpCode::kTxnCommit: {
      // Pushdown chain atomicity markers (DESIGN.md §12): append the
      // journal record and stop — markers never reach the device path.
      LogRecord record;
      record.op = req.op == ipc::OpCode::kTxnBegin ? LogOp::kTxnBegin
                                                   : LogOp::kTxnCommit;
      record.inode_id = req.chain_id;
      LABSTOR_RETURN_IF_ERROR(log_->Append(req.worker, record).status());
      LogCharge(exec, req.worker);
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument(std::string("labkvs cannot handle op ") +
                                     std::string(ipc::OpCodeName(req.op)));
  }
}

Status LabKvsMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<LabKvsMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  device_ = prev->device_;
  data_first_block_ = prev->data_first_block_;
  data_blocks_ = prev->data_blocks_;
  alloc_ = std::move(prev->alloc_);
  log_ = std::move(prev->log_);
  workers_ = prev->workers_;
  for (size_t i = 0; i < kShards; ++i) {
    std::scoped_lock lock(shards_[i].mu, prev->shards_[i].mu);
    shards_[i].values = std::move(prev->shards_[i].values);
  }
  next_id_.store(prev->next_id_.load());
  return Status::Ok();
}

Status LabKvsMod::StateRepair() {
  if (log_ == nullptr) return Status::Ok();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.values.clear();
  }
  struct Rebuild {
    std::string key;
    Value value;
  };
  std::unordered_map<uint64_t, Rebuild> by_id;
  uint64_t max_id = 0;
  const auto apply = [&](const LogRecord& record) -> Status {
    switch (record.op) {
      case LogOp::kCreate: {
        Rebuild entry;
        entry.key = std::string(record.GetPath());
        entry.value.id = record.inode_id;
        by_id[record.inode_id] = std::move(entry);
        max_id = std::max(max_id, record.inode_id);
        return Status::Ok();
      }
      case LogOp::kSize: {
        const auto it = by_id.find(record.inode_id);
        if (it != by_id.end()) {
          it->second.value.size = record.a;
          it->second.value.extents.clear();  // fresh mapping follows
        }
        return Status::Ok();
      }
      case LogOp::kMap: {
        const auto it = by_id.find(record.inode_id);
        if (it != by_id.end()) {
          it->second.value.extents.push_back(BlockExtent{record.b, record.c});
        }
        return Status::Ok();
      }
      case LogOp::kUnlink:
        by_id.erase(record.inode_id);
        return Status::Ok();
      default:
        return Status::Ok();
    }
  };
  // Transaction gating (pushdown chains): records between a kTxnBegin
  // and its kTxnCommit are buffered and applied atomically at the
  // commit; an unmatched begin at the end of the scan — the crash hit
  // mid-chain — discards the buffered suffix, so a partially executed
  // RMW chain either fully replays or leaves no acked effect.
  std::vector<LogRecord> txn_buffer;
  bool txn_open = false;
  LABSTOR_RETURN_IF_ERROR(log_->Replay([&](const LogRecord& record) -> Status {
    if (record.op == LogOp::kTxnBegin) {
      txn_open = true;
      txn_buffer.clear();  // an unmatched earlier begin stays discarded
      return Status::Ok();
    }
    if (record.op == LogOp::kTxnCommit) {
      for (const LogRecord& buffered : txn_buffer) {
        const Status applied = apply(buffered);
        if (!applied.ok()) return applied;
      }
      txn_buffer.clear();
      txn_open = false;
      return Status::Ok();
    }
    if (txn_open) {
      txn_buffer.push_back(record);
      return Status::Ok();
    }
    return apply(record);
  }));
  for (auto& [id, entry] : by_id) {
    Shard& shard = shards_[ShardFor(entry.key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.values[entry.key] = std::move(entry.value);
  }
  next_id_.store(max_id + 1);
  RebuildAllocator();
  return Status::Ok();
}

void LabKvsMod::RebuildAllocator() {
  std::vector<uint64_t> used;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, value] : shard.values) {
      for (const BlockExtent& extent : value.extents) {
        for (uint64_t i = 0; i < extent.count; ++i) {
          used.push_back(extent.start + i);
        }
      }
    }
  }
  std::sort(used.begin(), used.end());
  std::vector<BlockExtent> free_ranges;
  uint64_t cursor = data_first_block_;
  const uint64_t end = data_first_block_ + data_blocks_;
  for (const uint64_t block : used) {
    if (block > cursor) free_ranges.push_back(BlockExtent{cursor, block - cursor});
    cursor = std::max(cursor, block + 1);
  }
  if (cursor < end) free_ranges.push_back(BlockExtent{cursor, end - cursor});
  alloc_ = std::make_unique<PerWorkerAllocator>(free_ranges, workers_);
}

size_t LabKvsMod::key_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    count += shard.values.size();
  }
  return count;
}

Result<uint64_t> LabKvsMod::ValueSize(const std::string& key) const {
  const Shard& shard = shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return Status::NotFound("no value for key '" + key + "'");
  }
  return it->second.size;
}

std::vector<std::string> LabKvsMod::ListKeys() const {
  std::vector<std::string> keys;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, value] : shard.values) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

LABSTOR_REGISTER_LABMOD("labkvs", 1, LabKvsMod);

}  // namespace labstor::labmods
