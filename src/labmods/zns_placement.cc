#include "labmods/zns_placement.h"

#include <algorithm>

namespace labstor::labmods {

ZnsPlacement::ZnsPlacement(uint64_t data_begin, uint64_t data_end,
                           uint64_t zone_bytes, uint64_t block_size)
    : zone_bytes_(zone_bytes),
      block_size_(block_size),
      blocks_per_zone_(zone_bytes / block_size) {
  // Zones are device-absolute; only zones that fit whole inside the
  // data region are usable (a zone straddling the metadata log would
  // let an append clobber log blocks).
  first_zone_ = ((data_begin + zone_bytes_ - 1) / zone_bytes_) * zone_bytes_;
  if (data_end > first_zone_) {
    zones_ = (data_end - first_zone_) / zone_bytes_;
  }
  valid_.assign(zones_, 0);
  used_.assign(zones_, false);
}

int64_t ZnsPlacement::ZoneOf(uint64_t phys) const {
  if (phys < first_zone_) return -1;
  const uint64_t z = (phys - first_zone_) / zone_bytes_;
  if (z >= zones_) return -1;
  return static_cast<int64_t>(z);
}

Result<ZnsPlacement::Target> ZnsPlacement::NextAppendTarget() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ >= 0 && active_appends_ < blocks_per_zone_) {
    return Target{first_zone_ + static_cast<uint64_t>(active_) * zone_bytes_,
                  /*needs_reset=*/false};
  }
  // Active zone full (or none yet): activate a fully-dead victim.
  active_ = -1;
  for (uint64_t z = 0; z < zones_; ++z) {
    if (valid_[z] != 0) continue;
    active_ = static_cast<int64_t>(z);
    active_appends_ = 0;
    if (used_[z]) ++zones_reclaimed_;
    used_[z] = true;
    return Target{first_zone_ + z * zone_bytes_, /*needs_reset=*/true};
  }
  return Status::ResourceExhausted(
      "zns placement: no fully-dead zone to reclaim (filesystem full)");
}

void ZnsPlacement::CommitAppend(uint64_t phys) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t z = ZoneOf(phys);
  if (z < 0) return;  // append outside the managed range: ignore
  ++valid_[z];
  if (z == active_) ++active_appends_;
}

void ZnsPlacement::Invalidate(uint64_t phys) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t z = ZoneOf(phys);
  if (z < 0) return;
  if (valid_[z] > 0) --valid_[z];
}

void ZnsPlacement::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(valid_.begin(), valid_.end(), 0u);
  std::fill(used_.begin(), used_.end(), false);
  active_ = -1;
  active_appends_ = 0;
}

void ZnsPlacement::MarkLive(uint64_t phys) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t z = ZoneOf(phys);
  if (z < 0) return;
  ++valid_[z];
  used_[z] = true;
}

uint64_t ZnsPlacement::live_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const uint32_t v : valid_) total += v;
  return total;
}

uint64_t ZnsPlacement::dead_zones() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const uint32_t v : valid_) n += (v == 0) ? 1 : 0;
  return n;
}

}  // namespace labstor::labmods
