// Tunable consistency LabMod ("configurable consistency" from §III-B).
//
// Three durability policies for block writes:
//   * write_through — every write goes straight downstream (strong);
//   * write_back    — writes buffer in memory and flush on fsync or
//                     when the dirty set exceeds a watermark;
//   * relaxed       — like write_back, but fsync is a no-op (the
//                     "relaxed access control/consistency" end of the
//                     paper's tunability spectrum).
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"

namespace labstor::labmods {

enum class ConsistencyPolicy : uint8_t { kWriteThrough, kWriteBack, kRelaxed };

class ConsistencyMod final : public core::LabMod {
 public:
  ConsistencyMod()
      : core::LabMod("consistency", core::ModType::kConsistency, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  // Unflushed state is lost on crash by design; repair just clears it.
  Status StateRepair() override;
  sim::Time EstProcessingTime() const override { return 600; }

  ConsistencyPolicy policy() const { return policy_; }
  size_t dirty_extents() const;

 private:
  Status FlushLocked(ipc::Request& proto, core::StackExec& exec);

  struct Dirty {
    std::vector<uint8_t> data;
  };

  ConsistencyPolicy policy_ = ConsistencyPolicy::kWriteThrough;
  size_t watermark_extents_ = 64;
  mutable std::mutex mu_;
  std::map<uint64_t, Dirty> dirty_;  // offset -> buffered write
};

}  // namespace labstor::labmods
