// Per-worker metadata log shared by LabFS and LabKVS.
//
// Paper §III-E: "As opposed to storing inodes and bitmaps on-disk as
// traditional FSes do, LabFS only stores the log and reconstructs
// inodes in-memory by traversing the log."
//
// Each worker owns a contiguous log region on the device and appends
// fixed-size records; Replay() scans all regions, merges records by
// sequence number, and hands them to the filesystem to rebuild its
// in-memory state — which is exactly what StateRepair does after a
// Runtime crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "simdev/sim_device.h"

namespace labstor::labmods {

enum class LogOp : uint16_t {
  kInvalid = 0,
  kCreate = 1,    // a = is_dir
  kUnlink = 2,
  kRename = 3,    // path = new path
  kTruncate = 4,  // a = new size
  kMap = 5,       // a = file block index, b = phys block, c = block count
  kSize = 6,      // a = new size
  // Transaction markers bracketing a pushdown chain's mutating suffix
  // (inode_id = chain id). Replay applies the records between a begin
  // and its commit atomically; an unmatched begin at the end of the
  // scan (crash mid-chain) discards them, so a partially executed
  // chain leaves no acked effect. Pre-txn readers ignore both ops.
  kTxnBegin = 7,
  kTxnCommit = 8,
};

struct LogRecord {
  static constexpr uint32_t kMagic = 0x4C414253;  // "LABS"
  static constexpr size_t kPathCapacity = 200;

  uint32_t magic = kMagic;
  LogOp op = LogOp::kInvalid;
  uint16_t reserved = 0;
  uint64_t seq = 0;       // global order across workers
  uint64_t inode_id = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  char path[kPathCapacity] = {};
  // Checksum of everything above (the first offsetof(LogRecord, crc)
  // bytes). Must stay the LAST member: Append() fills it in and
  // Replay() treats a mismatch as a torn write — a record whose slot
  // was only partially persisted before a crash — and stops scanning
  // that worker region, exactly like a missing magic.
  uint64_t crc = 0;

  void SetPath(std::string_view p) {
    const size_t n =
        p.size() < kPathCapacity - 1 ? p.size() : kPathCapacity - 1;
    std::memcpy(path, p.data(), n);
    path[n] = '\0';
  }
  std::string_view GetPath() const { return {path}; }
};
static_assert(sizeof(LogRecord) == 256, "log records are 256-byte slots");

class MetadataLog {
 public:
  // Log occupies [region_offset, region_offset + workers * per_worker
  // * 256) bytes on `device`.
  MetadataLog(simdev::SimDevice* device, uint64_t region_offset,
              uint32_t workers, uint64_t per_worker_records);

  // Appends durably (written through to the device region). Returns
  // the assigned global sequence number.
  Result<uint64_t> Append(uint32_t worker, LogRecord record);

  // Scans every worker region and invokes `fn` for each valid record
  // in global sequence order.
  Status Replay(const std::function<Status(const LogRecord&)>& fn) const;

  // Bytes region size (for capacity planning by the FS).
  uint64_t region_bytes() const {
    return static_cast<uint64_t>(workers_) * per_worker_ * kSlot;
  }
  // First byte of the log region on the device (the DST crash-point
  // enumerator classifies device writes inside
  // [region_offset, region_offset + region_bytes) as log appends).
  uint64_t region_offset() const { return region_offset_; }
  uint64_t records_appended() const { return next_seq_.load() - 1; }
  // Records dropped because their checksum did not match (torn tail
  // after a crash). Cumulative across Replay calls since construction
  // or the last ResetStats(); for a single scan's verdict use
  // last_replay_torn_dropped().
  uint64_t torn_records_dropped() const {
    return torn_dropped_.load(std::memory_order_relaxed);
  }
  // Records dropped by the MOST RECENT Replay() only. Zeroed at the
  // start of every scan, so per-replay assertions cannot pass
  // spuriously on counts left over from an earlier call.
  uint64_t last_replay_torn_dropped() const {
    return last_replay_torn_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    torn_dropped_.store(0, std::memory_order_relaxed);
    last_replay_torn_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kSlot = 256;

  simdev::SimDevice* device_;
  uint64_t region_offset_;
  uint32_t workers_;
  uint64_t per_worker_;
  std::atomic<uint64_t> next_seq_{1};
  std::vector<uint64_t> cursors_;  // records appended per worker
  std::vector<std::unique_ptr<std::mutex>> worker_mu_;
  mutable std::atomic<uint64_t> torn_dropped_{0};
  mutable std::atomic<uint64_t> last_replay_torn_{0};
};

}  // namespace labstor::labmods
