#include "labmods/daos_obj.h"

namespace labstor::labmods {

sim::Task<Status> StackKvEndpoint::Submit(uint32_t stream, ipc::OpCode op,
                                          std::string key, uint64_t size) {
  ipc::Request req;
  req.op = op;
  req.client_pid = stream;
  req.length = size;
  req.SetPath(mount_ + "/" + key);
  co_return co_await rt_.Execute(qid_base_ + stream, stack_, req);
}

sim::Task<Status> StackKvEndpoint::Put(uint32_t stream, std::string key,
                                       uint64_t size) {
  return Submit(stream, ipc::OpCode::kPut, std::move(key), size);
}

sim::Task<Status> StackKvEndpoint::Get(uint32_t stream, std::string key) {
  // LabKVS gets fail when the caller's buffer is smaller than the
  // stored value; advertise a buffer larger than any value this
  // interface writes (the worker still moves only value.size bytes).
  return Submit(stream, ipc::OpCode::kGet, std::move(key), 1ull << 30);
}

sim::Task<Status> StackKvEndpoint::Delete(uint32_t stream, std::string key) {
  return Submit(stream, ipc::OpCode::kDelete, std::move(key), 0);
}

std::string DaosObjStore::KeyFor(const ObjectId& oid, const std::string& dkey,
                                 const std::string& akey) const {
  return root_ + "/o" + std::to_string(oid.hi) + "." + std::to_string(oid.lo) +
         "/" + dkey + "/" + akey;
}

sim::Task<Status> DaosObjStore::Update(uint32_t stream, ObjectId oid,
                                       std::string dkey, AkeyUpdate update) {
  ++updates_;
  ++keys_touched_;
  co_return co_await endpoint_.Put(stream, KeyFor(oid, dkey, update.akey),
                                   update.size);
}

sim::Task<Status> DaosObjStore::UpdateMulti(uint32_t stream, ObjectId oid,
                                            std::string dkey,
                                            std::vector<AkeyUpdate> updates) {
  ++updates_;
  for (const AkeyUpdate& u : updates) {
    ++keys_touched_;
    const Status st =
        co_await endpoint_.Put(stream, KeyFor(oid, dkey, u.akey), u.size);
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

sim::Task<Status> DaosObjStore::Fetch(uint32_t stream, ObjectId oid,
                                      std::string dkey, std::string akey) {
  ++fetches_;
  ++keys_touched_;
  co_return co_await endpoint_.Get(stream, KeyFor(oid, dkey, akey));
}

sim::Task<Status> DaosObjStore::FetchMulti(uint32_t stream, ObjectId oid,
                                           std::string dkey,
                                           std::vector<std::string> akeys) {
  ++fetches_;
  for (const std::string& akey : akeys) {
    ++keys_touched_;
    const Status st = co_await endpoint_.Get(stream, KeyFor(oid, dkey, akey));
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

sim::Task<Status> DaosObjStore::Punch(uint32_t stream, ObjectId oid,
                                      std::string dkey,
                                      std::vector<std::string> akeys) {
  ++punches_;
  for (const std::string& akey : akeys) {
    ++keys_touched_;
    const Status st =
        co_await endpoint_.Delete(stream, KeyFor(oid, dkey, akey));
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

}  // namespace labstor::labmods
