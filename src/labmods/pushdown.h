// Pushdown LabMod (DESIGN.md §12): executes registered, sandboxed op
// chains at the device-queue layer.
//
// Clients register a ChainProgram (src/ipc/chain.h) with a
// kChainRegister request; a kChainExec request then runs the whole
// chain inside ONE client↔worker round trip — the interpreter rewrites
// the request per step (KVS get/put, raw block read/write) and
// resubmits it downstream via exec.Forward, instead of completing back
// to the client between dependent hops. The mod sits at the top of a
// stack (pushdown → labkvs → … → driver) and passes all non-chain
// requests through untouched, so inserting it costs existing traffic
// nothing.
//
// Crossing accounting: a client-driven N-hop loop pays N round trips;
// a chain pays one. The saved crossings (2 per collapsed hop) and
// their priced cost (kernelsim::LabRoundTripCost) are counted per
// chain and mirrored to telemetry ("pushdown.*" counters).
//
// Upgrade safety: a chain executes entirely inside one dispatch, so an
// in-flight chain holds the runtime's inline-exec quiesce gate (and a
// worker's drain slot) exactly like any single request — upgrades wait
// for chain boundaries, never step boundaries. Re-registering an
// existing chain id requires the namespace epoch to have advanced past
// the epoch the chain was installed in (idempotent re-registration of
// the identical program is always allowed).
#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/labmod.h"
#include "core/stack_exec.h"
#include "ipc/chain.h"

namespace labstor::labmods {

class PushdownMod final : public core::LabMod {
 public:
  PushdownMod() : core::LabMod("pushdown", core::ModType::kPushdown, 1) {}

  Status Init(const yaml::NodePtr& params, core::ModContext& ctx) override;
  Status Process(ipc::Request& req, core::StackExec& exec) override;
  Status StateUpdate(core::LabMod& old) override;
  bool SyncCapable() const override { return true; }
  sim::Time EstProcessingTime() const override { return 2 * sim::kUs; }

  // Admin-plane registration (cluster broadcast, tools, tests) — same
  // epoch rules as the IPC path; `epoch` is the caller's view of the
  // namespace epoch (0 = unknown).
  Status Register(const ipc::ChainProgram& program, uint64_t epoch);

  // --- introspection (labstorctl pushdown, tests) ---
  struct ChainInfo {
    uint32_t id = 0;
    uint32_t num_steps = 0;
    bool mutates = false;
    uint64_t registered_epoch = 0;
    uint64_t executions = 0;
    uint64_t steps_executed = 0;
    uint64_t crossings_saved = 0;
    uint64_t saved_ns = 0;
  };
  std::vector<ChainInfo> ListChains() const;  // sorted by chain id
  uint64_t chains_executed() const;
  uint64_t steps_executed() const;
  uint64_t crossings_saved() const;
  uint64_t saved_ns() const;

  // DST hook: invoked after every completed chain step with
  // (chain_id, step index). The crash-point enumerator uses it to
  // record journal high-water marks at each step boundary.
  using StepHook = std::function<void(uint32_t chain_id, uint32_t step)>;
  void SetStepHook(StepHook hook);

 private:
  struct Entry {
    ipc::ChainProgram program;
    uint64_t registered_epoch = 0;
    uint64_t executions = 0;
    uint64_t steps_executed = 0;
    uint64_t crossings_saved = 0;
    uint64_t saved_ns = 0;
  };

  Status DoRegister(ipc::Request& req, core::StackExec& exec);
  Status DoExec(ipc::Request& req, core::StackExec& exec);
  // Forward a txn marker op downstream with the request's data fields
  // parked (the KVS appends the marker record and does not forward).
  Status ForwardMarker(ipc::OpCode op, ipc::Request& req,
                       core::StackExec& exec);

  uint64_t CurrentEpoch() const {
    return ns_epoch_ == nullptr
               ? 0
               : ns_epoch_->load(std::memory_order_acquire);
  }

  const std::atomic<uint64_t>* ns_epoch_ = nullptr;

  mutable std::mutex mu_;
  std::map<uint32_t, Entry> chains_;
  StepHook step_hook_;
  uint64_t chains_executed_ = 0;
  uint64_t steps_executed_ = 0;
  uint64_t crossings_saved_ = 0;
  uint64_t saved_ns_ = 0;
};

}  // namespace labstor::labmods
