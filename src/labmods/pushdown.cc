#include "labmods/pushdown.h"

#include <algorithm>

#include "core/module_registry.h"
#include "kernelsim/paths.h"

namespace labstor::labmods {

namespace {

// Chain-private scratch. Steps only ever address [0, byte_budget);
// per-thread so concurrent workers never share interpreter state.
std::vector<uint8_t>& ScratchFor(uint64_t byte_budget) {
  thread_local std::vector<uint8_t> scratch;
  scratch.assign(byte_budget, 0);
  return scratch;
}

}  // namespace

Status PushdownMod::Init(const yaml::NodePtr& params, core::ModContext& ctx) {
  (void)params;
  ns_epoch_ = ctx.ns_epoch;
  return Status::Ok();
}

Status PushdownMod::Process(ipc::Request& req, core::StackExec& exec) {
  switch (req.op) {
    case ipc::OpCode::kChainRegister:
      return DoRegister(req, exec);
    case ipc::OpCode::kChainExec:
      return DoExec(req, exec);
    default:
      // Transparent pass-through: non-chain traffic flows down the
      // stack unchanged (and uncharged — the dispatch branch is noise
      // next to any real op).
      return exec.Forward(req);
  }
}

Status PushdownMod::Register(const ipc::ChainProgram& program, uint64_t epoch) {
  LABSTOR_RETURN_IF_ERROR(program.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chains_.find(program.id);
  if (it != chains_.end()) {
    if (std::memcmp(&it->second.program, &program, sizeof(program)) == 0) {
      return Status::Ok();  // idempotent re-registration
    }
    if (epoch <= it->second.registered_epoch) {
      return Status::FailedPrecondition(
          "chain " + std::to_string(program.id) +
          " already registered in namespace epoch " +
          std::to_string(it->second.registered_epoch) +
          "; replacing it requires a namespace epoch bump (modify/upgrade "
          "the stack first)");
    }
  }
  Entry entry;
  entry.program = program;
  entry.registered_epoch = epoch;
  chains_[program.id] = entry;
  return Status::Ok();
}

Status PushdownMod::DoRegister(ipc::Request& req, core::StackExec& exec) {
  exec.trace().Charge("pushdown", exec.ctx().costs->pushdown_register);
  LABSTOR_ASSIGN_OR_RETURN(program,
                           ipc::DecodeChainProgram(req.data, req.length));
  LABSTOR_RETURN_IF_ERROR(Register(program, CurrentEpoch()));
  telemetry::Telemetry* tel = exec.ctx().telemetry;
  if (tel != nullptr && tel->enabled()) {
    tel->metrics().GetCounter("pushdown.chains.registered")->Inc(req.worker);
  }
  req.result_u64 = program.num_steps;
  return Status::Ok();
}

Status PushdownMod::ForwardMarker(ipc::OpCode op, ipc::Request& req,
                                  core::StackExec& exec) {
  const ipc::OpCode orig_op = req.op;
  const uint64_t orig_offset = req.offset;
  const uint64_t orig_length = req.length;
  uint8_t* const orig_data = req.data;
  req.op = op;
  req.offset = 0;
  req.length = 0;
  req.data = nullptr;
  const Status st = exec.Forward(req);
  req.op = orig_op;
  req.offset = orig_offset;
  req.length = orig_length;
  req.data = orig_data;
  return st;
}

Status PushdownMod::DoExec(ipc::Request& req, core::StackExec& exec) {
  if (req.chain_step != 0) {
    // A fresh submission always starts at step 0. A non-zero cursor
    // means the slot still carries a previous chain's completion
    // framing — a recycled request that skipped Request::Reuse().
    return Status::InvalidArgument(
        "chain_exec submitted with stale step cursor " +
        std::to_string(req.chain_step));
  }
  ipc::ChainProgram program;
  StepHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = chains_.find(req.chain_id);
    if (it == chains_.end()) {
      return Status::NotFound("no registered chain with id " +
                              std::to_string(req.chain_id));
    }
    program = it->second.program;
    hook = step_hook_;
  }

  // Interpreter registers.
  std::vector<uint8_t>& scratch = ScratchFor(program.byte_budget);
  uint64_t scratch_len = 0;
  std::string key(req.GetPath());
  uint64_t cursor = req.offset;

  // The request is rewritten per step and restored at the end; the
  // client sees only the chain-level completion framing.
  const uint64_t orig_offset = req.offset;
  const uint64_t orig_length = req.length;
  uint8_t* const orig_data = req.data;
  const std::string orig_path(req.GetPath());

  const sim::SoftwareCosts& costs = *exec.ctx().costs;
  Status st;
  bool txn_open = false;
  bool filtered = false;
  uint64_t hops = 0;
  uint32_t steps_run = 0;
  for (uint32_t i = 0; i < program.num_steps && !filtered; ++i) {
    exec.trace().Charge("pushdown", costs.pushdown_step);
    const ipc::ChainStep& s = program.steps[i];
    switch (s.kind) {
      case ipc::ChainStepKind::kGet: {
        if (!s.GetKey().empty()) key = std::string(s.GetKey());
        req.op = ipc::OpCode::kGet;
        req.SetPath(key);
        req.offset = 0;
        req.length = program.byte_budget;
        req.data = scratch.data();
        req.result_u64 = 0;
        st = exec.Forward(req);
        if (st.ok()) scratch_len = std::min(req.result_u64, program.byte_budget);
        ++hops;
        break;
      }
      case ipc::ChainStepKind::kDerefKey: {
        const char* base = reinterpret_cast<const char*>(scratch.data()) + s.a;
        size_t n = 0;
        while (n < s.b && base[n] != '\0') ++n;
        key.assign(base, n);
        if (key.empty()) {
          st = Status::InvalidArgument("deref_key produced an empty key at "
                                       "step " + std::to_string(i));
        }
        break;
      }
      case ipc::ChainStepKind::kReadAt: {
        req.op = ipc::OpCode::kBlkRead;
        req.offset = cursor + s.a;
        req.length = s.b;
        req.data = scratch.data();
        st = exec.Forward(req);
        if (st.ok()) scratch_len = s.b;
        ++hops;
        break;
      }
      case ipc::ChainStepKind::kDerefOffset: {
        std::memcpy(&cursor, scratch.data() + s.a, sizeof(uint64_t));
        break;
      }
      case ipc::ChainStepKind::kFilter: {
        uint64_t value = 0;
        std::memcpy(&value, scratch.data() + s.a, sizeof(uint64_t));
        if (value < s.b) filtered = true;  // stop early, success
        break;
      }
      case ipc::ChainStepKind::kModify: {
        uint64_t value = 0;
        std::memcpy(&value, scratch.data() + s.a, sizeof(uint64_t));
        value += s.b;
        std::memcpy(scratch.data() + s.a, &value, sizeof(uint64_t));
        scratch_len = std::max<uint64_t>(scratch_len, s.a + sizeof(uint64_t));
        break;
      }
      case ipc::ChainStepKind::kPut: {
        if (!txn_open) {
          // Crash atomicity: bracket the mutating suffix in journal
          // txn markers so recovery replays it all or not at all.
          st = ForwardMarker(ipc::OpCode::kTxnBegin, req, exec);
          if (!st.ok()) break;
          txn_open = true;
        }
        if (!s.GetKey().empty()) key = std::string(s.GetKey());
        req.op = ipc::OpCode::kPut;
        req.SetPath(key);
        req.offset = 0;
        req.length = scratch_len;
        req.data = scratch.data();
        st = exec.Forward(req);
        ++hops;
        break;
      }
      case ipc::ChainStepKind::kWriteAt: {
        req.op = ipc::OpCode::kBlkWrite;
        req.offset = cursor + s.a;
        req.length = s.b;
        req.data = scratch.data();
        st = exec.Forward(req);
        ++hops;
        break;
      }
      case ipc::ChainStepKind::kInvalid:
        st = Status::Internal("invalid chain step escaped validation");
        break;
    }
    if (!st.ok()) break;
    ++steps_run;
    req.chain_step = static_cast<uint16_t>(steps_run);
    if (hook) hook(program.id, i);
  }
  if (st.ok() && txn_open) {
    st = ForwardMarker(ipc::OpCode::kTxnCommit, req, exec);
  }

  // Restore the request and apply the chain-level completion framing.
  req.op = ipc::OpCode::kChainExec;
  req.offset = orig_offset;
  req.length = orig_length;
  req.data = orig_data;
  req.SetPath(orig_path);
  if (st.ok()) {
    const uint64_t copy =
        std::min<uint64_t>(scratch_len, orig_length);
    if (orig_data != nullptr && copy > 0) {
      std::memcpy(orig_data, scratch.data(), copy);
    }
    req.result_u64 = copy;
  }

  // Crossing accounting: the chain collapsed `hops` dependent
  // submissions into this one round trip.
  const uint64_t collapsed = hops > 0 ? hops - 1 : 0;
  const uint64_t crossings = kernelsim::PushdownCrossingsSaved(hops);
  const uint64_t priced = kernelsim::PushdownSavingsNs(costs, hops);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = chains_.find(program.id);
    if (it != chains_.end()) {
      ++it->second.executions;
      it->second.steps_executed += steps_run;
      it->second.crossings_saved += crossings;
      it->second.saved_ns += priced;
    }
    ++chains_executed_;
    steps_executed_ += steps_run;
    crossings_saved_ += crossings;
    saved_ns_ += priced;
  }
  telemetry::Telemetry* tel = exec.ctx().telemetry;
  if (tel != nullptr && tel->enabled()) {
    telemetry::MetricsRegistry& m = tel->metrics();
    m.GetCounter("pushdown.chains.executed")->Inc(req.worker);
    m.GetCounter("pushdown.steps.executed")->Add(steps_run, req.worker);
    m.GetCounter("pushdown.hops.collapsed")->Add(collapsed, req.worker);
    m.GetCounter("pushdown.crossings.saved")->Add(crossings, req.worker);
    m.GetCounter("pushdown.crossings.saved_ns")->Add(priced, req.worker);
  }
  return st;
}

Status PushdownMod::StateUpdate(core::LabMod& old) {
  auto* prev = dynamic_cast<PushdownMod*>(&old);
  if (prev == nullptr) {
    return Status::InvalidArgument("StateUpdate from incompatible mod");
  }
  std::scoped_lock lock(mu_, prev->mu_);
  ns_epoch_ = prev->ns_epoch_;
  chains_ = prev->chains_;
  step_hook_ = prev->step_hook_;
  chains_executed_ = prev->chains_executed_;
  steps_executed_ = prev->steps_executed_;
  crossings_saved_ = prev->crossings_saved_;
  saved_ns_ = prev->saved_ns_;
  return Status::Ok();
}

void PushdownMod::SetStepHook(StepHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  step_hook_ = std::move(hook);
}

std::vector<PushdownMod::ChainInfo> PushdownMod::ListChains() const {
  std::vector<ChainInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(chains_.size());
  for (const auto& [id, entry] : chains_) {
    ChainInfo info;
    info.id = id;
    info.num_steps = entry.program.num_steps;
    info.mutates = entry.program.Mutates();
    info.registered_epoch = entry.registered_epoch;
    info.executions = entry.executions;
    info.steps_executed = entry.steps_executed;
    info.crossings_saved = entry.crossings_saved;
    info.saved_ns = entry.saved_ns;
    out.push_back(info);
  }
  return out;
}

uint64_t PushdownMod::chains_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chains_executed_;
}
uint64_t PushdownMod::steps_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_executed_;
}
uint64_t PushdownMod::crossings_saved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crossings_saved_;
}
uint64_t PushdownMod::saved_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return saved_ns_;
}

LABSTOR_REGISTER_LABMOD("pushdown", 1, PushdownMod);

}  // namespace labstor::labmods
