// Failpoint registry for deterministic fault injection (cf. kernel
// CONFIG_FAULT_INJECTION and the failpoint harnesses storage runtimes
// use to exercise their error paths).
//
// Call sites name failpoints "subsys.site" (e.g. "simdev.write.eio")
// and compile down to a branch on a process-wide atomic pointer,
// mirroring the telemetry gating pattern: with no injector installed
// the hot path pays exactly one null-pointer check. An installed
// FaultInjector arms per-site policies — fire-once, fire-every-N,
// probabilistic (seeded common/rng, reproducible run-to-run), and
// sim-time-windowed when a sim::Environment is attached — and every
// fired failpoint increments a telemetry counter so injected-fault
// runs are auditable.
//
// Usage, status-returning sites:
//   LABSTOR_FAULTPOINT("simdev.read.eio");   // returns injected Status
//
// Sites that need the policy's argument (torn-write byte counts,
// latency-spike durations) evaluate longhand:
//   if (auto* fi = faultinject::Active(); fi != nullptr) {
//     if (auto fault = fi->Evaluate("simdev.write.torn")) { ... }
//   }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace labstor::yaml {
class Node;
using NodePtr = std::shared_ptr<Node>;
}  // namespace labstor::yaml

namespace labstor::telemetry {
class Telemetry;
class Counter;
}  // namespace labstor::telemetry

namespace labstor::sim {
class Environment;
}  // namespace labstor::sim

namespace labstor::faultinject {

struct FaultPolicy {
  enum class Trigger : uint8_t {
    kAlways,       // fire on every hit
    kOnce,         // fire on the first hit only
    kEveryN,       // fire on every n-th hit
    kProbability,  // fire with probability p (seeded Rng)
  };

  Trigger trigger = Trigger::kAlways;
  uint64_t every_n = 1;      // kEveryN
  double probability = 1.0;  // kProbability
  // Hard cap across the policy's lifetime; kOnce forces it to 1.
  uint64_t max_fires = UINT64_MAX;

  // When set, the site only fires while the attached sim::Environment
  // clock is inside [window_start_ns, window_end_ns). Without an
  // attached environment a windowed site never fires.
  bool sim_window = false;
  uint64_t window_start_ns = 0;
  uint64_t window_end_ns = UINT64_MAX;

  // Status surfaced by LABSTOR_FAULTPOINT / InjectStatus sites.
  StatusCode code = StatusCode::kInternal;
  std::string message;  // default: "injected fault at <site>"

  // Free-form knob interpreted by the call site: bytes persisted for
  // torn writes, extra virtual ns for latency spikes, ...
  uint64_t arg = 0;
};

class FaultInjector {
 public:
  static constexpr uint64_t kDefaultSeed = 0x4C414253;  // "LABS"

  explicit FaultInjector(uint64_t seed = kDefaultSeed)
      : seed_(seed), rng_(seed) {}

  // LABSTOR_FAULTS_SEED in the environment overrides `fallback` so CI
  // can pin probabilistic failpoints to a reproducible sequence.
  static uint64_t SeedFromEnv(uint64_t fallback = kDefaultSeed);

  // --- policy management ---
  void Arm(std::string site, FaultPolicy policy);
  void Disarm(const std::string& site);
  void DisarmAll();
  bool IsArmed(std::string_view site) const;

  // Parse the faults YAML (see configs/faults.yaml / DESIGN.md §6) and
  // arm every listed site. A top-level `seed:` reseeds the Rng unless
  // LABSTOR_FAULTS_SEED is set (the environment wins).
  Status LoadYaml(std::string_view text);
  Status LoadYamlFile(const std::string& path);
  Status LoadYamlNode(const yaml::NodePtr& root);

  // --- call-site API ---
  // Decides whether `site` fires on this hit; on fire returns a copy
  // of the policy (for arg/code) and bumps fire counters + telemetry.
  std::optional<FaultPolicy> Evaluate(std::string_view site);
  // Ok() when the site does not fire; the policy's Status otherwise.
  Status InjectStatus(std::string_view site);

  // --- introspection ---
  uint64_t fires(std::string_view site) const;
  uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  std::vector<std::pair<std::string, uint64_t>> FireCounts() const;
  uint64_t seed() const { return seed_; }

  // --- wiring ---
  // Virtual clock for sim_window policies (not owned).
  void AttachSimEnv(const sim::Environment* env);
  // Fired-failpoint counters: "faultinject.fired" plus a per-site
  // "faultinject.fired.<site>" (not owned; must outlive the injector).
  void AttachTelemetry(telemetry::Telemetry* tel);

  // --- process-wide installation ---
  void Install();
  void Uninstall();  // no-op unless this injector is the active one

 private:
  struct SiteState {
    FaultPolicy policy;
    uint64_t hits = 0;
    uint64_t fires = 0;
    telemetry::Counter* counter = nullptr;  // per-site, resolved lazily
  };

  uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  Rng rng_;
  std::atomic<uint64_t> total_fires_{0};
  const sim::Environment* env_ = nullptr;
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Counter* fired_total_ = nullptr;
};

namespace internal {
extern std::atomic<FaultInjector*> g_active;
}  // namespace internal

// The process-wide injector, or nullptr when fault injection is off.
// This load is the only cost disabled failpoints pay.
inline FaultInjector* Active() {
  return internal::g_active.load(std::memory_order_acquire);
}

// Installs on construction, uninstalls on destruction (test fixtures,
// labstorctl).
class ScopedInstall {
 public:
  explicit ScopedInstall(FaultInjector& injector) : injector_(injector) {
    injector_.Install();
  }
  ~ScopedInstall() { injector_.Uninstall(); }
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  FaultInjector& injector_;
};

}  // namespace labstor::faultinject

// Status-returning failpoint: if the site fires, return the injected
// Status from the enclosing function (works for Result<T> returns via
// the implicit Status -> Result conversion).
#define LABSTOR_FAULTPOINT(site)                                        \
  do {                                                                  \
    if (::labstor::faultinject::FaultInjector* _labstor_fi =            \
            ::labstor::faultinject::Active();                           \
        _labstor_fi != nullptr) {                                       \
      ::labstor::Status _labstor_fst = _labstor_fi->InjectStatus(site); \
      if (!_labstor_fst.ok()) return _labstor_fst;                      \
    }                                                                   \
  } while (0)
