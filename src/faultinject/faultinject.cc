#include "faultinject/faultinject.h"

#include <cstdlib>

#include "common/yaml.h"
#include "sim/environment.h"
#include "telemetry/telemetry.h"

namespace labstor::faultinject {

namespace internal {
std::atomic<FaultInjector*> g_active{nullptr};
}  // namespace internal

uint64_t FaultInjector::SeedFromEnv(uint64_t fallback) {
  const char* env = std::getenv("LABSTOR_FAULTS_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<uint64_t>(parsed);
}

void FaultInjector::Arm(std::string site, FaultPolicy policy) {
  if (policy.trigger == FaultPolicy::Trigger::kOnce) policy.max_fires = 1;
  if (policy.every_n == 0) policy.every_n = 1;
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.policy = std::move(policy);
  sites_[std::move(site)] = std::move(state);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

bool FaultInjector::IsArmed(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.find(site) != sites_.end();
}

std::optional<FaultPolicy> FaultInjector::Evaluate(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return std::nullopt;
  SiteState& state = it->second;
  const FaultPolicy& policy = state.policy;
  ++state.hits;
  if (state.fires >= policy.max_fires) return std::nullopt;
  if (policy.sim_window) {
    if (env_ == nullptr) return std::nullopt;
    const uint64_t now = env_->now();
    if (now < policy.window_start_ns || now >= policy.window_end_ns) {
      return std::nullopt;
    }
  }
  bool fire = false;
  switch (policy.trigger) {
    case FaultPolicy::Trigger::kAlways:
      fire = true;
      break;
    case FaultPolicy::Trigger::kOnce:
      fire = state.fires == 0;
      break;
    case FaultPolicy::Trigger::kEveryN:
      fire = state.hits % policy.every_n == 0;
      break;
    case FaultPolicy::Trigger::kProbability:
      fire = rng_.Bernoulli(policy.probability);
      break;
  }
  if (!fire) return std::nullopt;
  ++state.fires;
  total_fires_.fetch_add(1, std::memory_order_relaxed);
  if (tel_ != nullptr && tel_->enabled()) {
    if (fired_total_ == nullptr) {
      fired_total_ = tel_->metrics().GetCounter("faultinject.fired");
    }
    if (state.counter == nullptr) {
      state.counter = tel_->metrics().GetCounter("faultinject.fired." +
                                                 std::string(site));
    }
    fired_total_->Inc();
    state.counter->Inc();
  }
  return policy;
}

Status FaultInjector::InjectStatus(std::string_view site) {
  auto fired = Evaluate(site);
  if (!fired.has_value()) return Status::Ok();
  std::string message = fired->message.empty()
                            ? "injected fault at " + std::string(site)
                            : fired->message;
  return Status(fired->code, std::move(message));
}

uint64_t FaultInjector::fires(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::FireCounts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) {
    out.emplace_back(site, state.fires);
  }
  return out;
}

void FaultInjector::AttachSimEnv(const sim::Environment* env) {
  std::lock_guard<std::mutex> lock(mu_);
  env_ = env;
}

void FaultInjector::AttachTelemetry(telemetry::Telemetry* tel) {
  std::lock_guard<std::mutex> lock(mu_);
  tel_ = tel;
  fired_total_ = nullptr;
  for (auto& [site, state] : sites_) state.counter = nullptr;
}

void FaultInjector::Install() {
  internal::g_active.store(this, std::memory_order_release);
}

void FaultInjector::Uninstall() {
  FaultInjector* expected = this;
  internal::g_active.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
}

namespace {

Result<StatusCode> ParseCode(const std::string& name) {
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "already_exists") return StatusCode::kAlreadyExists;
  if (name == "permission_denied") return StatusCode::kPermissionDenied;
  if (name == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (name == "failed_precondition") return StatusCode::kFailedPrecondition;
  if (name == "unavailable") return StatusCode::kUnavailable;
  if (name == "corruption") return StatusCode::kCorruption;
  if (name == "unimplemented") return StatusCode::kUnimplemented;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "timeout") return StatusCode::kTimeout;
  return Status::InvalidArgument("unknown status code '" + name + "'");
}

Result<FaultPolicy::Trigger> ParseTrigger(const std::string& name) {
  if (name == "always") return FaultPolicy::Trigger::kAlways;
  if (name == "once") return FaultPolicy::Trigger::kOnce;
  if (name == "every_n") return FaultPolicy::Trigger::kEveryN;
  if (name == "probability") return FaultPolicy::Trigger::kProbability;
  return Status::InvalidArgument("unknown trigger '" + name + "'");
}

Result<FaultPolicy> PolicyFromYaml(const yaml::NodePtr& entry) {
  FaultPolicy policy;
  LABSTOR_ASSIGN_OR_RETURN(trigger,
                           ParseTrigger(entry->GetString("trigger", "always")));
  policy.trigger = trigger;
  policy.every_n = entry->GetUint("n", 1);
  policy.probability = entry->GetDouble("p", 1.0);
  policy.max_fires = entry->GetUint("max_fires", UINT64_MAX);
  LABSTOR_ASSIGN_OR_RETURN(code,
                           ParseCode(entry->GetString("code", "internal")));
  policy.code = code;
  policy.message = entry->GetString("message", "");
  policy.arg = entry->GetUint("arg", 0);
  if (entry->Get("window_start_us") != nullptr ||
      entry->Get("window_end_us") != nullptr) {
    policy.sim_window = true;
    policy.window_start_ns = entry->GetUint("window_start_us", 0) * 1000;
    const uint64_t end_us = entry->GetUint("window_end_us", 0);
    policy.window_end_ns = end_us == 0 ? UINT64_MAX : end_us * 1000;
  }
  return policy;
}

}  // namespace

Status FaultInjector::LoadYamlNode(const yaml::NodePtr& root) {
  if (root == nullptr || !root->IsMapping()) {
    return Status::InvalidArgument("faults config must be a mapping");
  }
  // CI pins the sequence via LABSTOR_FAULTS_SEED; the file's seed is
  // the default for interactive runs.
  const uint64_t seed = SeedFromEnv(root->GetUint("seed", seed_));
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    rng_.Seed(seed);
  }
  const yaml::NodePtr faults = root->Get("faults");
  if (faults == nullptr) return Status::Ok();  // seed-only config
  if (!faults->IsSequence()) {
    return Status::InvalidArgument("'faults' must be a sequence");
  }
  for (const yaml::NodePtr& entry : faults->items()) {
    if (entry == nullptr || !entry->IsMapping()) {
      return Status::InvalidArgument("each fault must be a mapping");
    }
    const std::string site = entry->GetString("site", "");
    if (site.empty()) {
      return Status::InvalidArgument("fault entry requires a 'site'");
    }
    LABSTOR_ASSIGN_OR_RETURN(policy, PolicyFromYaml(entry));
    Arm(site, std::move(policy));
  }
  return Status::Ok();
}

Status FaultInjector::LoadYaml(std::string_view text) {
  LABSTOR_ASSIGN_OR_RETURN(root, yaml::Parse(text));
  return LoadYamlNode(root);
}

Status FaultInjector::LoadYamlFile(const std::string& path) {
  LABSTOR_ASSIGN_OR_RETURN(root, yaml::ParseFile(path));
  return LoadYamlNode(root);
}

}  // namespace labstor::faultinject
