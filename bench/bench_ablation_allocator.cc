// Ablation — per-worker block allocator vs a single-lock allocator.
//
// DESIGN.md calls out LabFS's per-worker allocator (with stealing) as
// a contention-avoidance design choice; this measures what it buys
// over the obvious global-mutex alternative under multithreaded
// alloc/free churn.
#include <benchmark/benchmark.h>

#include <mutex>

#include "common/rng.h"
#include "labmods/block_allocator.h"

namespace labstor::labmods {
namespace {

// The strawman: one mutex around one free-range map.
class GlobalLockAllocator {
 public:
  GlobalLockAllocator(uint64_t first, uint64_t total)
      : inner_({BlockExtent{first, total}}, 1) {}

  Result<std::vector<BlockExtent>> Alloc(uint64_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_.Alloc(0, count);
  }
  void Free(BlockExtent extent) {
    std::lock_guard<std::mutex> lock(mu_);
    inner_.Free(0, extent);
  }

 private:
  std::mutex mu_;
  PerWorkerAllocator inner_;
};

constexpr uint64_t kBlocks = 1 << 20;

void BM_PerWorkerAllocator(benchmark::State& state) {
  static PerWorkerAllocator* alloc = nullptr;
  if (state.thread_index() == 0) {
    alloc = new PerWorkerAllocator(0, kBlocks,
                                   static_cast<uint32_t>(state.threads()));
  }
  Rng rng(static_cast<uint64_t>(state.thread_index()) + 1);
  const auto worker = static_cast<uint32_t>(state.thread_index());
  std::vector<BlockExtent> held;
  for (auto _ : state) {
    if (held.size() < 64 || rng.Bernoulli(0.55)) {
      auto extents = alloc->Alloc(worker, rng.Range(1, 8));
      if (extents.ok()) {
        for (const BlockExtent& e : *extents) held.push_back(e);
      }
    } else {
      alloc->Free(worker, held.back());
      held.pop_back();
    }
  }
  for (const BlockExtent& e : held) alloc->Free(worker, e);
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads());
    delete alloc;
    alloc = nullptr;
  }
}
BENCHMARK(BM_PerWorkerAllocator)->Threads(1)->Threads(2)->Threads(4);

void BM_GlobalLockAllocator(benchmark::State& state) {
  static GlobalLockAllocator* alloc = nullptr;
  if (state.thread_index() == 0) {
    alloc = new GlobalLockAllocator(0, kBlocks);
  }
  Rng rng(static_cast<uint64_t>(state.thread_index()) + 1);
  std::vector<BlockExtent> held;
  for (auto _ : state) {
    if (held.size() < 64 || rng.Bernoulli(0.55)) {
      auto extents = alloc->Alloc(rng.Range(1, 8));
      if (extents.ok()) {
        for (const BlockExtent& e : *extents) held.push_back(e);
      }
    } else {
      alloc->Free(held.back());
      held.pop_back();
    }
  }
  for (const BlockExtent& e : held) alloc->Free(e);
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads());
    delete alloc;
    alloc = nullptr;
  }
}
BENCHMARK(BM_GlobalLockAllocator)->Threads(1)->Threads(2)->Threads(4);

}  // namespace
}  // namespace labstor::labmods

BENCHMARK_MAIN();
