// Cluster benchmark: 8 simulated LabStor nodes behind the shard map,
// driven by an open-loop Poisson workload from 4 tenants, with a node
// join and a rolling upgrade landing mid-run. Reports per-tenant
// p50/p99/p999 latency (virtual ns) — the SLO numbers a closed loop
// cannot produce — plus routing counters (forwarded hops, fallback
// reads, migration volume), and writes them to BENCH_cluster.json
// (or argv[1]). Exits nonzero if any cluster invariant fails.
//
// BENCH_CLUSTER_QUICK=1 shrinks the op count for CI smoke runs.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/histogram.h"
#include "sim/environment.h"
#include "telemetry/telemetry.h"
#include "workload/arrival.h"

namespace labstor {
namespace {

constexpr uint32_t kNodes = 8;
constexpr uint32_t kTenants = 4;
constexpr uint32_t kLabelUniverse = 64;

struct BenchState {
  cluster::Cluster* cluster = nullptr;
  uint64_t ok = 0;
  uint64_t failed = 0;
  // Per-tenant: which objects have been acked, so Gets only target
  // labels that exist.
  std::vector<std::vector<bool>> written =
      std::vector<std::vector<bool>>(kTenants,
                                     std::vector<bool>(kLabelUniverse, false));
};

std::string LabelFor(uint32_t tenant, uint64_t obj) {
  return "t" + std::to_string(tenant) + "/obj" + std::to_string(obj);
}

sim::Task<void> OneOp(BenchState* state, uint32_t tenant, uint64_t index) {
  const uint64_t obj = (index * 2654435761ull) % kLabelUniverse;
  const uint32_t gateway = static_cast<uint32_t>((tenant * 2 + index) % kNodes);
  const std::string label = LabelFor(tenant, obj);
  Status st;
  if (index % 3 != 2 || !state->written[tenant][obj]) {
    const uint64_t size = 1024 + (index % 16) * 1024;
    st = co_await state->cluster->Put(gateway, tenant, label, size);
    if (st.ok()) state->written[tenant][obj] = true;
  } else {
    st = co_await state->cluster->Get(gateway, tenant, label);
  }
  if (st.ok()) {
    ++state->ok;
  } else {
    ++state->failed;
    if (state->failed <= 5) {
      std::fprintf(stderr, "op failed (%s via gw%u): %s\n", label.c_str(),
                   gateway, st.ToString().c_str());
    }
  }
}

// Membership churn that overlaps the open-loop load: a ninth node
// joins (shards migrate onto it while traffic flows), then a rolling
// upgrade quiesces each node in turn under the shard map.
sim::Task<void> MidRunChurn(sim::Environment* env, cluster::Cluster* cluster,
                            Status* churn_status) {
  co_await env->Delay(2 * sim::kMs);
  uint32_t new_id = 0;
  Status st = co_await cluster->AddNode(&new_id);
  if (!st.ok()) {
    *churn_status = st;
    co_return;
  }
  co_await env->Delay(2 * sim::kMs);
  *churn_status = co_await cluster->RollingUpgrade(2);
}

sim::Task<void> FinalAudit(cluster::Cluster* cluster, Status* out) {
  Status st = co_await cluster->Rebalance();
  if (!st.ok()) {
    *out = st;
    co_return;
  }
  *out = cluster->CheckInvariants(/*strict=*/true);
}

struct TenantRow {
  uint32_t tenant = 0;
  uint64_t ops = 0;
  double p50 = 0, p99 = 0, p999 = 0;
};

void WriteJson(const char* path, const std::vector<TenantRow>& rows,
               const workload::ArrivalStats& stats, const BenchState& state,
               const cluster::Topology& topo, bool invariants_ok) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"cluster\",\n");
  std::fprintf(f, "  \"nodes_final\": %zu,\n", topo.nodes.size());
  std::fprintf(f, "  \"map_generation\": %llu,\n",
               static_cast<unsigned long long>(topo.map_generation));
  std::fprintf(f, "  \"ops_ok\": %llu,\n",
               static_cast<unsigned long long>(state.ok));
  std::fprintf(f, "  \"ops_failed\": %llu,\n",
               static_cast<unsigned long long>(state.failed));
  std::fprintf(f, "  \"ops_per_sec\": %.1f,\n", stats.OpsPerSec());
  std::fprintf(f, "  \"forwarded\": %llu,\n",
               static_cast<unsigned long long>(topo.forwarded));
  std::fprintf(f, "  \"fallback_reads\": %llu,\n",
               static_cast<unsigned long long>(topo.fallback_reads));
  std::fprintf(f, "  \"migrated_labels\": %llu,\n",
               static_cast<unsigned long long>(topo.migrated));
  std::fprintf(f, "  \"migration_bytes\": %llu,\n",
               static_cast<unsigned long long>(topo.migration_bytes));
  std::fprintf(f, "  \"net_messages\": %llu,\n",
               static_cast<unsigned long long>(topo.net_messages));
  std::fprintf(f, "  \"invariants_ok\": %s,\n", invariants_ok ? "true" : "false");
  std::fprintf(f, "  \"tenants\": {\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const TenantRow& r = rows[i];
    std::fprintf(f,
                 "    \"tenant%u\": {\"ops\": %llu, \"p50_ns\": %.0f, "
                 "\"p99_ns\": %.0f, \"p999_ns\": %.0f}%s\n",
                 r.tenant, static_cast<unsigned long long>(r.ops), r.p50,
                 r.p99, r.p999, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main(int argc, char** argv) {
  const bool quick = std::getenv("BENCH_CLUSTER_QUICK") != nullptr;
  const uint64_t ops_per_tenant = quick ? 150 : 1000;

  sim::Environment env;
  telemetry::Telemetry::Options topts;
  topts.virtual_time = true;
  telemetry::Telemetry tel(topts);

  cluster::ClusterConfig config;
  config.initial_nodes = kNodes;
  cluster::Cluster cluster(env, config, &tel);
  if (!cluster.init_status().ok()) {
    std::fprintf(stderr, "cluster init failed: %s\n",
                 cluster.init_status().ToString().c_str());
    return 1;
  }

  BenchState state;
  state.cluster = &cluster;
  Status churn_status;
  env.Spawn(MidRunChurn(&env, &cluster, &churn_status));

  workload::ArrivalOptions opts;
  opts.mode = workload::ArrivalMode::kOpenPoisson;
  opts.streams = kTenants;
  opts.ops_per_stream = ops_per_tenant;
  opts.rate_per_stream = 50000.0;  // 50k ops/s per tenant: queueing visible
  opts.seed = 42;
  const workload::ArrivalStats stats = workload::RunArrivals(
      env, opts, [&state](uint32_t tenant, uint64_t index) {
        return OneOp(&state, tenant, index);
      });

  Status audit;
  env.Spawn(FinalAudit(&cluster, &audit));
  env.Run();

  const cluster::Topology topo = cluster.GetTopology();
  std::vector<TenantRow> rows;
  for (uint32_t t = 0; t < kTenants; ++t) {
    TenantRow r;
    r.tenant = t;
    r.ops = stats.per_stream[t].count();
    r.p50 = stats.per_stream[t].Percentile(50);
    r.p99 = stats.per_stream[t].Percentile(99);
    r.p999 = stats.per_stream[t].Percentile(99.9);
    rows.push_back(r);
    std::printf("tenant%u: ops=%llu p50=%.0fns p99=%.0fns p999=%.0fns\n", t,
                static_cast<unsigned long long>(r.ops), r.p50, r.p99, r.p999);
  }
  std::printf(
      "nodes=%zu gen=%llu ok=%llu failed=%llu forwarded=%llu fallback=%llu "
      "migrated=%llu\n",
      topo.nodes.size(), static_cast<unsigned long long>(topo.map_generation),
      static_cast<unsigned long long>(state.ok),
      static_cast<unsigned long long>(state.failed),
      static_cast<unsigned long long>(topo.forwarded),
      static_cast<unsigned long long>(topo.fallback_reads),
      static_cast<unsigned long long>(topo.migrated));

  bool ok = true;
  if (!churn_status.ok()) {
    std::fprintf(stderr, "mid-run churn failed: %s\n",
                 churn_status.ToString().c_str());
    ok = false;
  }
  if (!audit.ok()) {
    std::fprintf(stderr, "invariant failure: %s\n", audit.ToString().c_str());
    ok = false;
  }
  if (state.ok == 0) {
    std::fprintf(stderr, "no operation completed\n");
    ok = false;
  }
  WriteJson(argc > 1 ? argv[1] : "BENCH_cluster.json", rows, stats, state,
            topo, ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace labstor

int main(int argc, char** argv) { return labstor::Main(argc, argv); }
