// E4 — Fig. 5(b): Work Orchestrator request partitioning.
//
// Two LabStacks share the Runtime: a latency-sensitive stack (LabFS +
// NoOp + KernelDriver; 8 app threads creating files) and a compressor
// stack (compress + NoOp + KernelDriver; 8 app threads writing 32MB
// requests). Worker count sweeps 1..8 under round-robin vs dynamic
// orchestration. Reported: average L-app latency and C-app bandwidth.
//
// Paper shape: RR gives the best bandwidth but destroys L latency
// (creates wait behind ~20ms compressions); dynamic isolates L queues
// onto dedicated workers (µs latency) at a bandwidth cost that shrinks
// from ~30% to ~6% as workers grow.
#include "bench/common.h"
#include "common/histogram.h"
#include "common/logging.h"

namespace labstor::bench {
namespace {

constexpr uint32_t kAppThreads = 8;
constexpr uint64_t kCreatesPerThread = 400;   // paper: 5000 (scaled)
constexpr uint64_t kCReqSize = 32ull << 20;   // 32MB, as the paper
constexpr uint64_t kCReqsPerThread = 12;      // paper: 4000 (scaled)

struct Sample {
  double l_avg_us = 0;
  double l_p99_us = 0;
  double c_bandwidth_mbps = 0;
};

sim::Task<void> LClient(sim::Environment& env, core::SimRuntime& rt,
                        core::Stack& stack, uint32_t qid, Histogram* lat) {
  for (uint64_t i = 0; i < kCreatesPerThread; ++i) {
    ipc::Request req;
    req.op = ipc::OpCode::kCreate;
    req.flags = ipc::kOpenCreate;
    req.client_pid = qid;
    req.SetPath("fs::/l/t" + std::to_string(qid) + "_" + std::to_string(i));
    const sim::Time t0 = env.now();
    (void)co_await rt.Execute(qid, stack, req);
    lat->Record(env.now() - t0);
  }
}

sim::Task<void> CClient(sim::Environment& env, core::SimRuntime& rt,
                        core::Stack& stack, uint32_t qid, uint64_t* done_at) {
  for (uint64_t i = 0; i < kCReqsPerThread; ++i) {
    ipc::Request req;
    req.op = ipc::OpCode::kBlkWrite;
    req.client_pid = qid;
    req.offset = (static_cast<uint64_t>(qid) * kCReqsPerThread + i) * kCReqSize;
    req.length = kCReqSize;
    (void)co_await rt.Execute(qid, stack, req);
  }
  *done_at = env.now();
}

Sample RunOnce(size_t workers, bool dynamic) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(1ull << 30)).ok()) {
    std::abort();
  }
  core::SimRuntime rt(env, devices, workers);
  auto l_stack = rt.MountYaml(LabMinFsStack("fs::/l", "l5b"));
  auto c_stack = rt.MountYaml(
      "mount: blk::/c\n"
      "dag:\n"
      "  - mod: compress\n"
      "    uuid: zip_5b\n"
      "    outputs: [sched_c5b]\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_c5b\n"
      "    outputs: [drv_c5b]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_c5b\n");
  if (!l_stack.ok() || !c_stack.ok()) std::abort();

  // L queues: ~µs processing. C queues: ~20ms compressions.
  for (uint32_t t = 0; t < kAppThreads; ++t) {
    rt.RegisterQueue(t, 8 * sim::kUs);                 // L
    rt.RegisterQueue(100 + t, 20 * sim::kMs);          // C
  }
  std::unique_ptr<core::WorkOrchestrator> policy;
  if (dynamic) {
    core::DynamicOrchestrator::Options opts;
    opts.epoch_budget_ns = 10 * sim::kMs;  // = the rebalance period
    policy = std::make_unique<core::DynamicOrchestrator>(opts);
  } else {
    policy = std::make_unique<core::RoundRobinOrchestrator>();
  }
  rt.StartRebalancer(policy.get(), 10 * sim::kMs);

  Histogram l_latency;
  std::vector<uint64_t> c_done(kAppThreads, 0);
  for (uint32_t t = 0; t < kAppThreads; ++t) {
    env.Spawn(LClient(env, rt, **l_stack, t, &l_latency));
    env.Spawn(CClient(env, rt, **c_stack, 100 + t, &c_done[t]));
  }
  env.Run();

  Sample sample;
  sample.l_avg_us = l_latency.Mean() / 1000.0;
  sample.l_p99_us = static_cast<double>(l_latency.Percentile(99)) / 1000.0;
  uint64_t c_end = 0;
  for (const uint64_t t : c_done) c_end = std::max(c_end, t);
  const double c_bytes =
      static_cast<double>(kAppThreads) * kCReqsPerThread * kCReqSize;
  sample.c_bandwidth_mbps = c_bytes / (static_cast<double>(c_end) / 1e9) / 1e6;
  return sample;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  PrintHeader(
      "Fig 5(b) — request partitioning: L-app latency vs C-app bandwidth");
  Table table({"workers", "policy", "L avg (us)", "L p99 (us)", "C BW (MB/s)"});
  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    for (const bool dynamic : {false, true}) {
      const Sample s = RunOnce(workers, dynamic);
      table.AddRow({std::to_string(workers), dynamic ? "dynamic" : "RR",
                    Fmt("%.1f", s.l_avg_us), Fmt("%.1f", s.l_p99_us),
                    Fmt("%.0f", s.c_bandwidth_mbps)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: RR has the best bandwidth but ms-scale L latency\n"
      "(head-of-line blocking behind ~20ms compressions); dynamic keeps L\n"
      "latency in µs, with a bandwidth penalty that shrinks as workers\n"
      "increase (~30%% at few workers, ~6%% at 8).\n");
  return 0;
}
