// E3 — Fig. 5(a): Work Orchestrator dynamic CPU allocation.
//
// Each client thread random-writes its quota in 4KB requests through a
// NoOp + KernelDriver LabStack on NVMe; client count sweeps 1..16.
// Worker configurations: 1 worker, 8 workers, dynamic policy.
// Reported: IOPS and average busy cores.
//
// Paper shape: one worker saturates around 4 clients (IOPS drop vs the
// 8-worker config); 8 workers reach max IOPS but burn ~25% more CPU
// than dynamic, which matches their IOPS with ~4 cores at high client
// counts.
#include "bench/common.h"
#include "common/logging.h"
#include "workload/fio.h"

namespace labstor::bench {
namespace {

// Scaled from the paper's 1GB per client for event-count reasons; the
// saturation point depends on rates, not totals.
constexpr uint64_t kBytesPerClient = 48ull << 20;

struct Sample {
  double iops = 0;
  double busy_cores = 0;
};

Sample RunOnce(uint32_t clients, const std::string& config,
               telemetry::Telemetry* tel = nullptr) {
  sim::Environment env;
  simdev::DeviceRegistry devices(&env);
  if (!devices.Create(simdev::DeviceParams::NvmeP3700(1ull << 30)).ok()) {
    std::abort();
  }
  constexpr size_t kMaxWorkers = 8;
  core::SimRuntime rt(env, devices, kMaxWorkers);
  if (tel != nullptr) rt.AttachTelemetry(tel);
  auto stack = rt.MountYaml(
      "mount: blk::/cpu\n"
      "dag:\n"
      "  - mod: noop_sched\n"
      "    uuid: sched_cpu\n"
      "    outputs: [drv_cpu]\n"
      "  - mod: kernel_driver\n"
      "    uuid: drv_cpu\n");
  if (!stack.ok()) std::abort();
  // EstProcessingTime per request: dispatch + NoOp + driver + CQE
  // handling (~7µs, what the mods report for this stack).
  for (uint32_t c = 0; c < clients; ++c) rt.RegisterQueue(c, 7 * sim::kUs);

  std::unique_ptr<core::WorkOrchestrator> policy;
  if (config == "1 worker") {
    policy = std::make_unique<core::FixedOrchestrator>(1);
  } else if (config == "8 workers") {
    policy = std::make_unique<core::FixedOrchestrator>(8);
  } else {
    core::DynamicOrchestrator::Options opts;
    opts.epoch_budget_ns = 10 * sim::kMs;  // = the rebalance period
    policy = std::make_unique<core::DynamicOrchestrator>(opts);
  }
  rt.StartRebalancer(policy.get(), 10 * sim::kMs);

  StackBlockTarget target(rt, **stack);
  workload::FioJob job;
  job.op = simdev::IoOp::kWrite;
  job.random = true;
  job.request_size = 4096;
  job.threads = clients;
  job.iodepth = 4;
  job.bytes_per_thread = kBytesPerClient;
  job.span_per_thread = 1ull << 26;
  const workload::FioStats stats = workload::RunFio(env, target, job);

  Sample sample;
  sample.iops = stats.Iops();
  sample.busy_cores = rt.AvgBusyCores(stats.makespan);
  return sample;
}

}  // namespace
}  // namespace labstor::bench

int main() {
  labstor::Logger::Get().set_level(labstor::LogLevel::kWarn);
  using namespace labstor::bench;
  PrintHeader("Fig 5(a) — dynamic CPU allocation (4KB random writes, NVMe)");
  Table table({"clients", "config", "IOPS", "avg busy cores"});
  for (const uint32_t clients : {1u, 2u, 4u, 8u, 12u, 16u}) {
    for (const std::string config : {"1 worker", "8 workers", "dynamic"}) {
      const Sample s = RunOnce(clients, config);
      table.AddRow({std::to_string(clients), config, Fmt("%.0f", s.iops),
                    Fmt("%.2f", s.busy_cores)});
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: 1 worker saturates beyond ~2-4 clients (IOPS gap vs 8\n"
      "workers); 8 workers hit max IOPS at higher CPU cost; dynamic matches\n"
      "max IOPS while using roughly half the cores.\n");
  // Replay one representative configuration with telemetry attached
  // and dump the metrics scrape + Perfetto trace next to the results.
  labstor::telemetry::Telemetry tel;
  (void)RunOnce(4, "dynamic", &tel);
  DumpTelemetry(tel, "bench_orchestrator_cpu");
  return 0;
}
